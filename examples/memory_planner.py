"""Plan ranks-per-GPU against the HBM memory wall (Sections IV-E, VIII-B).

Given a workload, sweeps MPI ranks per GPU and reports FOM and device
memory, finds the best feasible configuration, and shows how the paper's
kernel-restructuring optimization frees enough auxiliary memory to push the
rank count (and FOM) higher before hitting the 80 GB wall.

Run:  python examples/memory_planner.py
"""

from dataclasses import replace

from repro.api import RunSpec, Simulation
from repro.core.report import render_table
from repro.driver.execution import ExecutionConfig, OptimizationFlags
from repro.driver.params import SimulationParams

MESH = 64  # use 128 for the paper's exact configuration (slower)
RANKS = (1, 4, 8, 12, 16, 24, 32)


def sweep(params, flags, label):
    rows = []
    best = None
    for r in RANKS:
        config = ExecutionConfig(
            backend="gpu", num_gpus=1, ranks_per_gpu=r, optimizations=flags
        )
        res = Simulation(RunSpec(params=params, config=config, ncycles=2, warmup=2)).run()
        status = "OOM" if res.oom else f"{res.fom:.3e}"
        rows.append(
            [label, r, status, f"{res.device_memory_peak / 2**30:.1f}"]
        )
        if not res.oom and (best is None or res.fom > best[1]):
            best = (r, res.fom)
    return rows, best


def main() -> None:
    params = SimulationParams(mesh_size=MESH, block_size=8, num_levels=3)
    base_rows, base_best = sweep(params, OptimizationFlags(), "baseline")
    opt_rows, opt_best = sweep(
        params,
        OptimizationFlags(restructured_kernels=True, pooled_block_allocation=True),
        "restructured",
    )
    print(
        render_table(
            ["variant", "ranks/GPU", "FOM", "device GiB (80 max)"],
            base_rows + opt_rows,
            title=f"Rank planning against the HBM wall (mesh {MESH}, block 8, 3 levels)",
        )
    )
    print(f"\nbaseline best:     {base_best[0]} ranks/GPU at FOM {base_best[1]:.3e}")
    print(f"restructured best: {opt_best[0]} ranks/GPU at FOM {opt_best[1]:.3e}")
    print(
        f"optimization speedup at the best feasible point: "
        f"{opt_best[1] / base_best[1]:.2f}x"
    )


if __name__ == "__main__":
    main()
