"""A 3D expanding blast — the paper's ripples-on-water picture, numerically.

A spherical Gaussian velocity pulse expands outward in 3D; AMR tracks the
steepening front (refining near it, derefining behind it), and the run
reports how the mesh and the conserved quantities evolve.  This is the
workload class Parthenon-VIBE proxies for ATS-5.

Run:  python examples/expanding_blast_3d.py
"""

import numpy as np

from repro.core.report import render_table
from repro.driver.driver import ParthenonDriver
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams
from repro.solver.burgers import CONSERVED
from repro.solver.initial_conditions import gaussian_blob


def main() -> None:
    params = SimulationParams(
        ndim=3,
        mesh_size=32,
        block_size=8,
        num_levels=2,
        num_scalars=2,
        reconstruction="plm",
        cfl=0.3,
        refine_tol=0.5,  # refine only the steep shell of the blast
        derefine_tol=0.08,
    )
    config = ExecutionConfig(
        backend="gpu", num_gpus=1, ranks_per_gpu=4, mode="numeric"
    )
    driver = ParthenonDriver(
        params,
        config,
        initial_conditions=lambda mesh, pkg: gaussian_blob(
            mesh, pkg, amplitude=0.8, width=0.15
        ),
    )
    print(f"3D blast: mesh {params.mesh_size}^3, block {params.block_size}^3, "
          f"{params.num_levels} levels, {driver.mesh.num_blocks} root blocks")

    rows = []
    for _ in range(6):
        driver.do_cycle()
        h = driver.history[-1]
        # Radius of the front: max |u| location proxy via velocity moment.
        rows.append(
            [
                driver.cycle,
                f"{driver.time:.4f}",
                driver.mesh.num_blocks,
                dict(driver.mesh.level_counts()),
                f"{h.scalar_totals[0]:.10f}",
                f"{h.max_speed:.3f}",
            ]
        )
    print()
    print(
        render_table(
            ["cycle", "time", "blocks", "blocks/level", "total q0", "max |u|"],
            rows,
            title="Blast evolution: AMR follows the expanding front",
        )
    )

    result = driver.result()
    drift = abs(
        driver.history[-1].scalar_totals[0]
        - driver.history[0].scalar_totals[0]
    )
    print(f"\nq0 conservation drift: {drift:.3e}")
    print(
        f"simulated {config.describe()}: FOM {result.fom:.3e} zone-cycles/s, "
        f"{result.cells_communicated:,} ghost cells communicated"
    )

    # Peek at the solution: the radial velocity profile along the x-axis.
    mid = []
    for blk in driver.mesh.block_list:
        lo2, hi2 = blk.bounds[1]
        lo3, hi3 = blk.bounds[2]
        if lo2 <= 0.5 < hi2 and lo3 <= 0.5 < hi3:
            xs = blk.cell_centers(0, include_ghosts=False)
            j = np.argmin(np.abs(blk.cell_centers(1, include_ghosts=False) - 0.5))
            k = np.argmin(np.abs(blk.cell_centers(2, include_ghosts=False) - 0.5))
            u = blk.interior(CONSERVED)[0][k, j, :]
            mid.extend(zip(xs, u))
    mid.sort()
    print("\nu_x along the midline (x, u):")
    print("  " + "  ".join(f"({x:.2f},{u:+.2f})" for x, u in mid[::4]))


if __name__ == "__main__":
    main()
