"""Second physics package in action: an advected blob tracked by AMR.

Solves linear advection (exact solution: rigid translation) of a Gaussian
blob on a 2D AMR mesh, refining around the blob as it crosses the periodic
domain, and renders the field and the refinement map as ASCII art — watch
the fine blocks follow the blob.

Run:  python examples/advecting_blob.py
"""

import numpy as np

from repro.comm.bvals import BoundaryExchange
from repro.comm.flux_correction import FluxCorrection
from repro.comm.mpi import SimMPI
from repro.driver.visualize import render_field, render_levels
from repro.mesh.mesh import Mesh
from repro.mesh.refinement import RefinementPolicy, SecondDerivativeCriterion
from repro.solver.advection import (
    ADVECTED,
    AdvectionConfig,
    AdvectionPackage,
    advance_advection_rk2,
)
from repro.driver.params import SimulationParams


def fill_blob(mesh, center=(0.3, 0.5), width=0.08):
    for blk in mesh.block_list:
        x = blk.cell_centers(0)
        y = blk.cell_centers(1)
        r2 = (x[None, None, :] - center[0]) ** 2 + (
            y[None, :, None] - center[1]
        ) ** 2
        blk.fields[ADVECTED][...] = 0.0
        blk.fields[ADVECTED][0] = np.exp(-r2 / width**2)


def main() -> None:
    config = AdvectionConfig(
        velocity=(1.0, 0.25, 0.0), ncomp=1, reconstruction="plm"
    )
    pkg = AdvectionPackage(2, config)
    params = SimulationParams(
        ndim=2, mesh_size=64, block_size=8, num_levels=3,
        num_scalars=1, reconstruction="plm",
    )
    mesh = Mesh(params.geometry(), field_specs=pkg.field_specs())
    fill_blob(mesh)
    mpi = SimMPI(1)
    bx = BoundaryExchange(mesh, mpi)
    fc = FluxCorrection(mesh, mpi)
    fc.set_neighbor_table(bx.neighbor_table)
    policy = RefinementPolicy(
        SecondDerivativeCriterion(ADVECTED, refine_tol=0.7, derefine_tol=0.3),
        derefine_gap=3,
    )

    dt = 0.25 * (1.0 / 64)
    total0 = sum(
        blk.fields[ADVECTED][(slice(None),) + blk.shape.interior_slices()].sum()
        * blk.cell_volume
        for blk in mesh.block_list
    )
    for cycle in range(25):
        advance_advection_rk2(mesh, pkg, bx, dt, fc)
        refine, derefine, _ = policy.collect_flags(mesh, cycle)
        if refine or derefine:
            mesh.remesh(refine, derefine)
            bx.rebuild()
            fc.set_neighbor_table(bx.neighbor_table)
            policy.forget_stale(mesh)
        if cycle % 12 == 0 or cycle == 24:
            print(f"\n=== cycle {cycle + 1}: {mesh.num_blocks} blocks, "
                  f"levels {mesh.level_counts()} ===")
            print(render_field(mesh, ADVECTED, resolution=48, vmin=0, vmax=1))
            print()
            print(render_levels(mesh, resolution=48))
    total1 = sum(
        blk.fields[ADVECTED][(slice(None),) + blk.shape.interior_slices()].sum()
        * blk.cell_volume
        for blk in mesh.block_list
    )
    print(f"\nconservation drift over the run: {abs(total1 - total0):.3e}")


if __name__ == "__main__":
    main()
