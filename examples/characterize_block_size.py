"""Reproduce the paper's headline finding on your terminal in ~a minute.

Sweeps MeshBlockSize over {8, 16, 32} on the simulated platform and prints
the H100-vs-Sapphire-Rapids comparison of Figs. 1(b) and 5: the GPU wins
big at block 32, and matches or loses to the 96-core CPU at block 16 and 8,
because communication and serial block management swamp the device.

Run:  python examples/characterize_block_size.py
"""

from repro.api import RunSpec, Simulation
from repro.core.characterize import comm_to_comp_ratio, kernel_fraction
from repro.core.report import render_table
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams

MESH = 64  # use 128 for the paper's exact configuration (slower)


def main() -> None:
    gpu_best = ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=12)
    cpu = ExecutionConfig(backend="cpu", cpu_ranks=96)
    rows = []
    for block in (8, 16, 32):
        params = SimulationParams(mesh_size=MESH, block_size=block, num_levels=3)
        g = Simulation(RunSpec(params=params, config=gpu_best, ncycles=3, warmup=2)).run()
        c = Simulation(RunSpec(params=params, config=cpu, ncycles=3, warmup=2)).run()
        rows.append(
            [
                block,
                f"{g.fom:.3e}",
                f"{c.fom:.3e}",
                f"{g.fom / c.fom:.2f}x",
                f"{kernel_fraction(g) * 100:.0f}%",
                f"{comm_to_comp_ratio(g):.2f}",
                "GPU" if g.fom > c.fom else "CPU",
            ]
        )
    print(
        render_table(
            [
                "block",
                "H100(12R) FOM",
                "SPR-96 FOM",
                "GPU/CPU",
                "GPU busy",
                "comm cells/update",
                "winner",
            ],
            rows,
            title=(
                f"MeshBlockSize characterization (mesh {MESH}, 3 AMR levels) — "
                "smaller blocks sink the GPU"
            ),
        )
    )


if __name__ == "__main__":
    main()
