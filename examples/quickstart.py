"""Quickstart: solve the 2D Burgers equation with AMR, end to end.

Runs a real (numeric) simulation: a Gaussian velocity pulse expands, the
first-derivative criterion refines the mesh around the steepening front, and
flux correction keeps every conserved total exact across refinement
boundaries.  Alongside the physics, the simulated-platform instrumentation
reports what the same run would cost on an H100.

Run:  python examples/quickstart.py
"""

from repro.api import RunSpec, Simulation, build_execution_config, build_simulation_params
from repro.core.report import render_breakdown, render_table
from repro.solver.initial_conditions import gaussian_blob


def main() -> None:
    params = build_simulation_params(
        ndim=2,
        mesh_size=64,
        block_size=8,
        num_levels=3,
        num_scalars=1,
        reconstruction="plm",  # 2 ghost cells -> fast small blocks
        cfl=0.4,
    )
    config = build_execution_config(
        backend="gpu", num_gpus=1, ranks_per_gpu=1, mode="numeric"
    )
    sim = Simulation(
        RunSpec(params=params, config=config, ncycles=8, warmup=0),
        initial_conditions=gaussian_blob,
    )
    driver = sim.driver
    print(f"mesh {params.mesh_size}^2, blocks of {params.block_size}^2, "
          f"{params.num_levels} AMR levels, {driver.mesh.num_blocks} initial blocks")

    result = sim.run()

    rows = []
    for h in result.history:
        rows.append(
            [
                h.cycle,
                f"{h.time:.4f}",
                driver.mesh.num_blocks if h is result.history[-1] else "",
                f"{h.scalar_totals[0]:.12f}",
                f"{h.total_d:.6f}",
                f"{h.max_speed:.3f}",
            ]
        )
    print()
    print(
        render_table(
            ["cycle", "time", "blocks", "total q0 (conserved)", "total d", "max |u|"],
            rows,
            title="History (MassHistory reductions)",
        )
    )
    drift = abs(
        result.history[-1].scalar_totals[0] - result.history[0].scalar_totals[0]
    )
    print(f"\nconservation drift of q0 over the run: {drift:.3e}")
    print(f"final mesh: {driver.mesh.num_blocks} blocks, "
          f"levels {driver.mesh.level_counts()}")

    print(f"\nsimulated platform: {config.describe()}")
    print(f"FOM = {result.fom:.3e} zone-cycles/s "
          f"(kernel {result.kernel_seconds:.4f}s, serial {result.serial_seconds:.4f}s)")
    print()
    print(render_breakdown(result, "Where the simulated time went", top=8))


if __name__ == "__main__":
    main()
