"""Setup shim for environments without the `wheel` package (offline installs).

All metadata lives in pyproject.toml; install with
``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
