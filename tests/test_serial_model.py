"""Tests for the host serial cost model and MPI driver memory model."""

import pytest

from repro.comm.buffers import CacheStats
from repro.comm.bvals import ExchangeStats, RebuildStats
from repro.hardware.calibration import DEFAULT_CALIBRATION
from repro.hardware.serial import SerialCostModel, mpi_driver_memory_bytes
from repro.mesh.mesh import RemeshStats
from repro.solver.state import LookupCounters


@pytest.fixture
def model():
    return SerialCostModel()


class TestCommunicationCosts:
    def test_send_setup_scales_with_buffers(self, model):
        a = ExchangeStats(buffers_packed=100, messages_remote=10)
        b = ExchangeStats(buffers_packed=200, messages_remote=20)
        assert model.send_setup(b) == pytest.approx(2 * model.send_setup(a))

    def test_remote_messages_cost_extra(self, model):
        local = ExchangeStats(buffers_packed=100, messages_remote=0)
        remote = ExchangeStats(buffers_packed=100, messages_remote=100)
        assert model.send_setup(remote) > model.send_setup(local)

    def test_buffer_cache_init_superlinear(self, model):
        # n log n sorting: doubling buffers more than doubles the cost.
        t1 = model.buffer_cache_init(1000)
        t2 = model.buffer_cache_init(2000)
        assert t2 > 2 * t1
        assert model.buffer_cache_init(0) == 0.0

    def test_polling_cost(self, model):
        assert model.receive_polling(100, 100) > 0.0
        assert model.receive_polling(0, 0) == 0.0


class TestRemeshCosts:
    def test_rebuild_buffer_cache(self, model):
        stats = RebuildStats(
            nblocks=10,
            nbuffers=260,
            cache=CacheStats(views_rebuilt=260, h2d_copies=260),
        )
        expected = 260 * (
            DEFAULT_CALIBRATION.serial.per_buffer_views_rebuild_s
            + DEFAULT_CALIBRATION.serial.per_buffer_h2d_s
        )
        assert model.rebuild_buffer_cache(stats) == pytest.approx(expected)

    def test_remesh_allocation_charges_creation_and_data(self, model):
        none = model.remesh_allocation(RemeshStats(), bytes_per_block=10**6)
        some = model.remesh_allocation(
            RemeshStats(created=8, destroyed=2), bytes_per_block=10**6
        )
        assert none == 0.0
        assert some > 0.0

    def test_redistribution_cost(self, model):
        t = model.redistribution(moved_blocks=10, bytes_per_block=10**6)
        assert t > 10 * DEFAULT_CALIBRATION.serial.per_block_move_s


class TestTreeAndTagging:
    def test_tree_update_undividable_floor(self, model):
        # The per-block tree processing is charged on total blocks.
        assert model.tree_update(8000, 0) == pytest.approx(
            8000 * DEFAULT_CALIBRATION.serial.per_block_tree_update_s
        )

    def test_tagging_scales_with_blocks(self, model):
        assert model.refinement_tagging(100) == pytest.approx(
            100 * DEFAULT_CALIBRATION.serial.per_block_tag_s
        )

    def test_variable_lookup_charges_string_work(self, model):
        counters = LookupCounters(
            queries=10, string_comparisons=50, string_hashes=30
        )
        assert model.variable_lookup(counters) > 0.0
        assert model.variable_lookup(LookupCounters()) == 0.0


class TestCollectives:
    def test_collective_grows_with_ranks(self, model):
        assert model.collective(48, 1024) > model.collective(4, 1024)

    def test_internode_costs_more(self, model):
        assert model.collective(8, 1024, internode=True) > model.collective(
            8, 1024
        )

    def test_gpu_contention_linear_in_ranks(self, model):
        c6 = model.gpu_rank_contention(8000, 6)
        c12 = model.gpu_rank_contention(8000, 12)
        assert c12 == pytest.approx(2 * c6)

    def test_gpu_optimum_near_twelve_ranks(self, model):
        """Fig. 8's shape: divisible serial / R + contention * R has its
        minimum near R = 12 for the mesh 128 / block 8 / 3 level workload."""
        nblocks = 8000
        divisible = 6.0  # seconds/cycle of divisible serial at 1 rank
        costs = {
            r: divisible / r + model.gpu_rank_contention(nblocks, r)
            for r in (1, 2, 4, 6, 8, 12, 16, 24, 32, 48)
        }
        best = min(costs, key=costs.get)
        assert 8 <= best <= 16

    def test_cpu_contention_much_milder(self, model):
        gpu = model.gpu_rank_contention(8000, 96)
        cpu = model.cpu_rank_contention(8000, 96)
        assert cpu < gpu / 10


class TestMPIDriverMemory:
    def test_base_per_rank(self):
        one = mpi_driver_memory_bytes(1, 0, 0)
        twelve = mpi_driver_memory_bytes(12, 0, 0)
        assert twelve == 12 * one

    def test_peers_and_leak_grow_usage(self):
        base = mpi_driver_memory_bytes(4, 0, 0)
        with_peers = mpi_driver_memory_bytes(4, 3, 0)
        with_leak = mpi_driver_memory_bytes(4, 3, 100)
        assert with_peers > base
        assert with_leak > with_peers

    def test_twelve_rank_scale_matches_fig10_regime(self):
        """At 12 ranks the driver + buffer overhead must be tens of GB —
        the regime where Fig. 10 hits the 80 GB HBM wall."""
        nbytes = mpi_driver_memory_bytes(12, 11, 100)
        assert 10 * 2**30 < nbytes < 60 * 2**30
