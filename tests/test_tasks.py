"""Tests for the hierarchical task-list execution model."""

import pytest

from repro.driver.tasks import (
    NONE_ID,
    Task,
    TaskID,
    TaskList,
    TaskListError,
    TaskRegion,
    TaskStatus,
    single_task_region,
)


def done(log, tag):
    def fn():
        log.append(tag)
        return TaskStatus.COMPLETE

    return fn


class TestTaskList:
    def test_ids_are_sequential(self):
        tl = TaskList("a")
        t0 = tl.add_task(lambda: TaskStatus.COMPLETE)
        t1 = tl.add_task(lambda: TaskStatus.COMPLETE)
        assert (t0.index, t1.index) == (0, 1)
        assert t0.list_id == t1.list_id

    def test_dependency_forms(self):
        tl = TaskList()
        a = tl.add_task(lambda: TaskStatus.COMPLETE)
        b = tl.add_task(lambda: TaskStatus.COMPLETE)
        c = tl.add_task(lambda: TaskStatus.COMPLETE, dependency=a & b)
        assert tl.tasks[c.index].dependencies == {a, b}
        d = tl.add_task(lambda: TaskStatus.COMPLETE, dependency=NONE_ID)
        assert tl.tasks[d.index].dependencies == set()


class TestExecution:
    def test_dependencies_order_execution(self):
        log = []
        tl = TaskList()
        a = tl.add_task(done(log, "a"))
        b = tl.add_task(done(log, "b"), dependency=a)
        tl.add_task(done(log, "c"), dependency=a & b)
        stats = TaskRegion([tl]).execute()
        assert log == ["a", "b", "c"]
        assert stats.tasks_completed == 3

    def test_incomplete_tasks_are_retried(self):
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            return (
                TaskStatus.COMPLETE
                if attempts["n"] >= 3
                else TaskStatus.INCOMPLETE
            )

        tl = TaskList()
        tl.add_task(flaky, label="recv-wait")
        stats = TaskRegion([tl]).execute()
        assert attempts["n"] == 3
        assert stats.tasks_retried == 2

    def test_interleaving_across_lists(self):
        """A task in list B depending on a task in list A still runs —
        the region interleaves lists like Parthenon's per-block lists."""
        log = []
        la, lb = TaskList("A"), TaskList("B")
        a = la.add_task(done(log, "a"))
        lb.add_task(done(log, "b"), dependency=a)
        TaskRegion([la, lb]).execute()
        assert log == ["a", "b"]

    def test_cycle_detected(self):
        tl = TaskList()
        ghost = TaskID(index=1, list_id=tl.list_id)
        tl.add_task(lambda: TaskStatus.COMPLETE, dependency=ghost)
        tl.add_task(
            lambda: TaskStatus.COMPLETE,
            dependency=TaskID(index=0, list_id=tl.list_id),
        )
        with pytest.raises(TaskListError, match="cycle"):
            TaskRegion([tl]).execute()

    def test_failure_propagates(self):
        tl = TaskList()
        tl.add_task(lambda: TaskStatus.FAIL, label="boom")
        with pytest.raises(TaskListError, match="boom"):
            TaskRegion([tl]).execute()

    def test_bad_return_value_rejected(self):
        tl = TaskList()
        tl.add_task(lambda: 42)
        with pytest.raises(TaskListError, match="TaskStatus"):
            TaskRegion([tl]).execute()

    def test_permanently_incomplete_times_out(self):
        tl = TaskList()
        tl.add_task(lambda: TaskStatus.INCOMPLETE)
        with pytest.raises(TaskListError, match="sweeps"):
            TaskRegion([tl], max_sweeps=5).execute()

    def test_single_task_region_helper(self):
        log = []
        stats = single_task_region([done(log, i) for i in range(4)])
        assert stats.tasks_completed == 4
        assert log == [0, 1, 2, 3]
