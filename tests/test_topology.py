"""Tests for neighbor topology: symmetry, counts, level deltas."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.comm.topology import (
    NeighborInfo,
    build_neighbor_table,
    count_neighbor_pairs,
    neighbors_of_block,
)
from repro.mesh.block import FieldSpec
from repro.mesh.mesh import Mesh, MeshGeometry


def make_mesh(ndim=2, mesh=32, block=8, levels=3, periodic=True):
    geo = MeshGeometry(
        ndim=ndim,
        mesh_size=tuple(mesh if a < ndim else 1 for a in range(3)),
        block_size=tuple(block if a < ndim else 1 for a in range(3)),
        ng=2,
        num_levels=levels,
        periodic=(periodic,) * 3,
    )
    return Mesh(geo, field_specs=[FieldSpec("q", 1)], allocate=False)


class TestUniform:
    def test_interior_block_has_full_neighborhood_2d(self):
        mesh = make_mesh()
        nbrs = neighbors_of_block(mesh, mesh.block_list[0].lloc)
        assert len(nbrs) == 8  # periodic: every offset populated

    def test_3d_block_has_26_neighbors(self):
        mesh = make_mesh(ndim=3, mesh=16, block=8, levels=1)
        nbrs = neighbors_of_block(mesh, mesh.block_list[0].lloc)
        assert len(nbrs) == 26

    def test_nonperiodic_corner_block_truncated(self):
        mesh = make_mesh(periodic=False)
        corner = mesh.block_at(
            next(l for l in mesh.tree.leaves if l.coords == (0, 0, 0))
        )
        nbrs = neighbors_of_block(mesh, corner.lloc)
        assert len(nbrs) == 3  # +x, +y, +xy only

    def test_face_rank_classification(self):
        info = NeighborInfo(offset=(1, 0, 0), nloc=None, delta=0)
        assert info.face_rank == 1
        info = NeighborInfo(offset=(1, -1, 1), nloc=None, delta=0)
        assert info.face_rank == 3


class TestRefined:
    def test_table_covers_all_blocks(self):
        mesh = make_mesh()
        mesh.remesh(refine=[mesh.block_list[5].lloc], derefine=[])
        table = build_neighbor_table(mesh)
        assert set(table) == {b.lloc for b in mesh.block_list}

    def test_symmetry(self):
        """If A lists B as neighbor, B lists A (with negated offset when at
        the same level; coarse/fine links are mutual too)."""
        mesh = make_mesh()
        mesh.remesh(refine=[mesh.block_list[5].lloc], derefine=[])
        table = build_neighbor_table(mesh)
        for lloc, nbrs in table.items():
            for nbr in nbrs:
                back = table[nbr.nloc]
                assert any(b.nloc == lloc for b in back), (lloc, nbr)

    def test_deltas_are_bounded(self):
        mesh = make_mesh()
        mesh.remesh(refine=[mesh.block_list[5].lloc], derefine=[])
        table = build_neighbor_table(mesh)
        for nbrs in table.values():
            for nbr in nbrs:
                assert nbr.delta in (-1, 0, 1)

    def test_pair_count_grows_with_refinement(self):
        mesh = make_mesh()
        before = count_neighbor_pairs(build_neighbor_table(mesh))
        mesh.remesh(refine=[mesh.block_list[5].lloc], derefine=[])
        after = count_neighbor_pairs(build_neighbor_table(mesh))
        assert after > before


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(0, 10_000), min_size=1, max_size=6))
def test_symmetry_property_random_meshes(seeds):
    """Property: neighbor links are mutual on any legal refined mesh."""
    mesh = make_mesh(levels=3)
    for seed in seeds:
        leaves = mesh.tree.leaves_sorted()
        loc = leaves[seed % len(leaves)]
        if loc.level < mesh.tree.max_level:
            mesh.remesh(refine=[loc], derefine=[])
    table = build_neighbor_table(mesh)
    for lloc, nbrs in table.items():
        for nbr in nbrs:
            assert any(b.nloc == lloc for b in table[nbr.nloc])
