"""Property tests (hypothesis) for the tracing + metrics subsystem.

These pin the structural contract on *arbitrary* interleavings, not
just the driver's fixed instrumentation shape: spans never run
backwards, children nest inside parents, top-level spans re-sum to the
profiler's wall clock, and metrics merging is order-independent.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kokkos.profiler import Profiler
from repro.observability import MetricsRegistry, TraceRecorder

# One profiler action: open a region, charge serial time, or charge a
# kernel.  Regions close implicitly (LIFO) when the program unwinds, so
# a flat action list maps to an arbitrary well-nested push/pop/charge
# interleaving via the recursive interpreter below.
ACTIONS = st.lists(
    st.one_of(
        st.tuples(st.just("region"), st.sampled_from("ABCD")),
        st.tuples(
            st.just("serial"),
            st.floats(min_value=0.0, max_value=10.0,
                      allow_nan=False, allow_infinity=False),
        ),
        st.tuples(
            st.just("kernel"),
            st.floats(min_value=0.0, max_value=10.0,
                      allow_nan=False, allow_infinity=False),
        ),
    ),
    max_size=24,
)

# How many subsequent actions each opened region swallows.
SPAN_LENGTHS = st.lists(st.integers(min_value=0, max_value=8), max_size=24)


def interpret(prof, actions, lengths, depth=0):
    """Run ``actions``; each ``region`` consumes a prefix of the rest."""
    i = 0
    while i < len(actions):
        kind, value = actions[i]
        i += 1
        if kind == "region":
            take = lengths[i % len(lengths)] if lengths else 0
            inner = actions[i : i + take]
            i += take
            with prof.region(f"{value}{depth}"):
                interpret(prof, inner, lengths, depth + 1)
        elif kind == "serial":
            prof.add_serial(value)
        else:
            prof.add_kernel("K", value)


@settings(max_examples=60, deadline=None)
@given(actions=ACTIONS, lengths=SPAN_LENGTHS)
def test_random_interleavings_produce_wellformed_trees(actions, lengths):
    rec = TraceRecorder()
    prof = Profiler(recorder=rec)
    interpret(prof, actions, lengths)
    trace = rec.to_trace()

    for span in trace.walk():
        # never a negative duration
        assert span.dur >= 0.0
        # children nest within their parent
        for child in span.children:
            assert child.t0 >= span.t0
            assert child.t1 <= span.t1

    # top-level spans tile the timeline: their sum is the wall clock
    assert abs(trace.total_seconds - prof.total_seconds) < 1e-9

    # category totals agree with the profiler's split
    by_cat = {"serial": 0.0, "kernel": 0.0}
    for span in trace.walk():
        if span.cat in by_cat:
            by_cat[span.cat] += span.dur
    assert abs(by_cat["serial"] - prof.total_serial_seconds) < 1e-9
    assert abs(by_cat["kernel"] - prof.total_kernel_seconds) < 1e-9

    # per-region totals match the profiler's attribution exactly
    for name, times in trace.region_totals().items():
        assert abs(times["serial"] - prof.regions[name].serial) < 1e-9
        assert abs(times["kernel"] - prof.regions[name].kernel) < 1e-9


COUNTERS = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d", "e"]),
    st.integers(min_value=0, max_value=10**9),
    max_size=5,
)
GAUGES = st.dictionaries(
    st.sampled_from(["x", "y"]),
    st.floats(min_value=0.0, max_value=1e12,
              allow_nan=False, allow_infinity=False),
    max_size=2,
)


def registry_of(counters, gauges):
    reg = MetricsRegistry()
    for name, value in counters.items():
        reg.count(name, value)
    for name, value in gauges.items():
        reg.gauge(name, value)
    return reg


def merged(*parts):
    out = MetricsRegistry()
    for part in parts:
        out.merge(part)
    return out.to_dict(per_cycle=False)


@settings(max_examples=60, deadline=None)
@given(a=COUNTERS, b=COUNTERS, ga=GAUGES, gb=GAUGES)
def test_metrics_merge_commutative(a, b, ga, gb):
    ra, rb = registry_of(a, ga), registry_of(b, gb)
    assert merged(ra, rb) == merged(rb, ra)


@settings(max_examples=60, deadline=None)
@given(a=COUNTERS, b=COUNTERS, c=COUNTERS)
def test_metrics_merge_associative(a, b, c):
    ra, rb, rc = (registry_of(d, {}) for d in (a, b, c))
    left = MetricsRegistry()
    left.merge(ra)
    left.merge(rb)
    ab = MetricsRegistry()
    ab.merge(rb)
    ab.merge(rc)
    right = MetricsRegistry()
    right.merge(ra)
    right.merge(ab)
    left.merge(rc)
    assert left.to_dict(per_cycle=False) == right.to_dict(per_cycle=False)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=1e9,
                  allow_nan=False, allow_infinity=False),
        max_size=30,
    )
)
def test_histogram_split_merge_equals_whole(values):
    whole = MetricsRegistry()
    for v in values:
        whole.observe("h", v)
    half_a, half_b = MetricsRegistry(), MetricsRegistry()
    for i, v in enumerate(values):
        (half_a if i % 2 else half_b).observe("h", v)
    half_a.merge(half_b)
    got = half_a.to_dict(per_cycle=False)["histograms"]
    want = whole.to_dict(per_cycle=False)["histograms"]
    if not values:
        assert got == want == {}
        return
    # bucket counts and extrema are exact; the float sum is only
    # reassociated, so compare it to within accumulation noise
    assert got["h"]["buckets"] == want["h"]["buckets"]
    assert got["h"]["count"] == want["h"]["count"]
    assert got["h"]["min"] == want["h"]["min"]
    assert got["h"]["max"] == want["h"]["max"]
    assert abs(got["h"]["sum"] - want["h"]["sum"]) <= 1e-6 * max(
        1.0, abs(want["h"]["sum"])
    )
