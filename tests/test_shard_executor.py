"""Shard executor protocol suite, driven in-process (DESIGN §12).

``transport="thread"`` runs the *same* ``_worker_loop`` the forked
workers execute, but inside this process — so the init/rebuild/stage/
shutdown state machine, the shared-memory attach path, and every
structured-error branch are visible to coverage (subprocess bodies are
not) and testable without fork.  The end-to-end process-transport
behavior is pinned by ``tests/test_shard_parity.py`` and the
``shard_worker`` rows of ``tests/test_fault_matrix.py``.
"""

import numpy as np
import pytest

from repro.comm.bvals import BoundaryExchange
from repro.comm.mpi import SimMPI
from repro.driver.params import SimulationParams
from repro.kernels.backends import get_backend
from repro.mesh.mesh import Mesh
from repro.parallel import ShardError, ShardedPackKernels
from repro.parallel.shm import create_slab
from repro.solver.burgers import BASE, BurgersPackage, CONSERVED, DERIVED
from repro.solver.initial_conditions import gaussian_blob
from repro.solver.packs import build_numeric_pack


def _setup():
    """A ghost-filled numeric mesh; call twice for bitwise twins."""
    params = SimulationParams(
        ndim=3, mesh_size=16, block_size=8, num_levels=1, num_scalars=1
    )
    pkg = BurgersPackage(params.ndim, params.burgers_config())
    mesh = Mesh(params.geometry(), pkg.field_specs(), allocate=True)
    gaussian_blob(mesh, pkg, amplitude=0.8, width=0.15)
    BoundaryExchange(mesh, SimMPI(1)).exchange([CONSERVED])
    return params, pkg, mesh


def _build_pack(mesh, allocator=None):
    return build_numeric_pack(
        mesh, (CONSERVED, BASE, DERIVED), flux_field=CONSERVED,
        allocator=allocator,
    )


@pytest.fixture
def bound_executor():
    params, pkg, mesh = _setup()
    executor = ShardedPackKernels(
        params, "numpy", num_shards=2, transport="thread"
    )
    pack = _build_pack(mesh, allocator=executor.allocator)
    executor.rebind(pack)
    yield executor, pack, mesh
    executor.shutdown()


class TestThreadTransportStages:
    def test_all_stages_bitwise_vs_serial(self, bound_executor):
        executor, pack, mesh = bound_executor
        s_params, s_pkg, s_mesh = _setup()
        serial = get_backend("numpy").create_kernels(s_pkg)
        s_pack = _build_pack(s_mesh)

        executor.save_base(pack)
        serial.save_base(s_pack)
        executor.calculate_fluxes(pack)
        serial.calculate_fluxes(s_pack)
        executor.flux_divergence_and_update(pack, 1.0, 0.0, 0.05)
        serial.flux_divergence_and_update(s_pack, 1.0, 0.0, 0.05)
        executor.fill_derived(pack)
        serial.fill_derived(s_pack)
        assert np.array_equal(pack.data, s_pack.data), (
            "thread-transport shard stages deviate from serial at some ULP"
        )
        dt = executor.estimate_timestep(pack)
        assert np.array_equal(dt, serial.estimate_timestep(s_pack)), (
            "assembled per-block dt deviates from the serial reduce input"
        )

    def test_summary_topology_and_timings(self, bound_executor):
        executor, pack, _mesh = bound_executor
        executor.save_base(pack)
        doc = executor.summary()
        assert doc["transport"] == "thread"
        topo = doc["topology"]
        assert topo["num_shards"] == 2
        assert topo["generation"] == 1
        assert sum(topo["blocks"]) == len(pack.blocks)
        assert any(
            "save_base" in per for per in doc["stage_seconds"].values()
        )
        executor.reset_timings()
        assert all(
            per == {} for per in executor.summary()["stage_seconds"].values()
        )

    def test_rebind_bumps_generation_and_retires_old_segments(
        self, bound_executor
    ):
        executor, _pack, mesh = bound_executor
        first_gen = list(executor._current)
        pack2 = _build_pack(mesh, allocator=executor.allocator)
        executor.rebind(pack2)
        assert executor.generation == 2
        assert executor.summary()["topology"]["generation"] == 2
        assert all(s not in executor._live for s in first_gen)
        # The new generation still computes: full stage round-trip.
        executor.save_base(pack2)


class TestStructuredErrors:
    def test_worker_exception_surfaces_with_traceback(self, bound_executor):
        executor, pack, _mesh = bound_executor
        with pytest.raises(ShardError) as excinfo:
            executor._dispatch("no_such_stage", pack)
        assert excinfo.value.shard >= 0
        assert excinfo.value.stage == "no_such_stage"
        assert "AttributeError" in str(excinfo.value)

    def test_unknown_message_kind_is_a_worker_error(self, bound_executor):
        executor, _pack, _mesh = bound_executor
        workers = executor._ensure_workers()
        workers[0].send(("bogus",))
        with pytest.raises(ShardError, match="unknown shard message"):
            executor._collect_from([workers[0]], "bogus")

    def test_barrier_timeout_is_a_shard_error(self, bound_executor):
        executor, _pack, _mesh = bound_executor
        executor.stage_timeout_s = 0.05
        workers = executor._ensure_workers()
        # No message was sent, so no ack can ever arrive.
        with pytest.raises(ShardError, match="timed out") as excinfo:
            executor._collect_from(workers, "phantom")
        assert excinfo.value.stage == "phantom"

    def test_dispatch_requires_the_bound_pack(self, bound_executor):
        executor, _pack, mesh = bound_executor
        stranger = _build_pack(mesh)
        with pytest.raises(RuntimeError, match="rebind"):
            executor.calculate_fluxes(stranger)

    def test_rebind_rejects_foreign_storage(self, bound_executor):
        executor, _pack, mesh = bound_executor
        foreign = _build_pack(mesh)  # heap-allocated, not via executor.allocator
        with pytest.raises(RuntimeError, match="allocator"):
            executor.rebind(foreign)


class TestLifecycle:
    def test_constructor_validation(self):
        params = SimulationParams(ndim=2, mesh_size=16, block_size=8)
        with pytest.raises(ValueError, match="num_shards"):
            ShardedPackKernels(params, "numpy", num_shards=0)
        with pytest.raises(ValueError, match="transport"):
            ShardedPackKernels(params, "numpy", 2, transport="carrier-pigeon")

    def test_shutdown_is_idempotent_and_final(self, bound_executor):
        executor, pack, _mesh = bound_executor
        executor.shutdown()
        executor.shutdown()
        assert executor._live == [] and executor._current == []
        # Shutdown unbinds the pack and refuses to restart workers.
        with pytest.raises(RuntimeError, match="rebind"):
            executor.save_base(pack)
        with pytest.raises(ShardError, match="shut down"):
            executor._ensure_workers()

    def test_slab_unlink_is_idempotent(self):
        slab = create_slab((4, 4))
        slab.array[:] = 7.0
        slab.unlink()
        slab.unlink()  # second unlink of the same name must be swallowed
        assert slab.close()
