"""Tests for the simulated platform models (specs, occupancy, GPU, CPU)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.cpu import CPUModel, simd_efficiency
from repro.hardware.gpu import GPUModel, warp_utilization
from repro.hardware.occupancy import occupancy
from repro.hardware.roofline import roofline_point
from repro.hardware.specs import H100_SXM, SAPPHIRE_RAPIDS_8468
from repro.kokkos.kernel import KERNEL_PROFILES, make_launch
from repro.kokkos.space import ExecutionSpace


class TestSpecs:
    def test_table1_values(self):
        cpu = SAPPHIRE_RAPIDS_8468
        assert cpu.cores == 96
        assert cpu.sockets == 2
        assert cpu.base_ghz == 3.1
        assert cpu.memory_gib == 1024
        assert cpu.memory_bw_gbs == pytest.approx(614.4)

    def test_table2_values(self):
        gpu = H100_SXM
        assert gpu.sms == 132
        assert gpu.memory_mib == 81559
        assert gpu.memory_bw_tbs == pytest.approx(3.35)
        assert gpu.fp64_tflops == 34.0

    def test_h100_operational_intensity_matches_footnote(self):
        # The paper's footnote 2: 34 TFLOPS / 3.35 TB/s ~ 10.1 FLOPs/byte.
        assert H100_SXM.operational_intensity == pytest.approx(10.15, abs=0.1)

    def test_cpu_peak_flops(self):
        # 96 cores x 3.1 GHz x 32 FLOPs/cycle ~ 9.5 TFLOP/s.
        assert SAPPHIRE_RAPIDS_8468.peak_fp64_gflops == pytest.approx(
            9523.2, rel=1e-3
        )


class TestOccupancy:
    def test_calculate_fluxes_matches_paper(self):
        # >100 registers -> 4 blocks/SM -> 16/64 warps ~ 24% (Table III).
        res = occupancy(H100_SXM, 104, 128)
        assert res.blocks_per_sm == 4
        assert res.occupancy == pytest.approx(0.25)
        assert res.limiter == "registers"

    def test_low_register_kernel_reaches_full_occupancy(self):
        res = occupancy(H100_SXM, 32, 128)
        assert res.occupancy == pytest.approx(1.0)

    def test_warp_slot_limit(self):
        res = occupancy(H100_SXM, 16, 1024)
        # 32 warps/block -> at most 2 blocks by warp slots.
        assert res.blocks_per_sm == 2
        assert res.occupancy == pytest.approx(1.0)

    def test_register_granularity_rounds_up(self):
        a = occupancy(H100_SXM, 33, 128)
        b = occupancy(H100_SXM, 40, 128)
        assert a.blocks_per_sm == b.blocks_per_sm

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            occupancy(H100_SXM, 0, 128)
        with pytest.raises(ValueError):
            occupancy(H100_SXM, 32, 2048)

    def test_monstrous_kernel_rejected(self):
        with pytest.raises(ValueError):
            occupancy(H100_SXM, 600, 1024)

    @given(st.integers(16, 256), st.sampled_from([64, 128, 256]))
    @settings(max_examples=40, deadline=None)
    def test_occupancy_bounds_property(self, regs, tpb):
        # regs <= 256 with <= 256-thread blocks always fits at least one
        # block per SM (256 regs x 256 threads = exactly the register file).
        res = occupancy(H100_SXM, regs, tpb)
        assert 0.0 < res.occupancy <= 1.0
        assert res.active_warps_per_sm <= H100_SXM.max_warps_per_sm


class TestWarpUtilization:
    def test_line_kernel_degrades_below_warp_width(self):
        p = KERNEL_PROFILES["CalculateFluxes"]
        wu32 = warp_utilization(p, 32, 32)
        wu16 = warp_utilization(p, 16, 32)
        wu8 = warp_utilization(p, 8, 32)
        assert wu32 > wu16 > wu8
        # Paper: 94.1% at B32, 67.6% at B16.
        assert wu32 == pytest.approx(0.95, abs=0.02)
        assert wu16 == pytest.approx(0.68, abs=0.05)

    def test_flat_kernel_unaffected(self):
        p = KERNEL_PROFILES["WeightedSumData"]
        assert warp_utilization(p, 8, 32) == warp_utilization(p, 32, 32)


class TestGPUModel:
    def _launch(self, cells, block_nx, name="CalculateFluxes"):
        return make_launch(
            name, ExecutionSpace.CUDA, cells=cells, block_nx=block_nx
        )

    def test_duration_includes_launch_overhead(self):
        model = GPUModel()
        tiny = self._launch(cells=8, block_nx=8)
        assert model.kernel_duration(tiny) >= model.cal.launch_overhead_s

    def test_more_work_takes_longer(self):
        model = GPUModel()
        small = self._launch(cells=32**3, block_nx=32)
        big = self._launch(cells=8 * 32**3, block_nx=32)
        assert model.kernel_duration(big) > model.kernel_duration(small)

    def test_small_blocks_hurt_per_cell_throughput(self):
        """The Fig. 1(c) mechanism: same total cells, smaller blocks ->
        lower parallel efficiency -> more time per cell."""
        model = GPUModel()
        cells = 64**3
        t32 = model.kernel_duration(self._launch(cells, 32))
        t8 = model.kernel_duration(self._launch(cells, 8))
        assert t8 > t32

    def test_parallelism_saturates_for_huge_launches(self):
        model = GPUModel()
        huge = self._launch(cells=512**3, block_nx=32)
        assert model.parallelism_efficiency(huge) == pytest.approx(1.0)

    def test_issue_penalty_for_wasted_warps(self):
        model = GPUModel()
        flux = KERNEL_PROFILES["CalculateFluxes"]
        copy = KERNEL_PROFILES["WeightedSumData"]
        assert model.issue_efficiency(flux) < model.issue_efficiency(copy)

    def test_metrics_shape_matches_table3(self):
        model = GPUModel()
        m = model.kernel_metrics(self._launch(cells=128**3, block_nx=32))
        assert m.sm_occupancy == pytest.approx(0.25)
        assert 0.0 < m.sm_utilization <= 1.0
        assert 0.0 < m.bw_utilization <= 1.0
        assert 3.0 < m.arithmetic_intensity < 5.0

    def test_aggregate_weighs_by_duration(self):
        model = GPUModel()
        launches = [
            self._launch(cells=16**3, block_nx=16),
            self._launch(cells=64**3, block_nx=16),
        ]
        agg = model.aggregate_metrics(launches)
        assert set(agg) == {"CalculateFluxes"}
        total = sum(model.kernel_duration(l) for l in launches)
        assert agg["CalculateFluxes"].duration_s == pytest.approx(total)


class TestCPUModel:
    def test_simd_efficiency_improves_with_block(self):
        assert simd_efficiency(32) > simd_efficiency(16) > simd_efficiency(8)

    def test_simd_efficiency_bounds(self):
        for nx in (1, 7, 8, 33, 256):
            assert 0.0 <= simd_efficiency(nx) < 1.0
        with pytest.raises(ValueError):
            simd_efficiency(0)

    def test_throughput_scales_with_cores(self):
        model = CPUModel()
        t1 = model.attainable_gflops(1, 32)
        t96 = model.attainable_gflops(96, 32)
        assert t96 == pytest.approx(96 * t1)

    def test_core_bounds_enforced(self):
        model = CPUModel()
        with pytest.raises(ValueError):
            model.attainable_gflops(0, 32)
        with pytest.raises(ValueError):
            model.attainable_gflops(97, 32)

    def test_kernel_duration_decreases_with_cores(self):
        model = CPUModel()
        launch = make_launch(
            "CalculateFluxes", ExecutionSpace.HOST_OPENMP,
            cells=128**3, block_nx=16,
        )
        t4 = model.kernel_duration(launch, 4)
        t48 = model.kernel_duration(launch, 48)
        assert t48 < t4 / 4

    def test_memory_bound_kernel_limited_by_bandwidth(self):
        model = CPUModel()
        launch = make_launch(
            "WeightedSumData", ExecutionSpace.HOST_OPENMP,
            cells=128**3, block_nx=16,
        )
        t48 = model.kernel_duration(launch, 48)
        t96 = model.kernel_duration(launch, 96)
        # Bandwidth-bound: doubling cores past saturation gains little.
        assert t96 > t48 * 0.6


class TestCPUBandwidthSharing:
    def test_aggregate_bandwidth_never_exceeds_socket(self):
        """96 concurrent ranks must collectively draw at most the node's
        effective bandwidth (the bug this guards: per-rank caps that let
        the aggregate exceed the socket)."""
        model = CPUModel()
        launch = make_launch(
            "WeightedSumData", ExecutionSpace.HOST_OPENMP,
            cells=128**3 // 96, block_nx=16,
        )
        t = model.kernel_duration(launch, ncores=1, total_ranks=96)
        dram = launch.bytes * model.cal.cache_traffic_factor
        per_rank_bw = dram / (t - model.cal.dispatch_overhead_s)
        aggregate = per_rank_bw * 96
        effective = model.spec.memory_bw_gbs * 1e9 * model.cal.mem_efficiency
        assert aggregate <= effective * 1.01

    def test_few_ranks_capped_below_aggregate(self):
        """A single rank cannot saturate the memory controllers."""
        model = CPUModel()
        launch = make_launch(
            "WeightedSumData", ExecutionSpace.HOST_OPENMP,
            cells=64**3, block_nx=16,
        )
        t1 = model.kernel_duration(launch, ncores=1, total_ranks=1)
        t96 = model.kernel_duration(launch, ncores=96, total_ranks=96)
        assert t1 > t96

    def test_platform_balance_matches_fig1b(self):
        """The calibration anchor: CalculateFluxes throughput ratio between
        the modeled H100 and the modeled 96-core SPR is ~2-4x (Fig. 1b's
        block-32 advantage)."""
        gpu = GPUModel()
        cpu = CPUModel()
        cells = 128**3
        launch_gpu = make_launch(
            "CalculateFluxes", ExecutionSpace.CUDA, cells=cells, block_nx=32
        )
        launch_cpu = make_launch(
            "CalculateFluxes", ExecutionSpace.HOST_OPENMP,
            cells=cells // 96, block_nx=32,
        )
        t_gpu = gpu.kernel_duration(launch_gpu)
        t_cpu = cpu.kernel_duration(launch_cpu, ncores=1, total_ranks=96)
        assert 1.5 < t_cpu / t_gpu < 5.0


class TestDivergenceMemoryCoupling:
    def test_bw_utilization_falls_with_block_size(self):
        """Table III: CalculateFluxes BW utilization 18.5% (B32) ->
        11.2% (B16)."""
        model = GPUModel()
        m32 = model.kernel_metrics(
            make_launch("CalculateFluxes", ExecutionSpace.CUDA,
                        cells=64**3, block_nx=32)
        )
        m16 = model.kernel_metrics(
            make_launch("CalculateFluxes", ExecutionSpace.CUDA,
                        cells=64**3, block_nx=16)
        )
        assert m32.bw_utilization > m16.bw_utilization
        assert m32.bw_utilization == pytest.approx(0.185, abs=0.05)
        assert m16.bw_utilization == pytest.approx(0.112, abs=0.05)


class TestRoofline:
    def test_low_intensity_is_memory_bound(self):
        pt = roofline_point(H100_SXM, 5.0)
        assert pt.memory_bound
        assert pt.attainable_flops == pytest.approx(5.0 * 3.35e12)

    def test_high_intensity_is_compute_bound(self):
        pt = roofline_point(H100_SXM, 50.0)
        assert not pt.memory_bound
        assert pt.attainable_flops == H100_SXM.peak_fp64_flops

    def test_vibe_kernels_are_memory_bound(self):
        # Paper: kernels average 5.0-5.4 FLOPs/byte vs balance 10.1.
        assert roofline_point(H100_SXM, 5.4).memory_bound

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            roofline_point(H100_SXM, -1.0)


class TestOpcodeModel:
    def test_vector_share_anchors(self):
        from repro.hardware.opcode import OpcodeModel

        m = OpcodeModel()
        f32 = m.kernel_mix(32, 1e6).fraction("vector")
        f16 = m.kernel_mix(16, 1e6).fraction("vector")
        assert f32 == pytest.approx(0.63, abs=0.04)
        assert f16 == pytest.approx(0.52, abs=0.04)
        assert f32 > f16

    def test_serial_mix_load_store_share(self):
        from repro.hardware.opcode import OpcodeModel

        m = OpcodeModel()
        s = m.serial_mix(1e6)
        ls = s.fraction("load") + s.fraction("store")
        assert 0.39 <= ls <= 0.41  # the paper's 39-41%

    def test_total_mix_dominated_by_kernel(self):
        from repro.hardware.opcode import OpcodeModel

        m = OpcodeModel()
        kernel = m.kernel_mix(32, 1e9)
        serial = m.serial_mix(1e6)
        total = m.total_mix(kernel, serial)
        assert total.fraction("vector") == pytest.approx(
            kernel.fraction("vector"), abs=0.01
        )

    def test_fractions_sum_to_one(self):
        from repro.hardware.opcode import CATEGORIES, OpcodeModel

        m = OpcodeModel()
        mix = m.kernel_mix(16, 1e5)
        assert sum(mix.fraction(c) for c in CATEGORIES) == pytest.approx(1.0)

    def test_zero_counts_rejected(self):
        from repro.hardware.opcode import OpcodeModel

        with pytest.raises(ValueError):
            OpcodeModel._normalize({c: 0.0 for c in ("vector", "load")})
