"""Golden-trace regression gates.

The committed files under ``tests/golden/`` are the canonical-JSON
exports of the mini deck (``examples/mini.in``) in both kernel modes.
Any change to the simulated cost models, the driver's instrumentation
points, the trace schema, or the metrics wiring shows up here as a byte
diff — exactly the "every perf claim is pinned by a test" contract.

Regenerate deliberately with::

    PYTHONPATH=src python -m pytest tests/test_trace_golden.py --update-goldens
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.api import RunSpec, Simulation
from repro.observability import (
    diff_region_totals,
    to_canonical_dict,
    to_canonical_json,
)
from repro.observability.exporters import within_tolerance

REPO = Path(__file__).resolve().parent.parent
MINI_DECK = REPO / "examples" / "mini.in"
GOLDEN = {
    "packed": REPO / "tests" / "golden" / "trace_mini_packed.json",
    "per_block": REPO / "tests" / "golden" / "trace_mini_per_block.json",
}


def mini_canonical(kernel_mode: str) -> str:
    spec = RunSpec.from_file(MINI_DECK)
    spec = spec.replace(
        config=dataclasses.replace(spec.config, kernel_mode=kernel_mode)
    )
    sim = Simulation(spec, trace=True)
    sim.run()
    return to_canonical_json(sim.trace())


class TestGoldenTraces:
    @pytest.mark.parametrize("kernel_mode", ["packed", "per_block"])
    def test_canonical_trace_matches_golden(self, kernel_mode, update_goldens):
        text = mini_canonical(kernel_mode)
        golden = GOLDEN[kernel_mode]
        if update_goldens:
            golden.write_text(text)
            return
        assert golden.exists(), (
            f"missing golden {golden}; regenerate with --update-goldens"
        )
        assert text == golden.read_text(), (
            f"canonical trace for kernel_mode={kernel_mode} deviates from "
            f"{golden.name}; if the change is intentional, rerun with "
            "--update-goldens and review the diff"
        )

    def test_two_consecutive_runs_byte_identical(self):
        assert mini_canonical("packed") == mini_canonical("packed")

    def test_kernel_modes_differ_but_schema_agrees(self):
        doc_a = json.loads(GOLDEN["packed"].read_text())
        doc_b = json.loads(GOLDEN["per_block"].read_text())
        assert doc_a["schema_version"] == doc_b["schema_version"]
        deltas = diff_region_totals(doc_a, doc_b)
        # the launch-overhead ablation must move kernel-heavy regions
        moved = {d.name for d in deltas if abs(d.rel) > 0.5}
        assert "CalculateFluxes" in moved
        assert not within_tolerance(deltas, 0.5)

    def test_canonical_dict_round_trips_through_json(self):
        spec = RunSpec.from_file(MINI_DECK)
        sim = Simulation(spec, trace=True)
        sim.run()
        doc = to_canonical_dict(sim.trace())
        assert json.loads(json.dumps(doc)) == doc
