"""Tests for the Burgers package: kernels, conservation, shock physics."""

import numpy as np
import pytest

from repro.comm.bvals import BoundaryExchange
from repro.comm.flux_correction import FluxCorrection
from repro.comm.mpi import SimMPI
from repro.mesh.logical_location import LogicalLocation
from repro.mesh.mesh import Mesh, MeshGeometry
from repro.solver.advance import advance_rk2, estimate_dt
from repro.solver.burgers import (
    CONSERVED,
    DERIVED,
    BurgersConfig,
    BurgersPackage,
)
from repro.solver.history import reduce_history
from repro.solver.initial_conditions import (
    constant_advection,
    gaussian_blob,
    shock_tube,
)


def make_setup(
    ndim=1,
    mesh=64,
    block=16,
    levels=1,
    periodic=True,
    config=None,
    refine=(),
):
    config = config or BurgersConfig(num_scalars=1, reconstruction="weno5")
    pkg = BurgersPackage(ndim, config)
    geo = MeshGeometry(
        ndim=ndim,
        mesh_size=tuple(mesh if a < ndim else 1 for a in range(3)),
        block_size=tuple(block if a < ndim else 1 for a in range(3)),
        ng=config.required_ghosts(),
        num_levels=levels,
        periodic=(periodic,) * 3,
    )
    m = Mesh(geo, field_specs=pkg.field_specs())
    for loc in refine:
        m.remesh(refine=[loc], derefine=[])
    mpi = SimMPI(1)
    bx = BoundaryExchange(m, mpi)
    fc = FluxCorrection(m, mpi)
    fc.set_neighbor_table(bx.neighbor_table)
    return m, pkg, bx, fc


class TestConfig:
    def test_ghost_requirements(self):
        assert BurgersConfig(reconstruction="weno5").required_ghosts() == 4
        assert BurgersConfig(reconstruction="plm").required_ghosts() == 2

    def test_rejects_unknown_schemes(self):
        with pytest.raises(ValueError):
            BurgersPackage(1, BurgersConfig(reconstruction="ppm"))
        with pytest.raises(ValueError):
            BurgersPackage(1, BurgersConfig(riemann="roe"))
        with pytest.raises(ValueError):
            BurgersPackage(1, BurgersConfig(num_scalars=0))

    def test_component_count(self):
        pkg = BurgersPackage(3, BurgersConfig(num_scalars=8))
        assert pkg.ncomp == 11


class TestKernels:
    def test_constant_state_has_zero_divergence(self):
        m, pkg, bx, _ = make_setup(ndim=2, mesh=32, block=8)
        for blk in m.block_list:
            blk.fields[CONSERVED][...] = 1.5
        bx.exchange([CONSERVED])
        for blk in m.block_list:
            pkg.calculate_fluxes(blk)
            dudt = pkg.flux_divergence(blk)
            np.testing.assert_allclose(dudt, 0.0, atol=1e-12)

    def test_fill_derived(self):
        m, pkg, _, _ = make_setup(ndim=2, mesh=32, block=8)
        blk = m.block_list[0]
        blk.fields[CONSERVED][0] = 2.0  # u1
        blk.fields[CONSERVED][1] = 1.0  # u2
        blk.fields[CONSERVED][2] = 3.0  # q0
        pkg.fill_derived(blk)
        # d = 0.5 * q0 * (u1^2 + u2^2) = 0.5 * 3 * 5.
        np.testing.assert_allclose(blk.interior(DERIVED), 7.5)

    def test_estimate_timestep_cfl(self):
        m, pkg, _, _ = make_setup(ndim=1, mesh=64, block=16)
        blk = m.block_list[0]
        blk.fields[CONSERVED][0] = 2.0
        dt = pkg.estimate_timestep(blk)
        assert dt == pytest.approx(0.4 * blk.dx(0) / 2.0)

    def test_estimate_timestep_zero_velocity_is_inf(self):
        m, pkg, _, _ = make_setup(ndim=1, mesh=64, block=16)
        blk = m.block_list[0]
        blk.fields[CONSERVED][...] = 0.0
        assert pkg.estimate_timestep(blk) == np.inf

    def test_first_derivative_indicator_responds(self):
        m, pkg, _, _ = make_setup(ndim=1, mesh=64, block=16)
        blk = m.block_list[0]
        blk.fields[CONSERVED][...] = 1.0
        flat = pkg.first_derivative_indicator(blk)
        blk.fields[CONSERVED][1][0, 0, 10:] = 5.0  # jump in q0
        steep = pkg.first_derivative_indicator(blk)
        assert steep > flat

    def test_flops_per_cell_positive(self):
        pkg = BurgersPackage(3, BurgersConfig(num_scalars=8))
        assert pkg.flops_per_cell_flux() > 1000


class TestConservation:
    def test_uniform_mesh_conserves_everything(self):
        m, pkg, bx, fc = make_setup(ndim=2, mesh=32, block=8, levels=1)
        gaussian_blob(m, pkg, center=(0.5, 0.5, 0.0), width=0.15)
        before = reduce_history(m, pkg, 0, 0.0)
        for _ in range(5):
            dt = min(estimate_dt(m, pkg), 1e-2)
            advance_rk2(m, pkg, bx, dt, fc)
        after = reduce_history(m, pkg, 5, 0.0)
        for b, a in zip(before.scalar_totals, after.scalar_totals):
            assert a == pytest.approx(b, abs=1e-12)
        for b, a in zip(before.momentum_totals, after.momentum_totals):
            assert a == pytest.approx(b, abs=1e-12)

    def test_amr_mesh_conserves_with_flux_correction(self):
        m, pkg, bx, fc = make_setup(
            ndim=2,
            mesh=32,
            block=8,
            levels=2,
            refine=[LogicalLocation(0, 1, 1, 0)],
        )
        gaussian_blob(m, pkg, center=(0.4, 0.4, 0.0), width=0.15)
        before = reduce_history(m, pkg, 0, 0.0)
        for _ in range(5):
            dt = min(estimate_dt(m, pkg), 1e-2)
            advance_rk2(m, pkg, bx, dt, fc)
        after = reduce_history(m, pkg, 5, 0.0)
        for b, a in zip(before.scalar_totals, after.scalar_totals):
            assert a == pytest.approx(b, abs=1e-11)

    def test_amr_mesh_leaks_without_flux_correction(self):
        m, pkg, bx, _ = make_setup(
            ndim=2,
            mesh=32,
            block=8,
            levels=2,
            refine=[LogicalLocation(0, 1, 1, 0)],
        )
        gaussian_blob(m, pkg, center=(0.4, 0.4, 0.0), width=0.15)
        before = reduce_history(m, pkg, 0, 0.0)
        for _ in range(5):
            dt = min(estimate_dt(m, pkg), 1e-2)
            advance_rk2(m, pkg, bx, dt, fc=None)
        after = reduce_history(m, pkg, 5, 0.0)
        drift = abs(after.scalar_totals[0] - before.scalar_totals[0])
        assert drift > 1e-9  # conservation error without the correction


class TestAccuracy:
    def test_constant_velocity_is_steady(self):
        m, pkg, bx, fc = make_setup(ndim=1, mesh=64, block=16)
        constant_advection(m, pkg, velocity=[0.7])
        u_before = m.block_list[0].interior(CONSERVED)[0].copy()
        for _ in range(4):
            advance_rk2(m, pkg, bx, 1e-3, fc)
        np.testing.assert_allclose(
            m.block_list[0].interior(CONSERVED)[0], u_before, atol=1e-12
        )

    def test_scalar_advection_matches_translation(self):
        m, pkg, bx, fc = make_setup(ndim=1, mesh=128, block=32)
        v = 1.0
        constant_advection(m, pkg, velocity=[v])
        t, dt, nsteps = 0.0, 0.5 / 128, 32
        for _ in range(nsteps):
            advance_rk2(m, pkg, bx, dt, fc)
            t += dt
        err = 0.0
        for blk in m.block_list:
            x = blk.cell_centers(0, include_ghosts=False)
            exact = 2.0 + np.sin(2 * np.pi * (x - v * t))
            got = blk.interior(CONSERVED)[1][0, 0]
            err = max(err, float(np.max(np.abs(got - exact))))
        assert err < 5e-4

    def test_advection_converges_with_resolution(self):
        errs = []
        for n in (32, 64):
            m, pkg, bx, fc = make_setup(ndim=1, mesh=n, block=16)
            v = 1.0
            constant_advection(m, pkg, velocity=[v])
            dt = 0.2 / n
            nsteps = n // 4
            for _ in range(nsteps):
                advance_rk2(m, pkg, bx, dt, fc)
            t = dt * nsteps
            err = 0.0
            for blk in m.block_list:
                x = blk.cell_centers(0, include_ghosts=False)
                exact = 2.0 + np.sin(2 * np.pi * (x - v * t))
                got = blk.interior(CONSERVED)[1][0, 0]
                err += float(np.sum(np.abs(got - exact))) / n
            errs.append(err)
        assert errs[1] < errs[0] / 4.0

    def test_shock_speed_matches_rankine_hugoniot(self):
        m, pkg, bx, fc = make_setup(
            ndim=1, mesh=256, block=32, periodic=False
        )
        shock_tube(m, pkg, u_left=1.0, u_right=0.0, interface=0.25)
        t = 0.0
        while t < 0.5:
            dt = min(estimate_dt(m, pkg), 0.5 - t)
            advance_rk2(m, pkg, bx, dt, fc)
            t += dt
        # Locate the shock: first cell where u drops below 0.5.
        xs, us = [], []
        for blk in m.block_list:
            xs.append(blk.cell_centers(0, include_ghosts=False))
            us.append(blk.interior(CONSERVED)[0][0, 0])
        x = np.concatenate(xs)
        u = np.concatenate(us)
        order = np.argsort(x)
        x, u = x[order], u[order]
        crossing = x[np.argmax(u < 0.5)]
        expected = 0.25 + 0.5 * t  # shock speed (uL + uR) / 2
        assert crossing == pytest.approx(expected, abs=3.0 / 256)

    def test_shock_on_refined_mesh_keeps_speed(self):
        m, pkg, bx, fc = make_setup(
            ndim=1,
            mesh=128,
            block=16,
            levels=2,
            periodic=False,
            refine=[LogicalLocation(0, 3, 0, 0), LogicalLocation(0, 4, 0, 0)],
        )
        shock_tube(m, pkg, u_left=1.0, u_right=0.0, interface=0.25)
        t = 0.0
        while t < 0.4:
            dt = min(estimate_dt(m, pkg), 0.4 - t)
            advance_rk2(m, pkg, bx, dt, fc)
            t += dt
        xs, us = [], []
        for blk in m.block_list:
            xs.append(blk.cell_centers(0, include_ghosts=False))
            us.append(blk.interior(CONSERVED)[0][0, 0])
        x = np.concatenate(xs)
        u = np.concatenate(us)
        order = np.argsort(x)
        x, u = x[order], u[order]
        crossing = x[np.argmax(u < 0.5)]
        assert crossing == pytest.approx(0.25 + 0.5 * t, abs=4.0 / 128)


class TestRegistry:
    def test_field_specs_cover_registry(self):
        pkg = BurgersPackage(2, BurgersConfig(num_scalars=3))
        names = [s.name for s in pkg.field_specs()]
        assert names == pkg.registry.names

    def test_exchange_fields_are_fill_ghost(self):
        from repro.solver.state import Metadata

        pkg = BurgersPackage(2)
        flagged = pkg.registry.get_by_flag(Metadata.FILL_GHOST)
        assert flagged == pkg.exchange_fields()
