"""Smoke tests for the example scripts.

Each example must import cleanly and expose a ``main``; the quickstart runs
end-to-end (it is small enough for the test suite).  The heavier examples
are exercised by the benchmark suite's equivalent sweeps.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "expanding_blast_3d",
        "characterize_block_size",
        "memory_planner",
    ],
)
def test_example_imports_and_has_main(name):
    module = load(name)
    assert callable(module.main)


def test_quickstart_runs_end_to_end(capsys):
    module = load("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "conservation drift" in out
    assert "FOM" in out
