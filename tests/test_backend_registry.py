"""Property tests for the kernel-backend registry (ISSUE 6 satellites).

Hypothesis-driven contracts:

* selection is deterministic — the same name always resolves to the same
  singleton engine instance;
* unknown names raise :class:`UnknownBackendError` with a did-you-mean
  suggestion, matching the ``repro.api`` builder convention;
* falling back to numpy never changes the simulated ``RunResult`` bytes
  (only the requested-backend field in the config differs);
* the unavailable-backend warning fires exactly once per process.

Plus the config-threading contracts: ExecutionConfig validation, deck
round-trips that keep old decks byte-identical, cache-key sensitivity
and the requested/effective split in run artifacts.
"""

import dataclasses
import pickle
import warnings
from functools import lru_cache

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import ConfigError, RunSpec, build_execution_config
from repro.driver.driver import ParthenonDriver
from repro.driver.execution import ExecutionConfig
from repro.driver.input import params_from_input, render_input
from repro.driver.params import SimulationParams
from repro.kernels.backends import (
    BackendUnavailableWarning,
    FALLBACK_BACKEND,
    KNOWN_BACKENDS,
    UnknownBackendError,
    available_backends,
    backend_names,
    get_backend,
    reset_unavailable_warnings,
    resolve_backend,
)
from repro.solver.initial_conditions import gaussian_blob


# ------------------------------------------------------------- registry


def test_known_backends_all_registered():
    assert backend_names() == list(KNOWN_BACKENDS)
    assert FALLBACK_BACKEND in available_backends()


@given(name=st.sampled_from(KNOWN_BACKENDS))
def test_selection_is_deterministic(name):
    """Same name -> same singleton, across repeated lookups."""
    assert get_backend(name) is get_backend(name)
    assert resolve_backend(name) is resolve_backend(name)
    resolved = resolve_backend(name)
    if name in available_backends():
        assert resolved is get_backend(name)
    else:
        assert resolved is get_backend(FALLBACK_BACKEND)


@given(
    name=st.text(min_size=0, max_size=24).filter(
        lambda s: s not in KNOWN_BACKENDS
    )
)
def test_unknown_names_raise_with_choices(name):
    with pytest.raises(UnknownBackendError) as err:
        get_backend(name)
    for known in KNOWN_BACKENDS:
        assert known in str(err.value)


@pytest.mark.parametrize(
    "typo, suggestion",
    [("numpa", "numpy"), ("cuppy", "cupy"), ("nmba", "numba")],
)
def test_did_you_mean_suggestion(typo, suggestion):
    with pytest.raises(UnknownBackendError, match=suggestion):
        get_backend(typo)


def test_unknown_backend_error_is_value_error():
    """Callers that guard on ValueError keep working."""
    with pytest.raises(ValueError):
        get_backend("fortran")


# ------------------------------------------------------- warning policy


@pytest.fixture
def fresh_warning_state():
    reset_unavailable_warnings()
    yield
    reset_unavailable_warnings()


def test_unavailable_warning_fires_exactly_once(fresh_warning_state):
    unavailable = [n for n in KNOWN_BACKENDS if n not in available_backends()]
    if not unavailable:  # full-dependency environment (GPU CI)
        pytest.skip("every known backend is importable here")
    name = unavailable[0]
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        resolve_backend(name)
        resolve_backend(name)  # second resolve must stay silent
        resolve_backend(name)
    ours = [w for w in caught if w.category is BackendUnavailableWarning]
    assert len(ours) == 1
    assert name in str(ours[0].message)
    # reset_unavailable_warnings() re-arms it (process-lifetime state).
    reset_unavailable_warnings()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        resolve_backend(name)
    assert sum(
        w.category is BackendUnavailableWarning for w in caught
    ) == 1


def test_available_backend_resolves_silently(fresh_warning_state):
    with warnings.catch_warnings():
        warnings.simplefilter("error", BackendUnavailableWarning)
        assert resolve_backend("numpy").name == "numpy"


# ------------------------------------------------- fallback result bytes


@lru_cache(maxsize=None)
def fallback_result(kernel_backend):
    params = SimulationParams(
        ndim=2, mesh_size=16, block_size=8, num_levels=2, num_scalars=2
    )
    cfg = ExecutionConfig(
        backend="gpu",
        num_gpus=1,
        ranks_per_gpu=1,
        mode="numeric",
        kernel_mode="packed",
        kernel_backend=kernel_backend,
    )
    driver = ParthenonDriver(
        params,
        cfg,
        initial_conditions=lambda mesh_, pkg: gaussian_blob(
            mesh_, pkg, amplitude=0.8, width=0.15
        ),
    )
    return driver.run(2)


def test_fallback_never_changes_run_result_bytes():
    """Requesting an unavailable backend falls back to numpy and yields a
    RunResult that is byte-identical to the numpy run, apart from the
    *requested* backend recorded in the config."""
    unavailable = [n for n in KNOWN_BACKENDS if n not in available_backends()]
    if not unavailable:
        pytest.skip("every known backend is importable here")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", BackendUnavailableWarning)
        res_fb = fallback_result(unavailable[0])
    res_np = fallback_result("numpy")
    assert res_fb.kernel_backend == "numpy"  # effective engine
    assert res_fb.config.kernel_backend == unavailable[0]  # the request
    normalized = dataclasses.replace(
        res_fb, config=dataclasses.replace(res_fb.config, kernel_backend="numpy")
    )
    assert pickle.dumps(normalized) == pickle.dumps(res_np)


# --------------------------------------------------- config validation


def test_execution_config_rejects_unknown_backend():
    with pytest.raises(ValueError, match="kernel_backend"):
        ExecutionConfig(kernel_backend="fortran")


def test_builder_rejects_with_suggestion():
    with pytest.raises(ConfigError, match="numpy"):
        build_execution_config(kernel_backend="numpa")


@given(name=st.sampled_from(KNOWN_BACKENDS))
def test_builder_accepts_every_known_backend(name):
    cfg = build_execution_config(kernel_backend=name)
    assert cfg.kernel_backend == name


# ------------------------------------------------------ deck round-trip


@settings(max_examples=30)
@given(
    name=st.sampled_from(KNOWN_BACKENDS),
    kernel_mode=st.sampled_from(["packed", "per_block"]),
)
def test_deck_round_trip_preserves_backend(name, kernel_mode):
    cfg = ExecutionConfig(kernel_backend=name, kernel_mode=kernel_mode)
    _, parsed = params_from_input(render_input(SimulationParams(), cfg))
    assert parsed.kernel_backend == name
    assert parsed.kernel_mode == kernel_mode


def test_default_backend_not_rendered():
    """Decks only mention kernel_backend when it differs from the default,
    so every pre-existing deck renders byte-identically."""
    deck = render_input(SimulationParams(), ExecutionConfig())
    assert "kernel_backend" not in deck
    deck = render_input(
        SimulationParams(), ExecutionConfig(kernel_backend="numba")
    )
    assert "kernel_backend = numba" in deck


def test_old_decks_default_to_numpy():
    deck = render_input(SimulationParams(), ExecutionConfig())
    _, parsed = params_from_input(deck)
    assert parsed.kernel_backend == "numpy"


# ------------------------------------------------- identity propagation


def test_cache_key_differs_by_backend():
    base = RunSpec(config=build_execution_config(mode="numeric"))
    alt = RunSpec(
        config=build_execution_config(mode="numeric", kernel_backend="numba")
    )
    assert base.cache_key() != alt.cache_key()


def test_modeled_runs_never_resolve_backends(fresh_warning_state):
    """Modeled (cost-model) runs have no numeric kernels: requesting any
    backend is recorded but never resolved — no warning, effective numpy."""
    unavailable = [n for n in KNOWN_BACKENDS if n not in available_backends()]
    name = unavailable[0] if unavailable else "numba"
    cfg = ExecutionConfig(mode="modeled", kernel_backend=name)
    with warnings.catch_warnings():
        warnings.simplefilter("error", BackendUnavailableWarning)
        driver = ParthenonDriver(SimulationParams(), cfg)
        driver.run(2)
    assert driver.kernel_backend == "numpy"
