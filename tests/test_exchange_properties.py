"""Property-based tests on ghost-exchange invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm.bvals import BoundaryExchange, message_spec
from repro.comm.mpi import SimMPI
from repro.comm.topology import NeighborInfo
from repro.mesh.block import FieldSpec
from repro.mesh.logical_location import LogicalLocation
from repro.mesh.mesh import Mesh, MeshGeometry
from repro.mesh.tree import neighbor_offsets


def make_mesh(levels=2, allocate=True):
    geo = MeshGeometry(
        ndim=2,
        mesh_size=(32, 32, 1),
        block_size=(8, 8, 1),
        ng=2,
        num_levels=levels,
    )
    return Mesh(geo, field_specs=[FieldSpec("q", 1)], allocate=allocate)


@settings(max_examples=10, deadline=None)
@given(st.lists(st.integers(0, 10_000), min_size=0, max_size=4))
def test_exchange_is_idempotent(seeds):
    """Property: a second exchange after convergence changes nothing —
    ghost fill is a projection."""
    mesh = make_mesh()
    for seed in seeds:
        leaves = mesh.tree.leaves_sorted()
        loc = leaves[seed % len(leaves)]
        if loc.level < mesh.tree.max_level:
            mesh.remesh(refine=[loc], derefine=[])
    rng = np.random.default_rng(0)
    for blk in mesh.block_list:
        blk.interior("q")[...] = rng.normal(size=blk.interior("q").shape)
    bx = BoundaryExchange(mesh, SimMPI(1))
    bx.exchange(["q"])
    snapshot = {b.gid: b.fields["q"].copy() for b in mesh.block_list}
    bx.exchange(["q"])
    for blk in mesh.block_list:
        np.testing.assert_allclose(
            blk.fields["q"], snapshot[blk.gid], atol=1e-13
        )


@settings(max_examples=10, deadline=None)
@given(st.lists(st.integers(0, 10_000), min_size=0, max_size=4))
def test_interior_untouched_by_exchange(seeds):
    """Property: the exchange never modifies interior cells."""
    mesh = make_mesh()
    for seed in seeds:
        leaves = mesh.tree.leaves_sorted()
        loc = leaves[seed % len(leaves)]
        if loc.level < mesh.tree.max_level:
            mesh.remesh(refine=[loc], derefine=[])
    rng = np.random.default_rng(1)
    for blk in mesh.block_list:
        blk.interior("q")[...] = rng.normal(size=blk.interior("q").shape)
    before = {b.gid: b.interior("q").copy() for b in mesh.block_list}
    BoundaryExchange(mesh, SimMPI(1)).exchange(["q"])
    for blk in mesh.block_list:
        np.testing.assert_array_equal(blk.interior("q"), before[blk.gid])


@settings(max_examples=40, deadline=None)
@given(
    st.sampled_from(neighbor_offsets(2)),
    st.integers(-1, 1),
    st.integers(0, 7),
    st.integers(0, 7),
)
def test_message_sizes_consistent(offset, delta, sx, sy):
    """Property: for any legal message geometry, the transmitted volume
    (after optional restriction) equals the receive volume."""
    if delta == 1:
        sender = LogicalLocation(2, sx, sy, 0)
        receiver = LogicalLocation(1, max(sx // 2 - offset[0], 0), max(sy // 2 - offset[1], 0), 0)
    elif delta == -1:
        sender = LogicalLocation(1, sx // 2, sy // 2, 0)
        receiver = LogicalLocation(2, sx, sy, 0)
    else:
        sender = LogicalLocation(1, sx, sy, 0)
        receiver = LogicalLocation(1, sx - offset[0], sy - offset[1], 0)
    nbr = NeighborInfo(offset=offset, nloc=sender, delta=delta)
    spec = message_spec((8, 8, 1), 2, 2, nbr, receiver)
    send_cells = 1
    for lo, hi in spec.send_ranges:
        assert hi > lo
        send_cells *= hi - lo
    if spec.restrict_before_send:
        assert send_cells == spec.cells * 4  # 2D restriction is 4:1
    else:
        assert send_cells == spec.cells


@settings(max_examples=10, deadline=None)
@given(st.integers(1, 4))
def test_rank_count_does_not_change_traffic_volume(nranks):
    """Property: rank layout moves bytes between local/remote categories
    but total cells are invariant."""
    from repro.mesh.loadbalance import balance

    mesh = make_mesh(allocate=False)
    mesh.remesh(refine=[mesh.block_list[5].lloc], derefine=[])
    balance(mesh, nranks)
    bx = BoundaryExchange(mesh, SimMPI(nranks))
    bx.start_receive_bound_bufs()
    stats = bx.send_bound_bufs(["q"])
    mesh2 = make_mesh(allocate=False)
    mesh2.remesh(refine=[mesh2.block_list[5].lloc], derefine=[])
    bx2 = BoundaryExchange(mesh2, SimMPI(1))
    bx2.start_receive_bound_bufs()
    stats2 = bx2.send_bound_bufs(["q"])
    assert stats.cells_communicated == stats2.cells_communicated
    assert (
        stats.messages_local + stats.messages_remote
        == stats2.messages_local + stats2.messages_remote
    )
