"""Regression pins: canonical configurations with frozen expectations.

These guard the calibrated figure *shapes* against accidental model drift:
they assert ranges (not exact floats) wide enough to survive benign
refactors but tight enough to catch a broken cost model or workload change.
"""

import pytest

from repro.core.characterize import characterize, kernel_fraction
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams

GPU1 = ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=1)
GPU12 = ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=12)
CPU96 = ExecutionConfig(backend="cpu", cpu_ranks=96)


@pytest.fixture(scope="module")
def anchor():
    """The paper's anchor config at reduced mesh (tractable in tests)."""
    params = SimulationParams(ndim=3, mesh_size=64, block_size=8, num_levels=3)
    return {
        "gpu1": characterize(params, GPU1, 2, 2),
        "gpu12": characterize(params, GPU12, 2, 2),
        "cpu96": characterize(params, CPU96, 2, 2),
    }


class TestAnchorPins:
    def test_gpu1_serial_dominates(self, anchor):
        r = anchor["gpu1"]
        ratio = r.serial_seconds / r.kernel_seconds
        # Paper's 21.8 at mesh 128; the reduced mesh sits lower but the
        # serial portion must still dominate by an order of magnitude.
        assert 5.0 < ratio < 40.0

    def test_ranks_help_several_fold(self, anchor):
        speedup = anchor["gpu12"].fom / anchor["gpu1"].fom
        assert 2.0 < speedup < 10.0

    def test_cpu_beats_gpu_at_block8(self, anchor):
        assert anchor["cpu96"].fom > anchor["gpu12"].fom

    def test_kernel_fraction_low_at_one_rank(self, anchor):
        assert kernel_fraction(anchor["gpu1"]) < 0.25

    def test_redistribute_is_top_function(self, anchor):
        top = next(iter(anchor["gpu1"].function_breakdown))
        assert top == "RedistributeAndRefineMeshBlocks"

    def test_memory_scales_with_ranks(self, anchor):
        assert (
            anchor["gpu12"].device_memory_peak
            > anchor["gpu1"].device_memory_peak
        )

    def test_comm_cells_identical_across_configs(self, anchor):
        """Traffic volume is workload-determined, not platform-determined."""
        cells = {r.cells_communicated for r in anchor.values()}
        assert len(cells) == 1


class TestBlockSizePins:
    def test_block32_gpu_advantage(self):
        params = SimulationParams(
            ndim=3, mesh_size=64, block_size=32, num_levels=3
        )
        gpu = characterize(params, GPU12, 2, 2)
        cpu = characterize(params, CPU96, 2, 2)
        # Fig 1(b): GPU wins by roughly 2-4x at block 32.
        assert 1.3 < gpu.fom / cpu.fom < 6.0


GPU1_PER_BLOCK = ExecutionConfig(
    backend="gpu", num_gpus=1, ranks_per_gpu=1, kernel_mode="per_block"
)


@pytest.fixture(scope="module")
def kernel_mode_pair():
    """The anchor config run packed vs per-block (the Fig. 1c ablation)."""
    params = SimulationParams(ndim=3, mesh_size=64, block_size=8, num_levels=3)
    return {
        "packed": characterize(params, GPU1, 2, 2),
        "per_block": characterize(params, GPU1_PER_BLOCK, 2, 2),
    }


class TestPackedModePins:
    """FOM pins for the packed execution engine (kernel_mode)."""

    def test_per_block_inflates_kernel_time(self, kernel_mode_pair):
        packed = kernel_mode_pair["packed"]
        per_block = kernel_mode_pair["per_block"]
        # At block 8 the mesh holds hundreds of blocks per rank; paying a
        # launch per block instead of one per pack must cost several-fold
        # kernel time (Section II-C launch-overhead mechanism).
        assert per_block.kernel_seconds > 1.5 * packed.kernel_seconds

    def test_per_block_degrades_fom(self, kernel_mode_pair):
        assert (
            kernel_mode_pair["packed"].fom
            > 1.2 * kernel_mode_pair["per_block"].fom
        )

    def test_comm_identical_across_kernel_modes(self, kernel_mode_pair):
        """Launch granularity must not change ghost traffic."""
        packed = kernel_mode_pair["packed"]
        per_block = kernel_mode_pair["per_block"]
        assert packed.cells_communicated == per_block.cells_communicated
        assert packed.remote_messages == per_block.remote_messages

    def test_numeric_packed_fom_pin(self):
        """The numeric path reports a finite FOM and the same launch
        accounting advantage as the modeled path."""
        from repro.driver.driver import ParthenonDriver
        from repro.solver.initial_conditions import gaussian_blob

        params = SimulationParams(
            ndim=2, mesh_size=32, block_size=8, num_levels=2, num_scalars=1
        )
        results = {}
        for mode in ("packed", "per_block"):
            cfg = ExecutionConfig(
                backend="gpu",
                num_gpus=1,
                ranks_per_gpu=1,
                mode="numeric",
                kernel_mode=mode,
            )
            driver = ParthenonDriver(
                params,
                cfg,
                initial_conditions=lambda mesh, pkg: gaussian_blob(
                    mesh, pkg, amplitude=0.8, width=0.15
                ),
            )
            results[mode] = driver.run(3)
        assert results["packed"].fom > 0
        assert results["packed"].fom > results["per_block"].fom
        # Same physics either way: identical history reductions.
        for ha, hb in zip(
            results["packed"].history, results["per_block"].history
        ):
            assert ha.total_d == pytest.approx(hb.total_d, abs=1e-13)
            assert ha.max_speed == pytest.approx(hb.max_speed, abs=1e-13)
