"""Tests for fine→coarse flux correction."""

import numpy as np
import pytest

from repro.comm.bvals import BoundaryExchange
from repro.comm.flux_correction import FluxCorrection, restrict_face
from repro.comm.mpi import SimMPI
from repro.mesh.block import FieldSpec
from repro.mesh.logical_location import LogicalLocation
from repro.mesh.mesh import Mesh, MeshGeometry


def make_refined_mesh(ndim=2, allocate=True):
    geo = MeshGeometry(
        ndim=ndim,
        mesh_size=tuple(32 if a < ndim else 1 for a in range(3)),
        block_size=tuple(8 if a < ndim else 1 for a in range(3)),
        ng=2,
        num_levels=2,
    )
    mesh = Mesh(geo, field_specs=[FieldSpec("u", 2)], allocate=allocate)
    mesh.remesh(refine=[LogicalLocation(0, 1, 1, 0) if ndim >= 2 else LogicalLocation(0, 1, 0, 0)], derefine=[])
    if allocate:
        for blk in mesh.block_list:
            blk.allocate_fluxes("u")
    return mesh


class TestRestrictFace:
    def test_2d_pairs_averaged(self):
        slab = np.arange(8.0).reshape(1, 1, 8, 1)  # x-normal face in 2D
        out = restrict_face(slab, ndim=2, normal_axis=0)
        assert out.shape == (1, 1, 4, 1)
        assert np.allclose(out[0, 0, :, 0], [0.5, 2.5, 4.5, 6.5])

    def test_3d_quads_averaged(self):
        slab = np.ones((2, 4, 4, 1))
        out = restrict_face(slab, ndim=3, normal_axis=0)
        assert out.shape == (2, 2, 2, 1)
        assert np.allclose(out, 1.0)

    def test_1d_face_is_identity(self):
        slab = np.array([3.0]).reshape(1, 1, 1, 1)
        out = restrict_face(slab, ndim=1, normal_axis=0)
        assert out[0, 0, 0, 0] == 3.0

    def test_rejects_odd_tangential(self):
        with pytest.raises(ValueError):
            restrict_face(np.ones((1, 1, 5, 1)), ndim=2, normal_axis=0)


class TestFluxCorrection:
    def _setup(self):
        mesh = make_refined_mesh()
        mpi = SimMPI(1)
        bx = BoundaryExchange(mesh, mpi)
        fc = FluxCorrection(mesh, mpi)
        fc.set_neighbor_table(bx.neighbor_table)
        return mesh, mpi, fc

    def test_coarse_face_replaced_by_fine_average(self):
        mesh, _, fc = self._setup()
        # Coarse block to the left of the refined region.
        coarse = mesh.block_at(LogicalLocation(0, 0, 1, 0))
        fine = mesh.block_at(LogicalLocation(1, 2, 2, 0))
        for blk in mesh.block_list:
            for arr in blk.fluxes["u"]:
                if arr is not None:
                    arr[...] = -99.0
        # Fine block's left face fluxes: tangential ramp 0..7.
        fine.fluxes["u"][0][:, :, :, 0] = np.arange(8.0)[None, None, :]
        fc.correct(["u"])
        # Coarse +x face, lower tangential half (fine block has lx2 even).
        got = coarse.fluxes["u"][0][0, 0, 0:4, 8]
        assert np.allclose(got, [0.5, 2.5, 4.5, 6.5])
        # The other half must be untouched.
        assert np.all(coarse.fluxes["u"][0][0, 0, 4:, 8] == -99.0)

    def test_correction_count_2d(self):
        mesh, _, fc = self._setup()
        stats = fc.correct(["u"])
        # The refined block has 4 faces, each seen by one coarse neighbor
        # with 2 fine blocks per face -> 8 corrections.
        assert stats.corrections == 8
        assert stats.cells_communicated == 8 * 4

    def test_only_faces_participate(self):
        mesh, _, fc = self._setup()
        stats = fc.correct(["u"])
        # cells per correction = nx/2 (2D face), never corner-sized.
        assert stats.cells_communicated % (8 // 2) == 0

    def test_model_mode_counts_without_arrays(self):
        mesh = make_refined_mesh(allocate=False)
        mpi = SimMPI(2)
        bx = BoundaryExchange(mesh, mpi)
        fc = FluxCorrection(mesh, mpi)
        fc.set_neighbor_table(bx.neighbor_table)
        stats = fc.correct(["u"])
        assert stats.corrections == 8
        assert stats.messages_remote + stats.messages_local == 8

    def test_traffic_recorded_in_mpi(self):
        mesh, mpi, fc = self._setup()
        fc.correct(["u"])
        assert mpi.cycle.local_copies >= 8
