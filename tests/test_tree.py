"""Tests for the 2:1 block tree."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh.logical_location import LogicalLocation
from repro.mesh.tree import BlockTree, neighbor_offsets


def make_tree(ndim=2, nroot=(4, 4, 1), num_levels=3, periodic=True):
    return BlockTree(
        nroot=nroot,
        ndim=ndim,
        num_levels=num_levels,
        periodic=(periodic,) * 3,
    )


class TestConstruction:
    def test_initial_leaf_count(self):
        tree = make_tree(nroot=(4, 3, 1))
        assert len(tree) == 12

    def test_3d_initial_leaves(self):
        tree = make_tree(ndim=3, nroot=(2, 2, 2))
        assert len(tree) == 8

    def test_rejects_bad_ndim(self):
        with pytest.raises(ValueError):
            BlockTree(nroot=(2, 1, 1), ndim=4)

    def test_rejects_nonunit_unused_dim(self):
        with pytest.raises(ValueError):
            BlockTree(nroot=(2, 2, 1), ndim=1)

    def test_offsets_counts(self):
        assert len(neighbor_offsets(1)) == 2
        assert len(neighbor_offsets(2)) == 8
        assert len(neighbor_offsets(3)) == 26

    def test_initial_tree_valid(self):
        make_tree().check_valid()


class TestWrap:
    def test_wrap_periodic(self):
        tree = make_tree(nroot=(4, 4, 1))
        wrapped = tree.wrap(LogicalLocation(0, -1, 4, 0))
        assert wrapped == LogicalLocation(0, 3, 0, 0)

    def test_wrap_nonperiodic_returns_none(self):
        tree = make_tree(periodic=False)
        assert tree.wrap(LogicalLocation(0, -1, 0, 0)) is None

    def test_wrap_inside_is_identity(self):
        tree = make_tree()
        loc = LogicalLocation(0, 2, 3, 0)
        assert tree.wrap(loc) == loc


class TestRefine:
    def test_refine_replaces_leaf_with_children(self):
        tree = make_tree()
        loc = LogicalLocation(0, 1, 1, 0)
        tree.refine(loc)
        assert loc not in tree
        for child in loc.children(2):
            assert child in tree
        assert len(tree) == 16 - 1 + 4

    def test_refine_rejects_non_leaf(self):
        tree = make_tree()
        tree.refine(LogicalLocation(0, 0, 0, 0))
        with pytest.raises(ValueError):
            tree.refine(LogicalLocation(0, 0, 0, 0))

    def test_refine_rejects_max_level(self):
        tree = make_tree(num_levels=1)
        with pytest.raises(ValueError):
            tree.refine(LogicalLocation(0, 0, 0, 0))

    def test_refine_cascades_for_two_one(self):
        tree = make_tree(num_levels=3)
        tree.refine(LogicalLocation(0, 1, 1, 0))
        # Refining a level-1 child forces the level-0 neighbors to refine.
        refined = tree.refine(LogicalLocation(1, 2, 2, 0))
        assert len(refined) > 1
        tree.check_valid()

    def test_deep_cascade_keeps_tree_valid(self):
        tree = make_tree(nroot=(8, 8, 1), num_levels=4)
        # Refine one corner down to the finest level.
        loc = LogicalLocation(0, 0, 0, 0)
        for _ in range(3):
            tree.refine(loc)
            loc = next(iter(loc.children(2)))
        tree.check_valid()

    def test_refine_1d(self):
        tree = make_tree(ndim=1, nroot=(4, 1, 1))
        tree.refine(LogicalLocation(0, 2, 0, 0))
        tree.check_valid()
        assert len(tree) == 5


class TestNeighborLeaves:
    def test_same_level_neighbor(self):
        tree = make_tree()
        nbrs = tree.neighbor_leaves(LogicalLocation(0, 1, 1, 0), (1, 0, 0))
        assert nbrs == [(LogicalLocation(0, 2, 1, 0), 0)]

    def test_physical_boundary_no_neighbor(self):
        tree = make_tree(periodic=False)
        assert tree.neighbor_leaves(LogicalLocation(0, 0, 0, 0), (-1, 0, 0)) == []

    def test_finer_neighbors_across_face(self):
        tree = make_tree()
        tree.refine(LogicalLocation(0, 2, 1, 0))
        nbrs = tree.neighbor_leaves(LogicalLocation(0, 1, 1, 0), (1, 0, 0))
        assert len(nbrs) == 2
        assert all(delta == 1 for _, delta in nbrs)
        # Only the children on the -x face of the refined block touch us.
        assert {n.lx1 for n, _ in nbrs} == {4}

    def test_coarser_neighbor(self):
        tree = make_tree()
        tree.refine(LogicalLocation(0, 2, 1, 0))
        child = LogicalLocation(1, 4, 2, 0)
        nbrs = tree.neighbor_leaves(child, (-1, 0, 0))
        assert nbrs == [(LogicalLocation(0, 1, 1, 0), -1)]

    def test_corner_neighbor_finer(self):
        tree = make_tree()
        tree.refine(LogicalLocation(0, 2, 2, 0))
        nbrs = tree.neighbor_leaves(LogicalLocation(0, 1, 1, 0), (1, 1, 0))
        assert len(nbrs) == 1
        assert nbrs[0] == (LogicalLocation(1, 4, 4, 0), 1)

    def test_3d_face_finer_has_four(self):
        tree = make_tree(ndim=3, nroot=(2, 2, 2))
        tree.refine(LogicalLocation(0, 1, 0, 0))
        nbrs = tree.neighbor_leaves(LogicalLocation(0, 0, 0, 0), (1, 0, 0))
        assert len(nbrs) == 4


class TestDerefine:
    def test_cannot_derefine_without_all_children(self):
        tree = make_tree()
        parent = LogicalLocation(0, 1, 1, 0)
        tree.refine(parent)
        tree.refine(LogicalLocation(1, 2, 2, 0))
        assert not tree.can_derefine(parent)

    def test_derefine_restores_parent(self):
        tree = make_tree()
        parent = LogicalLocation(0, 1, 1, 0)
        tree.refine(parent)
        assert tree.can_derefine(parent)
        tree.derefine(parent)
        assert parent in tree
        assert len(tree) == 16
        tree.check_valid()

    def test_derefine_blocked_by_two_one(self):
        tree = make_tree(num_levels=3)
        a = LogicalLocation(0, 1, 1, 0)
        tree.refine(a)
        tree.refine(LogicalLocation(1, 2, 2, 0))  # cascades neighbors
        # The level-1 block adjacent to level-2 leaves cannot merge back.
        fine_parent = LogicalLocation(1, 2, 2, 0)
        assert fine_parent not in tree  # it was refined
        assert not tree.can_derefine(a)


class TestApplyFlags:
    def test_refine_wins_over_derefine(self):
        tree = make_tree()
        parent = LogicalLocation(0, 1, 1, 0)
        tree.refine(parent)
        children = list(parent.children(2))
        refined, derefined = tree.apply_flags(
            refine=[children[0]], derefine=children
        )
        assert children[0] in [r for r in refined]
        assert derefined == []

    def test_derefine_requires_unanimous_children(self):
        tree = make_tree()
        parent = LogicalLocation(0, 1, 1, 0)
        tree.refine(parent)
        children = list(parent.children(2))
        _, derefined = tree.apply_flags(refine=[], derefine=children[:3])
        assert derefined == []
        _, derefined = tree.apply_flags(refine=[], derefine=children)
        assert derefined == [parent]

    def test_flags_on_stale_locations_ignored(self):
        tree = make_tree()
        refined, derefined = tree.apply_flags(
            refine=[LogicalLocation(2, 0, 0, 0)],
            derefine=[LogicalLocation(1, 0, 0, 0)],
        )
        assert refined == [] and derefined == []

    def test_refine_beyond_max_level_ignored(self):
        tree = make_tree(num_levels=1)
        refined, _ = tree.apply_flags(
            refine=[LogicalLocation(0, 0, 0, 0)], derefine=[]
        )
        assert refined == []


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 10_000), min_size=1, max_size=12))
def test_random_refinement_keeps_tree_valid(seeds):
    """Property: any refine sequence preserves tiling and the 2:1 rule."""
    tree = make_tree(nroot=(4, 4, 1), num_levels=4)
    for seed in seeds:
        leaves = tree.leaves_sorted()
        loc = leaves[seed % len(leaves)]
        if loc.level < tree.max_level:
            tree.refine(loc)
    tree.check_valid()


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(0, 10_000), min_size=1, max_size=8),
    st.lists(st.integers(0, 10_000), min_size=1, max_size=8),
)
def test_random_flags_keep_tree_valid(refine_seeds, derefine_seeds):
    """Property: apply_flags never leaves the tree inconsistent."""
    tree = make_tree(nroot=(4, 4, 1), num_levels=3)
    for seed in refine_seeds:
        leaves = tree.leaves_sorted()
        loc = leaves[seed % len(leaves)]
        if loc.level < tree.max_level:
            tree.refine(loc)
    leaves = tree.leaves_sorted()
    derefine = [leaves[s % len(leaves)] for s in derefine_seeds]
    tree.apply_flags(refine=[], derefine=derefine)
    tree.check_valid()
