"""The sweep service: journaled queue, quotas, and the HTTP surface.

The E2E tests drive a real :class:`~repro.service.SweepServer` over real
sockets via :class:`~repro.service.ServerThread` (thread executor — the
1-core CI container serializes forked pools anyway, and thread mode
keeps Python 3.12's fork-with-threads warning out of the suite).
"""

import json
from pathlib import Path

import pytest

from repro.api import ConfigError, RunSpec, Simulation
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams
from repro.orchestration.artifacts import dumps_artifact, result_to_artifact
from repro.service import (
    CANCELLED,
    DONE,
    ERROR,
    PENDING,
    RUNNING,
    Forbidden,
    JobQueue,
    JournalError,
    QuotaExceeded,
    QuotaPolicy,
    RateLimited,
    ServerThread,
    SweepServer,
    TenantQuotas,
    TokenBucket,
    load_result,
)

BASE = SimulationParams(
    ndim=2, mesh_size=32, block_size=8, num_levels=2, num_scalars=1
)
CONFIG = ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=1)


def spec_for(mesh_size: int = 32, **overrides) -> RunSpec:
    import dataclasses

    params = dataclasses.replace(BASE, mesh_size=mesh_size)
    fields = dict(params=params, config=CONFIG, ncycles=2, warmup=1)
    fields.update(overrides)
    return RunSpec(**fields)


# --------------------------------------------------------------- queue


class TestJobQueue:
    def test_submit_creates_pending_job(self, tmp_path):
        q = JobQueue(tmp_path)
        job, created = q.submit(spec_for(), tenant="alice", priority=3)
        assert created
        assert job.status == PENDING
        assert job.key == spec_for().cache_key()
        assert (job.tenant, job.priority, job.submissions) == ("alice", 3, 1)

    def test_duplicate_submission_coalesces(self, tmp_path):
        q = JobQueue(tmp_path)
        first, _ = q.submit(spec_for(), tenant="alice")
        second, created = q.submit(spec_for(), tenant="bob", priority=5)
        assert not created
        assert second is first
        assert second.submissions == 2
        # A duplicate may raise priority, never lower it.
        assert second.priority == 5
        q.submit(spec_for(), priority=1)
        assert first.priority == 5

    def test_claim_order_priority_then_fifo(self, tmp_path):
        q = JobQueue(tmp_path)
        low, _ = q.submit(spec_for(32), priority=0)
        high, _ = q.submit(spec_for(40), priority=9)
        mid, _ = q.submit(spec_for(24), priority=0)
        assert q.claim().key == high.key
        assert q.claim().key == low.key  # FIFO among equal priorities
        assert q.claim().key == mid.key
        assert q.claim() is None

    def test_finish_and_error(self, tmp_path):
        q = JobQueue(tmp_path)
        q.submit(spec_for())
        job = q.claim()
        assert (job.status, job.attempts) == (RUNNING, 1)
        done = q.finish(job.key, DONE)
        assert done.status == DONE
        with pytest.raises(ValueError):
            q.finish(job.key, PENDING)

    def test_reactivation_of_failed_key(self, tmp_path):
        q = JobQueue(tmp_path)
        q.submit(spec_for())
        job = q.claim()
        q.finish(job.key, ERROR, error="RuntimeError: boom")
        again, created = q.submit(spec_for())
        assert created  # a new execution was scheduled
        assert again.status == PENDING
        assert again.error is None
        assert again.submissions == 2

    def test_cancel_semantics(self, tmp_path):
        q = JobQueue(tmp_path)
        q.submit(spec_for())
        job, changed = q.cancel(spec_for().cache_key())
        assert changed and job.status == CANCELLED
        # Terminal jobs stay untouched.
        job2, changed2 = q.cancel(job.key)
        assert not changed2 and job2.status == CANCELLED
        assert q.cancel("no-such-key") == (None, False)

    def test_cancelled_while_running_stays_cancelled(self, tmp_path):
        q = JobQueue(tmp_path)
        q.submit(spec_for())
        job = q.claim()
        q.cancel(job.key)
        late = q.finish(job.key, DONE)
        assert late.status == CANCELLED

    def test_journal_round_trip(self, tmp_path):
        q = JobQueue(tmp_path)
        q.submit(spec_for(32), tenant="alice", priority=2)
        q.submit(spec_for(40), tenant="bob")
        done = q.claim()
        q.finish(done.key, DONE)

        q2 = JobQueue(tmp_path)
        assert len(q2.jobs()) == 2
        clone = q2.get(done.key)
        assert clone.status == DONE
        assert clone.to_dict() == done.to_dict()

    def test_running_jobs_recover_to_pending(self, tmp_path):
        q = JobQueue(tmp_path)
        q.submit(spec_for())
        job = q.claim()
        assert job.status == RUNNING

        q2 = JobQueue(tmp_path)  # the "restarted server"
        assert q2.recovered == [job.key]
        assert q2.get(job.key).status == PENDING
        # The recovery itself is journaled: a third load sees pending.
        q3 = JobQueue(tmp_path)
        assert q3.recovered == []
        assert q3.get(job.key).status == PENDING

    def test_unknown_schema_rejected(self, tmp_path):
        (tmp_path / "queue.json").write_text(
            json.dumps({"schema_version": 999, "jobs": []})
        )
        with pytest.raises(JournalError, match="schema"):
            JobQueue(tmp_path)

    def test_inflight_counts_live_jobs_per_tenant(self, tmp_path):
        q = JobQueue(tmp_path)
        q.submit(spec_for(32), tenant="alice")
        q.submit(spec_for(40), tenant="alice")
        q.submit(spec_for(24), tenant="bob")
        job = q.claim()
        assert q.inflight("alice") == 2  # pending + running both count
        q.finish(job.key, DONE)
        assert q.inflight("alice") + q.inflight("bob") == 2
        counts = q.counts()
        assert counts.done == 1 and counts.pending == 2


# --------------------------------------------------------------- quota


class TestQuotas:
    def test_token_bucket_refills_at_rate(self):
        now = [0.0]
        bucket = TokenBucket(rate_per_s=2.0, burst=2, clock=lambda: now[0])
        assert bucket.take() and bucket.take()
        assert not bucket.take()
        assert bucket.retry_after_s() == pytest.approx(0.5)
        now[0] += 0.5  # one token refilled
        assert bucket.take()
        assert not bucket.take()

    def test_admit_blocked_tenant(self):
        quotas = TenantQuotas(QuotaPolicy(blocked=frozenset({"mallory"})))
        with pytest.raises(Forbidden) as err:
            quotas.admit("mallory", inflight=0)
        assert err.value.status == 403
        assert err.value.body["error"] == "forbidden"

    def test_admit_inflight_quota(self):
        quotas = TenantQuotas(QuotaPolicy(max_inflight=2))
        quotas.admit("alice", inflight=1)
        with pytest.raises(QuotaExceeded) as err:
            quotas.admit("alice", inflight=2)
        assert err.value.body["max_inflight"] == 2

    def test_admit_rate_limit_carries_retry_after(self):
        now = [0.0]
        quotas = TenantQuotas(
            QuotaPolicy(rate_per_s=1.0, burst=1), clock=lambda: now[0]
        )
        quotas.admit("alice", inflight=0)
        with pytest.raises(RateLimited) as err:
            quotas.admit("alice", inflight=0)
        assert err.value.status == 429
        assert err.value.retry_after_s == pytest.approx(1.0)
        assert err.value.body["retry_after_s"] == pytest.approx(1.0)
        # Buckets are per tenant: bob is unaffected by alice's burn.
        quotas.admit("bob", inflight=0)

    def test_blocked_never_consumes_a_token(self):
        quotas = TenantQuotas(
            QuotaPolicy(rate_per_s=1.0, burst=1, blocked=frozenset({"eve"}))
        )
        with pytest.raises(Forbidden):
            quotas.admit("eve", inflight=0)
        assert "eve" not in quotas._buckets

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            QuotaPolicy(rate_per_s=0)
        with pytest.raises(ValueError):
            QuotaPolicy(burst=0)
        with pytest.raises(ValueError):
            QuotaPolicy(max_inflight=0)


# ----------------------------------------------------------------- E2E


@pytest.fixture()
def mini_deck():
    return Path(__file__).parent.parent / "examples" / "mini.in"


class TestServiceEndToEnd:
    def test_submit_stream_result_lifecycle(self, tmp_path, mini_deck):
        """The acceptance path: submit over HTTP, stream progress,
        fetch a result byte-identical to a direct Simulation.run()."""
        deck = mini_deck.read_text()
        spec = RunSpec.from_deck(deck)
        direct = result_to_artifact(spec, Simulation(spec).run(), attempts=1)
        direct_bytes = dumps_artifact(direct).encode()

        with ServerThread(tmp_path, workers=2) as client:
            resp = client.submit({"deck": deck}, tenant="alice")
            assert resp.status == 202
            doc = resp.json
            assert doc["id"] == spec.cache_key()
            assert doc["created"] is True

            # Duplicate submission: same run id, no second execution.
            dup = client.submit({"deck": deck}, tenant="bob")
            assert dup.json["id"] == doc["id"]
            assert dup.json["created"] is False

            events = list(client.events(doc["id"]))
            progress = [e for e in events if "cycle" in e]
            assert len(progress) >= 1
            assert events[-1]["event"] == "end"
            assert events[-1]["status"] == "done"
            # Per-cycle counters come from MetricsRegistry snapshots.
            assert progress[-1]["measured"] == spec.ncycles
            assert progress[-1]["blocks"] > 0

            status = client.wait(doc["id"])
            assert status.json["status"] == "done"
            assert status.json["submissions"] == 2

            result = client.result(doc["id"])
            assert result.status == 200
            assert result.body == direct_bytes

            stats = client.stats().json
            assert stats["stats"]["executed"] == 1
            assert stats["stats"]["coalesced"] == 1
            assert stats["queue"]["done"] == 1

        # The no-HTTP escape hatch reads the same artifact.
        assert load_result(tmp_path, doc["id"]) == direct

    def test_restart_resumes_journal(self, tmp_path, mini_deck):
        """Kill-and-restart: a job left ``running`` by a dead server is
        re-dispatched by the next server on the same data directory."""
        spec = RunSpec.from_deck(mini_deck.read_text())
        q = JobQueue(tmp_path)
        q.submit(spec, tenant="alice")
        assert q.claim().status == RUNNING  # then the "server dies"
        del q

        with ServerThread(tmp_path, workers=1) as client:
            status = client.wait(spec.cache_key())
            assert status.json["status"] == "done"
            # One claim by the dead server, one by the survivor.
            assert status.json["attempts"] == 2

    def test_resubmit_after_restart_is_cache_hit(self, tmp_path, mini_deck):
        deck = mini_deck.read_text()
        spec = RunSpec.from_deck(deck)
        with ServerThread(tmp_path, workers=1) as client:
            client.submit({"deck": deck})
            client.wait(spec.cache_key())

        # Fresh server, fresh queue entry forced by clearing the journal
        # — the artifact cache alone resolves the job.
        (Path(tmp_path) / "queue.json").unlink()
        with ServerThread(tmp_path, workers=1) as client:
            client.submit({"deck": deck})
            status = client.wait(spec.cache_key())
            assert status.json["status"] == "done"
            assert status.json["cached"] is True
            stats = client.stats().json["stats"]
            assert stats["cache_hits"] == 1
            assert stats["executed"] == 0

    def test_invalid_spec_is_400(self, tmp_path):
        with ServerThread(tmp_path, workers=1) as client:
            resp = client.submit({"deck": "nonsense", "bogus_field": 1})
            assert resp.status == 400
            assert resp.json["error"] == "invalid_spec"
            resp = client.request("POST", "/runs", doc=None)
            assert resp.status == 400

    def test_unknown_run_is_404(self, tmp_path):
        with ServerThread(tmp_path, workers=1) as client:
            assert client.status("deadbeef").status == 404
            assert client.result("deadbeef").status == 404
            assert client.cancel("deadbeef").status == 404
            assert client.request("GET", "/nope").status == 404

    def test_result_before_finish_is_409(self, tmp_path, mini_deck):
        spec = RunSpec.from_deck(mini_deck.read_text())
        # No workers have run: seed the queue directly, then serve.
        JobQueue(tmp_path).submit(spec)
        server = SweepServer(tmp_path, execution="thread")
        # Route-level check without starting workers: the job is
        # pending, so /result must refuse with 409.
        import asyncio

        class _Writer:
            def __init__(self):
                self.chunks = []

            def write(self, data):
                self.chunks.append(data)

            async def drain(self):
                pass

        writer = _Writer()
        asyncio.run(server._handle_result(spec.cache_key(), writer))
        head = writer.chunks[0].decode("latin-1")
        assert head.startswith("HTTP/1.1 409")
        body = json.loads(writer.chunks[-1])
        assert body["error"] == "not_finished"

    def test_cancel_done_run_is_409(self, tmp_path, mini_deck):
        deck = mini_deck.read_text()
        spec = RunSpec.from_deck(deck)
        with ServerThread(tmp_path, workers=1) as client:
            client.submit({"deck": deck})
            client.wait(spec.cache_key())
            resp = client.cancel(spec.cache_key())
            assert resp.status == 409
            assert resp.json["error"] == "already_finished"

    def test_rate_limited_submission_is_429(self, tmp_path, mini_deck):
        quotas = TenantQuotas(QuotaPolicy(rate_per_s=0.001, burst=1))
        deck = mini_deck.read_text()
        with ServerThread(tmp_path, workers=1, quotas=quotas) as client:
            assert client.submit({"deck": deck}, tenant="alice").status == 202
            # Different spec -> no dedup; alice's bucket is now empty.
            resp = client.submit({"deck": deck, "ncycles": 5}, tenant="alice")
            assert resp.status == 429
            assert resp.json["error"] == "rate_limited"
            assert resp.json["retry_after_s"] > 0
            assert float(resp.headers["retry-after"]) > 0
            assert client.stats().json["stats"]["rejected"] >= 1
            # Another tenant is unaffected.
            other = client.submit({"deck": deck, "ncycles": 5}, tenant="bob")
            assert other.status == 202

    def test_blocked_tenant_is_403(self, tmp_path, mini_deck):
        quotas = TenantQuotas(QuotaPolicy(blocked=frozenset({"mallory"})))
        with ServerThread(tmp_path, workers=1, quotas=quotas) as client:
            resp = client.submit(
                {"deck": mini_deck.read_text()}, tenant="mallory"
            )
            assert resp.status == 403
            assert resp.json["error"] == "forbidden"

    def test_inflight_quota_is_403(self, tmp_path, mini_deck):
        quotas = TenantQuotas(QuotaPolicy(max_inflight=1))
        deck = mini_deck.read_text()
        # Pre-load one live job so the next submission breaches the cap
        # regardless of worker timing.
        JobQueue(tmp_path).submit(RunSpec.from_deck(deck), tenant="alice")
        with ServerThread(tmp_path, workers=1, quotas=quotas) as client:
            resp = client.submit(
                RunSpec.from_deck(deck, ncycles=7).to_json(), tenant="alice"
            )
            # The preloaded job may already have finished on a fast
            # machine; accept either the quota rejection or admission.
            if resp.status == 403:
                assert resp.json["error"] == "quota_exceeded"

    def test_unrunnable_journal_entry_becomes_error(self, tmp_path):
        """A journaled deck that no longer parses (schema drift, manual
        edit) must settle as ``error``, not wedge a worker."""
        q = JobQueue(tmp_path)
        job, _ = q.submit(spec_for())
        job.deck = "<campaign>\nncycles = 0\n"
        q._persist()
        del q
        with ServerThread(tmp_path, workers=1) as client:
            status = client.wait(job.key)
            assert status.json["status"] == "error"
            assert "ConfigError" in status.json["error"]
            # No artifact was ever produced for it.
            resp = client.result(job.key)
            assert resp.status == 409
            assert resp.json["error"] == "no_result"

    def test_healthz_and_stats(self, tmp_path):
        with ServerThread(tmp_path, workers=1) as client:
            assert client.request("GET", "/healthz").json == {"ok": True}
            stats = client.stats().json
            assert stats["workers"] == 1
            assert stats["queue"]["pending"] == 0
            # Method guards.
            assert client.request("GET", "/runs").status == 405
            assert (
                client.request("PUT", "/runs/abc").status == 405
            )


class _FakeWriter:
    """Collects response bytes from a handler without a socket."""

    def __init__(self):
        self.chunks = []

    def write(self, data):
        self.chunks.append(data)

    async def drain(self):
        pass

    def head(self) -> str:
        return self.chunks[0].decode("latin-1")

    def body(self) -> dict:
        return json.loads(self.chunks[-1])


class TestServerInternals:
    """Worker and routing paths exercised without a live socket."""

    def test_execution_failure_becomes_error_artifact(
        self, tmp_path, monkeypatch
    ):
        """execute_point returning an error artifact must settle the job
        as ``error`` and serve the artifact from errors/."""
        import asyncio

        from repro.orchestration.artifacts import error_artifact
        from repro.service import server as server_mod

        spec = spec_for()
        monkeypatch.setattr(
            server_mod,
            "execute_point",
            lambda task: error_artifact(
                task.spec, RuntimeError("boom"), attempts=1
            ),
        )
        srv = SweepServer(tmp_path, execution="thread")
        job, _ = srv.queue.submit(spec)

        async def drive():
            await srv.start()
            try:
                claimed = srv.queue.claim()
                await srv._run_job(claimed)
            finally:
                await srv.stop()

        asyncio.run(drive())
        settled = srv.queue.get(job.key)
        assert settled.status == "error"
        assert "RuntimeError" in settled.error
        assert srv.cache.error_path(job.key).is_file()
        # load_result falls through to the error artifact.
        doc = load_result(tmp_path, job.key)
        assert doc["status"] == "error"
        # /result serves the error artifact bytes.
        writer = _FakeWriter()
        asyncio.run(srv._handle_result(job.key, writer))
        assert writer.head().startswith("HTTP/1.1 200")

    def test_pool_death_records_error_and_rebuilds_executor(
        self, tmp_path, monkeypatch
    ):
        """An exception from the executor itself (a SIGKILLed pool
        worker) must become a job error, never an unhandled crash."""
        import asyncio

        from repro.service import server as server_mod

        def die(task):
            raise RuntimeError("pool worker vanished")

        monkeypatch.setattr(server_mod, "execute_point", die)
        srv = SweepServer(tmp_path, execution="thread")
        job, _ = srv.queue.submit(spec_for())

        async def drive():
            await srv.start()
            try:
                before = srv._executor
                await srv._run_job(srv.queue.claim())
                assert srv._executor is not before  # rebuilt
            finally:
                await srv.stop()

        asyncio.run(drive())
        settled = srv.queue.get(job.key)
        assert settled.status == "error"
        assert "pool worker vanished" in settled.error
        assert srv.stats["failed"] == 1

    def test_cancelled_while_running_job_is_not_overwritten(self, tmp_path):
        import asyncio

        srv = SweepServer(tmp_path, execution="thread")
        job, _ = srv.queue.submit(spec_for())
        claimed = srv.queue.claim()
        srv.queue.cancel(claimed.key)

        async def drive():
            await srv.start()
            try:
                await srv._run_job(claimed)
            finally:
                await srv.stop()

        asyncio.run(drive())
        # The late result is cached for the next submission...
        assert srv.cache.has(job.key)
        # ...but the entry's fate stays cancelled.
        assert srv.queue.get(job.key).status == CANCELLED

    def test_cancel_pending_job_over_handler(self, tmp_path):
        import asyncio

        srv = SweepServer(tmp_path, execution="thread")
        job, _ = srv.queue.submit(spec_for())
        writer = _FakeWriter()
        asyncio.run(srv._handle_cancel(job.key, writer))
        assert writer.head().startswith("HTTP/1.1 200")
        assert writer.body()["status"] == CANCELLED
        assert srv.stats["cancelled"] == 1

    def test_events_for_unknown_run_is_404(self, tmp_path):
        with ServerThread(tmp_path, workers=1) as client:
            with pytest.raises(ConnectionError, match="404"):
                list(client.events("deadbeef"))

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            SweepServer(tmp_path, workers=0)
        with pytest.raises(ValueError, match="execution"):
            SweepServer(tmp_path, execution="carrier-pigeon")


class TestHttpFraming:
    """Wire-level robustness: garbage in, structured 400 out."""

    @staticmethod
    def _raw(server_client, payload: bytes) -> bytes:
        import socket

        with socket.create_connection(
            (server_client.host, server_client.port), timeout=10
        ) as sock:
            sock.sendall(payload)
            sock.shutdown(socket.SHUT_WR)
            chunks = []
            while True:
                data = sock.recv(65536)
                if not data:
                    return b"".join(chunks)
                chunks.append(data)

    def test_malformed_request_line_is_400(self, tmp_path):
        with ServerThread(tmp_path, workers=1) as client:
            resp = self._raw(client, b"what even is this\r\n\r\n")
            assert resp.startswith(b"HTTP/1.1 400")

    def test_bad_content_length_is_400(self, tmp_path):
        with ServerThread(tmp_path, workers=1) as client:
            resp = self._raw(
                client,
                b"POST /runs HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
            )
            assert resp.startswith(b"HTTP/1.1 400")

    def test_oversized_body_is_refused(self, tmp_path):
        with ServerThread(tmp_path, workers=1) as client:
            resp = self._raw(
                client,
                b"POST /runs HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
            )
            assert resp.startswith(b"HTTP/1.1 400")
            assert b"exceeds" in resp

    def test_empty_connection_is_ignored(self, tmp_path):
        with ServerThread(tmp_path, workers=1) as client:
            assert self._raw(client, b"") == b""
            # The server is still healthy afterwards.
            assert client.request("GET", "/healthz").status == 200

    def test_non_object_body_is_400(self, tmp_path):
        with ServerThread(tmp_path, workers=1) as client:
            resp = client.request("POST", "/runs", doc=[1, 2, 3])
            assert resp.status == 400
            assert "object" in resp.json["message"]

    def test_non_integer_priority_is_400(self, tmp_path):
        with ServerThread(tmp_path, workers=1) as client:
            resp = client.request(
                "POST", "/runs", doc={"deck": "x", "priority": "high"}
            )
            assert resp.status == 400
            assert "priority" in resp.json["message"]

    def test_unknown_subresource_is_404(self, tmp_path):
        with ServerThread(tmp_path, workers=1) as client:
            assert client.request("GET", "/runs/x/bogus").status == 404
            assert client.request("GET", "/runs/").status == 404
