"""Campaign orchestration: artifacts, cache/resume, isolation, parallelism."""

import json
import os
import signal

import pytest

from repro.api import RunSpec, Simulation
from repro.core.characterize import comm_to_comp_ratio, kernel_fraction, metric
from repro.core.report import render_campaign_summary, render_campaign_sweep
from repro.core.sweeps import axis_specs, grid_specs
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams
from repro.orchestration import (
    PointTask,
    PointTimeout,
    RunCache,
    execute_point,
    load_campaign,
    result_to_artifact,
    run_campaign,
)

BASE = SimulationParams(
    ndim=2, mesh_size=32, block_size=8, num_levels=2, num_scalars=1
)
CONFIG = ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=1)


def mini_specs():
    return grid_specs(BASE, CONFIG, (32, 64), (8, 16), ncycles=2, warmup=1)


def artifact_bytes(campaign_dir):
    points = campaign_dir / "points"
    return {p.name: p.read_bytes() for p in sorted(points.glob("*.json"))}


class TestArtifacts:
    def test_schema_fields(self):
        spec = RunSpec(params=BASE, config=CONFIG, ncycles=2, warmup=1, label="x")
        art = result_to_artifact(spec, Simulation(spec).run())
        assert art["status"] == "ok"
        assert art["schema_version"] == 6
        assert art["cache_key"] == spec.cache_key()
        assert art["fom"] > 0
        assert art["timings"]["wall_seconds"] > 0
        assert "CalculateFluxes" in art["timings"]["kernels"]
        assert art["communication"]["mpi_counters"]["allreduce_calls"] > 0
        assert art["memory"]["device_peak_bytes"] > 0
        assert art["blocks"]["final"] > 0
        # the artifact is JSON-clean
        json.dumps(art)

    def test_characterize_helpers_accept_artifacts(self):
        """report/characterize consume persisted artifacts, not just
        in-memory RunResults."""
        spec = RunSpec(params=BASE, config=CONFIG, ncycles=2, warmup=1)
        result = Simulation(spec).run()
        art = result_to_artifact(spec, result)
        assert kernel_fraction(art) == pytest.approx(kernel_fraction(result))
        assert comm_to_comp_ratio(art) == pytest.approx(
            comm_to_comp_ratio(result)
        )
        assert metric(art, "fom") == result.fom


class TestCampaignRun:
    def test_one_artifact_per_point(self, tmp_path):
        summary = run_campaign(mini_specs(), tmp_path, workers=1)
        assert summary.executed == 4
        assert summary.cached == summary.failed == 0
        assert len(artifact_bytes(tmp_path)) == 4
        assert (tmp_path / "manifest.json").is_file()

    def test_outcomes_in_spec_order(self, tmp_path):
        summary = run_campaign(mini_specs(), tmp_path, workers=1)
        assert [o.label for o in summary.outcomes] == [
            s.label for s in mini_specs()
        ]

    def test_duplicate_specs_run_once(self, tmp_path):
        specs = mini_specs()
        summary = run_campaign(specs + specs, tmp_path, workers=1)
        assert len(summary.outcomes) == 4
        assert summary.executed == 4

    def test_parallel_matches_serial_bitwise(self, tmp_path):
        d1, d2 = tmp_path / "serial", tmp_path / "pool"
        run_campaign(mini_specs(), d1, workers=1)
        run_campaign(mini_specs(), d2, workers=2)
        assert artifact_bytes(d1) == artifact_bytes(d2)


class TestResume:
    def test_full_rerun_all_cached(self, tmp_path):
        run_campaign(mini_specs(), tmp_path, workers=1)
        before = artifact_bytes(tmp_path)
        summary = run_campaign(mini_specs(), tmp_path, workers=1)
        assert summary.cached == 4 and summary.executed == 0
        assert artifact_bytes(tmp_path) == before

    def test_deleted_point_reexecutes_exactly_that_point(self, tmp_path):
        """Kill-one-artifact resume: one point re-runs, bitwise-identical."""
        run_campaign(mini_specs(), tmp_path, workers=1)
        before = artifact_bytes(tmp_path)
        victim = sorted((tmp_path / "points").glob("*.json"))[1]
        victim.unlink()
        summary = run_campaign(mini_specs(), tmp_path, workers=1)
        assert summary.executed == 1
        assert summary.cached == 3
        assert artifact_bytes(tmp_path) == before

    def test_code_version_participates_in_key(self, tmp_path, monkeypatch):
        spec = mini_specs()[0]
        key = spec.cache_key()
        import repro
        import repro.api as api
        monkeypatch.setattr(api, "__version__", repro.__version__ + ".post1")
        assert spec.cache_key() != key


class TestFailureIsolation:
    def bad_spec(self):
        # mesh not divisible by block: fails inside the driver, not at
        # spec construction — exactly the class of per-point crash the
        # runner must survive.
        return RunSpec(
            params=SimulationParams(
                ndim=2, mesh_size=30, block_size=8, num_levels=2, num_scalars=1
            ),
            config=CONFIG,
            ncycles=2,
            warmup=0,
            label="broken",
        )

    def test_crash_becomes_error_artifact(self, tmp_path):
        specs = mini_specs() + [self.bad_spec()]
        summary = run_campaign(specs, tmp_path, workers=1, retries=2)
        assert summary.executed == 4
        assert summary.failed == 1
        assert len(artifact_bytes(tmp_path)) == 4  # errors are not cached
        errors = list((tmp_path / "errors").glob("*.json"))
        assert len(errors) == 1
        err = json.loads(errors[0].read_text())
        assert err["status"] == "error"
        assert err["attempts"] == 3  # bounded retry: 1 + 2 retries
        assert "traceback" in err["error"]
        assert err["label"] == "broken"

    def test_failed_points_retry_on_resume(self, tmp_path):
        specs = mini_specs() + [self.bad_spec()]
        run_campaign(specs, tmp_path, workers=1, retries=0)
        summary = run_campaign(specs, tmp_path, workers=1, retries=0)
        assert summary.cached == 4
        assert summary.failed == 1  # retried (and failed) again, not cached

    def test_worker_pool_isolates_failures(self, tmp_path):
        specs = mini_specs() + [self.bad_spec()]
        summary = run_campaign(specs, tmp_path, workers=2, retries=0)
        assert summary.executed == 4 and summary.failed == 1

    @pytest.mark.skipif(
        not hasattr(signal, "setitimer"), reason="needs POSIX timers"
    )
    def test_timeout_becomes_error_artifact(self, tmp_path):
        slow = RunSpec(
            params=SimulationParams(
                ndim=2, mesh_size=128, block_size=8, num_levels=3, num_scalars=8
            ),
            config=CONFIG,
            ncycles=8,
            warmup=2,
            label="slow",
        )
        artifact = execute_point(
            PointTask(spec=slow, retries=0, timeout_s=0.01)
        )
        assert artifact["status"] == "error"
        assert artifact["error"]["type"] == "PointTimeout"

    def test_execute_point_never_raises(self):
        artifact = execute_point(PointTask(spec=self.bad_spec(), retries=0))
        assert artifact["status"] == "error"


class TestRunCache:
    def test_store_routes_by_status(self, tmp_path):
        cache = RunCache(tmp_path)
        ok = {"cache_key": "k1", "status": "ok"}
        bad = {"cache_key": "k1", "status": "error"}
        cache.store(bad)
        assert not cache.has("k1")
        cache.store(ok)
        assert cache.has("k1")
        assert not cache.error_path("k1").is_file()  # success clears error
        assert cache.load("k1")["status"] == "ok"
        # a later failure never shadows the cached success
        cache.store(bad)
        assert cache.load("k1")["status"] == "ok"

    def test_missing_key(self, tmp_path):
        assert RunCache(tmp_path).load("nope") is None


class TestCampaignReports:
    def test_summary_renders_all_points(self, tmp_path):
        run_campaign(mini_specs(), tmp_path, workers=1)
        text = render_campaign_summary(load_campaign(tmp_path))
        for spec in mini_specs():
            assert spec.label in text
        assert "FOM" in text

    def test_sweep_rendering_groups_series(self, tmp_path):
        specs = axis_specs(
            BASE, {"GPU-1R": CONFIG}, "mesh", (32, 64), ncycles=2, warmup=1
        )
        run_campaign(specs, tmp_path, workers=1)
        text = render_campaign_sweep(
            load_campaign(tmp_path), "mesh size", "FOM vs mesh"
        )
        assert "GPU-1R" in text
        assert "32" in text and "64" in text

    def test_load_campaign_follows_manifest_order(self, tmp_path):
        run_campaign(mini_specs(), tmp_path, workers=1)
        labels = [a["label"] for a in load_campaign(tmp_path)]
        assert labels == [s.label for s in mini_specs()]


def _hammer_worker(root, deck, rounds, barrier, worker_id):
    """One cache-hammer process: execute the same point and store it,
    writing the bytes it produced to a per-worker file for the parent's
    byte-identity check."""
    from pathlib import Path

    from repro.orchestration.artifacts import dumps_artifact

    spec = RunSpec.from_deck(deck)
    cache = RunCache(root)
    for r in range(rounds):
        barrier.wait()  # line all workers up on every round
        artifact = execute_point(PointTask(spec=spec))
        cache.store(artifact)
        Path(root, f"worker{worker_id}_round{r}.bytes").write_bytes(
            dumps_artifact(artifact).encode()
        )


class TestConcurrentCache:
    def test_same_key_hammer_is_single_canonical_file(self, tmp_path):
        """Several workers resolving one cache_key concurrently must
        leave exactly one canonical artifact, byte-identical across
        every producer — the property the service's dedup and the
        campaign resume path both stand on."""
        import multiprocessing

        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        spec = RunSpec(
            params=BASE, config=CONFIG, ncycles=2, warmup=1, label="hammer"
        )
        workers, rounds = 3, 2
        barrier = ctx.Barrier(workers)
        procs = [
            ctx.Process(
                target=_hammer_worker,
                args=(str(tmp_path), spec.to_deck(), rounds, barrier, i),
            )
            for i in range(workers)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=300)
            assert p.exitcode == 0

        cache = RunCache(tmp_path)
        key = spec.cache_key()
        # One canonical file, no torn tmp litter.
        points = list((tmp_path / "points").iterdir())
        assert [p.name for p in points] == [f"{key}.json"]
        canonical = cache.path(key).read_bytes()
        # Every producer emitted exactly the canonical bytes.
        produced = sorted(tmp_path.glob("worker*_round*.bytes"))
        assert len(produced) == workers * rounds
        for path in produced:
            assert path.read_bytes() == canonical, path.name
        # And the survivor parses and round-trips.
        assert cache.load(key)["cache_key"] == key


@pytest.mark.skipif(
    len(os.sched_getaffinity(0)) < 2 if hasattr(os, "sched_getaffinity")
    else (os.cpu_count() or 1) < 2,
    reason="needs >= 2 usable CPUs for a wall-clock speedup",
)
class TestSpeedup:
    def test_two_workers_beat_one(self, tmp_path):
        """The acceptance bar: 2x2 mini sweep, 2 workers >= 1.5x faster."""
        import time

        base = SimulationParams(
            ndim=3, mesh_size=80, block_size=8, num_levels=2, num_scalars=8
        )
        specs = grid_specs(base, CONFIG, (80, 96), (8, 16), ncycles=2, warmup=1)
        t0 = time.perf_counter()
        run_campaign(specs, tmp_path / "w1", workers=1)
        serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        run_campaign(specs, tmp_path / "w2", workers=2)
        parallel = time.perf_counter() - t0
        assert serial / parallel >= 1.5, (
            f"2-worker speedup only {serial / parallel:.2f}x "
            f"({serial:.2f}s -> {parallel:.2f}s)"
        )
