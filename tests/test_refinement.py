"""Tests for refinement tagging and the derefinement gap rule."""

import numpy as np
import pytest

from repro.mesh.block import FieldSpec
from repro.mesh.mesh import Mesh, MeshGeometry
from repro.mesh.refinement import (
    AmrFlag,
    FirstDerivativeCriterion,
    RefinementPolicy,
    SecondDerivativeCriterion,
    SphericalWavefrontTagger,
)


def make_mesh(levels=3):
    geo = MeshGeometry(
        ndim=2,
        mesh_size=(32, 32, 1),
        block_size=(8, 8, 1),
        ng=2,
        num_levels=levels,
    )
    return Mesh(geo, field_specs=[FieldSpec("q", 1)])


class TestFirstDerivative:
    def test_flat_field_derefines(self):
        mesh = make_mesh()
        for blk in mesh.block_list:
            blk.fields["q"][...] = 1.0
        crit = FirstDerivativeCriterion("q")
        assert crit.tag(mesh.block_list[0], cycle=0) == AmrFlag.DEREFINE

    def test_steep_gradient_refines(self):
        mesh = make_mesh()
        blk = mesh.block_list[0]
        blk.fields["q"][...] = 1.0
        # Sharp jump in the middle of the block.
        blk.fields["q"][:, :, :, 6:] = 10.0
        crit = FirstDerivativeCriterion("q", refine_tol=0.3)
        assert crit.tag(blk, cycle=0) == AmrFlag.REFINE

    def test_moderate_gradient_keeps_level(self):
        mesh = make_mesh()
        blk = mesh.block_list[0]
        x = blk.cell_centers(0)
        blk.fields["q"][...] = 10.0 + 0.7 * x[None, None, None, :]
        crit = FirstDerivativeCriterion("q", refine_tol=0.5, derefine_tol=1e-5)
        assert crit.tag(blk, cycle=0) == AmrFlag.SAME

    def test_indicator_scales_with_gradient(self):
        mesh = make_mesh()
        blk = mesh.block_list[0]
        crit = FirstDerivativeCriterion("q")
        x = blk.cell_centers(0)
        blk.fields["q"][...] = 100.0 + 1.0 * x[None, None, None, :]
        weak = crit.indicator(blk)
        blk.fields["q"][...] = 100.0 + 50.0 * x[None, None, None, :]
        strong = crit.indicator(blk)
        assert strong > weak


class TestSecondDerivative:
    def test_flat_field_derefines(self):
        mesh = make_mesh()
        blk = mesh.block_list[0]
        blk.fields["q"][...] = 2.0
        crit = SecondDerivativeCriterion("q")
        assert crit.tag(blk, 0) == AmrFlag.DEREFINE

    def test_linear_ramp_has_no_curvature(self):
        mesh = make_mesh()
        blk = mesh.block_list[0]
        x = blk.cell_centers(0)
        blk.fields["q"][...] = 1.0 + 20.0 * x[None, None, None, :]
        crit = SecondDerivativeCriterion("q")
        # A steep but linear ramp trips the first-derivative check but not
        # the curvature-based one.
        assert crit.indicator(blk) < 0.1
        first = FirstDerivativeCriterion("q", refine_tol=0.3)
        assert first.tag(blk, 0) == AmrFlag.REFINE

    def test_kink_refines(self):
        mesh = make_mesh()
        blk = mesh.block_list[0]
        blk.fields["q"][...] = 1.0
        blk.fields["q"][:, :, :, 6:] = 4.0  # step => strong curvature
        crit = SecondDerivativeCriterion("q", refine_tol=0.5)
        assert crit.tag(blk, 0) == AmrFlag.REFINE

    def test_hysteresis_band_keeps_level(self):
        mesh = make_mesh()
        blk = mesh.block_list[0]
        x = blk.cell_centers(0)
        blk.fields["q"][...] = 1.0 + np.sin(2 * np.pi * x)[None, None, None, :]
        crit = SecondDerivativeCriterion("q", refine_tol=0.9, derefine_tol=1e-4)
        assert crit.tag(blk, 0) == AmrFlag.SAME


class TestWavefront:
    def test_block_on_shell_refines(self):
        mesh = make_mesh()
        tagger = SphericalWavefrontTagger(
            center=(0.5, 0.5, 0.0), r0=0.3, speed=0.0, width=0.05
        )
        # The block containing (0.8, 0.5) sits on the r=0.3 shell.
        on_shell = [
            b
            for b in mesh.block_list
            if b.bounds[0][0] <= 0.8 <= b.bounds[0][1]
            and b.bounds[1][0] <= 0.5 <= b.bounds[1][1]
        ][0]
        assert tagger.tag(on_shell, cycle=0) == AmrFlag.REFINE

    def test_far_block_derefines(self):
        mesh = make_mesh()
        tagger = SphericalWavefrontTagger(
            center=(0.0, 0.0, 0.0), r0=0.1, speed=0.0, width=0.02
        )
        far = mesh.block_list[-1]
        assert tagger.tag(far, cycle=0) == AmrFlag.DEREFINE

    def test_radius_advances_and_wraps(self):
        tagger = SphericalWavefrontTagger(r0=0.1, speed=0.05, r_max=0.3)
        assert tagger.radius(1) == pytest.approx(0.15)
        assert tagger.radius(4) == pytest.approx(0.1)  # wrapped

    def test_shell_moves_refinement_region(self):
        mesh = make_mesh()
        tagger = SphericalWavefrontTagger(
            center=(0.0, 0.0, 0.0), r0=0.2, speed=0.2, width=0.05, r_max=1.4
        )
        flags0 = [tagger.tag(b, 0) for b in mesh.block_list]
        flags3 = [tagger.tag(b, 3) for b in mesh.block_list]
        assert flags0 != flags3


class TestPolicy:
    def test_derefine_gap_blocks_young_blocks(self):
        mesh = make_mesh()
        for blk in mesh.block_list:
            blk.fields["q"][...] = 1.0
        policy = RefinementPolicy(
            FirstDerivativeCriterion("q"), derefine_gap=10
        )
        # Refine one block so there is something to derefine.
        mesh.remesh(refine=[mesh.block_list[0].lloc], derefine=[])
        for blk in mesh.block_list:
            blk.fields["q"][...] = 1.0
        refine, derefine, checked = policy.collect_flags(mesh, cycle=0)
        assert checked == mesh.num_blocks
        assert derefine == []  # all blocks too young

        refine, derefine, _ = policy.collect_flags(mesh, cycle=10)
        assert len(derefine) == 4  # the four level-1 children may merge

    def test_level0_blocks_never_derefine(self):
        mesh = make_mesh()
        for blk in mesh.block_list:
            blk.fields["q"][...] = 1.0
        policy = RefinementPolicy(
            FirstDerivativeCriterion("q"), derefine_gap=0
        )
        _, derefine, _ = policy.collect_flags(mesh, cycle=100)
        assert derefine == []

    def test_refine_not_requested_beyond_max_level(self):
        mesh = make_mesh(levels=1)
        blk = mesh.block_list[0]
        blk.fields["q"][...] = 1.0
        blk.fields["q"][:, :, :, 6:] = 100.0
        policy = RefinementPolicy(FirstDerivativeCriterion("q"))
        refine, _, _ = policy.collect_flags(mesh, cycle=0)
        assert refine == []

    def test_forget_stale_drops_dead_uids(self):
        mesh = make_mesh()
        for blk in mesh.block_list:
            blk.fields["q"][...] = 1.0
        policy = RefinementPolicy(FirstDerivativeCriterion("q"))
        policy.collect_flags(mesh, cycle=0)
        n_before = len(policy._birth_cycle)
        mesh.remesh(refine=[mesh.block_list[0].lloc], derefine=[])
        policy.forget_stale(mesh)
        # One block died, four were born but not yet noted.
        assert len(policy._birth_cycle) == n_before - 1
