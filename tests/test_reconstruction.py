"""Tests for WENO5 and PLM reconstruction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.solver.reconstruction import (
    face_states,
    plm_states_along,
    weno5_states_along,
)


def faces_of(fn, q, ng, nxa):
    return fn(q[None, None, None, :], ng, nxa)


class TestWeno5:
    def test_constant_is_exact(self):
        q = np.full(16, 3.7)
        ql, qr = faces_of(weno5_states_along, q, 4, 8)
        assert ql.shape[-1] == 9
        np.testing.assert_allclose(ql, 3.7, atol=1e-13)
        np.testing.assert_allclose(qr, 3.7, atol=1e-13)

    def test_linear_is_exact(self):
        # q_i = i on cell centers; face j between cells ng+j-1 and ng+j has
        # coordinate ng + j - 0.5.
        q = np.arange(16.0)
        ql, qr = faces_of(weno5_states_along, q, 4, 8)
        expected = 4.0 + np.arange(9.0) - 0.5
        np.testing.assert_allclose(ql[0, 0, 0], expected, atol=1e-11)
        np.testing.assert_allclose(qr[0, 0, 0], expected, atol=1e-11)

    def test_parabola_is_exact(self):
        # Finite-volume WENO5 maps *cell averages* to face point values.
        # Cell average of x^2/2 over [x_i - 1/2, x_i + 1/2] is
        # x_i^2/2 + 1/24, so feeding averages must recover the point values.
        x = np.arange(20.0)
        q = 0.5 * x * x + 1.0 / 24.0
        ql, qr = faces_of(weno5_states_along, q, 4, 12)
        xf = 4.0 + np.arange(13.0) - 0.5
        np.testing.assert_allclose(ql[0, 0, 0], 0.5 * xf * xf, atol=1e-9)
        np.testing.assert_allclose(qr[0, 0, 0], 0.5 * xf * xf, atol=1e-9)

    def test_no_oscillation_at_step(self):
        q = np.where(np.arange(20) < 10, 0.0, 1.0).astype(float)
        ql, qr = faces_of(weno5_states_along, q, 4, 12)
        assert ql.min() >= -1e-6 and ql.max() <= 1.0 + 1e-6
        assert qr.min() >= -1e-6 and qr.max() <= 1.0 + 1e-6

    def test_rejects_insufficient_ghosts(self):
        with pytest.raises(ValueError):
            faces_of(weno5_states_along, np.ones(12), 2, 8)

    def test_left_right_symmetry(self):
        # Mirroring the data must swap and mirror the states.
        rng = np.random.default_rng(0)
        q = rng.normal(size=18)
        ql, qr = faces_of(weno5_states_along, q, 4, 10)
        qml, qmr = faces_of(weno5_states_along, q[::-1].copy(), 4, 10)
        np.testing.assert_allclose(ql[0, 0, 0], qmr[0, 0, 0, ::-1], atol=1e-12)
        np.testing.assert_allclose(qr[0, 0, 0], qml[0, 0, 0, ::-1], atol=1e-12)


class TestPlm:
    def test_constant_is_exact(self):
        q = np.full(12, -2.5)
        ql, qr = faces_of(plm_states_along, q, 2, 8)
        np.testing.assert_allclose(ql, -2.5)
        np.testing.assert_allclose(qr, -2.5)

    def test_linear_is_exact(self):
        q = 3.0 * np.arange(12.0)
        ql, qr = faces_of(plm_states_along, q, 2, 8)
        expected = 3.0 * (2.0 + np.arange(9.0) - 0.5)
        np.testing.assert_allclose(ql[0, 0, 0], expected)
        np.testing.assert_allclose(qr[0, 0, 0], expected)

    def test_monotone_at_step(self):
        q = np.where(np.arange(12) < 6, 0.0, 1.0).astype(float)
        ql, qr = faces_of(plm_states_along, q, 2, 8)
        assert ql.min() >= 0.0 and ql.max() <= 1.0
        assert qr.min() >= 0.0 and qr.max() <= 1.0

    def test_rejects_insufficient_ghosts(self):
        with pytest.raises(ValueError):
            faces_of(plm_states_along, np.ones(10), 1, 8)


class TestFaceStates:
    def test_moveaxis_matches_direct(self):
        rng = np.random.default_rng(1)
        q = rng.normal(size=(2, 1, 4, 16))
        ql_d, _ = weno5_states_along(q, 4, 8)
        ql_m, _ = face_states(q, axis=3, ng=4, nxa=8, scheme="weno5")
        np.testing.assert_array_equal(ql_d, ql_m)

    def test_reconstruction_along_middle_axis(self):
        rng = np.random.default_rng(2)
        q = rng.normal(size=(1, 1, 16, 4))
        ql, qr = face_states(q, axis=2, ng=4, nxa=8, scheme="weno5")
        assert ql.shape == (1, 1, 9, 4)
        # Must equal transposed reconstruction along the last axis.
        qt = np.swapaxes(q, 2, 3)
        qlt, _ = face_states(qt, axis=3, ng=4, nxa=8, scheme="weno5")
        np.testing.assert_allclose(ql, np.swapaxes(qlt, 2, 3))

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown reconstruction"):
            face_states(np.ones((1, 1, 1, 16)), 3, 4, 8, scheme="ppm")


@settings(max_examples=30, deadline=None)
@given(
    hnp.arrays(np.float64, 16, elements=st.floats(-10, 10, allow_nan=False))
)
def test_weno5_states_bounded_by_stencil(q):
    """Property: WENO5 face values stay within the global data range
    (convex combination of interpolants of bounded data, up to eps slack)."""
    ql, qr = faces_of(weno5_states_along, q, 4, 8)
    lo, hi = q.min(), q.max()
    span = max(hi - lo, 1.0)
    assert ql.min() >= lo - 0.6 * span
    assert ql.max() <= hi + 0.6 * span


@settings(max_examples=30, deadline=None)
@given(
    hnp.arrays(np.float64, 12, elements=st.floats(-10, 10, allow_nan=False))
)
def test_plm_states_within_data_range(q):
    """Property: minmod-limited PLM never creates new extrema."""
    ql, qr = faces_of(plm_states_along, q, 2, 8)
    assert ql.min() >= q.min() - 1e-12
    assert ql.max() <= q.max() + 1e-12
    assert qr.min() >= q.min() - 1e-12
    assert qr.max() <= q.max() + 1e-12
