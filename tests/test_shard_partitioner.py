"""Property suite for the shard partitioner (ISSUE 8 satellite).

The partition pipeline — ``compute_units`` (the serial engine's chunk
grid), ``partition_lpt`` (longest-processing-time over unit costs) and
``plan_shards`` (their composition) — carries the bitwise contract of
sharded execution, so its structural invariants are pinned by property
tests rather than examples:

* every block is assigned to exactly one shard, whatever the costs;
* LPT's makespan bound: ``max_load <= mean_load + max(unit_costs)``;
* repartitioning after a refine/derefine (any new block population)
  still covers the new block set exactly once;
* the plan is a pure function of (costs, interior_cells, num_shards) —
  deterministic across calls and process boundaries.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.backends.numpy_backend import PACK_CHUNK_CELLS
from repro.mesh.loadbalance import partition_lpt
from repro.parallel import compute_units, plan_shards

#: Positive, finite, not-absurdly-large block costs (cost models emit
#: cells or seconds; both are bounded in practice).
costs_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=64,
)
shards_strategy = st.integers(min_value=1, max_value=8)
cells_strategy = st.sampled_from([64, 512, 4096, 32768])


# ------------------------------------------------------------ chunk grid


@given(
    nblocks=st.integers(min_value=1, max_value=500),
    cells=cells_strategy,
)
def test_units_tile_the_block_axis_exactly(nblocks, cells):
    units = compute_units(nblocks, cells)
    assert units[0][0] == 0
    assert units[-1][1] == nblocks
    for (lo_a, hi_a), (lo_b, hi_b) in zip(units, units[1:]):
        assert hi_a == lo_b, "units must abut: no gap, no overlap"
        assert lo_a < hi_a
    assert all(lo < hi for lo, hi in units)


@given(
    nblocks=st.integers(min_value=1, max_value=500),
    cells=cells_strategy,
)
def test_units_match_the_serial_chunk_step(nblocks, cells):
    """Unit boundaries are exactly the serial engine's chunk boundaries —
    the bitwise-parity precondition."""
    step = max(1, PACK_CHUNK_CELLS // cells)
    units = compute_units(nblocks, cells)
    assert units == [
        (lo, min(nblocks, lo + step)) for lo in range(0, nblocks, step)
    ]


# ------------------------------------------------------------------- LPT


@given(costs=costs_strategy, nshards=shards_strategy)
def test_lpt_assigns_every_item_exactly_once(costs, nshards):
    assignments = partition_lpt(costs, nshards)
    assert len(assignments) == len(costs)
    assert all(0 <= s < nshards for s in assignments)


@given(costs=costs_strategy, nshards=shards_strategy)
def test_lpt_respects_the_makespan_bound(costs, nshards):
    """Graham's LPT guarantee: no shard exceeds the mean load by more
    than one item."""
    assignments = partition_lpt(costs, nshards)
    loads = [0.0] * nshards
    for cost, shard in zip(costs, assignments):
        loads[shard] += float(cost)
    mean = sum(float(c) for c in costs) / nshards
    assert max(loads) <= mean + max(float(c) for c in costs) + 1e-9


@given(costs=costs_strategy, nshards=shards_strategy)
def test_lpt_is_deterministic(costs, nshards):
    assert partition_lpt(costs, nshards) == partition_lpt(costs, nshards)
    assert partition_lpt(list(costs), nshards) == partition_lpt(
        np.asarray(costs), nshards
    )


# ------------------------------------------------------------ plan_shards


@given(costs=costs_strategy, nshards=shards_strategy, cells=cells_strategy)
def test_plan_covers_every_block_exactly_once(costs, nshards, cells):
    plan = plan_shards(costs, cells, nshards)
    seen = []
    for units in plan.units_by_shard:
        for lo, hi in units:
            seen.extend(range(lo, hi))
    assert sorted(seen) == list(range(len(costs)))
    assert sum(plan.shard_blocks()) == len(costs)


@given(costs=costs_strategy, nshards=shards_strategy, cells=cells_strategy)
def test_plan_respects_the_lpt_bound_over_units(costs, nshards, cells):
    plan = plan_shards(costs, cells, nshards)
    unit_costs = [
        float(sum(costs[lo:hi])) for lo, hi in plan.units
    ]
    loads = plan.shard_costs(costs)
    mean = sum(unit_costs) / nshards
    assert max(loads) <= mean + max(unit_costs) + 1e-9
    np.testing.assert_allclose(sum(loads), sum(unit_costs), rtol=1e-12)


@given(
    costs=costs_strategy,
    nshards=shards_strategy,
    cells=cells_strategy,
    refined=st.integers(min_value=0, max_value=32),
    data=st.data(),
)
@settings(max_examples=50)
def test_repartition_after_remesh_preserves_the_block_set(
    costs, nshards, cells, refined, data
):
    """A remesh changes the block population; the *new* plan must cover
    the new population exactly once (the rebind invariant)."""
    plan_shards(costs, cells, nshards)  # old generation
    new_costs = list(costs)
    for _ in range(refined):  # refine: children append
        new_costs.append(
            data.draw(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
        )
    if len(new_costs) > 1:  # derefine: drop one
        del new_costs[data.draw(st.integers(0, len(new_costs) - 1))]
    new_plan = plan_shards(new_costs, cells, nshards)
    seen = []
    for units in new_plan.units_by_shard:
        for lo, hi in units:
            seen.extend(range(lo, hi))
    assert sorted(seen) == list(range(len(new_costs)))


@given(costs=costs_strategy, nshards=shards_strategy, cells=cells_strategy)
def test_plan_is_deterministic_for_fixed_topology(costs, nshards, cells):
    a = plan_shards(costs, cells, nshards)
    b = plan_shards(costs, cells, nshards)
    assert a == b
