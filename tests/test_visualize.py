"""Tests for the ASCII field/level renderers."""

import numpy as np
import pytest

from repro.driver.visualize import render_field, render_levels, sample_slice
from repro.mesh.block import FieldSpec
from repro.mesh.mesh import Mesh, MeshGeometry


def make_mesh(ndim=2, allocate=True):
    geo = MeshGeometry(
        ndim=ndim,
        mesh_size=tuple(32 if a < ndim else 1 for a in range(3)),
        block_size=tuple(8 if a < ndim else 1 for a in range(3)),
        ng=2,
        num_levels=2,
    )
    return Mesh(geo, field_specs=[FieldSpec("q", 1)], allocate=allocate)


class TestSampleSlice:
    def test_constant_field_samples_constant(self):
        mesh = make_mesh()
        for blk in mesh.block_list:
            blk.fields["q"][...] = 3.25
        grid = sample_slice(mesh, "q", resolution=16)
        assert np.allclose(grid, 3.25)

    def test_gradient_orientation(self):
        mesh = make_mesh()
        for blk in mesh.block_list:
            x = blk.cell_centers(0)
            blk.fields["q"][...] = x[None, None, :] * np.ones_like(
                blk.fields["q"][0]
            )
        grid = sample_slice(mesh, "q", resolution=16)
        # Increases along columns (x1), constant along rows (x2).
        assert grid[0, -1] > grid[0, 0]
        assert grid[-1, 0] == pytest.approx(grid[0, 0], abs=1e-12)

    def test_refined_blocks_win(self):
        mesh = make_mesh()
        loc = mesh.block_list[5].lloc
        mesh.remesh(refine=[loc], derefine=[])
        for blk in mesh.block_list:
            blk.fields["q"][...] = float(blk.lloc.level)
        grid = sample_slice(mesh, "q", resolution=32)
        assert grid.max() == 1.0  # refined region sampled from fine blocks

    def test_model_mode_rejected(self):
        mesh = make_mesh(allocate=False)
        with pytest.raises(ValueError, match="numeric"):
            sample_slice(mesh, "q")


class TestRender:
    def test_field_render_shape_and_legend(self):
        mesh = make_mesh()
        for blk in mesh.block_list:
            x = blk.cell_centers(0)
            blk.fields["q"][...] = x[None, None, :] * np.ones_like(
                blk.fields["q"][0]
            )
        text = render_field(mesh, "q", resolution=20)
        lines = text.splitlines()
        assert len(lines) == 21
        assert all(len(l) == 20 for l in lines[:-1])
        assert "range" in lines[-1]

    def test_fixed_scale(self):
        mesh = make_mesh()
        for blk in mesh.block_list:
            blk.fields["q"][...] = 0.5
        text = render_field(mesh, "q", resolution=8, vmin=0.0, vmax=1.0)
        # Mid-ramp character everywhere.
        mid = text.splitlines()[0][0]
        assert mid not in (" ", "@")

    def test_level_map_shows_refinement(self):
        mesh = make_mesh()
        mesh.remesh(refine=[mesh.block_list[5].lloc], derefine=[])
        text = render_levels(mesh, resolution=32)
        assert "1" in text and "0" in text
