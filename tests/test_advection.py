"""Tests for the advection package — the second framework client."""

import numpy as np
import pytest

from repro.comm.bvals import BoundaryExchange
from repro.comm.flux_correction import FluxCorrection
from repro.comm.mpi import SimMPI
from repro.mesh.logical_location import LogicalLocation
from repro.mesh.mesh import Mesh, MeshGeometry
from repro.solver.advection import (
    ADVECTED,
    AdvectionConfig,
    AdvectionPackage,
    advance_advection_rk2,
)


def make_setup(ndim=1, mesh=64, block=16, levels=1, velocity=(1.0, 0.0, 0.0),
               recon="weno5", refine=()):
    config = AdvectionConfig(velocity=velocity, ncomp=1, reconstruction=recon)
    pkg = AdvectionPackage(ndim, config)
    geo = MeshGeometry(
        ndim=ndim,
        mesh_size=tuple(mesh if a < ndim else 1 for a in range(3)),
        block_size=tuple(block if a < ndim else 1 for a in range(3)),
        ng=config.required_ghosts(),
        num_levels=levels,
    )
    m = Mesh(geo, field_specs=pkg.field_specs())
    for loc in refine:
        m.remesh(refine=[loc], derefine=[])
    mpi = SimMPI(1)
    bx = BoundaryExchange(m, mpi)
    fc = FluxCorrection(m, mpi)
    fc.set_neighbor_table(bx.neighbor_table)
    return m, pkg, bx, fc


def fill_sine(mesh):
    for blk in mesh.block_list:
        x = blk.cell_centers(0)
        blk.fields[ADVECTED][...] = 0.0
        blk.fields[ADVECTED][0] = (
            2.0 + np.sin(2 * np.pi * x)[None, None, :]
        ) * np.ones_like(blk.fields[ADVECTED][0])


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdvectionPackage(1, AdvectionConfig(reconstruction="ppm"))
        with pytest.raises(ValueError):
            AdvectionPackage(1, AdvectionConfig(ncomp=0))

    def test_registry_flags(self):
        from repro.solver.state import Metadata

        pkg = AdvectionPackage(2)
        assert pkg.registry.get_by_flag(Metadata.FILL_GHOST) == [ADVECTED]


class TestAccuracy:
    def test_exact_translation(self):
        m, pkg, bx, fc = make_setup()
        fill_sine(m)
        v, t, dt = 1.0, 0.0, 0.25 / 64
        for _ in range(32):
            advance_advection_rk2(m, pkg, bx, dt, fc)
            t += dt
        err = 0.0
        for blk in m.block_list:
            x = blk.cell_centers(0, include_ghosts=False)
            exact = 2.0 + np.sin(2 * np.pi * (x - v * t))
            got = blk.fields[ADVECTED][0][
                blk.shape.interior_slices()
            ][0, 0]
            err = max(err, float(np.max(np.abs(got - exact))))
        assert err < 1e-3

    def test_negative_velocity_upwinds_correctly(self):
        m, pkg, bx, fc = make_setup(velocity=(-1.0, 0.0, 0.0))
        fill_sine(m)
        t, dt = 0.0, 0.25 / 64
        for _ in range(16):
            advance_advection_rk2(m, pkg, bx, dt, fc)
            t += dt
        for blk in m.block_list:
            x = blk.cell_centers(0, include_ghosts=False)
            exact = 2.0 + np.sin(2 * np.pi * (x + t))
            got = blk.fields[ADVECTED][0][blk.shape.interior_slices()][0, 0]
            np.testing.assert_allclose(got, exact, atol=2e-3)

    def test_conservation_on_amr_mesh(self):
        m, pkg, bx, fc = make_setup(
            ndim=2, mesh=32, block=8, levels=2, recon="plm",
            velocity=(0.7, 0.3, 0.0),
            refine=[LogicalLocation(0, 1, 1, 0)],
        )
        rng = np.random.default_rng(2)
        total = 0.0
        for blk in m.block_list:
            interior = blk.fields[ADVECTED][
                (slice(None),) + blk.shape.interior_slices()
            ]
            interior[...] = 1.0 + rng.random(interior.shape)
            total += interior.sum() * blk.cell_volume
        for _ in range(5):
            advance_advection_rk2(m, pkg, bx, 1e-2, fc)
        after = sum(
            blk.fields[ADVECTED][
                (slice(None),) + blk.shape.interior_slices()
            ].sum()
            * blk.cell_volume
            for blk in m.block_list
        )
        assert after == pytest.approx(total, abs=1e-12)

    def test_cfl_timestep(self):
        m, pkg, _, _ = make_setup(velocity=(2.0, 0.0, 0.0))
        dt = pkg.estimate_timestep(m.block_list[0])
        assert dt == pytest.approx(0.4 * (1.0 / 64) / 2.0)
