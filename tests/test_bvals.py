"""Tests for the four-phase ghost-cell exchange.

The heavyweight validator here is linear-function exactness: volume-averaged
restriction and slope-limited linear prolongation are both exact on linear
data, so after one exchange every ghost cell of every block — across
same-level, fine→coarse, and coarse→fine boundaries — must reproduce a
global linear function to machine precision.
"""

import numpy as np
import pytest

from repro.comm.bvals import (
    BoundaryExchange,
    message_spec,
    prolong_ranges,
    restrict_target_ranges,
)
from repro.comm.mpi import SimMPI
from repro.comm.topology import NeighborInfo, neighbors_of_block
from repro.mesh.block import FieldSpec
from repro.mesh.loadbalance import balance
from repro.mesh.logical_location import LogicalLocation
from repro.mesh.mesh import Mesh, MeshGeometry


def make_mesh(
    ndim=2, mesh=32, block=8, ng=2, levels=3, periodic=True, allocate=True,
    ncomp=1,
):
    geo = MeshGeometry(
        ndim=ndim,
        mesh_size=tuple(mesh if a < ndim else 1 for a in range(3)),
        block_size=tuple(block if a < ndim else 1 for a in range(3)),
        ng=ng,
        num_levels=levels,
        periodic=(periodic,) * 3,
    )
    return Mesh(geo, field_specs=[FieldSpec("q", ncomp)], allocate=allocate)


def fill_linear(mesh, coeffs=(2.0, -3.0, 5.0), const=10.0):
    """Set every block's *interior* to a global linear function."""
    for blk in mesh.block_list:
        xs = [blk.cell_centers(a, include_ghosts=False) for a in range(3)]
        q = np.full((1,) + tuple(len(x) for x in reversed(xs)), const)
        q += coeffs[0] * xs[0][None, None, None, :]
        if mesh.ndim >= 2:
            q += coeffs[1] * xs[1][None, None, :, None]
        if mesh.ndim >= 3:
            q += coeffs[2] * xs[2][None, :, None, None]
        blk.fields["q"][...] = 0.0
        blk.interior("q")[...] = q


def check_linear_ghosts(mesh, coeffs=(2.0, -3.0, 5.0), const=10.0, atol=1e-12):
    """Every cell (incl. ghosts) physically inside the domain must match."""
    checked = 0
    for blk in mesh.block_list:
        xs = [blk.cell_centers(a) for a in range(3)]
        expected = np.full(
            (1,) + tuple(len(x) for x in reversed(xs)), const
        )
        expected += coeffs[0] * xs[0][None, None, None, :]
        if mesh.ndim >= 2:
            expected += coeffs[1] * xs[1][None, None, :, None]
        if mesh.ndim >= 3:
            expected += coeffs[2] * xs[2][None, :, None, None]
        inside = np.ones_like(expected, dtype=bool)
        for a in range(mesh.ndim):
            x = xs[a]
            mask = (x > 0.0) & (x < 1.0)
            shape = [1, 1, 1, 1]
            shape[3 - a] = len(x)
            inside &= mask.reshape(shape)
        got = blk.fields["q"]
        np.testing.assert_allclose(got[inside], expected[inside], atol=atol)
        checked += int(inside.sum())
    return checked


class TestMessageSpec:
    def _nbr(self, offset, nloc, delta):
        return NeighborInfo(offset=offset, nloc=nloc, delta=delta)

    def test_same_level_face(self):
        nbr = self._nbr((-1, 0, 0), LogicalLocation(0, 0, 0, 0), 0)
        spec = message_spec((8, 8, 1), 2, 2, nbr, LogicalLocation(0, 1, 0, 0))
        assert spec.send_ranges[0] == (8, 10)
        assert spec.recv_ranges[0] == (0, 2)
        assert spec.send_ranges[1] == (2, 10)
        assert spec.cells == 16

    def test_same_level_corner(self):
        nbr = self._nbr((1, 1, 0), LogicalLocation(0, 2, 2, 0), 0)
        spec = message_spec((8, 8, 1), 2, 2, nbr, LogicalLocation(0, 1, 1, 0))
        assert spec.cells == 4
        assert spec.recv_ranges[0] == (10, 12)
        assert spec.send_ranges[0] == (2, 4)

    def test_fine_sender_restricts(self):
        # Receiver at level 0, fine sender is child (1, 2, 1) across +x.
        nbr = self._nbr((1, 0, 0), LogicalLocation(1, 2, 1, 0), 1)
        spec = message_spec((8, 8, 1), 2, 2, nbr, LogicalLocation(0, 0, 0, 0))
        assert spec.restrict_before_send
        assert not spec.to_coarse
        # Send 2*ng=4 fine cells normal, full 8 tangential -> 2x4 after.
        assert spec.send_ranges[0] == (2, 6)
        assert spec.recv_ranges[0] == (10, 12)
        # Tangential: sender's lx2=1 -> odd half of receiver's face.
        assert spec.recv_ranges[1] == (6, 10)
        assert spec.cells == 2 * 4

    def test_coarse_sender_targets_coarse_buffer(self):
        # Receiver is fine child (1, 2, 2); coarse neighbor across -x.
        nbr = self._nbr((-1, 0, 0), LogicalLocation(0, 0, 1, 0), -1)
        spec = message_spec((8, 8, 1), 2, 2, nbr, LogicalLocation(1, 2, 2, 0))
        assert spec.to_coarse
        # Normal depth hg+1 = 2.
        assert spec.send_ranges[0] == (8, 10)
        assert spec.recv_ranges[0] == (0, 2)
        # Tangential: receiver lx2=2 -> even half of the coarse sender.
        assert spec.send_ranges[1] == (2, 6)
        assert spec.recv_ranges[1] == (2, 6)

    def test_cells_metric_shrinks_with_restriction(self):
        fine = self._nbr((1, 0, 0), LogicalLocation(1, 2, 0, 0), 1)
        spec = message_spec((8, 8, 1), 4, 2, fine, LogicalLocation(0, 0, 0, 0))
        same = self._nbr((1, 0, 0), LogicalLocation(0, 1, 0, 0), 0)
        spec_same = message_spec(
            (8, 8, 1), 4, 2, same, LogicalLocation(0, 0, 0, 0)
        )
        assert spec.cells < spec_same.cells


class TestRanges:
    def test_prolong_ranges_sizes(self):
        src, tgt = prolong_ranges((8, 8, 1), 2, 2, (-1, 0, 0))
        # Coarse source with margins: hg+2 = 3 normal, ncx+2 tangential.
        assert src[0] == (2 - 1 - 1, 3)
        assert tgt[0] == (0, 2)
        assert src[1] == (1, 7)
        assert tgt[1] == (2, 10)

    def test_restrict_target_interior(self):
        coarse = restrict_target_ranges((8, 8, 1), 2, 2, ((2, 10), (2, 10), (0, 1)))
        assert coarse == ((2, 6), (2, 6), (0, 1))

    def test_restrict_target_ghost_slab(self):
        coarse = restrict_target_ranges((8, 8, 1), 2, 2, ((0, 2), (2, 10), (0, 1)))
        assert coarse[0] == (1, 2)

    def test_restrict_target_rejects_misaligned(self):
        with pytest.raises(ValueError):
            restrict_target_ranges((8, 8, 1), 2, 2, ((1, 3), (2, 10), (0, 1)))


class TestUniformExchange:
    def test_message_counts_2d_periodic(self):
        mesh = make_mesh(levels=1, allocate=False)
        mpi = SimMPI(1)
        bx = BoundaryExchange(mesh, mpi)
        bx.start_receive_bound_bufs()
        stats = bx.send_bound_bufs(["q"])
        # 16 blocks x 8 neighbors, all local on one rank.
        assert stats.messages_local == 128
        assert stats.messages_remote == 0
        # Per block: 4 faces (2*8) + 4 corners (2*2) = 80 cells.
        assert stats.cells_communicated == 16 * 80

    def test_remote_messages_with_ranks(self):
        mesh = make_mesh(levels=1, allocate=False)
        balance(mesh, 4)
        mpi = SimMPI(4)
        bx = BoundaryExchange(mesh, mpi)
        bx.start_receive_bound_bufs()
        stats = bx.send_bound_bufs(["q"])
        assert stats.messages_remote > 0
        assert stats.messages_local > 0
        assert stats.messages_remote + stats.messages_local == 128
        assert mpi.total_registered_bytes() > 0

    def test_single_rank_registers_no_buffers(self):
        mesh = make_mesh(levels=1, allocate=False)
        mpi = SimMPI(1)
        BoundaryExchange(mesh, mpi)
        assert mpi.total_registered_bytes() == 0

    def test_ghosts_match_neighbors_same_level(self):
        mesh = make_mesh(levels=1)
        for blk in mesh.block_list:
            blk.interior("q")[...] = float(blk.gid)
        mpi = SimMPI(1)
        bx = BoundaryExchange(mesh, mpi)
        bx.exchange(["q"])
        blk = mesh.block_list[0]
        nbrs = neighbors_of_block(mesh, blk.lloc)
        right = next(n for n in nbrs if n.offset == (1, 0, 0))
        rgid = mesh.block_at(right.nloc).gid
        assert np.all(blk.fields["q"][0, 0, 2:10, 10:] == float(rgid))

    def test_periodic_wraparound_1d(self):
        mesh = make_mesh(ndim=1, mesh=16, block=8, levels=1)
        mesh.block_list[0].interior("q")[...] = 1.0
        mesh.block_list[1].interior("q")[...] = 2.0
        mpi = SimMPI(1)
        BoundaryExchange(mesh, mpi).exchange(["q"])
        # Block 0's left ghosts wrap to block 1.
        assert np.all(mesh.block_list[0].fields["q"][0, 0, 0, :2] == 2.0)
        assert np.all(mesh.block_list[1].fields["q"][0, 0, 0, 10:] == 1.0)

    def test_iprobe_activity_recorded(self):
        mesh = make_mesh(levels=1, allocate=False)
        balance(mesh, 4)
        mpi = SimMPI(4)
        bx = BoundaryExchange(mesh, mpi)
        bx.start_receive_bound_bufs()
        bx.send_bound_bufs(["q"])
        bx.receive_bound_bufs()
        assert mpi.cycle.iprobe_calls > 0
        assert mpi.cycle.iprobe_calls == mpi.cycle.test_calls


def interior_block(mesh, coords):
    """The block at base-grid ``coords`` (must not touch the boundary)."""
    loc = LogicalLocation(0, *coords)
    return mesh.block_at(loc)


class TestMultiLevelExchange:
    """Linear exactness on refined meshes.

    Refined blocks are chosen away from the (non-periodic) domain boundary:
    outflow ghost fill is constant extrapolation, which legitimately breaks
    linear exactness in cells whose prolongation stencil touches it.
    """

    def test_linear_exact_2d_one_refined_block(self):
        mesh = make_mesh(ndim=2, mesh=32, block=8, ng=2, levels=2, periodic=False)
        mesh.remesh(refine=[interior_block(mesh, (1, 1, 0)).lloc], derefine=[])
        fill_linear(mesh)
        BoundaryExchange(mesh, SimMPI(1)).exchange(["q"])
        assert check_linear_ghosts(mesh) > 0

    def test_linear_exact_2d_two_levels_deep(self):
        mesh = make_mesh(ndim=2, mesh=64, block=8, ng=2, levels=3, periodic=False)
        loc = interior_block(mesh, (3, 3, 0)).lloc
        mesh.remesh(refine=[loc], derefine=[])
        # Refine the child farthest from the domain boundary region.
        child = LogicalLocation(1, 7, 7, 0)
        mesh.remesh(refine=[child], derefine=[])
        fill_linear(mesh)
        BoundaryExchange(mesh, SimMPI(1)).exchange(["q"])
        check_linear_ghosts(mesh)

    def test_linear_exact_2d_weno_ghosts(self):
        mesh = make_mesh(ndim=2, mesh=32, block=8, ng=4, levels=2, periodic=False)
        mesh.remesh(refine=[interior_block(mesh, (2, 1, 0)).lloc], derefine=[])
        fill_linear(mesh)
        BoundaryExchange(mesh, SimMPI(1)).exchange(["q"])
        check_linear_ghosts(mesh)

    def test_linear_exact_3d(self):
        mesh = make_mesh(ndim=3, mesh=32, block=8, ng=2, levels=2, periodic=False)
        mesh.remesh(refine=[interior_block(mesh, (1, 1, 1)).lloc], derefine=[])
        fill_linear(mesh)
        BoundaryExchange(mesh, SimMPI(1)).exchange(["q"])
        check_linear_ghosts(mesh)

    def test_linear_exact_1d(self):
        mesh = make_mesh(ndim=1, mesh=32, block=8, ng=2, levels=2, periodic=False)
        mesh.remesh(refine=[interior_block(mesh, (1, 0, 0)).lloc], derefine=[])
        fill_linear(mesh)
        BoundaryExchange(mesh, SimMPI(1)).exchange(["q"])
        check_linear_ghosts(mesh)

    def test_constant_exact_periodic_multilevel(self):
        mesh = make_mesh(ndim=2, mesh=32, block=8, ng=2, levels=2, periodic=True)
        mesh.remesh(refine=[mesh.block_list[5].lloc], derefine=[])
        for blk in mesh.block_list:
            blk.fields["q"][...] = 0.0
            blk.interior("q")[...] = 7.25
        BoundaryExchange(mesh, SimMPI(1)).exchange(["q"])
        for blk in mesh.block_list:
            np.testing.assert_allclose(blk.fields["q"], 7.25)

    def test_model_mode_counts_match_numeric(self):
        num = make_mesh(levels=2, allocate=True)
        mod = make_mesh(levels=2, allocate=False)
        for mesh in (num, mod):
            mesh.remesh(refine=[mesh.block_list[5].lloc], derefine=[])
        sn = BoundaryExchange(num, SimMPI(1)).exchange(["q"])
        sm = BoundaryExchange(mod, SimMPI(1)).exchange(["q"])
        assert sn.cells_communicated == sm.cells_communicated
        assert (
            sn.messages_local + sn.messages_remote
            == sm.messages_local + sm.messages_remote
        )


class TestRebuild:
    def test_rebuild_counts_buffers(self):
        mesh = make_mesh(levels=1, allocate=False)
        bx = BoundaryExchange(mesh, SimMPI(1))
        stats = bx.rebuild()
        assert stats.nblocks == 16
        assert stats.nbuffers == 128
        assert stats.cache.keys_sorted == 128

    def test_rebuild_after_refinement_grows_buffers(self):
        mesh = make_mesh(levels=2, allocate=False)
        bx = BoundaryExchange(mesh, SimMPI(1))
        before = bx.rebuild().nbuffers
        mesh.remesh(refine=[mesh.block_list[0].lloc], derefine=[])
        after = bx.rebuild().nbuffers
        assert after > before

    def test_cache_order_is_deterministic(self):
        # Numeric mode keeps the full ordered key list; the modeled mode
        # uses the counts-only fast path (no per-key objects).
        mesh = make_mesh(levels=1, allocate=True)
        a = BoundaryExchange(mesh, SimMPI(1), cache_seed=3)
        b = BoundaryExchange(mesh, SimMPI(1), cache_seed=3)
        assert a.cache.order == b.cache.order
        c = BoundaryExchange(mesh, SimMPI(1), cache_seed=4)
        assert a.cache.order != c.cache.order

    def test_modeled_rebuild_counts_match_numeric(self):
        num = make_mesh(levels=2, allocate=True)
        mod = make_mesh(levels=2, allocate=False)
        for mesh in (num, mod):
            mesh.remesh(refine=[mesh.block_list[5].lloc], derefine=[])
        sn = BoundaryExchange(num, SimMPI(1)).rebuild()
        sm = BoundaryExchange(mod, SimMPI(1)).rebuild()
        assert sn.nbuffers == sm.nbuffers
        assert sn.cache.keys_sorted == sm.cache.keys_sorted
