"""Bitwise-resume differential harness (DESIGN §9).

The resilience contract: a run killed at an arbitrary checkpointed cycle
and resumed via ``restart_from`` must be *indistinguishable* from one
that never stopped — ``RunResult`` equal at 0 ULP and the canonical
trace byte-identical — in both kernel modes, for both the modeled mini
deck and a real numeric configuration.

Each case runs three simulations:

1. **baseline** — uninterrupted, traced, no checkpointing at all;
2. **killed** — checkpoint every cycle, with a deterministic
   :class:`InjectedFault` armed at the kill cycle (the crash);
3. **resumed** — ``restart_from`` the last valid checkpoint the killed
   run left behind, run to completion.

The resumed result/trace are compared against the *baseline* — so the
assertions also prove that checkpoint I/O itself never perturbs the
simulated outcome (no profiler spans, no metrics, no dt drift).
"""

import dataclasses
from pathlib import Path

import pytest

from repro.api import RunSpec, Simulation, build_execution_config, build_simulation_params
from repro.observability import to_canonical_json
from repro.resilience import FaultInjector, FaultPlan, InjectedFault, latest_checkpoint

REPO = Path(__file__).resolve().parent.parent
MINI_DECK = REPO / "examples" / "mini.in"


def _with(spec: RunSpec, **config_changes) -> RunSpec:
    return spec.replace(
        config=dataclasses.replace(spec.config, **config_changes)
    )


def _baseline(spec: RunSpec):
    sim = Simulation(spec, trace=True)
    result = sim.run()
    return result, to_canonical_json(sim.trace())


def _kill_and_resume(spec: RunSpec, kill_cycle: int, tmp_path: Path):
    """Crash a checkpointing run at ``kill_cycle``, resume it, return
    (resumed RunResult, resumed canonical trace, Simulation)."""
    ckpt = tmp_path / f"ck_{spec.config.kernel_mode}_{kill_cycle}"
    cspec = _with(spec, checkpoint_every=1)
    killed = Simulation(
        cspec,
        trace=True,
        checkpoint_dir=ckpt,
        fault_injector=FaultInjector(
            FaultPlan.single("kernel_launch", cycle=kill_cycle)
        ),
    )
    with pytest.raises(InjectedFault):
        killed.run()
    manifest = latest_checkpoint(ckpt)
    assert manifest is not None, "kill cycle left no checkpoint to resume"
    resumed = Simulation(cspec, trace=True, restart_from=manifest)
    result = resumed.run()
    return result, to_canonical_json(resumed.trace()), resumed


def _assert_bitwise_equal(base_result, base_trace, result, trace):
    # The resumed config legitimately differs in checkpoint cadence and
    # nothing else; every simulated quantity must match at 0 ULP.
    assert dataclasses.replace(
        result.config, checkpoint_every=0
    ) == dataclasses.replace(base_result.config, checkpoint_every=0)
    normalized = dataclasses.replace(result, config=base_result.config)
    assert dataclasses.asdict(normalized) == dataclasses.asdict(base_result)
    assert trace == base_trace


class TestMiniDeckBitwiseResume:
    """mini.in (modeled), both kernel modes, several kill cycles."""

    @pytest.mark.parametrize("kernel_mode", ["packed", "per_block"])
    @pytest.mark.parametrize("kill_cycle", [1, 2, 3])
    def test_resume_is_bitwise_identical(
        self, kernel_mode, kill_cycle, tmp_path
    ):
        spec = _with(RunSpec.from_file(MINI_DECK), kernel_mode=kernel_mode)
        base_result, base_trace = _baseline(spec)
        result, trace, sim = _kill_and_resume(spec, kill_cycle, tmp_path)
        _assert_bitwise_equal(base_result, base_trace, result, trace)
        assert sim.resumed_from_cycle == kill_cycle

    @pytest.mark.parametrize("kernel_mode", ["packed", "per_block"])
    def test_checkpointing_alone_is_invisible(self, kernel_mode, tmp_path):
        """Cadence with no crash: same result/trace as no checkpointing."""
        spec = _with(RunSpec.from_file(MINI_DECK), kernel_mode=kernel_mode)
        base_result, base_trace = _baseline(spec)
        sim = Simulation(
            _with(spec, checkpoint_every=1),
            trace=True,
            checkpoint_dir=tmp_path / "ck",
        )
        result = sim.run()
        _assert_bitwise_equal(
            base_result, base_trace, result, to_canonical_json(sim.trace())
        )
        assert sim.checkpointer.written, "cadence produced no checkpoints"


class TestNumericBitwiseResume:
    """Real PDE data: the pack-invalidation state must survive resume."""

    @pytest.mark.parametrize("kernel_mode", ["packed", "per_block"])
    @pytest.mark.parametrize("kill_cycle", [1, 2])
    def test_resume_is_bitwise_identical(
        self, kernel_mode, kill_cycle, tmp_path
    ):
        params = build_simulation_params(
            ndim=2, mesh_size=16, block_size=8, num_levels=2, num_scalars=1
        )
        config = build_execution_config(
            mode="numeric",
            kernel_mode=kernel_mode,
            num_gpus=1,
            ranks_per_gpu=2,
        )
        spec = RunSpec(params=params, config=config, ncycles=3, warmup=1)
        base_result, base_trace = _baseline(spec)
        result, trace, sim = _kill_and_resume(spec, kill_cycle, tmp_path)
        _assert_bitwise_equal(base_result, base_trace, result, trace)
        assert sim.resumed_from_cycle == kill_cycle
