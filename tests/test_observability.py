"""Unit tests for the tracing + metrics subsystem."""

import json

import pytest

from repro.api import ConfigError, RunSpec, Simulation
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams
from repro.kokkos.profiler import Profiler
from repro.observability import (
    Histogram,
    MetricsRegistry,
    NULL_RECORDER,
    TraceError,
    TraceRecorder,
    diff_region_totals,
    to_canonical_dict,
    to_canonical_json,
    to_chrome_trace,
)
from repro.observability.exporters import (
    render_trace_diff,
    render_trace_summary,
    within_tolerance,
)

MODELED = dict(
    params=SimulationParams(
        ndim=2, mesh_size=32, block_size=8, num_levels=2, num_scalars=1
    ),
    config=ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=2),
    ncycles=2,
    warmup=1,
)


def traced_profiler():
    rec = TraceRecorder()
    return Profiler(recorder=rec), rec


class TestTraceRecorder:
    def test_span_tree_nesting(self):
        prof, rec = traced_profiler()
        with prof.region("Step"):
            with prof.region("CalculateFluxes"):
                prof.add_serial(1.0)
                prof.add_kernel("CalculateFluxes", 2.0, cells=100)
            prof.add_serial(0.5)
        trace = rec.to_trace()
        (step,) = trace.spans
        assert step.name == "Step" and step.cat == "region"
        assert step.t0 == 0.0 and step.t1 == 3.5
        flux, tail = step.children
        assert flux.cat == "region" and len(flux.children) == 2
        assert flux.children[1].meta == {"cells": 100}
        assert tail.cat == "serial" and tail.dur == 0.5

    def test_region_totals_match_profiler(self):
        prof, rec = traced_profiler()
        with prof.region("A"):
            prof.add_serial(1.0)
            with prof.region("B"):
                prof.add_kernel("K", 2.0)
        prof.add_serial(0.25)  # top-level charge -> "other"
        totals = rec.to_trace().region_totals()
        assert totals["A"] == {"serial": 1.0, "kernel": 0.0}
        assert totals["B"] == {"serial": 0.0, "kernel": 2.0}
        assert totals["other"] == {"serial": 0.25, "kernel": 0.0}
        for name, times in totals.items():
            assert times["serial"] == prof.regions[name].serial
            assert times["kernel"] == prof.regions[name].kernel

    def test_misnested_close_raises(self):
        rec = TraceRecorder()
        rec.open_region("A", 0.0, 0)
        with pytest.raises(TraceError, match="misnested"):
            rec.close_region("B", 1.0, 0)
        with pytest.raises(TraceError, match="no open region"):
            TraceRecorder().close_region("A", 0.0, 0)

    def test_to_trace_rejects_open_regions(self):
        rec = TraceRecorder()
        rec.open_region("A", 0.0, 0)
        with pytest.raises(TraceError, match="still open"):
            rec.to_trace()

    def test_negative_duration_rejected(self):
        rec = TraceRecorder()
        with pytest.raises(TraceError):
            rec.record("serial", "A", None, 0.0, -1.0, 0)

    def test_clear_resets_everything(self):
        prof, rec = traced_profiler()
        with prof.region("A"):
            prof.add_serial(1.0)
        rec.clear()
        assert rec.roots == [] and rec.depth == 0
        trace = rec.to_trace()
        assert trace.spans == [] and trace.total_seconds == 0.0

    def test_null_recorder_is_inert(self):
        NULL_RECORDER.open_region("A", 0.0, 0)
        NULL_RECORDER.close_region("B", 1.0, 0)  # no misnesting check
        NULL_RECORDER.record("serial", "A", None, 0.0, 1.0, 0)
        NULL_RECORDER.clear()
        assert not NULL_RECORDER.active


class TestExporters:
    def run_traced(self):
        prof, rec = traced_profiler()
        with prof.region("Step"):
            prof.add_kernel("CalculateFluxes", 0.5, cells=64, launches=2)
            prof.add_serial(0.25)
        return rec.to_trace(meta={"kernel_mode": "packed"})

    def test_chrome_lanes_and_microseconds(self):
        trace = self.run_traced()
        doc = to_chrome_trace(trace)
        events = doc["traceEvents"]
        by_name = {e["name"]: e for e in events}
        assert by_name["Step"]["tid"] == 1  # host lane
        assert by_name["CalculateFluxes"]["tid"] == 2  # device lane
        assert by_name["CalculateFluxes"]["dur"] == pytest.approx(0.5e6)
        assert by_name["CalculateFluxes"]["args"]["launches"] == 2
        assert all(e["ph"] == "X" for e in events)
        json.dumps(doc)  # serializable

    def test_canonical_json_is_stable_and_newline_final(self):
        trace = self.run_traced()
        text = to_canonical_json(trace)
        assert text == to_canonical_json(trace)
        assert text.endswith("\n")
        doc = json.loads(text)
        assert doc["schema"] == "repro.trace"
        assert doc["schema_version"] == 4
        assert doc["meta"]["kernel_mode"] == "packed"
        assert doc["regions"]["Step"]["kernel"] == 0.5
        assert doc["kernels"]["CalculateFluxes"] == 0.5
        assert doc["total_seconds"] == pytest.approx(0.75)

    def test_diff_rejects_non_canonical_docs(self):
        with pytest.raises(ValueError, match="not a canonical"):
            diff_region_totals({"schema": "nope"}, {"schema": "repro.trace"})

    def test_diff_reports_missing_regions_as_zero(self):
        a = to_canonical_dict(self.run_traced())
        b = json.loads(json.dumps(a))
        b["regions"]["Extra"] = {"serial": 1.0, "kernel": 0.0}
        deltas = {d.name: d for d in diff_region_totals(a, b)}
        assert deltas["Extra"].a == 0.0 and deltas["Extra"].b == 1.0
        assert deltas["Extra"].rel == 1.0
        assert not within_tolerance(list(deltas.values()), 0.5)
        assert "Extra" in render_trace_diff(list(deltas.values()), 0.5)

    def test_summary_renders(self):
        doc = to_canonical_dict(self.run_traced())
        text = render_trace_summary(doc)
        assert "Per-region breakdown" in text
        assert "CalculateFluxes" in text


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        m = MetricsRegistry()
        m.count("launches", 3)
        m.count("launches")
        m.gauge("blocks", 7)
        m.observe("bytes", 100.0)
        m.observe("bytes", 1e6)
        doc = m.to_dict()
        assert doc["counters"]["launches"] == 4
        assert doc["gauges"]["blocks"] == 7
        assert doc["histograms"]["bytes"]["count"] == 2
        assert doc["histograms"]["bytes"]["min"] == 100.0
        assert doc["histograms"]["bytes"]["max"] == 1e6
        json.dumps(doc)

    def test_cycle_snapshots_are_cumulative(self):
        m = MetricsRegistry()
        m.count("x", 1)
        m.end_cycle(1)
        m.count("x", 2)
        m.end_cycle(2)
        snaps = m.to_dict()["per_cycle"]
        assert snaps == [
            {"cycle": 1, "counters": {"x": 1}},
            {"cycle": 2, "counters": {"x": 3}},
        ]

    def test_merge_gauges_take_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("blocks", 5)
        b.gauge("blocks", 9)
        a.merge(b)
        assert a.gauges["blocks"] == 9

    def test_histogram_merge_requires_same_bounds(self):
        a, b = Histogram([1.0, 2.0]), Histogram([1.0, 3.0])
        with pytest.raises(ValueError):
            a.merge(b)

    def test_clear_preserves_identity(self):
        m = MetricsRegistry()
        m.count("x")
        alias = m
        m.clear()
        assert alias.counters == {} and alias.cycle_snapshots == []


class TestDriverIntegration:
    def test_driver_populates_metrics(self):
        result = Simulation(RunSpec(**MODELED)).run()
        counters = result.metrics["counters"]
        assert counters["kernel_launches"] > 0
        assert counters["ghost_cells"] > 0
        assert counters["ghost_bytes"] > 0
        assert result.metrics["gauges"]["blocks"] > 0
        assert len(result.metrics["per_cycle"]) == MODELED["ncycles"]
        hist = result.metrics["histograms"]["ghost_message_bytes"]
        assert hist["count"] > 0

    def test_numeric_packed_counts_pack_rebuilds(self):
        from repro.solver.initial_conditions import gaussian_blob

        spec = RunSpec(
            params=SimulationParams(
                ndim=2, mesh_size=16, block_size=8, num_levels=1,
                num_scalars=1,
            ),
            config=ExecutionConfig(
                backend="gpu", num_gpus=1, ranks_per_gpu=1, mode="numeric",
                kernel_mode="packed",
            ),
            ncycles=2,
            warmup=0,
        )
        sim = Simulation(
            spec,
            initial_conditions=lambda mesh, pkg: gaussian_blob(
                mesh, pkg, amplitude=0.8, width=0.15
            ),
        )
        result = sim.run()
        assert result.metrics["counters"]["pack_rebuilds"] >= 1
        assert result.metrics["gauges"]["pack_blocks"] >= 1

    def test_trace_covers_measured_cycles_only(self):
        sim = Simulation(RunSpec(**MODELED), trace=True)
        result = sim.run()
        trace = sim.trace()
        # warmup spans were discarded: trace wall == measured wall
        assert trace.total_seconds == pytest.approx(
            result.wall_seconds, abs=1e-12
        )
        cycles = {s.cycle for s in trace.walk()}
        assert cycles <= set(range(MODELED["ncycles"]))

    def test_trace_requires_opt_in(self):
        sim = Simulation(RunSpec(**MODELED))
        sim.run()
        with pytest.raises(ConfigError, match="trace=True"):
            sim.trace()

    def test_artifact_carries_metrics(self):
        sim = Simulation(RunSpec(**MODELED))
        art = sim.artifact()
        assert art["schema_version"] == 6
        assert art["metrics"]["counters"]["kernel_launches"] > 0
        json.dumps(art)


class TestTraceCLI:
    DECK = "examples/mini.in"

    def run_cli(self, argv, capsys):
        from repro.cli import main

        code = main(argv)
        return code, capsys.readouterr().out

    def test_canonical_matches_golden(self, capsys):
        code, out = self.run_cli(["trace", self.DECK], capsys)
        assert code == 0
        golden = open("tests/golden/trace_mini_packed.json").read()
        assert out == golden

    def test_chrome_format_and_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        code, out = self.run_cli(
            ["trace", self.DECK, "--format", "chrome", "-o", str(out_file)],
            capsys,
        )
        assert code == 0
        doc = json.loads(out_file.read_text())
        assert doc["traceEvents"]
        assert "chrome trace written to" in out

    def test_summary_format(self, capsys):
        code, out = self.run_cli(
            ["trace", self.DECK, "--format", "summary"], capsys
        )
        assert code == 0
        assert "Per-region breakdown" in out

    def test_diff_identical_exits_zero(self, tmp_path, capsys):
        code, out = self.run_cli(["trace", self.DECK], capsys)
        a = tmp_path / "a.json"
        a.write_text(out)
        code, out = self.run_cli(
            ["trace", "--diff", str(a), str(a)], capsys
        )
        assert code == 0
        assert "largest relative delta: 0.00%" in out

    def test_diff_kernel_modes_reports_nonzero_delta(self, capsys):
        code, out = self.run_cli(
            [
                "trace", "--diff",
                "tests/golden/trace_mini_packed.json",
                "tests/golden/trace_mini_per_block.json",
            ],
            capsys,
        )
        assert code == 1
        assert "CalculateFluxes" in out
        assert "+0.000000" not in out.split("CalculateFluxes")[1].split("\n")[0]

    def test_diff_tolerance_allows_close_traces(self, tmp_path, capsys):
        golden = json.loads(
            open("tests/golden/trace_mini_packed.json").read()
        )
        nudged = json.loads(json.dumps(golden))
        name = next(iter(nudged["regions"]))
        nudged["regions"][name]["serial"] *= 1.0001
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(golden))
        b.write_text(json.dumps(nudged))
        code, _ = self.run_cli(
            ["trace", "--diff", str(a), str(b), "--tolerance", "0.01"], capsys
        )
        assert code == 0

    def test_trace_without_input_errors(self, capsys):
        from repro.cli import main

        assert main(["trace"]) == 2
        assert "input deck" in capsys.readouterr().err
