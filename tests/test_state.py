"""Tests for variable metadata and flag-based lookup."""

import pytest

from repro.solver.state import (
    Metadata,
    StateDescriptor,
    VariableRegistry,
)


def make_registry():
    return VariableRegistry(
        [
            StateDescriptor(
                "cons", 4, Metadata.INDEPENDENT | Metadata.FILL_GHOST
            ),
            StateDescriptor("derived", 1, Metadata.DERIVED),
            StateDescriptor("base", 4, Metadata.REQUIRES_RESTART),
        ]
    )


class TestRegistry:
    def test_ordering_preserved(self):
        reg = make_registry()
        assert reg.names == ["cons", "derived", "base"]

    def test_duplicate_rejected(self):
        reg = make_registry()
        with pytest.raises(ValueError):
            reg.add(StateDescriptor("cons", 1, Metadata.NONE))

    def test_contains_and_len(self):
        reg = make_registry()
        assert "cons" in reg and "missing" not in reg
        assert len(reg) == 3

    def test_total_ncomp(self):
        reg = make_registry()
        assert reg.total_ncomp(["cons", "base"]) == 8


class TestStringLookup:
    def test_flag_query_results(self):
        reg = make_registry()
        assert reg.get_by_flag(Metadata.INDEPENDENT) == ["cons"]
        assert reg.get_by_flag(Metadata.DERIVED) == ["derived"]
        assert reg.get_by_flag(Metadata.FILL_GHOST) == ["cons"]

    def test_string_work_counted(self):
        reg = make_registry()
        reg.get_by_flag(Metadata.INDEPENDENT)
        reg.get_by_flag(Metadata.DERIVED)
        c = reg.counters
        assert c.queries == 2
        assert c.string_hashes == 6  # 3 variables x 2 queries
        assert c.string_comparisons > 0

    def test_reset_counters(self):
        reg = make_registry()
        reg.get_by_flag(Metadata.DERIVED)
        done = reg.reset_counters()
        assert done.queries == 1
        assert reg.counters.queries == 0


class TestIndexedLookup:
    def test_indexed_matches_string_path(self):
        reg = make_registry()
        reg.build_flag_index([Metadata.INDEPENDENT, Metadata.DERIVED])
        assert reg.get_by_flag_indexed(Metadata.INDEPENDENT) == reg.get_by_flag(
            Metadata.INDEPENDENT
        )

    def test_indexed_does_no_string_work(self):
        reg = make_registry()
        reg.build_flag_index([Metadata.INDEPENDENT])
        reg.reset_counters()
        reg.get_by_flag_indexed(Metadata.INDEPENDENT)
        assert reg.counters.queries == 0
        assert reg.counters.string_hashes == 0

    def test_missing_index_raises(self):
        reg = make_registry()
        with pytest.raises(KeyError, match="not in the prebuilt index"):
            reg.get_by_flag_indexed(Metadata.DERIVED)

    def test_adding_variable_invalidates_index(self):
        reg = make_registry()
        reg.build_flag_index([Metadata.DERIVED])
        reg.add(StateDescriptor("extra", 1, Metadata.DERIVED))
        with pytest.raises(KeyError):
            reg.get_by_flag_indexed(Metadata.DERIVED)
