"""Tests for Morton-ordered cost-based load balancing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh.block import FieldSpec
from repro.mesh.loadbalance import (
    balance,
    partition_contiguous,
    partition_round_robin,
)
from repro.mesh.mesh import Mesh, MeshGeometry


def make_mesh():
    geo = MeshGeometry(
        ndim=2, mesh_size=(32, 32, 1), block_size=(8, 8, 1), ng=2, num_levels=3
    )
    return Mesh(geo, field_specs=[FieldSpec("q", 1)], allocate=False)


class TestPartition:
    def test_equal_costs_split_evenly(self):
        parts = partition_contiguous([1.0] * 16, 4)
        assert parts == [0] * 4 + [1] * 4 + [2] * 4 + [3] * 4

    def test_single_rank_takes_all(self):
        assert partition_contiguous([1.0, 2.0, 3.0], 1) == [0, 0, 0]

    def test_more_ranks_than_blocks(self):
        parts = partition_contiguous([1.0, 1.0], 5)
        assert parts == [0, 1]

    def test_empty_costs(self):
        assert partition_contiguous([], 4) == []

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            partition_contiguous([1.0], 0)

    def test_heavy_block_split_minimizes_imbalance(self):
        parts = partition_contiguous([1.0, 100.0, 1.0, 1.0], 2)
        # Either split leaves rank 0 or rank 1 with the heavy block; the
        # closer-to-target choice groups it with its predecessor.
        assert parts == [0, 0, 1, 1]

    def test_remainder_spread_not_dumped_on_last_rank(self):
        # 120 equal blocks over 32 ranks: ranks must get 3 or 4 blocks, not
        # a 3-per-rank floor with a 27-block pile on the last rank.
        parts = partition_contiguous([1.0] * 120, 32)
        from collections import Counter
        sizes = Counter(parts).values()
        assert max(sizes) <= 4 and min(sizes) >= 3

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(0.1, 10.0), min_size=1, max_size=60),
        st.integers(1, 12),
    )
    def test_partition_properties(self, costs, nranks):
        parts = partition_contiguous(costs, nranks)
        assert len(parts) == len(costs)
        # Contiguous and monotone rank ids.
        assert all(b - a in (0, 1) for a, b in zip(parts, parts[1:]))
        assert parts[0] == 0
        assert max(parts) < nranks
        # Every rank up to the maximum used gets at least one block.
        assert set(parts) == set(range(max(parts) + 1))
        # When there are enough blocks, no rank is starved.
        if len(costs) >= nranks:
            assert max(parts) == nranks - 1


class TestRoundRobin:
    def test_strided_assignment(self):
        assert partition_round_robin(6, 3) == [0, 1, 2, 0, 1, 2]

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            partition_round_robin(4, 0)

    def test_policy_selectable_in_balance(self):
        mesh = make_mesh()
        plan = balance(mesh, 4, policy="round_robin")
        assert plan.assignments[:4] == [0, 1, 2, 3]
        with pytest.raises(ValueError, match="unknown load-balance policy"):
            balance(mesh, 4, policy="random")

    def test_round_robin_destroys_locality(self):
        """The ablation's point: strided placement turns neighbor exchanges
        into remote messages."""
        from repro.comm.bvals import BoundaryExchange
        from repro.comm.mpi import SimMPI

        remote = {}
        for policy in ("contiguous", "round_robin"):
            mesh = make_mesh()
            balance(mesh, 4, policy=policy)
            bx = BoundaryExchange(mesh, SimMPI(4))
            bx.start_receive_bound_bufs()
            stats = bx.send_bound_bufs(["q"])
            remote[policy] = stats.messages_remote
        assert remote["round_robin"] > remote["contiguous"]


class TestBalance:
    def test_assigns_all_blocks(self):
        mesh = make_mesh()
        plan = balance(mesh, 4)
        assert len(plan.assignments) == mesh.num_blocks
        assert {b.rank for b in mesh.block_list} == {0, 1, 2, 3}

    def test_first_balance_moves_blocks(self):
        mesh = make_mesh()
        plan = balance(mesh, 4)
        # Initially all blocks sat on rank 0; 12 of 16 must move.
        assert plan.moved_blocks == 12

    def test_rebalance_is_stable(self):
        mesh = make_mesh()
        balance(mesh, 4)
        plan = balance(mesh, 4)
        assert plan.moved_blocks == 0

    def test_imbalance_metric(self):
        mesh = make_mesh()
        plan = balance(mesh, 4)
        assert plan.imbalance == pytest.approx(1.0)

    def test_refinement_triggers_moves(self):
        mesh = make_mesh()
        balance(mesh, 4)
        mesh.remesh(refine=[mesh.block_list[0].lloc], derefine=[])
        plan = balance(mesh, 4)
        assert plan.moved_blocks > 0
        assert plan.imbalance < 1.5

    def test_costs_respected(self):
        mesh = make_mesh()
        for blk in mesh.block_list:
            blk.cost = 1.0
        mesh.block_list[0].cost = 16.0
        plan = balance(mesh, 2)
        # The heavy first block should sit alone-ish: rank 0 gets few blocks.
        n0 = sum(1 for r in plan.assignments if r == 0)
        assert n0 < mesh.num_blocks / 2
