"""The repro.api surface: RunSpec identity, Simulation facade, builders."""

import pickle

import pytest

from repro.api import (
    ConfigError,
    ProgressEvent,
    RunSpec,
    Simulation,
    build_execution_config,
    build_optimization_flags,
    build_simulation_params,
    iter_progress,
    run,
)
from repro.core.characterize import characterize
from repro.driver.execution import ExecutionConfig, OptimizationFlags
from repro.driver.params import SimulationParams


def small_spec(**overrides) -> RunSpec:
    fields = dict(
        params=SimulationParams(
            ndim=2, mesh_size=32, block_size=8, num_levels=2, num_scalars=1
        ),
        config=ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=1),
        ncycles=2,
        warmup=1,
        label="small",
    )
    fields.update(overrides)
    return RunSpec(**fields)


class TestRunSpecRoundTrips:
    def test_pickle_round_trip(self):
        """Worker pools ship RunSpecs between processes."""
        spec = small_spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.cache_key() == spec.cache_key()

    def test_deck_round_trip(self):
        spec = small_spec()
        clone = RunSpec.from_deck(spec.to_deck())
        assert clone.params == spec.params
        assert clone.config == spec.config
        assert (clone.ncycles, clone.warmup) == (2, 1)
        assert clone.label == "small"
        assert clone.cache_key() == spec.cache_key()

    def test_deck_round_trip_cpu(self):
        spec = small_spec(
            config=ExecutionConfig(backend="cpu", cpu_ranks=4), label=""
        )
        clone = RunSpec.from_deck(spec.to_deck())
        assert clone.config == spec.config
        assert clone.cache_key() == spec.cache_key()

    def test_from_file(self, tmp_path):
        path = tmp_path / "spec.vibe"
        path.write_text(small_spec().to_deck())
        assert RunSpec.from_file(path) == small_spec()

    def test_explicit_overrides_beat_deck(self):
        clone = RunSpec.from_deck(small_spec().to_deck(), ncycles=7, warmup=0)
        assert (clone.ncycles, clone.warmup) == (7, 0)

    def test_invalid_cycles_rejected(self):
        with pytest.raises(ConfigError):
            small_spec(ncycles=0)
        with pytest.raises(ConfigError):
            small_spec(warmup=-1)


class TestCacheKey:
    def test_stable_across_instances(self):
        assert small_spec().cache_key() == small_spec().cache_key()

    @pytest.mark.parametrize(
        "change",
        [
            {"ncycles": 3},
            {"warmup": 0},
            {"params": SimulationParams(
                ndim=2, mesh_size=64, block_size=8, num_levels=2, num_scalars=1
            )},
            {"params": SimulationParams(
                ndim=2, mesh_size=32, block_size=16, num_levels=2, num_scalars=1
            )},
            {"params": SimulationParams(
                ndim=2, mesh_size=32, block_size=8, num_levels=3, num_scalars=1
            )},
            {"config": ExecutionConfig(backend="cpu", cpu_ranks=4)},
            {"config": ExecutionConfig(ranks_per_gpu=2)},
            {"config": ExecutionConfig(kernel_mode="per_block")},
            {"config": ExecutionConfig(
                optimizations=OptimizationFlags(pooled_block_allocation=True)
            )},
        ],
        ids=[
            "ncycles", "warmup", "mesh", "block", "levels",
            "backend", "ranks", "kernel_mode", "optimizations",
        ],
    )
    def test_any_field_change_changes_key(self, change):
        assert small_spec(**change).cache_key() != small_spec().cache_key()

    def test_label_is_identity_neutral(self):
        """Relabeling must not invalidate cached artifacts."""
        assert (
            small_spec(label="renamed").cache_key() == small_spec().cache_key()
        )


class TestBuilders:
    def test_happy_path_matches_direct_construction(self):
        built = build_execution_config(
            backend="cpu", cpu_ranks=8, kernel_mode="per_block"
        )
        assert built == ExecutionConfig(
            backend="cpu", cpu_ranks=8, kernel_mode="per_block"
        )

    def test_kernel_mode_typo_lists_choices(self):
        with pytest.raises(ConfigError, match="packed, per_block"):
            build_execution_config(kernel_mode="paked")
        with pytest.raises(ConfigError, match="did you mean 'packed'"):
            build_execution_config(kernel_mode="paked")

    def test_unknown_option_suggests_fix(self):
        with pytest.raises(ConfigError, match="did you mean 'kernel_mode'"):
            build_execution_config(kernal_mode="packed")

    def test_mode_and_backend_typos(self):
        with pytest.raises(ConfigError, match="modeled, numeric"):
            build_execution_config(mode="modelled")
        with pytest.raises(ConfigError, match="gpu, cpu"):
            build_execution_config(backend="gpus")

    def test_range_errors_still_config_errors(self):
        with pytest.raises(ConfigError):
            build_execution_config(backend="cpu", cpu_ranks=0)

    def test_optimizations_dict_and_typo(self):
        cfg = build_execution_config(
            optimizations={"pooled_block_allocation": True}
        )
        assert cfg.optimizations.pooled_block_allocation
        with pytest.raises(ConfigError, match="pooled_block_allocation"):
            build_optimization_flags(pooled_blok_allocation=True)
        with pytest.raises(ConfigError, match="must be a bool"):
            build_optimization_flags(pooled_block_allocation=1)

    def test_speedup_constants_not_settable(self):
        with pytest.raises(ConfigError):
            build_optimization_flags(POOL_SPEEDUP=2.0)

    def test_simulation_params_builder(self):
        with pytest.raises(ConfigError, match="did you mean 'mesh_size'"):
            build_simulation_params(mesh_sze=64)
        with pytest.raises(ConfigError, match="weno5, plm"):
            build_simulation_params(reconstruction="weno")


class TestSimulationFacade:
    def test_run_and_result(self):
        sim = Simulation(small_spec())
        result = sim.run()
        assert result.fom > 0
        assert sim.result() is result  # cached, no rerun

    def test_result_runs_lazily(self):
        sim = Simulation(small_spec())
        assert sim.result().fom > 0

    def test_from_deck_text(self):
        sim = Simulation.from_deck(small_spec().to_deck())
        assert sim.spec == small_spec()

    def test_from_deck_path(self, tmp_path):
        path = tmp_path / "a.vibe"
        path.write_text(small_spec().to_deck())
        assert Simulation.from_deck(str(path)).spec == small_spec()

    def test_rejects_non_spec(self):
        with pytest.raises(ConfigError, match="RunSpec"):
            Simulation({"mesh": 64})

    def test_run_convenience_matches_facade(self):
        assert run(small_spec()).fom == Simulation(small_spec()).run().fom

    def test_mpi_counters_populated(self):
        result = run(small_spec())
        assert result.mpi_counters["allreduce_calls"] > 0
        assert "remote_bytes" in result.mpi_counters


class TestDeprecatedShim:
    def test_characterize_warns_and_matches(self):
        spec = small_spec()
        with pytest.warns(DeprecationWarning, match="RunSpec"):
            old = characterize(spec.params, spec.config, 2, 1)
        assert old.fom == Simulation(spec).run().fom


class TestJsonWire:
    """RunSpec.to_json / from_json — the service's submission schema."""

    def test_round_trip(self):
        spec = small_spec()
        clone = RunSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.cache_key() == spec.cache_key()

    def test_round_trip_with_optimizations(self):
        spec = small_spec(
            config=build_execution_config(
                backend="gpu",
                num_gpus=1,
                ranks_per_gpu=2,
                optimizations={"parallel_host_tasks": True},
            )
        )
        doc = spec.to_json()
        assert doc["config"]["optimizations"] == {"parallel_host_tasks": True}
        assert RunSpec.from_json(doc) == spec

    def test_deck_form(self):
        spec = small_spec()
        clone = RunSpec.from_json(
            {"deck": spec.to_deck(), "ncycles": 7}
        )
        assert clone.ncycles == 7
        assert clone.params == spec.params

    def test_deck_form_excludes_structured_form(self):
        with pytest.raises(ConfigError, match="not both"):
            RunSpec.from_json(
                {"deck": "x", "params": {"mesh_size": 32}}
            )

    def test_unknown_fields_rejected_at_every_layer(self):
        base = small_spec().to_json()
        for sabotage in (
            {"bogus": 1},
            {"params": dict(base["params"], bogus=1)},
            {"config": dict(base["config"], bogus=1)},
        ):
            doc = dict(base)
            doc.update(sabotage)
            with pytest.raises(ConfigError, match="bogus"):
                RunSpec.from_json(doc)

    def test_bad_types_become_config_errors(self):
        with pytest.raises(ConfigError):
            RunSpec.from_json("not an object")
        doc = small_spec().to_json()
        doc["ncycles"] = "three"
        with pytest.raises(ConfigError):
            RunSpec.from_json(doc)


class TestProgress:
    """iter_progress(): per-cycle events from MetricsRegistry snapshots."""

    def test_events_cover_warmup_and_measured_cycles(self):
        spec = small_spec()  # ncycles=2, warmup=1
        events = list(iter_progress(Simulation(spec)))
        assert len(events) == 3
        assert [e.cycle for e in events] == [1, 2, 3]
        assert events[0].warmup and not events[-1].warmup
        assert events[0].measured == 0
        assert events[-1].measured == spec.ncycles
        assert events[-1].done and not events[0].done

    def test_events_carry_metrics_counters(self):
        events = list(iter_progress(Simulation(small_spec())))
        final = events[-1]
        assert final.blocks > 0
        assert isinstance(final.counters, dict) and final.counters

    def test_observed_run_matches_plain_run(self):
        spec = small_spec()
        sim = Simulation(spec)
        for _ in iter_progress(sim):
            pass
        assert sim.result() == Simulation(spec).run()

    def test_event_dict_round_trip(self):
        event = list(iter_progress(Simulation(small_spec())))[-1]
        clone = ProgressEvent.from_dict(event.to_dict())
        assert clone == event

    def test_run_exception_surfaces_on_consumer(self, monkeypatch):
        sim = Simulation(small_spec())

        def explode(on_cycle=None):
            raise RuntimeError("mid-run failure")

        monkeypatch.setattr(sim, "run", explode)
        with pytest.raises(RuntimeError, match="mid-run failure"):
            list(iter_progress(sim))
