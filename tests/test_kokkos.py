"""Tests for the Kokkos-style instrumentation layer."""

import pytest

from repro.kokkos.kernel import (
    KERNEL_PROFILES,
    KernelLaunch,
    REFERENCE_NCOMP,
    make_launch,
)
from repro.kokkos.memory import (
    KOKKOS_MESH,
    MPI_BUFFERS,
    MemoryTracker,
    OutOfMemoryError,
)
from repro.kokkos.profiler import Profiler
from repro.kokkos.space import ExecutionSpace
from repro.observability import NULL_RECORDER, TraceRecorder


class TestSpaces:
    def test_device_detection(self):
        assert ExecutionSpace.CUDA.is_device
        assert not ExecutionSpace.HOST_OPENMP.is_device


class TestKernelProfiles:
    def test_table3_kernels_registered(self):
        expected = {
            "CalculateFluxes",
            "FirstDerivative",
            "MassHistory",
            "WeightedSumData",
            "SendBoundBufs",
            "SetBounds",
            "FluxDivergence",
            "EstimateTimestepMesh",
            "ProlongationRestrictionLoop",
            "CalculateDerived",
        }
        assert expected <= set(KERNEL_PROFILES)

    def test_calculate_fluxes_matches_paper_character(self):
        p = KERNEL_PROFILES["CalculateFluxes"]
        assert p.registers_per_thread > 100  # the >100-register finding
        assert p.effective_warps_per_block == 1  # 1 of 4 warps useful
        assert p.line_kernel
        assert 3.0 < p.arithmetic_intensity < 5.0  # Table III: 4.3/3.4

    def test_copy_kernels_have_sub_one_intensity(self):
        for name in ("SendBoundBufs", "SetBounds", "WeightedSumData"):
            assert KERNEL_PROFILES[name].arithmetic_intensity < 1.0

    def test_make_launch_scales_with_ncomp(self):
        a = make_launch(
            "CalculateFluxes", ExecutionSpace.CUDA, cells=1000, block_nx=16,
            ncomp=REFERENCE_NCOMP,
        )
        b = make_launch(
            "CalculateFluxes", ExecutionSpace.CUDA, cells=1000, block_nx=16,
            ncomp=REFERENCE_NCOMP * 2,
        )
        assert b.flops == pytest.approx(2 * a.flops)
        assert b.bytes == pytest.approx(2 * a.bytes)

    def test_launch_profile_lookup(self):
        launch = make_launch(
            "SetBounds", ExecutionSpace.CUDA, cells=10, block_nx=8
        )
        assert launch.profile.name == "SetBounds"
        bad = KernelLaunch(
            "NoSuchKernel", ExecutionSpace.CUDA, cells=1, flops=1, bytes=1
        )
        with pytest.raises(KeyError):
            bad.profile

    def test_default_lines_from_cells(self):
        launch = make_launch(
            "CalculateFluxes", ExecutionSpace.CUDA, cells=4096, block_nx=16
        )
        assert launch.lines == 256


class TestProfiler:
    def test_attribution_to_innermost_region(self):
        prof = Profiler()
        with prof.region("Step"):
            with prof.region("CalculateFluxes"):
                prof.add_serial(1.0)
                prof.add_kernel("CalculateFluxes", 2.0)
            prof.add_serial(0.5)
        assert prof.regions["CalculateFluxes"].serial == 1.0
        assert prof.regions["CalculateFluxes"].kernel == 2.0
        assert prof.regions["Step"].serial == 0.5

    def test_toplevel_fallback(self):
        prof = Profiler()
        prof.add_serial(0.25)
        assert prof.regions[Profiler.TOPLEVEL].serial == 0.25

    def test_totals_and_fraction(self):
        prof = Profiler()
        with prof.region("A"):
            prof.add_serial(3.0)
            prof.add_kernel("K", 1.0)
        assert prof.total_seconds == 4.0
        assert prof.kernel_fraction() == 0.25

    def test_negative_time_rejected(self):
        prof = Profiler()
        with pytest.raises(ValueError):
            prof.add_serial(-1.0)
        with pytest.raises(ValueError):
            prof.add_kernel("K", -1.0)

    def test_top_kernels_ranked(self):
        prof = Profiler()
        prof.add_kernel("A", 1.0)
        prof.add_kernel("B", 5.0)
        prof.add_kernel("C", 2.0)
        assert [k for k, _ in prof.top_kernels(2)] == ["B", "C"]

    def test_function_breakdown_sorted(self):
        prof = Profiler()
        with prof.region("small"):
            prof.add_serial(1.0)
        with prof.region("big"):
            prof.add_serial(9.0)
        assert list(prof.function_breakdown()) == ["big", "small"]

    def test_event_timeline_recorded(self):
        prof = Profiler(recorder=TraceRecorder())
        with prof.region("A"):
            prof.add_serial(1.0)
            prof.add_kernel("K", 2.0)
        assert len(prof.events) == 2
        (r0, c0, k0, s0, d0, _), (r1, c1, k1, s1, d1, _) = prof.events
        assert (r0, c0, k0, s0, d0) == ("A", "serial", None, 0.0, 1.0)
        assert (r1, c1, k1, s1, d1) == ("A", "kernel", "K", 1.0, 2.0)

    def test_untraced_profiler_retains_no_events(self):
        prof = Profiler()
        assert prof.recorder is NULL_RECORDER
        with prof.region("A"):
            prof.add_serial(1.0)
            prof.add_kernel("K", 2.0)
        assert prof.events == []
        assert prof.regions["A"].total == 3.0  # accounting unaffected

    def test_chrome_trace_export(self):
        import json

        prof = Profiler(recorder=TraceRecorder())
        with prof.region("Step"):
            prof.add_kernel("CalculateFluxes", 0.5)
            prof.add_serial(0.25)
        trace = prof.to_chrome_trace()
        text = json.dumps(trace)  # must be JSON-serializable
        assert "CalculateFluxes" in text
        events = trace["traceEvents"]
        assert events[0]["ph"] == "X"
        assert events[0]["tid"] == 2  # kernel lane
        assert events[1]["tid"] == 1  # serial lane
        assert events[1]["ts"] == pytest.approx(0.5e6)

    def test_merge(self):
        a, b = Profiler(), Profiler()
        with a.region("X"):
            a.add_kernel("K", 1.0)
        with b.region("X"):
            b.add_kernel("K", 2.0)
            b.add_serial(1.0)
        b.end_cycle()
        a.merge(b)
        assert a.regions["X"].kernel == 3.0
        assert a.kernel_launches["K"] == 2
        assert a.cycles == 1


class TestMemoryTracker:
    def test_allocate_free_roundtrip(self):
        t = MemoryTracker()
        t.allocate(KOKKOS_MESH, 100, rank=0)
        t.allocate(KOKKOS_MESH, 50, rank=1)
        assert t.current(KOKKOS_MESH) == 150
        t.free(KOKKOS_MESH, 40, rank=0)
        assert t.current(KOKKOS_MESH, rank=0) == 60

    def test_high_water_persists(self):
        t = MemoryTracker()
        t.allocate(MPI_BUFFERS, 100)
        t.free(MPI_BUFFERS, 100)
        assert t.current(MPI_BUFFERS) == 0
        assert t.high_water(MPI_BUFFERS) == 100

    def test_over_free_rejected(self):
        t = MemoryTracker()
        t.allocate(KOKKOS_MESH, 10)
        with pytest.raises(ValueError):
            t.free(KOKKOS_MESH, 20)

    def test_set_level(self):
        t = MemoryTracker()
        t.set_level(MPI_BUFFERS, 500, rank=2)
        t.set_level(MPI_BUFFERS, 300, rank=2)
        assert t.current(MPI_BUFFERS) == 300
        assert t.high_water(MPI_BUFFERS) == 500

    def test_breakdown(self):
        t = MemoryTracker()
        t.allocate(KOKKOS_MESH, 100, rank=0)
        t.allocate(KOKKOS_MESH, 100, rank=1)
        t.allocate(MPI_BUFFERS, 50, rank=0)
        assert t.breakdown() == {KOKKOS_MESH: 200, MPI_BUFFERS: 50}

    def test_oom_check(self):
        t = MemoryTracker(device_capacity_bytes=1000)
        t.allocate(KOKKOS_MESH, 900)
        t.check_capacity()
        t.allocate(MPI_BUFFERS, 200)
        with pytest.raises(OutOfMemoryError, match="device memory exhausted"):
            t.check_capacity()


class TestProfilerInvariants:
    """Structural consistency of the profiler after a full driver run.

    These pin the accounting contract the launch-overhead analysis rests
    on: balanced region scoping, a gap-free simulated timeline, and
    region totals that re-sum to the wall clock.
    """

    @pytest.fixture(scope="class")
    def prof(self):
        from repro.driver.driver import ParthenonDriver
        from repro.driver.execution import ExecutionConfig
        from repro.driver.params import SimulationParams
        from repro.solver.initial_conditions import gaussian_blob

        params = SimulationParams(
            ndim=2, mesh_size=32, block_size=8, num_levels=2, num_scalars=1
        )
        config = ExecutionConfig(
            backend="gpu", num_gpus=1, ranks_per_gpu=2, mode="numeric"
        )
        driver = ParthenonDriver(
            params,
            config,
            initial_conditions=lambda mesh, pkg: gaussian_blob(
                mesh, pkg, amplitude=0.8, width=0.15
            ),
            recorder=TraceRecorder(),
        )
        driver.run(3)
        return driver.prof

    def test_region_stack_balanced(self, prof):
        assert prof._stack == []
        assert prof.current_region == Profiler.TOPLEVEL

    def test_event_durations_nonnegative(self, prof):
        assert prof.events
        assert all(dur >= 0.0 for _, _, _, _, dur, _ in prof.events)

    def test_events_tile_the_timeline(self, prof):
        now = 0.0
        for _, _, _, start, dur, _ in prof.events:
            assert start == pytest.approx(now, abs=1e-9)
            now += dur

    def test_region_totals_sum_to_wall_clock(self, prof):
        by_region = sum(t.serial + t.kernel for t in prof.regions.values())
        by_events = sum(dur for _, _, _, _, dur, _ in prof.events)
        assert by_region == pytest.approx(prof.total_seconds, abs=1e-9)
        assert by_events == pytest.approx(prof.total_seconds, abs=1e-9)

    def test_kernel_bins_match_kernel_events(self, prof):
        by_event = {}
        for _, category, kernel, _, dur, _ in prof.events:
            if category == "kernel":
                by_event[kernel] = by_event.get(kernel, 0.0) + dur
        assert set(by_event) == set(prof.kernel_seconds)
        for name, total in prof.kernel_seconds.items():
            assert by_event[name] == pytest.approx(total, abs=1e-9)

    def test_cycle_tags_monotonic(self, prof):
        cycles = [cycle for _, _, _, _, _, cycle in prof.events]
        assert cycles == sorted(cycles)
        assert prof.cycles == 3
