"""Shared pytest plumbing.

``--update-goldens`` regenerates every committed golden trace instead of
asserting against it (the golden-update policy is in DESIGN §8: update
only alongside the schema or model change that motivated it, and review
the diff).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite committed golden trace files from the current code "
        "instead of asserting byte-equality against them",
    )


@pytest.fixture
def update_goldens(request):
    return request.config.getoption("--update-goldens")
