"""Tests for the instrumented Parthenon driver."""

import pytest

from repro.driver.driver import ParthenonDriver
from repro.driver.execution import ExecutionConfig, OptimizationFlags
from repro.driver.params import SimulationParams
from repro.solver.initial_conditions import gaussian_blob


def small_params(**kw):
    defaults = dict(
        ndim=2,
        mesh_size=64,
        block_size=16,
        num_levels=2,
        num_scalars=1,
        wavefront_width=0.05,
    )
    defaults.update(kw)
    return SimulationParams(**defaults)


def gpu_config(**kw):
    defaults = dict(backend="gpu", num_gpus=1, ranks_per_gpu=1, mode="modeled")
    defaults.update(kw)
    return ExecutionConfig(**defaults)


class TestParams:
    def test_geometry_respects_reconstruction_ghosts(self):
        assert small_params(reconstruction="weno5").geometry().ng == 4
        assert small_params(reconstruction="plm").geometry().ng == 2

    def test_ncomp(self):
        assert SimulationParams(ndim=3, num_scalars=8).ncomp == 11


class TestExecutionConfig:
    def test_total_ranks_gpu(self):
        c = ExecutionConfig(backend="gpu", num_gpus=4, ranks_per_gpu=3)
        assert c.total_ranks == 12
        assert c.devices_total == 4

    def test_total_ranks_cpu(self):
        c = ExecutionConfig(backend="cpu", cpu_ranks=48)
        assert c.total_ranks == 48
        assert c.devices_total == 0

    def test_multinode_ranks(self):
        c = ExecutionConfig(backend="gpu", num_gpus=8, ranks_per_gpu=1, num_nodes=2)
        assert c.total_ranks == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionConfig(backend="tpu")
        with pytest.raises(ValueError):
            ExecutionConfig(mode="real")
        with pytest.raises(ValueError):
            ExecutionConfig(backend="cpu", cpu_ranks=200)

    def test_describe(self):
        assert "1 GPU - 4R" in gpu_config(ranks_per_gpu=4).describe()


class TestModeledRun:
    def test_run_produces_positive_times(self):
        d = ParthenonDriver(small_params(), gpu_config())
        r = d.run(3)
        assert r.cycles == 3
        assert r.wall_seconds > 0
        assert r.kernel_seconds > 0
        assert r.serial_seconds > 0
        assert r.fom > 0
        assert r.zone_cycles == r.cell_updates > 0

    def test_function_breakdown_has_paper_functions(self):
        d = ParthenonDriver(small_params(), gpu_config())
        r = d.run(2)
        for fn in (
            "CalculateFluxes",
            "SendBoundBufs",
            "ReceiveBoundBufs",
            "SetBounds",
            "RedistributeAndRefineMeshBlocks",
            "UpdateMeshBlockTree",
            "Refinement::Tag",
            "EstimateTimeStep",
        ):
            assert fn in r.function_breakdown, fn

    def test_refinement_front_grows_blocks(self):
        d = ParthenonDriver(small_params(num_levels=3), gpu_config())
        before = d.mesh.num_blocks
        d.run(3)
        assert d.mesh.num_blocks > before

    def test_warmup_resets_metrics(self):
        d = ParthenonDriver(small_params(), gpu_config())
        r = d.run(2, warmup=2)
        assert r.cycles == 2
        assert d.cycle == 4

    def test_deterministic(self):
        a = ParthenonDriver(small_params(), gpu_config()).run(3)
        b = ParthenonDriver(small_params(), gpu_config()).run(3)
        assert a.wall_seconds == b.wall_seconds
        assert a.cells_communicated == b.cells_communicated

    def test_memory_breakdown_labels(self):
        d = ParthenonDriver(small_params(), gpu_config())
        r = d.run(2)
        assert set(r.memory_breakdown) == {
            "kokkos_mesh",
            "kokkos_aux",
            "mpi_buffers",
            "mpi_driver",
        }
        assert r.device_memory_peak > 0

    def test_cpu_backend_runs(self):
        d = ParthenonDriver(
            small_params(), ExecutionConfig(backend="cpu", cpu_ranks=16)
        )
        r = d.run(2)
        assert r.fom > 0


class TestScalingTrends:
    """The paper's headline qualitative findings, as assertions."""

    def test_smaller_blocks_hurt_gpu_fom(self):
        """Fig. 5: GPU FOM declines as MeshBlockSize shrinks."""
        foms = {}
        for block in (8, 16):
            p = SimulationParams(
                ndim=2, mesh_size=64, block_size=block, num_levels=2,
                num_scalars=1, wavefront_width=0.05,
            )
            foms[block] = ParthenonDriver(p, gpu_config()).run(3).fom
        assert foms[16] > foms[8]

    def test_more_levels_hurt_gpu_fom(self):
        """Fig. 6: deeper AMR reduces GPU FOM."""
        foms = {}
        for lvl in (1, 3):
            p = small_params(num_levels=lvl)
            foms[lvl] = ParthenonDriver(p, gpu_config()).run(3).fom
        assert foms[1] > foms[3]

    def test_more_ranks_help_then_hurt_gpu(self):
        """Fig. 8: a sweet spot exists in ranks per GPU."""
        foms = {}
        for r in (1, 8, 64):
            p = small_params(num_levels=3)
            foms[r] = ParthenonDriver(p, gpu_config(ranks_per_gpu=r)).run(3).fom
        assert foms[8] > foms[1]
        assert foms[8] > foms[64]

    def test_cpu_scales_with_ranks(self):
        """Fig. 7: CPU runtime falls with core count."""
        times = {}
        for r in (4, 48):
            p = small_params()
            d = ParthenonDriver(p, ExecutionConfig(backend="cpu", cpu_ranks=r))
            times[r] = d.run(2).wall_seconds
        assert times[48] < times[4]

    def test_gpu_kernel_fraction_small_at_one_rank(self):
        """Fig. 9: 1-rank GPU runs are dominated by serial time."""
        p = small_params(num_levels=3, block_size=16)
        r = ParthenonDriver(p, gpu_config()).run(3)
        assert r.serial_seconds > r.kernel_seconds

    def test_redistribute_dominates_gpu_1r_serial(self):
        """Fig. 11: RedistributeAndRefineMeshBlocks is the largest function
        in low-concurrency GPU runs."""
        p = small_params(num_levels=3, block_size=16)
        r = ParthenonDriver(p, gpu_config()).run(3)
        top = next(iter(r.function_breakdown))
        assert top == "RedistributeAndRefineMeshBlocks"


class TestNumericMode:
    def test_numeric_run_conserves_mass(self):
        p = SimulationParams(
            ndim=2, mesh_size=32, block_size=8, num_levels=2,
            num_scalars=1, reconstruction="plm",
        )
        d = ParthenonDriver(
            p, gpu_config(mode="numeric"), initial_conditions=gaussian_blob
        )
        r = d.run(4)
        assert len(r.history) == 4
        first, last = r.history[0], r.history[-1]
        assert last.scalar_totals[0] == pytest.approx(
            first.scalar_totals[0], rel=1e-10
        )

    def test_numeric_refinement_follows_the_pulse(self):
        p = SimulationParams(
            ndim=2, mesh_size=32, block_size=8, num_levels=2,
            num_scalars=1, reconstruction="plm",
        )
        d = ParthenonDriver(
            p, gpu_config(mode="numeric"), initial_conditions=gaussian_blob
        )
        d.run(2)
        assert d.mesh.num_blocks > 16  # the blob triggered refinement


class TestOptimizations:
    def test_integer_indexing_reduces_serial(self):
        p = small_params(num_levels=3)
        base = ParthenonDriver(p, gpu_config()).run(3)
        opt = ParthenonDriver(
            p,
            gpu_config(
                optimizations=OptimizationFlags(integer_variable_indexing=True)
            ),
        ).run(3)
        assert opt.serial_seconds < base.serial_seconds

    def test_pooled_allocation_reduces_serial(self):
        p = small_params(num_levels=3)
        base = ParthenonDriver(p, gpu_config()).run(3)
        opt = ParthenonDriver(
            p,
            gpu_config(
                optimizations=OptimizationFlags(pooled_block_allocation=True)
            ),
        ).run(3)
        assert opt.serial_seconds < base.serial_seconds

    def test_restructured_kernels_reduce_memory(self):
        p = SimulationParams(
            ndim=3, mesh_size=64, block_size=8, num_levels=2, num_scalars=8,
        )
        base = ParthenonDriver(p, gpu_config()).run(2)
        opt = ParthenonDriver(
            p,
            gpu_config(
                optimizations=OptimizationFlags(restructured_kernels=True)
            ),
        ).run(2)
        assert (
            opt.memory_breakdown["kokkos_aux"]
            < base.memory_breakdown["kokkos_aux"]
        )

    def test_parallel_host_tasks_reduce_serial(self):
        p = small_params(num_levels=3, wavefront_speed=0.08)
        base = ParthenonDriver(p, gpu_config()).run(4)
        opt = ParthenonDriver(
            p,
            gpu_config(
                optimizations=OptimizationFlags(parallel_host_tasks=True)
            ),
        ).run(4)
        assert opt.serial_seconds < base.serial_seconds
        assert opt.rebuild_buffer_cache_seconds < base.rebuild_buffer_cache_seconds

    def test_restructured_kernels_rename_flux_kernel(self):
        p = small_params()
        d = ParthenonDriver(
            p,
            gpu_config(
                optimizations=OptimizationFlags(restructured_kernels=True)
            ),
        )
        r = d.run(2)
        assert "CalculateFluxes3D" in r.kernel_seconds_by_name
        assert "CalculateFluxes" not in r.kernel_seconds_by_name
