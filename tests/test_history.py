"""Tests for MassHistory-style reductions."""

import numpy as np
import pytest

from repro.mesh.mesh import Mesh, MeshGeometry
from repro.solver.burgers import BurgersConfig, BurgersPackage, CONSERVED, DERIVED
from repro.solver.history import reduce_history


def make(ndim=2, num_scalars=2):
    pkg = BurgersPackage(ndim, BurgersConfig(num_scalars=num_scalars, reconstruction="plm"))
    geo = MeshGeometry(
        ndim=ndim,
        mesh_size=tuple(16 if a < ndim else 1 for a in range(3)),
        block_size=tuple(8 if a < ndim else 1 for a in range(3)),
        ng=2,
        num_levels=1,
    )
    mesh = Mesh(geo, field_specs=pkg.field_specs())
    return mesh, pkg


class TestReduceHistory:
    def test_uniform_scalar_total(self):
        mesh, pkg = make()
        for blk in mesh.block_list:
            blk.fields[CONSERVED][...] = 0.0
            blk.fields[CONSERVED][pkg.nvel] = 3.0  # q0
        row = reduce_history(mesh, pkg, cycle=5, time=0.25)
        # Domain volume is 1, so total q0 = 3.0.
        assert row.scalar_totals[0] == pytest.approx(3.0)
        assert row.scalar_totals[1] == pytest.approx(0.0)
        assert row.cycle == 5 and row.time == 0.25

    def test_momentum_and_max_speed(self):
        mesh, pkg = make()
        for blk in mesh.block_list:
            blk.fields[CONSERVED][0] = -0.5
            blk.fields[CONSERVED][1] = 0.25
        row = reduce_history(mesh, pkg, 0, 0.0)
        assert row.momentum_totals[0] == pytest.approx(-0.5)
        assert row.momentum_totals[1] == pytest.approx(0.25)
        assert row.max_speed == pytest.approx(0.5)

    def test_total_d_uses_derived_field(self):
        mesh, pkg = make()
        for blk in mesh.block_list:
            blk.fields[DERIVED][...] = 2.0
        row = reduce_history(mesh, pkg, 0, 0.0)
        assert row.total_d == pytest.approx(2.0)

    def test_volume_weighting_across_levels(self):
        mesh, pkg = make()
        mesh.remesh(refine=[mesh.block_list[0].lloc], derefine=[])
        for blk in mesh.block_list:
            blk.fields[CONSERVED][...] = 0.0
            blk.fields[CONSERVED][pkg.nvel] = 1.0
        row = reduce_history(mesh, pkg, 0, 0.0)
        # Uniform q0=1 integrates to the domain volume regardless of levels.
        assert row.scalar_totals[0] == pytest.approx(1.0)
