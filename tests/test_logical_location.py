"""Tests for LogicalLocation arithmetic and Morton ordering."""

import pytest
from hypothesis import given, strategies as st

from repro.mesh.logical_location import LogicalLocation, _interleave_bits


class TestParentChild:
    def test_parent_halves_coordinates(self):
        loc = LogicalLocation(2, 5, 3, 7)
        assert loc.parent() == LogicalLocation(1, 2, 1, 3)

    def test_base_block_has_no_parent(self):
        with pytest.raises(ValueError):
            LogicalLocation(0, 0, 0, 0).parent()

    @pytest.mark.parametrize("ndim,expected", [(1, 2), (2, 4), (3, 8)])
    def test_children_count(self, ndim, expected):
        loc = LogicalLocation(1, 1, 0 if ndim < 2 else 1, 0 if ndim < 3 else 1)
        kids = list(loc.children(ndim))
        assert len(kids) == expected
        assert len(set(kids)) == expected

    def test_children_are_at_next_level(self):
        loc = LogicalLocation(0, 3, 2, 1)
        for child in loc.children(3):
            assert child.level == 1
            assert child.parent() == loc

    def test_child_index_roundtrip(self):
        loc = LogicalLocation(1, 2, 3, 0)
        for child in loc.children(2):
            idx = child.child_index(2)
            assert child == LogicalLocation(
                2, 2 * loc.lx1 + idx[0], 2 * loc.lx2 + idx[1], 0
            )

    def test_child_index_inactive_dims_zero(self):
        loc = LogicalLocation(1, 3, 0, 0)
        assert loc.child_index(1) == (1, 0, 0)


class TestAncestry:
    def test_is_ancestor_of_direct_child(self):
        parent = LogicalLocation(0, 1, 1, 0)
        for child in parent.children(2):
            assert parent.is_ancestor_of(child)
            assert not child.is_ancestor_of(parent)

    def test_is_ancestor_of_grandchild(self):
        root = LogicalLocation(0, 0, 0, 0)
        grandchild = LogicalLocation(2, 3, 1, 0)
        assert root.is_ancestor_of(grandchild)

    def test_not_ancestor_of_self(self):
        loc = LogicalLocation(1, 1, 0, 0)
        assert not loc.is_ancestor_of(loc)
        assert loc.contains(loc)

    def test_sibling_is_not_ancestor(self):
        a = LogicalLocation(1, 0, 0, 0)
        b = LogicalLocation(1, 1, 0, 0)
        assert not a.is_ancestor_of(b)
        assert not a.contains(b)


class TestMorton:
    def test_interleave_simple(self):
        # x=1, y=0, z=0 -> bit 0 set; x=0, y=1 -> bit 1 set.
        assert _interleave_bits((1, 0, 0), 1) == 1
        assert _interleave_bits((0, 1, 0), 1) == 2
        assert _interleave_bits((0, 0, 1), 1) == 4

    def test_descendants_form_contiguous_key_range(self):
        parent = LogicalLocation(1, 1, 0, 0)
        other = LogicalLocation(1, 0, 1, 0)
        max_level = 3
        parent_kids = [
            c.morton_key(max_level)
            for child in parent.children(2)
            for c in child.children(2)
        ]
        outside = other.morton_key(max_level)
        lo, hi = min(parent_kids), max(parent_kids)
        assert not (lo <= outside <= hi)

    def test_morton_rejects_too_shallow_max_level(self):
        with pytest.raises(ValueError):
            LogicalLocation(3, 1, 1, 1).morton_key(2)

    @given(
        st.integers(0, 3),
        st.integers(0, 7),
        st.integers(0, 7),
        st.integers(0, 7),
    )
    def test_parent_sorts_before_descendants(self, level, i, j, k):
        loc = LogicalLocation(level, i, j, k)
        child = next(iter(loc.children(3)))
        assert loc.morton_key(level + 2) < child.morton_key(level + 2)

    @given(st.integers(0, 31), st.integers(0, 31))
    def test_keys_distinct_for_distinct_coords(self, i, j):
        a = LogicalLocation(2, i % 4, j % 4, 0)
        b = LogicalLocation(2, j % 4, i % 4, 0)
        if a != b:
            assert a.morton_key(4) != b.morton_key(4)


class TestOffset:
    def test_offset_moves_coordinates(self):
        loc = LogicalLocation(2, 4, 5, 6)
        assert loc.offset(1, -1, 0) == LogicalLocation(2, 5, 4, 6)

    def test_offset_preserves_level(self):
        assert LogicalLocation(3, 0, 0, 0).offset(2).level == 3
