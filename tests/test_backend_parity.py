"""Cross-backend differential harness (ISSUE 6 tentpole gate).

Every registered kernel backend must reproduce the ``numpy`` reference
engine on the packed Burgers path:

* full-driver state parity at ``atol = 1e-13`` — conserved state,
  derived field, face fluxes and history reductions after several
  cycles, on a smooth (Gaussian blob) and a shock (Riemann) deck, in
  both kernel modes (per_block runs never touch the backend, so its
  result must be backend-independent *exactly*);
* flux-stage parity of each engine against the reference engine on one
  shared pack, across all four reconstruction x Riemann combinations;
* 0-ULP golden-trace invariance: the canonical trace of a numeric run
  is byte-identical across backends apart from the ``kernel_backend``
  metadata field.

Backends whose runtime dependency is missing are exercised through
their pure-Python/host code paths (the numba loop bodies run unjitted;
the cupy engine runs with ``xp=numpy``), so this file tests the real
algebra of every backend even on a numpy-only machine; the CI
backend-matrix job repeats it with numba actually installed.
"""

import dataclasses
import json
from functools import lru_cache

import numpy as np
import pytest

from repro.api import RunSpec, Simulation, build_execution_config
from repro.comm.bvals import BoundaryExchange
from repro.comm.mpi import SimMPI
from repro.driver.driver import ParthenonDriver
from repro.driver.params import SimulationParams
from repro.kernels.backends import available_backends, backend_names
from repro.kernels.backends.cupy_backend import CupyBurgersKernels, flux_stage_xp
from repro.kernels.backends.numba_backend import (
    NumbaBurgersKernels,
    _flux_sweep_pack,
)
from repro.kernels.backends.numpy_backend import PackedBurgersKernels
from repro.mesh.mesh import Mesh
from repro.observability import to_canonical_json
from repro.solver.burgers import BASE, BurgersPackage, CONSERVED, DERIVED
from repro.solver.initial_conditions import gaussian_blob, shock_tube
from repro.solver.packs import build_numeric_pack
from repro.solver.reconstruction import face_states
from repro.solver.riemann import RIEMANN_SOLVERS

ATOL = 1e-13
NCYCLES = 3

DECKS = {
    "smooth": lambda mesh, pkg: gaussian_blob(
        mesh, pkg, amplitude=0.8, width=0.15
    ),
    "shock": lambda mesh, pkg: shock_tube(mesh, pkg),
}


# ------------------------------------------------------------ driver level


@lru_cache(maxsize=None)
def run_driver(kernel_backend, deck, kernel_mode="packed"):
    params = SimulationParams(
        ndim=2, mesh_size=32, block_size=16, num_levels=2, num_scalars=2
    )
    cfg = build_execution_config(
        backend="gpu",
        mode="numeric",
        kernel_mode=kernel_mode,
        kernel_backend=kernel_backend,
    )
    driver = ParthenonDriver(params, cfg, initial_conditions=DECKS[deck])
    driver.run(NCYCLES)
    return driver


def assert_driver_parity(da, db):
    ba = {b.lloc: b for b in da.mesh.block_list}
    bb = {b.lloc: b for b in db.mesh.block_list}
    assert set(ba) == set(bb)  # identical refinement decisions
    for lloc, blk in ba.items():
        other = bb[lloc]
        np.testing.assert_allclose(
            blk.fields[CONSERVED], other.fields[CONSERVED], atol=ATOL, rtol=0
        )
        np.testing.assert_allclose(
            blk.fields[DERIVED], other.fields[DERIVED], atol=ATOL, rtol=0
        )
        for fa, fb in zip(blk.fluxes[CONSERVED], other.fluxes[CONSERVED]):
            if fa is None:
                assert fb is None
                continue
            np.testing.assert_allclose(fa, fb, atol=ATOL, rtol=0)
    assert len(da.history) == len(db.history) == NCYCLES
    for ha, hb in zip(da.history, db.history):
        assert ha.time == pytest.approx(hb.time, abs=ATOL)
        np.testing.assert_allclose(
            ha.scalar_totals, hb.scalar_totals, atol=ATOL, rtol=0
        )
        assert ha.max_speed == pytest.approx(hb.max_speed, abs=ATOL)


@pytest.mark.parametrize("deck", sorted(DECKS))
@pytest.mark.parametrize("backend", backend_names())
def test_driver_parity_vs_numpy(backend, deck):
    """Every registered backend matches the reference run at 1e-13.

    Unavailable backends resolve to the numpy fallback, making this a
    (still meaningful) fallback-equivalence check; with the dependency
    installed (CI backend-matrix) it is the real cross-engine gate.
    """
    db = run_driver(backend, deck)
    da = run_driver("numpy", deck)
    assert db.kernel_backend == (
        backend if backend in available_backends() else "numpy"
    )
    assert_driver_parity(da, db)


@pytest.mark.parametrize("backend", backend_names())
def test_per_block_mode_ignores_backend(backend):
    """kernel_mode=per_block never dispatches through the registry, so
    its state must be *bitwise* independent of the requested backend."""
    da = run_driver("numpy", "smooth", kernel_mode="per_block")
    db = run_driver(backend, "smooth", kernel_mode="per_block")
    assert db.kernel_backend == "numpy"
    for blk, other in zip(da.mesh.block_list, db.mesh.block_list):
        np.testing.assert_array_equal(
            blk.fields[CONSERVED], other.fields[CONSERVED]
        )


# ------------------------------------------------------------ engine level


def make_pack(recon="weno5", riemann="hll", deck="smooth", ndim=2):
    params = SimulationParams(
        ndim=ndim,
        mesh_size=16,
        block_size=8,
        num_levels=1,
        num_scalars=2,
        reconstruction=recon,
        riemann=riemann,
    )
    pkg = BurgersPackage(params.ndim, params.burgers_config())
    mesh = Mesh(params.geometry(), pkg.field_specs(), allocate=True)
    DECKS[deck](mesh, pkg)
    BoundaryExchange(mesh, SimMPI(1)).exchange([CONSERVED])
    for blk in mesh.block_list:
        pkg.prepare_block(blk)
    pack = build_numeric_pack(
        mesh, (CONSERVED, BASE, DERIVED), flux_field=CONSERVED
    )
    return pkg, pack


def reference_fluxes(pkg, pack):
    """Flux arrays of the numpy reference engine, copied out.

    Inactive axes (beyond ``ndim``) carry ``None`` and stay ``None``.
    """
    PackedBurgersKernels(pkg).calculate_fluxes(pack)
    return [
        None if f is None else np.array(f)
        for f in pack.flux_data[CONSERVED]
    ]


ENGINES = {
    # Pure-Python numba bodies (or the JIT when numba is installed).
    "numba": lambda pkg: NumbaBurgersKernels(pkg),
    # The cupy device code path executed in the numpy namespace.
    "cupy": lambda pkg: CupyBurgersKernels(pkg, xp=np),
}


@pytest.mark.parametrize("riemann", sorted(RIEMANN_SOLVERS))
@pytest.mark.parametrize("recon", ["weno5", "plm"])
@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_flux_stage_parity(engine, recon, riemann):
    pkg, pack = make_pack(recon, riemann, deck="shock")
    ref = reference_fluxes(pkg, pack)
    ENGINES[engine](pkg).calculate_fluxes(pack)
    assert_flux_parity(pack, ref)


@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_flux_stage_parity_3d(engine):
    pkg, pack = make_pack(ndim=3)
    ref = reference_fluxes(pkg, pack)
    ENGINES[engine](pkg).calculate_fluxes(pack)
    assert_flux_parity(pack, ref)


def assert_flux_parity(pack, ref):
    assert any(f is not None for f in ref)
    for a, expected in enumerate(ref):
        got = pack.flux_data[CONSERVED][a]
        if expected is None:
            assert got is None
            continue
        np.testing.assert_allclose(got, expected, atol=ATOL, rtol=0)


@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_non_flux_stages_bitwise(engine):
    """Divergence/update, FillDerived, save-base and the dt reduce are
    inherited/bitwise across engines — zero tolerance."""
    pkg, pack_a = make_pack()
    _, pack_b = make_pack()
    ref = PackedBurgersKernels(pkg)
    alt = ENGINES[engine](pkg)
    for eng, pack in ((ref, pack_a), (alt, pack_b)):
        eng.save_base(pack)
        eng.calculate_fluxes(pack)
        eng.flux_divergence_and_update(pack, 0.0, 1.0, 1e-3)
        eng.fill_derived(pack)
    np.testing.assert_allclose(
        pack_b.field(CONSERVED), pack_a.field(CONSERVED), atol=ATOL, rtol=0
    )
    # FillDerived consumes the (1e-13-close) updated state; save_base and
    # the dt reduce are bitwise on identical inputs.
    np.testing.assert_allclose(
        pack_b.field(DERIVED), pack_a.field(DERIVED), atol=ATOL, rtol=0
    )
    np.testing.assert_array_equal(pack_b.field(BASE), pack_a.field(BASE))
    np.testing.assert_allclose(
        alt.estimate_timestep(pack_b),
        ref.estimate_timestep(pack_a),
        atol=ATOL,
        rtol=0,
    )


def test_flux_sweep_matches_textbook_reference():
    """The numba sweep against the per-block textbook kernels directly
    (independent of the packed engines), both solvers and schemes."""
    rng = np.random.default_rng(7)
    ng, nxa, ncomp, nvel = 4, 6, 4, 2
    w = rng.normal(size=(2, ncomp, 1, 3, nxa + 2 * ng))
    for use_weno in (True, False):
        for use_hll, solver in ((True, "hll"), (False, "llf")):
            fx = np.zeros((2, ncomp, 1, 3, nxa + 1))
            # direction 0: tangential axes carry no ghosts in this fixture
            _flux_sweep_pack(
                w, fx, 0, ng, nxa, 0, 0, 1, 3, nvel, use_weno, use_hll
            )
            scheme = "weno5" if use_weno else "plm"
            for b in range(2):
                for r in range(3):
                    q = w[b, :, 0, r, :]
                    ql, qr = face_states(
                        q[:, None, None, :], 3, ng, nxa, scheme=scheme
                    )
                    expected = RIEMANN_SOLVERS[solver](
                        ql[:, 0, 0], qr[:, 0, 0], direction=0, nvel=nvel
                    )
                    np.testing.assert_allclose(
                        fx[b, :, 0, r], expected, atol=ATOL, rtol=0
                    )


def test_flux_stage_xp_matches_textbook_reference():
    """The xp-generic (cupy) flux stage against the textbook kernels."""
    rng = np.random.default_rng(11)
    ng, nxa, ncomp, nvel = 4, 6, 5, 3
    w = rng.normal(size=(3, ncomp, 2, 2, nxa + 2 * ng))
    for use_weno in (True, False):
        for use_hll, solver in ((True, "hll"), (False, "llf")):
            fx = flux_stage_xp(np, w, ng, nxa, 1, nvel, use_weno, use_hll)
            scheme = "weno5" if use_weno else "plm"
            for b in range(w.shape[0]):
                ql, qr = face_states(
                    w[b], 3, ng, nxa, scheme=scheme
                )
                expected = RIEMANN_SOLVERS[solver](
                    ql, qr, direction=1, nvel=nvel
                )
                np.testing.assert_allclose(
                    fx[b], expected, atol=ATOL, rtol=0
                )


# ----------------------------------------------------- golden invariance


def numeric_canonical(kernel_backend: str) -> str:
    spec = RunSpec(
        params=SimulationParams(
            ndim=2, mesh_size=32, block_size=16, num_levels=2, num_scalars=2
        ),
        config=build_execution_config(
            mode="numeric", kernel_backend=kernel_backend
        ),
        ncycles=2,
        warmup=1,
    )
    sim = Simulation(
        spec, initial_conditions=DECKS["smooth"], trace=True
    )
    sim.run()
    return to_canonical_json(sim.trace())


@pytest.mark.parametrize("backend", backend_names())
def test_golden_trace_invariance(backend):
    """Canonical traces are byte-identical across backends apart from the
    backend-identity metadata field (0 ULP on every simulated quantity)."""
    base = numeric_canonical("numpy")
    alt = numeric_canonical(backend)
    doc_base = json.loads(base)
    doc_alt = json.loads(alt)
    effective = (
        backend if backend in available_backends() else "numpy"
    )
    assert doc_alt["meta"].pop("kernel_backend") == effective
    assert doc_base["meta"].pop("kernel_backend") == "numpy"
    canon = lambda d: json.dumps(d, sort_keys=True, indent=2)
    assert canon(doc_alt) == canon(doc_base)


def test_requested_vs_effective_in_artifact():
    """The run artifact records both identities: the requested backend in
    the config section, the effective engine at top level."""
    spec = RunSpec(
        params=SimulationParams(
            ndim=2, mesh_size=16, block_size=8, num_levels=1, num_scalars=1
        ),
        config=build_execution_config(mode="numeric", kernel_backend="cupy"),
        ncycles=1,
        warmup=0,
    )
    sim = Simulation(spec, initial_conditions=DECKS["smooth"])
    art = sim.artifact()
    assert art["config"]["kernel_backend"] == "cupy"
    expected = "cupy" if "cupy" in available_backends() else "numpy"
    assert art["kernel_backend"] == expected
