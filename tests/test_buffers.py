"""Tests for boundary-buffer cache bookkeeping."""

import pytest

from repro.comm.buffers import BufferCache, BufferKey, CacheStats
from repro.mesh.logical_location import LogicalLocation


def make_keys(n):
    return {
        BufferKey(
            sender=LogicalLocation(0, i, 0, 0),
            receiver=LogicalLocation(0, (i + 1) % n, 0, 0),
            offset=(1, 0, 0),
        ): 128
        for i in range(n)
    }


class TestInitialize:
    def test_counts_reported(self):
        cache = BufferCache()
        stats = cache.initialize(make_keys(10))
        assert stats.keys_sorted == 10
        assert stats.keys_shuffled == 10
        assert len(cache) == 10

    def test_shuffle_is_seeded(self):
        keys = make_keys(20)
        a = BufferCache(seed=1)
        a.initialize(keys)
        b = BufferCache(seed=1)
        b.initialize(keys)
        assert a.order == b.order
        c = BufferCache(seed=2)
        c.initialize(keys)
        assert a.order != c.order

    def test_order_contains_every_key(self):
        keys = make_keys(12)
        cache = BufferCache()
        cache.initialize(keys)
        assert set(cache.order) == set(keys)

    def test_sort_key_is_total_order(self):
        keys = sorted(make_keys(8), key=BufferCache._sort_key)
        assert len(set(BufferCache._sort_key(k) for k in keys)) == 8


class TestCountsMode:
    def test_counts_only_path(self):
        cache = BufferCache()
        stats = cache.initialize_counts(5000)
        assert stats.keys_sorted == 5000
        assert cache.order == []

    def test_rebuild_views_accounting(self):
        cache = BufferCache()
        cache.initialize(make_keys(4))
        stats = cache.rebuild_views()
        assert stats.views_rebuilt == 4
        assert stats.h2d_copies == 4
        assert stats.metadata_bytes == 4 * BufferCache.METADATA_BYTES_PER_BUFFER


class TestLifecycle:
    def test_mark_stale(self):
        cache = BufferCache()
        cache.initialize(make_keys(6))
        n = cache.mark_stale()
        assert n == 6
        assert all(cache.stale.values())

    def test_total_buffer_bytes(self):
        cache = BufferCache()
        cache.initialize(make_keys(3))
        assert cache.total_buffer_bytes() == 3 * 128


class TestGhostBufferPool:
    def test_acquire_miss_allocates(self):
        from repro.comm.buffers import GhostBufferPool

        pool = GhostBufferPool()
        buf = pool.acquire((3, 4, 4))
        assert buf.shape == (3, 4, 4)
        assert pool.misses == 1 and pool.hits == 0 and pool.pooled == 0

    def test_release_then_acquire_recycles_same_array(self):
        from repro.comm.buffers import GhostBufferPool

        pool = GhostBufferPool()
        buf = pool.acquire((2, 8, 8))
        pool.release(buf)
        assert pool.pooled == 1
        again = pool.acquire((2, 8, 8))
        assert again is buf
        assert pool.hits == 1 and pool.misses == 1 and pool.pooled == 0

    def test_shapes_pool_independently(self):
        from repro.comm.buffers import GhostBufferPool

        pool = GhostBufferPool()
        small = pool.acquire((2, 2))
        pool.release(small)
        big = pool.acquire((4, 4))
        assert big is not small
        assert pool.misses == 2 and pool.hits == 0
        assert pool.pooled == 1  # the small one is still free

    def test_release_counter_and_clear(self):
        from repro.comm.buffers import GhostBufferPool

        pool = GhostBufferPool()
        for _ in range(3):
            pool.release(pool.acquire((5,)))
        assert pool.released == 3
        pool.clear()
        assert pool.pooled == 0
        # After clear the next acquire must not hand back a dropped buffer:
        # the loop above missed once then recycled, so this is miss #2.
        pool.acquire((5,))
        assert pool.misses == 2 and pool.hits == 2
