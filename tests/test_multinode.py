"""Tests for the Section V multi-node behaviors."""

import pytest

from repro.core.sweeps import multinode_comparison
from repro.driver.driver import ParthenonDriver
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams


def params(**kw):
    defaults = dict(
        ndim=2,
        mesh_size=64,
        block_size=8,
        num_levels=2,
        num_scalars=1,
        wavefront_width=0.05,
    )
    defaults.update(kw)
    return SimulationParams(**defaults)


class TestInternodeTraffic:
    def test_two_nodes_produce_internode_messages(self):
        config = ExecutionConfig(
            backend="gpu", num_gpus=2, ranks_per_gpu=2, num_nodes=2
        )
        d = ParthenonDriver(params(), config)
        d.run(2)
        assert d.mpi.internode_messages > 0

    def test_single_node_has_no_internode_traffic(self):
        config = ExecutionConfig(backend="gpu", num_gpus=4, ranks_per_gpu=2)
        d = ParthenonDriver(params(), config)
        d.run(2)
        assert d.mpi.internode_messages == 0

    def test_rank_to_node_assignment_contiguous(self):
        config = ExecutionConfig(
            backend="cpu", cpu_ranks=8, num_nodes=2
        )
        d = ParthenonDriver(params(), config)
        nodes = [d.mpi.node_of(r) for r in range(16)]
        assert nodes == [0] * 8 + [1] * 8


class TestSectionVFindings:
    """Section V's qualitative claims, at rank counts the small test meshes
    can feed (the paper-scale numbers come from the benchmark suite)."""

    def test_cpu_scales_across_nodes_better_than_gpu(self):
        """Section V: CPU two-node speedup exceeds the GPU's."""
        from repro.core.characterize import characterize

        p = SimulationParams(
            ndim=3, mesh_size=32, block_size=8, num_levels=2
        )
        speedups = {}
        for name, make in (
            (
                "CPU",
                lambda n: ExecutionConfig(
                    backend="cpu", cpu_ranks=16, num_nodes=n
                ),
            ),
            (
                "GPU",
                lambda n: ExecutionConfig(
                    backend="gpu", num_gpus=8, ranks_per_gpu=1, num_nodes=n
                ),
            ),
        ):
            one = characterize(p, make(1), 3)
            two = characterize(p, make(2), 3)
            speedups[name] = two.fom / one.fom
        assert speedups["CPU"] > speedups["GPU"]

    def test_block_size_drop_worse_on_gpu_two_nodes(self):
        """Section V: shrinking blocks costs GPUs far more than CPUs."""
        from repro.core.characterize import characterize

        drops = {}
        for name, config in (
            (
                "CPU",
                ExecutionConfig(backend="cpu", cpu_ranks=16, num_nodes=2),
            ),
            (
                "GPU",
                ExecutionConfig(
                    backend="gpu", num_gpus=8, ranks_per_gpu=1, num_nodes=2
                ),
            ),
        ):
            big = characterize(
                SimulationParams(ndim=3, mesh_size=64, block_size=16, num_levels=2),
                config, 2,
            )
            small = characterize(
                SimulationParams(ndim=3, mesh_size=64, block_size=8, num_levels=2),
                config, 2,
            )
            drops[name] = big.fom / small.fom
        assert drops["GPU"] > drops["CPU"]

    def test_internode_collectives_cost_more(self):
        from repro.hardware.serial import SerialCostModel

        m = SerialCostModel()
        assert m.collective(16, 4096, internode=True) > m.collective(
            16, 4096, internode=False
        )
