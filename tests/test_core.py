"""Tests for the characterization toolkit (FOM, sweeps, tables, reports)."""

import pytest

from repro.core.characterize import (
    characterize,
    comm_to_comp_ratio,
    growth_factor,
    kernel_fraction,
)
from repro.core.fom import zone_cycles, zone_cycles_per_second
from repro.core.memory_footprint import (
    aux_memory_bytes_per_block,
    aux_memory_post_optimization,
    aux_memory_pre_optimization,
)
from repro.core.microarch import build_microarch_table
from repro.core.opcode_analysis import opcode_breakdown
from repro.core.optimizations import ABLATIONS, run_ablations
from repro.core.report import (
    render_breakdown,
    render_memory,
    render_microarch,
    render_sweep,
    render_table,
)
from repro.core.sweeps import (
    SweepPoint,
    amr_level_sweep,
    block_size_sweep,
    gpu_rank_sweep,
)
from repro.driver.driver import ParthenonDriver
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams
from repro.hardware.gpu import GPUModel


def small_params(**kw):
    defaults = dict(
        ndim=2,
        mesh_size=64,
        block_size=16,
        num_levels=2,
        num_scalars=1,
        wavefront_width=0.05,
    )
    defaults.update(kw)
    return SimulationParams(**defaults)


GPU1R = ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=1)


class TestFom:
    def test_zone_cycles(self):
        assert zone_cycles([10, 12], (16, 16, 16)) == 22 * 4096

    def test_zone_cycles_per_second(self):
        assert zone_cycles_per_second(1000, 2.0) == 500.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            zone_cycles([1], (0, 16, 16))
        with pytest.raises(ValueError):
            zone_cycles_per_second(100, 0.0)


class TestMemoryFootprint:
    def test_paper_worked_example(self):
        """Section VIII-B: 8.858 GB -> 0.138 GB."""
        pre = aux_memory_pre_optimization(4096, nx1=8, ng=4, num_scalar=8)
        post = aux_memory_post_optimization(1024, nx1=8, ng=4, num_scalar=8)
        assert pre / 1e9 == pytest.approx(8.858, abs=0.01)
        assert post / 1e9 == pytest.approx(0.138, abs=0.001)
        assert pre / post == pytest.approx(64.0, rel=0.01)

    def test_per_block_formula(self):
        # B * 6 * (8 + 8)^3 * 11
        assert aux_memory_bytes_per_block(8, 4, 8) == 8 * 6 * 16**3 * 11

    def test_validation(self):
        with pytest.raises(ValueError):
            aux_memory_bytes_per_block(0, 4, 8)
        with pytest.raises(ValueError):
            aux_memory_pre_optimization(-1, 8, 4, 8)


class TestCharacterize:
    def test_returns_result_with_metrics(self):
        r = characterize(small_params(), GPU1R, ncycles=2, warmup=1)
        assert r.cycles == 2
        assert comm_to_comp_ratio(r) > 0
        assert 0 < kernel_fraction(r) < 1

    def test_growth_factor(self):
        a = characterize(small_params(mesh_size=32), GPU1R, ncycles=2, warmup=0)
        b = characterize(small_params(mesh_size=64), GPU1R, ncycles=2, warmup=0)
        assert growth_factor(a, b, "cell_updates") > 1.5

    def test_rejects_bad_cycles(self):
        with pytest.raises(ValueError):
            characterize(small_params(), GPU1R, ncycles=0)


class TestSweeps:
    def test_block_size_sweep_shape(self):
        out = block_size_sweep(
            small_params(),
            {"GPU-1R": GPU1R},
            block_sizes=(8, 16),
            ncycles=2,
        )
        pts = out["GPU-1R"]
        assert [p.x for p in pts] == [8, 16]
        assert pts[1].fom > pts[0].fom  # larger blocks faster on GPU

    def test_level_sweep_declines_on_gpu(self):
        # A fast front keeps the remesher churning every measured cycle —
        # the sustained-AMR regime where deeper levels hurt the GPU.
        out = amr_level_sweep(
            small_params(wavefront_speed=0.08),
            {"GPU-1R": GPU1R},
            levels=(1, 3),
            ncycles=3,
        )
        pts = out["GPU-1R"]
        assert pts[0].fom > pts[1].fom

    def test_rank_sweep_has_interior_optimum(self):
        pts = gpu_rank_sweep(
            small_params(num_levels=3),
            ranks_per_gpu=(1, 8, 64),
            ncycles=2,
        )
        foms = [p.fom for p in pts]
        assert foms[1] > foms[0] and foms[1] > foms[2]

    def test_sweep_point_oom_fom_zero(self):
        pt = SweepPoint(label="x", x=1, result=None, oom=True)
        assert pt.fom == 0.0


class TestMicroarch:
    def test_table_built_from_run(self):
        d = ParthenonDriver(small_params(), GPU1R)
        d.run(2)
        table = build_microarch_table(d.launch_records, GPUModel(), per_cycle_of=2)
        names = [m.name for m in table.rows]
        assert "CalculateFluxes" in names
        assert table.total.duration_s == pytest.approx(
            sum(m.duration_s for m in table.rows)
        )
        for m in table.rows:
            assert 0 <= m.sm_occupancy <= 1
            assert 0 <= m.bw_utilization <= 1

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            build_microarch_table([], GPUModel())

    def test_calculate_fluxes_row_matches_paper_character(self):
        d = ParthenonDriver(small_params(block_size=16), GPU1R)
        d.run(2)
        table = build_microarch_table(d.launch_records, GPUModel())
        cf = next(m for m in table.rows if m.name == "CalculateFluxes")
        assert cf.sm_occupancy == pytest.approx(0.25, abs=0.02)
        assert cf.warp_utilization == pytest.approx(0.67, abs=0.06)
        assert 2.0 < cf.arithmetic_intensity < 5.0


class TestOpcodeAnalysis:
    def test_breakdown_matches_paper_findings(self):
        # A 3D configuration like the paper's Fig. 13 run (16 CPU ranks).
        r = characterize(
            SimulationParams(
                ndim=3, mesh_size=32, block_size=8, num_levels=2,
                num_scalars=8,
            ),
            ExecutionConfig(backend="cpu", cpu_ranks=16),
            ncycles=2,
        )
        b = opcode_breakdown(r)
        assert b.kernel.fraction("vector") > 0.4
        ls = b.serial.fraction("load") + b.serial.fraction("store")
        assert 0.35 < ls < 0.45
        # The paper reports >99%; the model lands high but not as extreme.
        assert b.kernel_instruction_share > 0.7

    def test_vector_share_falls_with_block_size(self):
        r32 = characterize(
            small_params(block_size=32, mesh_size=128),
            ExecutionConfig(backend="cpu", cpu_ranks=16),
            ncycles=2,
        )
        r16 = characterize(
            small_params(block_size=16, mesh_size=128),
            ExecutionConfig(backend="cpu", cpu_ranks=16),
            ncycles=2,
        )
        assert (
            opcode_breakdown(r32).kernel.fraction("vector")
            > opcode_breakdown(r16).kernel.fraction("vector")
        )


class TestAblations:
    def test_all_ablations_run_and_improve(self):
        # A fast-moving front keeps the remesher busy during the measured
        # cycles so allocation costs are visible.
        rows = run_ablations(
            small_params(num_levels=3, wavefront_speed=0.08),
            GPU1R,
            ncycles=4,
            which=["integer-indexing", "pooled-allocation", "all"],
        )
        by_name = {r.name: r for r in rows}
        assert by_name["baseline"].fom_speedup == pytest.approx(1.0)
        assert by_name["integer-indexing"].serial_reduction > 0
        assert by_name["pooled-allocation"].serial_reduction > 0
        assert by_name["all"].fom_speedup > 1.0

    def test_ablation_registry_complete(self):
        assert {"baseline", "integer-indexing", "pooled-allocation",
                "restructured-kernels", "no-buffer-shuffle",
                "parallel-host-tasks", "no-packing", "all"} == set(ABLATIONS)


class TestReport:
    def test_render_table_basic(self):
        out = render_table(["a", "bb"], [[1, 2], [30, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_render_sweep_marks_oom(self):
        series = {
            "GPU": [
                SweepPoint("GPU", 8, None, oom=True),
            ]
        }
        out = render_sweep(series, "block", "Fig")
        assert "OOM" in out

    def test_render_run_reports(self):
        r = characterize(small_params(), GPU1R, ncycles=2)
        assert "CalculateFluxes" in render_breakdown(r, "bd")
        assert "kokkos_mesh" in render_memory(r, "mem")
        d = ParthenonDriver(small_params(), GPU1R)
        d.run(2)
        table = build_microarch_table(d.launch_records, GPUModel())
        assert "SM Occ." in render_microarch(table, "t3")
