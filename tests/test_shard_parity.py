"""Sharded-vs-serial differential suite (DESIGN §12, the ISSUE 8 gate).

The contract sharding ships under: running the numeric packed stages
across N shared-memory worker processes is *indistinguishable* from the
serial in-process engine — ``RunResult`` equal at 0 ULP and the
canonical trace byte-identical once the shard metadata (the only
legitimate difference: ``meta.num_shards`` and the wall-clock
``meta.shards`` section) is stripped.

Why that's achievable at all: shard work units are whole chunks of the
serial engine's own chunk grid (``repro.parallel.shards``), so the GEMM
batch shapes inside ``calculate_fluxes`` — the only batch-sensitive
stage — are identical to the serial sweep, and every other stage is
elementwise.  The suite pins that claim for 2 and 4 workers, both
reconstruction/Riemann pairs, a remesh-heavy deck (several pack
generations, each rebound across workers), and the per_block mode where
``num_shards`` must be accepted but inert.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.api import (
    RunSpec,
    Simulation,
    build_execution_config,
    build_simulation_params,
)
from repro.observability import to_canonical_json
from repro.solver.initial_conditions import gaussian_blob

REPO = Path(__file__).resolve().parent.parent


def _blob(mesh, pkg):
    gaussian_blob(mesh, pkg, amplitude=0.8, width=0.15)


def _numeric_spec(
    ndim: int = 3,
    mesh: int = 32,
    block: int = 16,
    levels: int = 2,
    ncycles: int = 3,
    num_shards: int = 1,
    kernel_mode: str = "packed",
    **params_overrides,
) -> RunSpec:
    params = build_simulation_params(
        ndim=ndim,
        mesh_size=mesh,
        block_size=block,
        num_levels=levels,
        num_scalars=1,
        **params_overrides,
    )
    config = build_execution_config(
        mode="numeric",
        kernel_mode=kernel_mode,
        num_gpus=1,
        ranks_per_gpu=2,
        num_shards=num_shards,
    )
    return RunSpec(params=params, config=config, ncycles=ncycles, warmup=1)


def _run(spec: RunSpec):
    sim = Simulation(spec, initial_conditions=_blob, trace=True)
    result = sim.run()
    return result, to_canonical_json(sim.trace())


def _normalize_trace(text: str) -> str:
    """Strip the shard metadata — the only fields allowed to differ."""
    doc = json.loads(text)
    doc["meta"].pop("num_shards", None)
    doc["meta"].pop("shards", None)
    return json.dumps(doc, sort_keys=True)


def _assert_parity(serial, sharded):
    """0-ULP RunResult + byte-identical trace, modulo shard identity."""
    result_a, trace_a = serial
    result_b, trace_b = sharded
    assert dataclasses.replace(
        result_b.config, num_shards=1
    ) == dataclasses.replace(result_a.config, num_shards=1)
    normalized = dataclasses.replace(
        result_b, config=result_a.config, shards=result_a.shards
    )
    assert dataclasses.asdict(normalized) == dataclasses.asdict(result_a), (
        "sharded RunResult deviates from serial at the ULP level"
    )
    assert _normalize_trace(trace_b) == _normalize_trace(trace_a), (
        "sharded canonical trace deviates from serial beyond shard metadata"
    )


class TestShardedMatchesSerial:
    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_weno_hll_bitwise(self, num_shards):
        serial = _run(_numeric_spec())
        sharded = _run(_numeric_spec(num_shards=num_shards))
        _assert_parity(serial, sharded)
        # The sharded run must actually have sharded: topology recorded,
        # every block owned exactly once across shards.
        topo = sharded[0].shards["topology"]
        assert topo["num_shards"] == num_shards
        assert sum(topo["blocks"]) == sharded[0].final_blocks

    def test_plm_llf_bitwise(self):
        kwargs = dict(reconstruction="plm", riemann="llf")
        serial = _run(_numeric_spec(**kwargs))
        sharded = _run(_numeric_spec(num_shards=2, **kwargs))
        _assert_parity(serial, sharded)

    def test_remesh_heavy_deck_bitwise(self):
        """Several pack generations: every remesh rebinds the shared pack
        across workers, and parity must survive each repartition."""
        kwargs = dict(
            ndim=2, mesh=32, block=8, levels=3, ncycles=4,
            refine_every=1, derefine_gap=1,
        )
        serial = _run(_numeric_spec(**kwargs))
        sharded = _run(_numeric_spec(num_shards=4, **kwargs))
        rebuilds = sharded[0].metrics["counters"]["pack_rebuilds"]
        assert rebuilds > 1, (
            f"deck produced only {rebuilds} pack generation(s); the remesh "
            "path was not exercised"
        )
        # generation also counts warmup-cycle rebinds, which the metrics
        # reset at the warmup boundary discards.
        assert sharded[0].shards["topology"]["generation"] >= rebuilds
        _assert_parity(serial, sharded)

    def test_per_block_mode_is_inert(self):
        """per_block never touches the packed engine, so num_shards must
        be accepted and change exactly nothing — not even metadata."""
        serial = _run(_numeric_spec(kernel_mode="per_block"))
        sharded = _run(_numeric_spec(kernel_mode="per_block", num_shards=4))
        assert sharded[0].shards == {}
        _assert_parity(serial, sharded)


class TestShardIdentity:
    def test_num_shards_outside_cache_key(self):
        """Sharding is a how, not a what: same cache identity as serial."""
        assert (
            _numeric_spec().cache_key()
            == _numeric_spec(num_shards=4).cache_key()
        )

    def test_deck_round_trip_preserves_num_shards(self):
        spec = _numeric_spec(num_shards=4)
        again = RunSpec.from_deck(spec.to_deck(), ncycles=3, warmup=1)
        assert again.config.num_shards == 4

    def test_serial_deck_has_no_shard_line(self):
        assert "num_shards" not in _numeric_spec().to_deck()
