"""Tests for the simulated MPI layer."""

import pytest

from repro.comm.mpi import MPICounters, SimMPI


class TestConstruction:
    def test_rejects_bad_ranks(self):
        with pytest.raises(ValueError):
            SimMPI(0)

    def test_rejects_more_nodes_than_ranks(self):
        with pytest.raises(ValueError):
            SimMPI(2, nnodes=3)


class TestNodeMapping:
    def test_single_node(self):
        mpi = SimMPI(8)
        assert all(mpi.node_of(r) == 0 for r in range(8))

    def test_two_nodes_contiguous(self):
        mpi = SimMPI(8, nnodes=2)
        assert [mpi.node_of(r) for r in range(8)] == [0] * 4 + [1] * 4

    def test_uneven_split(self):
        mpi = SimMPI(5, nnodes=2)
        nodes = [mpi.node_of(r) for r in range(5)]
        assert nodes == [0, 0, 0, 1, 1]


class TestTraffic:
    def test_local_vs_remote(self):
        mpi = SimMPI(2)
        mpi.send(0, 0, 100)
        mpi.send(0, 1, 200)
        assert mpi.cycle.local_copies == 1
        assert mpi.cycle.remote_messages == 1
        assert mpi.cycle.remote_bytes == 200

    def test_internode_accounting(self):
        mpi = SimMPI(4, nnodes=2)
        mpi.send(0, 1, 10)  # same node
        mpi.send(0, 2, 20)  # cross node
        assert mpi.internode_messages == 1
        assert mpi.internode_bytes == 20

    def test_collectives(self):
        mpi = SimMPI(4)
        mpi.allgather(bytes_per_rank=8)
        mpi.allreduce()
        assert mpi.cycle.allgather_bytes == 32
        assert mpi.cycle.allreduce_calls == 1

    def test_end_cycle_rolls_into_total(self):
        mpi = SimMPI(2)
        mpi.send(0, 1, 50)
        done = mpi.end_cycle()
        assert done.remote_bytes == 50
        assert mpi.total.remote_bytes == 50
        assert mpi.cycle.remote_bytes == 0

    def test_counters_merge(self):
        a = MPICounters(remote_messages=1, remote_bytes=10)
        b = MPICounters(remote_messages=2, remote_bytes=5, iprobe_calls=3)
        a.merge(b)
        assert a.remote_messages == 3
        assert a.remote_bytes == 15
        assert a.iprobe_calls == 3


class TestBufferRegistry:
    def test_register_and_release(self):
        mpi = SimMPI(2)
        mpi.register_buffers(0, 1000)
        mpi.register_buffers(1, 500)
        assert mpi.total_registered_bytes() == 1500
        mpi.release_buffers(0, 400)
        assert mpi.registered_buffer_bytes(0) == 600

    def test_release_floors_at_zero(self):
        mpi = SimMPI(1)
        mpi.register_buffers(0, 10)
        mpi.release_buffers(0, 100)
        assert mpi.registered_buffer_bytes(0) == 0

    def test_set_registered_replaces(self):
        mpi = SimMPI(3)
        mpi.register_buffers(0, 99)
        mpi.set_registered_buffer_bytes({1: 10, 2: 20})
        assert mpi.registered_buffer_bytes(0) == 0
        assert mpi.total_registered_bytes() == 30


class TestCountersMergeFields:
    """merge iterates dataclass fields, not vars(), so stray instance
    attributes can no longer corrupt (or crash) the accumulation."""

    def test_stray_attribute_is_ignored(self):
        a = MPICounters(remote_messages=1)
        b = MPICounters(remote_messages=2)
        b.note = "not a counter"  # ad-hoc attr: in vars(), not in fields()
        a.merge(b)
        assert a.remote_messages == 3
        assert not hasattr(a, "note")

    def test_all_declared_fields_merge(self):
        from dataclasses import fields

        a = MPICounters()
        b = MPICounters(**{f.name: i + 1 for i, f in enumerate(fields(MPICounters))})
        a.merge(b)
        for i, f in enumerate(fields(MPICounters)):
            assert getattr(a, f.name) == i + 1
