"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def small_args(extra=()):
    return [
        "--mesh", "32", "--block", "8", "--levels", "2", "--ndim", "2",
        "--scalars", "1", "--cycles", "2", "--warmup", "0",
    ] + list(extra)


class TestCharacterize:
    def test_gpu_run_prints_report(self, capsys):
        rc = main(["characterize"] + small_args(["--backend", "gpu"]))
        assert rc == 0
        out = capsys.readouterr().out
        assert "FOM" in out
        assert "Function breakdown" in out
        assert "kokkos_mesh" in out

    def test_cpu_run(self, capsys):
        rc = main(
            ["characterize"]
            + small_args(["--backend", "cpu", "--ranks", "4"])
        )
        assert rc == 0
        assert "CPU 4R" in capsys.readouterr().out


class TestDeckRoundtrip:
    def test_deck_emission_and_run(self, capsys, tmp_path):
        rc = main(["deck"] + small_args())
        assert rc == 0
        deck = capsys.readouterr().out
        assert "<parthenon/mesh>" in deck
        path = tmp_path / "cli.vibe"
        path.write_text(deck)
        rc = main(["run", str(path), "--cycles", "2"])
        assert rc == 0
        assert "FOM" in capsys.readouterr().out


class TestSweep:
    def test_levels_sweep(self, capsys):
        rc = main(["sweep", "levels"] + small_args())
        assert rc == 0
        out = capsys.readouterr().out
        assert "FOM vs AMR depth" in out

    def test_unknown_axis_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "bogus"])


class TestRecommend:
    def test_recommend_prints_advice(self, capsys):
        rc = main(["recommend"] + small_args())
        assert rc == 0
        out = capsys.readouterr().out
        assert "Amdahl" in out
        assert "recommendation" in out


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
