"""Tests for the Burgers HLL/LLF Riemann solvers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.solver.riemann import (
    hll_flux,
    llf_flux,
    physical_flux,
    wave_speeds,
)


def state(u1, q0=1.0, nvel=1):
    out = np.zeros((nvel + 1, 1))
    out[0, 0] = u1
    out[nvel, 0] = q0
    return out


class TestPhysicalFlux:
    def test_momentum_flux(self):
        u = state(2.0)
        f = physical_flux(u, 0, nvel=1)
        assert f[0, 0] == pytest.approx(0.5 * 2.0 * 2.0)

    def test_scalar_flux(self):
        u = state(2.0, q0=3.0)
        f = physical_flux(u, 0, nvel=1)
        assert f[1, 0] == pytest.approx(3.0 * 2.0)

    def test_transverse_component(self):
        u = np.zeros((3 + 1, 1))
        u[0, 0] = 2.0  # u1
        u[1, 0] = 4.0  # u2
        f = physical_flux(u, 0, nvel=3)
        # flux of u2 in direction 1 is 0.5 * u2 * u1.
        assert f[1, 0] == pytest.approx(0.5 * 4.0 * 2.0)


class TestWaveSpeeds:
    def test_bracket_zero(self):
        sl, sr = wave_speeds(state(1.0), state(2.0), 0)
        assert sl[0] == 0.0 and sr[0] == 2.0
        sl, sr = wave_speeds(state(-2.0), state(-1.0), 0)
        assert sl[0] == -2.0 and sr[0] == 0.0


class TestHll:
    def test_supersonic_right_is_upwind(self):
        ul, ur = state(2.0), state(1.0)
        f = hll_flux(ul, ur, 0, nvel=1)
        # Both speeds >= 0: flux must be F(UL).
        np.testing.assert_allclose(f, physical_flux(ul, 0, 1))

    def test_supersonic_left_is_upwind(self):
        ul, ur = state(-1.0), state(-2.0)
        f = hll_flux(ul, ur, 0, nvel=1)
        np.testing.assert_allclose(f, physical_flux(ur, 0, 1))

    def test_quiescent_interface_zero_flux(self):
        f = hll_flux(state(0.0), state(0.0), 0, nvel=1)
        np.testing.assert_allclose(f, 0.0)

    def test_consistency(self):
        # F(U, U) == F(U) for any state.
        u = state(1.5, q0=2.0)
        f = hll_flux(u, u, 0, nvel=1)
        np.testing.assert_allclose(f, physical_flux(u, 0, 1))

    def test_expansion_fan_dissipates(self):
        ul, ur = state(-1.0), state(1.0)
        f = hll_flux(ul, ur, 0, nvel=1)
        # Symmetric expansion: HLL gives the average of the two physical
        # momentum fluxes plus the jump term.
        expected = (1.0 * 0.5 - (-1.0) * 0.5 + (-1.0) * 1.0 * 2.0) / 2.0
        assert f[0, 0] == pytest.approx(expected)


class TestLlf:
    def test_consistency(self):
        u = state(0.7, q0=4.0)
        f = llf_flux(u, u, 0, nvel=1)
        np.testing.assert_allclose(f, physical_flux(u, 0, 1))

    def test_more_dissipative_than_hll_on_jump(self):
        ul, ur = state(1.0, q0=2.0), state(1.0, q0=0.0)
        f_hll = hll_flux(ul, ur, 0, nvel=1)
        f_llf = llf_flux(ul, ur, 0, nvel=1)
        # HLL with positive speeds is pure upwind; LLF adds diffusion but
        # here equals it since |u| is the wave speed on both sides.
        assert f_llf[1, 0] == pytest.approx(f_hll[1, 0])


@settings(max_examples=50, deadline=None)
@given(
    st.floats(-5, 5, allow_nan=False),
    st.floats(-5, 5, allow_nan=False),
    st.floats(0.1, 5, allow_nan=False),
)
def test_hll_consistency_property(u1, u2, q):
    """Property: equal states reproduce the physical flux exactly."""
    u = state(u1, q0=q)
    f = hll_flux(u, u, 0, nvel=1)
    np.testing.assert_allclose(f, physical_flux(u, 0, 1), atol=1e-12)


@settings(max_examples=50, deadline=None)
@given(st.floats(0.01, 5), st.floats(0.01, 5))
def test_hll_upwind_when_flow_positive(ul1, ur1):
    """Property: strictly positive flow on both sides -> left upwind flux."""
    ul, ur = state(ul1, q0=2.0), state(ur1, q0=3.0)
    f = hll_flux(ul, ur, 0, nvel=1)
    np.testing.assert_allclose(f, physical_flux(ul, 0, 1), atol=1e-12)
