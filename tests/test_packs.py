"""Tests for MeshBlockPack variable/block packing."""

import numpy as np
import pytest

from repro.driver.driver import ParthenonDriver
from repro.driver.execution import ExecutionConfig, OptimizationFlags
from repro.driver.params import SimulationParams
from repro.mesh.block import FieldSpec
from repro.mesh.loadbalance import balance
from repro.mesh.mesh import Mesh, MeshGeometry
from repro.solver.packs import MeshBlockPack, build_packs, launch_count


def make_mesh():
    geo = MeshGeometry(
        ndim=2, mesh_size=(32, 32, 1), block_size=(8, 8, 1), ng=2,
        num_levels=2,
    )
    return Mesh(
        geo,
        field_specs=[FieldSpec("u", 3), FieldSpec("q", 2)],
        allocate=True,
    )


class TestPack:
    def test_component_layout(self):
        mesh = make_mesh()
        pack = MeshBlockPack(mesh.block_list, ["u", "q"])
        assert pack.ncomp_total == 5
        assert pack.component_slice("u") == slice(0, 3)
        assert pack.component_slice("q") == slice(3, 5)

    def test_gather_stacks_fields(self):
        mesh = make_mesh()
        blk = mesh.block_list[0]
        blk.fields["u"][...] = 1.0
        blk.fields["q"][...] = 2.0
        pack = MeshBlockPack(mesh.block_list, ["u", "q"])
        packed = pack[0]
        assert packed.shape[0] == 5
        assert np.all(packed[:3] == 1.0)
        assert np.all(packed[3:] == 2.0)

    def test_scatter_roundtrip(self):
        mesh = make_mesh()
        pack = MeshBlockPack(mesh.block_list, ["u", "q"])
        rng = np.random.default_rng(0)
        packed = rng.normal(size=(5,) + mesh.block_list[1].shape.array_shape)
        pack.scatter(1, packed)
        np.testing.assert_array_equal(
            mesh.block_list[1].fields["u"], packed[:3]
        )
        np.testing.assert_array_equal(
            mesh.block_list[1].fields["q"], packed[3:]
        )

    def test_scatter_validates_components(self):
        mesh = make_mesh()
        pack = MeshBlockPack(mesh.block_list, ["u"])
        with pytest.raises(ValueError, match="components"):
            pack.scatter(0, np.zeros((7,) + mesh.block_list[0].shape.array_shape))

    def test_empty_pack_rejected(self):
        with pytest.raises(ValueError):
            MeshBlockPack([], ["u"])

    def test_total_cells(self):
        mesh = make_mesh()
        pack = MeshBlockPack(mesh.block_list, ["u"])
        assert pack.total_cells == 32 * 32


class TestBuildPacks:
    def test_one_pack_per_nonempty_rank(self):
        mesh = make_mesh()
        balance(mesh, 4)
        packs = build_packs(mesh, ["u"], nranks=4)
        assert len(packs) == 4
        assert sum(len(p) for p in packs) == mesh.num_blocks

    def test_descriptor(self):
        mesh = make_mesh()
        packs = build_packs(mesh, ["u", "q"], nranks=1)
        desc = packs[0].describe()
        assert len(desc.gids) == mesh.num_blocks
        assert desc.ncomp_total == 5


class TestLaunchCount:
    def test_packed_vs_unpacked(self):
        assert launch_count(1000, 12, packed=True) == 12
        assert launch_count(1000, 12, packed=False) == 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            launch_count(4, 8, packed=True)


class TestNoPackingAblation:
    def test_disabling_packing_inflates_gpu_kernel_time(self):
        """The Section II-C rationale: per-block launches drown small
        blocks in launch overhead."""
        params = SimulationParams(
            ndim=2, mesh_size=64, block_size=8, num_levels=2,
            num_scalars=1, wavefront_width=0.05,
        )
        packed = ParthenonDriver(
            params, ExecutionConfig(num_gpus=1, ranks_per_gpu=1)
        ).run(3)
        unpacked = ParthenonDriver(
            params,
            ExecutionConfig(
                num_gpus=1,
                ranks_per_gpu=1,
                optimizations=OptimizationFlags(disable_packing=True),
            ),
        ).run(3)
        assert unpacked.kernel_seconds > 1.5 * packed.kernel_seconds
        assert unpacked.fom < packed.fom


class TestContiguousPack:
    """The dense (nblocks, ncomp, x3, x2, x1) storage fused kernels sweep."""

    def test_gather_fills_dense_storage(self):
        mesh = make_mesh()
        for i, blk in enumerate(mesh.block_list):
            blk.fields["u"][...] = float(i)
            blk.fields["q"][...] = float(-i)
        pack = MeshBlockPack(mesh.block_list, ["u", "q"], contiguous=True)
        assert pack.data is not None
        assert pack.data.shape == (
            len(mesh.block_list),
            5,
        ) + mesh.block_list[0].shape.array_shape
        assert pack.data.flags["C_CONTIGUOUS"]
        for i in range(len(mesh.block_list)):
            assert np.all(pack.data[i, :3] == float(i))
            assert np.all(pack.data[i, 3:] == float(-i))

    def test_getitem_is_true_view(self):
        mesh = make_mesh()
        pack = MeshBlockPack(mesh.block_list, ["u", "q"], contiguous=True)
        view = pack[2]
        assert view.base is pack.data
        view[...] = 7.0
        assert np.all(pack.data[2] == 7.0)

    def test_adopt_blocks_aliases_fields(self):
        mesh = make_mesh()
        pack = MeshBlockPack(mesh.block_list, ["u", "q"], contiguous=True)
        pack.adopt_blocks()
        blk = mesh.block_list[1]
        # Block writes (ghost exchange, boundary fills) land in the pack...
        blk.fields["u"][...] = 3.0
        assert np.all(pack.field("u")[1] == 3.0)
        # ...and pack-kernel writes are visible through the block.
        pack.field("q")[1, ...] = 4.0
        assert np.all(blk.fields["q"] == 4.0)

    def test_scatter_all_noop_after_adoption(self):
        mesh = make_mesh()
        pack = MeshBlockPack(mesh.block_list, ["u", "q"], contiguous=True)
        pack.adopt_blocks()
        pack.data[...] = 5.0
        pack.scatter_all()
        assert np.all(mesh.block_list[0].fields["u"] == 5.0)

    def test_adopt_fluxes_shapes_and_aliasing(self):
        mesh = make_mesh()
        pack = MeshBlockPack(mesh.block_list, ["u"], contiguous=True)
        pack.adopt_fluxes("u")
        blk = mesh.block_list[0]
        nx = blk.shape.nx
        fx, fy, fz = pack.flux_data["u"]
        assert fz is None  # 2D mesh: no x3 faces
        assert fx.shape == (len(pack), 3, 1, nx[1], nx[0] + 1)
        assert fy.shape == (len(pack), 3, 1, nx[1] + 1, nx[0])
        fx[0, ...] = 9.0
        assert np.all(blk.fluxes["u"][0] == 9.0)
        assert blk.fluxes["u"][2] is None

    def test_field_view_and_dx_array(self):
        mesh = make_mesh()
        pack = MeshBlockPack(mesh.block_list, ["u", "q"], contiguous=True)
        q = pack.field("q")
        assert q.shape == (len(pack), 2) + mesh.block_list[0].shape.array_shape
        assert q.base is pack.data
        dx = pack.dx_array(0)
        assert dx.shape == (len(pack),)
        expected = np.array([blk.dx(0) for blk in mesh.block_list])
        np.testing.assert_array_equal(dx, expected)

    def test_non_contiguous_pack_rejects_dense_api(self):
        mesh = make_mesh()
        pack = MeshBlockPack(mesh.block_list, ["u"])
        with pytest.raises(ValueError, match="contiguous"):
            pack.field("u")

    def test_build_numeric_pack_adopts_everything(self):
        from repro.solver.packs import build_numeric_pack

        mesh = make_mesh()
        pack = build_numeric_pack(mesh, ("u", "q"), flux_field="u")
        for b, blk in enumerate(mesh.block_list):
            assert blk.fields["u"].base is pack.data
            assert blk.fields["q"].base is pack.data
            assert blk.fluxes["u"][0].base is pack.flux_data["u"][0]
