"""End-to-end `repro campaign` CLI: run, resume, report, golden summary."""

from pathlib import Path

import pytest

from repro.cli import main

GOLDEN = Path(__file__).parent / "golden" / "mini_campaign_summary.txt"


def quick_args(tmp_path, extra=()):
    return [
        "campaign", "--dir", str(tmp_path / "camp"),
        "--mesh", "32,64", "--block", "8,16",
        "--ndim", "2", "--scalars", "1", "--levels", "2",
        "--cycles", "2", "--warmup", "1", "--workers", "1",
    ] + list(extra)


class TestCampaignCommand:
    def test_run_writes_one_artifact_per_point(self, tmp_path, capsys):
        rc = main(quick_args(tmp_path))
        assert rc == 0
        out = capsys.readouterr().out
        assert "executed 4, cached 0, failed 0" in out
        points = list((tmp_path / "camp" / "points").glob("*.json"))
        assert len(points) == 4

    def test_rerun_hits_cache(self, tmp_path, capsys):
        main(quick_args(tmp_path))
        capsys.readouterr()
        rc = main(quick_args(tmp_path))
        assert rc == 0
        assert "executed 0, cached 4" in capsys.readouterr().out

    def test_deleted_artifact_reexecutes_one_point(self, tmp_path, capsys):
        main(quick_args(tmp_path))
        capsys.readouterr()
        victim = sorted((tmp_path / "camp" / "points").glob("*.json"))[0]
        victim.unlink()
        main(quick_args(tmp_path))
        assert "executed 1, cached 3" in capsys.readouterr().out

    def test_report_only(self, tmp_path, capsys):
        main(quick_args(tmp_path))
        capsys.readouterr()
        rc = main(
            ["campaign", "--dir", str(tmp_path / "camp"), "--report-only"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Campaign summary" in out
        assert "mesh32-block8" in out

    def test_two_workers(self, tmp_path, capsys):
        rc = main(quick_args(tmp_path, ["--workers", "2"]))
        assert rc == 0
        assert "2 workers" in capsys.readouterr().out

    def test_typo_fails_fast_with_choices(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            # argparse rejects bad choices before the driver ever runs
            main(quick_args(tmp_path, ["--kernel-mode", "paked"]))
        assert "per_block" in capsys.readouterr().err


class TestGoldenSummary:
    def test_mini_preset_matches_golden(self, tmp_path, capsys):
        """The CI mini-sweep: deterministic simulated metrics mean the
        regenerated report must match the committed golden byte-for-byte."""
        rc = main(
            ["campaign", "--preset", "mini",
             "--dir", str(tmp_path / "mini"), "--workers", "1"]
        )
        assert rc == 0
        capsys.readouterr()
        rc = main(
            ["campaign", "--dir", str(tmp_path / "mini"), "--report-only"]
        )
        assert rc == 0
        rendered = capsys.readouterr().out
        assert rendered == GOLDEN.read_text()
        points = list((tmp_path / "mini" / "points").glob("*.json"))
        assert len(points) == 4  # one artifact per sweep point
