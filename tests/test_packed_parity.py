"""Golden parity: packed vs per-block kernel execution (ISSUE 1 tentpole).

The packed engine re-associates reconstruction and Riemann arithmetic (GEMM
stencils, coefficient-form HLL), so the two modes are not bitwise identical
— but they must agree to rounding level.  These tests pin that contract at
``atol = 1e-13`` for the conserved state, face fluxes, and history
reductions after several full driver cycles, across block sizes {8, 16, 32}
with AMR both on and off, in 2D and 3D.
"""

from functools import lru_cache

import numpy as np
import pytest

from repro.driver.driver import ParthenonDriver
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams
from repro.solver.burgers import CONSERVED, DERIVED
from repro.solver.initial_conditions import gaussian_blob

ATOL = 1e-13
NCYCLES = 3


@lru_cache(maxsize=None)
def run_driver(kernel_mode, block_size, levels, ndim=2, mesh=32):
    params = SimulationParams(
        ndim=ndim,
        mesh_size=mesh,
        block_size=block_size,
        num_levels=levels,
        num_scalars=2,
    )
    cfg = ExecutionConfig(
        backend="gpu",
        num_gpus=1,
        ranks_per_gpu=1,
        mode="numeric",
        kernel_mode=kernel_mode,
    )
    driver = ParthenonDriver(
        params,
        cfg,
        initial_conditions=lambda mesh_, pkg: gaussian_blob(
            mesh_, pkg, amplitude=0.8, width=0.15
        ),
    )
    driver.run(NCYCLES)
    return driver


def run_pair(block_size, levels, ndim=2, mesh=32):
    return (
        run_driver("packed", block_size, levels, ndim, mesh),
        run_driver("per_block", block_size, levels, ndim, mesh),
    )


def assert_parity(dp, db):
    """Full-state comparison between a packed and a per-block driver."""
    bp = {b.lloc: b for b in dp.mesh.block_list}
    bb = {b.lloc: b for b in db.mesh.block_list}
    # Identical refinement decisions: same block population.
    assert set(bp) == set(bb)
    for lloc, blk in bp.items():
        other = bb[lloc]
        np.testing.assert_allclose(
            blk.fields[CONSERVED], other.fields[CONSERVED], atol=ATOL, rtol=0
        )
        np.testing.assert_allclose(
            blk.fields[DERIVED], other.fields[DERIVED], atol=ATOL, rtol=0
        )
        for fa, fb in zip(blk.fluxes[CONSERVED], other.fluxes[CONSERVED]):
            if fa is None:
                assert fb is None
                continue
            np.testing.assert_allclose(fa, fb, atol=ATOL, rtol=0)
    assert len(dp.history) == len(db.history) == NCYCLES
    for ha, hb in zip(dp.history, db.history):
        assert ha.cycle == hb.cycle
        assert ha.time == pytest.approx(hb.time, abs=ATOL)
        np.testing.assert_allclose(
            ha.scalar_totals, hb.scalar_totals, atol=ATOL, rtol=0
        )
        np.testing.assert_allclose(
            ha.momentum_totals, hb.momentum_totals, atol=ATOL, rtol=0
        )
        assert ha.total_d == pytest.approx(hb.total_d, abs=ATOL)
        assert ha.max_speed == pytest.approx(hb.max_speed, abs=ATOL)


@pytest.mark.parametrize("block_size", [8, 16, 32])
@pytest.mark.parametrize("levels", [1, 3], ids=["uniform", "amr"])
def test_parity_2d(block_size, levels):
    dp, db = run_pair(block_size, levels)
    assert_parity(dp, db)


def test_parity_3d_amr():
    dp, db = run_pair(8, 2, ndim=3, mesh=16)
    assert_parity(dp, db)


class TestLaunchAccounting:
    """Packed mode dispatches once per pack; per-block once per MeshBlock."""

    def test_packed_flux_launches_one_per_pack(self):
        dp = run_driver("packed", 8, 3)
        records = [
            n for l, n in dp.launch_records if l.name == "CalculateFluxes"
        ]
        assert records and all(n == 1 for n in records)

    def test_per_block_flux_launches_one_per_block(self):
        db = run_driver("per_block", 8, 3)
        records = [
            n for l, n in db.launch_records if l.name == "CalculateFluxes"
        ]
        # The mesh refines past the root grid, so per-block launch counts
        # must exceed one launch per rank (and track the block population).
        assert records and max(records) > 1
        assert max(records) <= db.max_blocks


class TestSteadyStateCaching:
    """Packs and ghost buffers are rebuilt only when the mesh changes."""

    def test_pack_reused_without_amr_changes(self):
        dp = run_driver("packed", 16, 1)
        assert dp.pack_rebuilds == 1

    def test_pack_rebuilt_only_on_remesh(self):
        dp = run_driver("packed", 8, 3)
        # With refine_every=1 every cycle *may* remesh; rebuilds must never
        # exceed one per cycle (+1 for the initial build) and the run must
        # have reused at least one pack across stages within a cycle.
        assert 1 <= dp.pack_rebuilds <= NCYCLES + 1

    def test_ghost_buffer_pool_recycles(self):
        dp = run_driver("packed", 16, 1)
        # Steady topology: after the first cycle every exchange reuses
        # pooled buffers instead of allocating.
        assert dp.bx.pool.hits > 0
        assert dp.bx.pool.hits >= dp.bx.pool.misses


def test_packed_is_default_kernel_mode():
    assert ExecutionConfig().kernel_mode == "packed"
    with pytest.raises(ValueError, match="kernel_mode"):
        ExecutionConfig(kernel_mode="fused")
