"""Resilience subsystem: checkpoint invariants, fault determinism,
restart-archive validation.

Property tests (Hypothesis) pin the load-bearing invariants:

* checkpoint save → load → save is **byte-stable** — the canonical
  pickler's identity-insensitivity, without which the bitwise-resume
  differential harness could not compare runs;
* any corruption of the payload bytes makes ``read_checkpoint`` raise
  (the sha256 self-check never adopts bad state);
* a :class:`FaultInjector` is a pure function of its plan — same seed,
  same schedule, every time;
* :class:`FaultCounters.merge` is associative and commutative, so a
  campaign can fold worker counters in any order.
"""

import dataclasses
import json
import pickle
import shutil

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    RunSpec,
    build_execution_config,
    build_simulation_params,
)
from repro.driver.driver import ParthenonDriver
from repro.driver.outputs import (
    RESTART_SCHEMA_VERSION,
    RestartError,
    load_restart,
    save_restart,
)
from repro.mesh.mesh import Mesh
from repro.resilience import (
    CheckpointError,
    CheckpointManager,
    FaultCounters,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    NULL_INJECTOR,
    FAULT_SITES,
    capture_state,
    latest_checkpoint,
    list_checkpoints,
    read_checkpoint,
    restore_driver,
    serialize_state,
    write_checkpoint,
)


def _driver(mode="modeled", kernel_mode="packed", cycles=2, warmup=1):
    params = build_simulation_params(
        ndim=2, mesh_size=16, block_size=8, num_levels=2, num_scalars=1
    )
    config = build_execution_config(
        mode=mode, kernel_mode=kernel_mode, num_gpus=1, ranks_per_gpu=2
    )
    drv = ParthenonDriver(params, config)
    drv.run(cycles, warmup=warmup)
    return drv


# ------------------------------------------------------- byte stability


class TestCheckpointByteStability:
    @pytest.mark.parametrize(
        "mode,kernel_mode",
        [("modeled", "packed"), ("numeric", "packed"), ("numeric", "per_block")],
    )
    def test_save_load_save_is_byte_stable(self, mode, kernel_mode, tmp_path):
        drv = _driver(mode=mode, kernel_mode=kernel_mode)
        first = serialize_state(capture_state(drv))
        manifest = write_checkpoint(tmp_path, drv)
        restored = restore_driver(read_checkpoint(manifest))
        second = serialize_state(capture_state(restored))
        assert first == second

    @settings(max_examples=8, deadline=None)
    @given(cycles=st.integers(1, 3), warmup=st.integers(0, 2))
    def test_byte_stable_across_run_lengths(self, cycles, warmup):
        drv = _driver(cycles=cycles, warmup=warmup)
        payload = capture_state(drv)
        raw = serialize_state(payload)
        assert serialize_state(pickle.loads(raw)) == raw

    def test_identical_state_identical_bytes(self, tmp_path):
        a = serialize_state(capture_state(_driver()))
        b = serialize_state(capture_state(_driver()))
        assert a == b


# ------------------------------------------------- corruption detection


@pytest.fixture(scope="module")
def intact_checkpoint(tmp_path_factory):
    """One checkpoint written once; corruption tests copy it per case."""
    directory = tmp_path_factory.mktemp("intact")
    manifest = write_checkpoint(directory, _driver())
    return directory, manifest.name


class TestCorruptionDetection:
    @settings(max_examples=20, deadline=None)
    @given(offset=st.integers(0, 10_000), flip=st.integers(1, 255))
    def test_any_payload_corruption_raises(
        self, offset, flip, intact_checkpoint, tmp_path_factory
    ):
        src, manifest_name = intact_checkpoint
        work = tmp_path_factory.mktemp("corrupt")
        for p in src.iterdir():
            shutil.copy(p, work / p.name)
        manifest = work / manifest_name
        payload_path = work / json.loads(manifest.read_text())["payload"]
        blob = bytearray(payload_path.read_bytes())
        offset %= len(blob)
        blob[offset] ^= flip
        payload_path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="sha256"):
            read_checkpoint(manifest)

    def test_truncated_payload_raises(self, tmp_path):
        manifest = write_checkpoint(tmp_path, _driver())
        payload_path = tmp_path / json.loads(manifest.read_text())["payload"]
        payload_path.write_bytes(payload_path.read_bytes()[:100])
        with pytest.raises(CheckpointError):
            read_checkpoint(manifest)

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no valid checkpoint"):
            read_checkpoint(tmp_path)

    def test_bad_schema_version_raises(self, tmp_path):
        manifest = write_checkpoint(tmp_path, _driver())
        doc = json.loads(manifest.read_text())
        doc["schema_version"] = 999
        manifest.write_text(json.dumps(doc))
        with pytest.raises(CheckpointError, match="schema_version"):
            read_checkpoint(manifest)

    def test_latest_checkpoint_skips_torn_write(self, tmp_path):
        """Crash debris — a newer payload whose bytes are torn — must be
        skipped in favor of the last intact checkpoint."""
        drv = _driver(cycles=1, warmup=0)
        mgr = CheckpointManager(tmp_path, every=1)
        drv2 = _driver(cycles=3, warmup=0)
        write_checkpoint(tmp_path, drv)
        newest = write_checkpoint(tmp_path, drv2)
        assert latest_checkpoint(tmp_path) == newest
        payload_path = tmp_path / json.loads(newest.read_text())["payload"]
        payload_path.write_bytes(b"torn")
        survivor = latest_checkpoint(tmp_path)
        assert survivor is not None and survivor != newest
        assert read_checkpoint(survivor)["cycle"] == drv.cycle
        assert len(list_checkpoints(tmp_path)) == 2
        assert mgr.latest() == survivor


# ------------------------------------------------- injector determinism


_site = st.sampled_from(FAULT_SITES)
_plans = st.builds(
    FaultPlan,
    seed=st.integers(0, 2**31),
    specs=st.lists(
        st.builds(
            FaultSpec,
            site=_site,
            cycle=st.one_of(st.none(), st.integers(0, 5)),
            probability=st.floats(0.0, 1.0, allow_nan=False),
            max_fires=st.integers(0, 3),
        ),
        max_size=3,
    ).map(tuple),
)


def _schedule(injector, checks):
    fired = []
    for site, cycle in checks:
        try:
            injector.check(site, cycle)
        except InjectedFault as f:
            fired.append((f.site, f.cycle, f.invocation))
    return fired


class TestFaultInjectorDeterminism:
    @settings(max_examples=50, deadline=None)
    @given(
        plan=_plans,
        checks=st.lists(
            st.tuples(_site, st.integers(0, 5)), max_size=40
        ),
    )
    def test_same_plan_same_schedule(self, plan, checks):
        a = _schedule(FaultInjector(plan), checks)
        b = _schedule(FaultInjector(plan), checks)
        assert a == b

    @settings(max_examples=30, deadline=None)
    @given(
        plan=_plans,
        checks=st.lists(st.tuples(_site, st.integers(0, 5)), max_size=40),
        split=st.integers(0, 40),
    )
    def test_counter_restore_continues_the_stream(self, plan, checks, split):
        """Checkpoint the counters mid-stream; the restored injector must
        fire exactly where the uninterrupted one does — resume never
        shifts the fault schedule."""
        split = min(split, len(checks))
        whole = _schedule(FaultInjector(plan), checks)
        first = FaultInjector(plan)
        head = _schedule(first, checks[:split])
        second = FaultInjector(plan)
        second.load_state_dict(first.state_dict())
        tail = _schedule(second, checks[split:])
        assert head + tail == whole

    def test_unarmed_injector_never_counts(self):
        inj = FaultInjector()
        inj.check("kernel_launch", 0)
        assert not inj.armed
        assert inj.counters.checks == {} and inj.counters.fired == {}

    def test_null_injector_is_inert(self):
        NULL_INJECTOR.check("kernel_launch", 0)
        assert NULL_INJECTOR.counters.total_fired() == 0

    def test_unknown_site_rejected(self):
        with pytest.raises(FaultError, match="unknown fault site"):
            FaultSpec(site="gamma_ray")

    def test_bad_probability_rejected(self):
        with pytest.raises(FaultError, match="probability"):
            FaultSpec(site="remesh", probability=1.5)


# -------------------------------------------------- counter merge laws


_counters = st.builds(
    FaultCounters,
    checks=st.dictionaries(_site, st.integers(0, 100), max_size=4),
    fired=st.dictionaries(_site, st.integers(0, 100), max_size=4),
)


class TestFaultCounterMerge:
    @settings(max_examples=50, deadline=None)
    @given(a=_counters, b=_counters)
    def test_commutative(self, a, b):
        assert a.merge(b).to_dict() == b.merge(a).to_dict()

    @settings(max_examples=50, deadline=None)
    @given(a=_counters, b=_counters, c=_counters)
    def test_associative(self, a, b, c):
        assert (
            a.merge(b).merge(c).to_dict() == a.merge(b.merge(c)).to_dict()
        )

    @settings(max_examples=20, deadline=None)
    @given(a=_counters)
    def test_identity(self, a):
        assert a.merge(FaultCounters()).to_dict() == a.to_dict()


# ------------------------------------------- restart archive (satellite)


def _numeric_mesh():
    drv = _driver(mode="numeric", cycles=2, warmup=0)
    return drv


class TestRestartArchive:
    def test_round_trip(self, tmp_path):
        drv = _numeric_mesh()
        path = tmp_path / "restart.npz"
        save_restart(path, drv.mesh, cycle=drv.cycle, time=drv.time)
        mesh, cycle, time = load_restart(
            path, expected_geometry=drv.mesh.geometry
        )
        assert cycle == drv.cycle and time == drv.time
        assert len(mesh.block_list) == len(drv.mesh.block_list)
        for a, b in zip(mesh.block_list, drv.mesh.block_list):
            for name in a.fields:
                np.testing.assert_array_equal(a.fields[name], b.fields[name])

    def test_atomic_no_tmp_left_behind(self, tmp_path):
        drv = _numeric_mesh()
        save_restart(tmp_path / "r.npz", drv.mesh)
        assert [p.name for p in tmp_path.iterdir()] == ["r.npz"]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(RestartError, match="not found"):
            load_restart(tmp_path / "nope.npz")

    def test_truncated_archive_raises(self, tmp_path):
        drv = _numeric_mesh()
        path = tmp_path / "r.npz"
        save_restart(path, drv.mesh)
        path.write_bytes(path.read_bytes()[:64])
        with pytest.raises(RestartError):
            load_restart(path)

    def test_garbage_archive_raises(self, tmp_path):
        path = tmp_path / "r.npz"
        path.write_bytes(b"not a zip archive at all")
        with pytest.raises(RestartError, match="corrupt"):
            load_restart(path)

    def test_geometry_mismatch_raises(self, tmp_path):
        drv = _numeric_mesh()
        path = tmp_path / "r.npz"
        save_restart(path, drv.mesh)
        other = build_simulation_params(
            ndim=2, mesh_size=32, block_size=8, num_levels=2, num_scalars=1
        )
        other_mesh = ParthenonDriver(
            other,
            build_execution_config(mode="numeric", num_gpus=1, ranks_per_gpu=2),
        ).mesh
        with pytest.raises(RestartError, match="geometry"):
            load_restart(path, expected_geometry=other_mesh.geometry)

    def test_schema_version_is_stored(self, tmp_path):
        drv = _numeric_mesh()
        path = tmp_path / "r.npz"
        save_restart(path, drv.mesh)
        with np.load(path, allow_pickle=False) as data:
            assert int(data["schema_version"][0]) == RESTART_SCHEMA_VERSION

    def test_modeled_mesh_rejected(self, tmp_path):
        drv = _driver(mode="modeled")
        with pytest.raises(ValueError, match="numeric"):
            save_restart(tmp_path / "r.npz", drv.mesh)


# ---------------------------------------------------- cadence semantics


class TestCheckpointManager:
    def test_cadence(self, tmp_path):
        drv = _driver(cycles=6, warmup=0)
        mgr = CheckpointManager(tmp_path, every=2)
        for cycle in (1, 2, 3, 4):
            drv.cycle = cycle
            mgr.save(drv)
        names = [p.name for p in mgr.written]
        assert names == ["ckpt_000002.json", "ckpt_000004.json"]

    def test_force_bypasses_cadence(self, tmp_path):
        drv = _driver(cycles=1, warmup=0)
        mgr = CheckpointManager(tmp_path, every=0)
        assert mgr.save(drv) is None
        assert mgr.save(drv, force=True) is not None

    def test_checkpoint_every_excluded_from_cache_key(self):
        params = build_simulation_params(
            ndim=2, mesh_size=16, block_size=8, num_levels=2, num_scalars=1
        )
        config = build_execution_config(mode="modeled")
        a = RunSpec(params=params, config=config, ncycles=2, warmup=1)
        b = a.replace(
            config=dataclasses.replace(config, checkpoint_every=3)
        )
        assert a.cache_key() == b.cache_key()

    def test_negative_checkpoint_every_rejected(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            build_execution_config(checkpoint_every=-1)
