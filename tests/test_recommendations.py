"""Tests for the automatic bottleneck advisor."""

import pytest

from repro.core.characterize import characterize
from repro.core.recommendations import (
    analyze,
    max_rank_scaling_speedup,
    render_recommendations,
    serial_fraction,
)
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams

GPU1R = ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=1)


@pytest.fixture(scope="module")
def result():
    params = SimulationParams(
        ndim=2, mesh_size=64, block_size=8, num_levels=3,
        num_scalars=1, wavefront_width=0.05, wavefront_speed=0.05,
    )
    return characterize(params, GPU1R, ncycles=3, warmup=1)


class TestAnalyze:
    def test_findings_ranked_by_seconds(self, result):
        findings = analyze(result)
        secs = [f.seconds for f in findings]
        assert secs == sorted(secs, reverse=True)
        assert len(findings) > 2

    def test_redistribute_gets_pooling_advice(self, result):
        findings = analyze(result, top=10)
        redis = next(
            f for f in findings
            if f.component == "RedistributeAndRefineMeshBlocks"
        )
        assert "pool" in redis.advice

    def test_amdahl_speedups_sane(self, result):
        for f in analyze(result):
            assert f.amdahl_speedup_if_removed >= 1.0
            assert 0.0 < f.share_of_total < 1.0

    def test_shares_below_unity_total(self, result):
        findings = analyze(result, top=20)
        assert sum(f.share_of_total for f in findings) <= 1.0


class TestSummaries:
    def test_serial_fraction_dominates_at_one_rank(self, result):
        assert serial_fraction(result) > 0.5

    def test_rank_scaling_bound_exceeds_one(self, result):
        assert max_rank_scaling_speedup(result) > 2.0

    def test_render_contains_paper_sections(self, result):
        text = render_recommendations(result)
        assert "VIII" in text
        assert "Amdahl" in text
        assert "RedistributeAndRefineMeshBlocks" in text
