"""Tests for Mesh construction, validation, and remeshing."""

import numpy as np
import pytest

from repro.mesh.block import FieldSpec
from repro.mesh.logical_location import LogicalLocation
from repro.mesh.mesh import Mesh, MeshGeometry


def make_geometry(ndim=2, mesh=32, block=8, ng=2, levels=3):
    return MeshGeometry(
        ndim=ndim,
        mesh_size=tuple(mesh if a < ndim else 1 for a in range(3)),
        block_size=tuple(block if a < ndim else 1 for a in range(3)),
        ng=ng,
        num_levels=levels,
    )


def make_mesh(ndim=2, mesh=32, block=8, ng=2, levels=3, allocate=True):
    return Mesh(
        make_geometry(ndim, mesh, block, ng, levels),
        field_specs=[FieldSpec("u", 2)],
        allocate=allocate,
    )


class TestGeometry:
    def test_nroot(self):
        geo = make_geometry(mesh=32, block=8)
        assert geo.nroot == (4, 4, 1)

    def test_rejects_non_multiple(self):
        with pytest.raises(ValueError, match="multiple"):
            make_geometry(mesh=30, block=8)

    def test_rejects_odd_block_with_amr(self):
        with pytest.raises(ValueError, match="multiple of 4"):
            MeshGeometry(
                ndim=1, mesh_size=(35, 1, 1), block_size=(7, 1, 1),
                ng=2, num_levels=2,
            )

    def test_rejects_odd_ghost_depth_with_amr(self):
        with pytest.raises(ValueError, match="ghost depth"):
            MeshGeometry(
                ndim=1, mesh_size=(32, 1, 1), block_size=(8, 1, 1),
                ng=3, num_levels=2,
            )

    def test_rejects_small_block_for_amr_ghosts(self):
        # block 4 with ng=4 cannot fill a coarse neighbor's ghosts.
        with pytest.raises(ValueError, match="2\\*ng"):
            make_geometry(mesh=32, block=4, ng=4)

    def test_block_bounds_level0(self):
        geo = make_geometry(mesh=32, block=8)
        bounds = geo.block_bounds(LogicalLocation(0, 1, 2, 0))
        assert bounds[0] == (0.25, 0.5)
        assert bounds[1] == (0.5, 0.75)

    def test_block_bounds_refined(self):
        geo = make_geometry()
        bounds = geo.block_bounds(LogicalLocation(1, 1, 0, 0))
        assert bounds[0] == (0.125, 0.25)

    def test_finest_dx(self):
        geo = make_geometry(mesh=32, levels=3)
        assert geo.finest_dx(0) == pytest.approx(1.0 / 128)

    def test_unused_dims_must_be_unit(self):
        with pytest.raises(ValueError):
            MeshGeometry(ndim=1, mesh_size=(8, 2, 1), block_size=(8, 1, 1))


class TestMeshConstruction:
    def test_initial_block_count(self):
        mesh = make_mesh(mesh=32, block=8)
        assert mesh.num_blocks == 16

    def test_gids_are_dense_and_morton_ordered(self):
        mesh = make_mesh()
        gids = [b.gid for b in mesh.block_list]
        assert gids == list(range(mesh.num_blocks))
        keys = [
            b.lloc.morton_key(mesh.tree.finest_level_present())
            for b in mesh.block_list
        ]
        assert keys == sorted(keys)

    def test_total_interior_cells(self):
        mesh = make_mesh(mesh=32, block=8)
        assert mesh.total_interior_cells() == 32 * 32

    def test_unallocated_mesh_has_no_arrays(self):
        mesh = make_mesh(allocate=False)
        assert all(b.fields == {} for b in mesh.block_list)


class TestRemesh:
    def test_refine_increases_blocks(self):
        mesh = make_mesh()
        loc = mesh.block_list[0].lloc
        stats = mesh.remesh(refine=[loc], derefine=[])
        assert stats.refined_parents == 1
        assert stats.created == 4
        assert mesh.num_blocks == 16 + 3
        mesh.tree.check_valid()

    def test_refine_conserves_field_total(self):
        mesh = make_mesh()
        rng = np.random.default_rng(3)
        total = 0.0
        for blk in mesh.block_list:
            blk.interior("u")[...] = rng.normal(size=blk.interior("u").shape)
            total += blk.interior("u").sum() * blk.cell_volume
        loc = mesh.block_list[5].lloc
        mesh.remesh(refine=[loc], derefine=[])
        after = sum(
            b.interior("u").sum() * b.cell_volume for b in mesh.block_list
        )
        assert after == pytest.approx(total)

    def test_derefine_conserves_field_total(self):
        mesh = make_mesh()
        loc = mesh.block_list[5].lloc
        mesh.remesh(refine=[loc], derefine=[])
        rng = np.random.default_rng(4)
        for blk in mesh.block_list:
            blk.interior("u")[...] = rng.normal(size=blk.interior("u").shape)
        total = sum(
            b.interior("u").sum() * b.cell_volume for b in mesh.block_list
        )
        children = list(loc.children(2))
        mesh.remesh(refine=[], derefine=children)
        assert mesh.num_blocks == 16
        after = sum(
            b.interior("u").sum() * b.cell_volume for b in mesh.block_list
        )
        assert after == pytest.approx(total)

    def test_refine_linear_field_is_exact(self):
        mesh = make_mesh()
        for blk in mesh.block_list:
            x = blk.cell_centers(0)
            y = blk.cell_centers(1)
            blk.fields["u"][...] = (
                2.0 * x[None, None, None, :] + 3.0 * y[None, None, :, None]
            )
        loc = mesh.block_list[5].lloc
        mesh.remesh(refine=[loc], derefine=[])
        for child_loc in loc.children(2):
            blk = mesh.block_at(child_loc)
            x = blk.cell_centers(0, include_ghosts=False)
            y = blk.cell_centers(1, include_ghosts=False)
            expected = 2.0 * x[None, None, None, :] + 3.0 * y[None, None, :, None]
            assert np.allclose(blk.interior("u"), expected)

    def test_remesh_in_model_mode_touches_no_arrays(self):
        mesh = make_mesh(allocate=False)
        loc = mesh.block_list[0].lloc
        stats = mesh.remesh(refine=[loc], derefine=[])
        assert stats.created == 4
        assert mesh.num_blocks == 19

    def test_uids_are_stable_across_renumbering(self):
        mesh = make_mesh()
        uid_before = mesh.block_list[10].uid
        lloc_before = mesh.block_list[10].lloc
        mesh.remesh(refine=[mesh.block_list[0].lloc], derefine=[])
        blk = mesh.block_at(lloc_before)
        assert blk.uid == uid_before
