"""Tests for input decks, output writers, and restarts."""

import numpy as np
import pytest

from repro.driver.driver import ParthenonDriver
from repro.driver.execution import ExecutionConfig
from repro.driver.input import (
    InputError,
    load_input,
    params_from_input,
    parse_input,
    render_input,
)
from repro.driver.outputs import (
    load_restart,
    read_history,
    save_restart,
    write_history,
    write_mesh_structure,
)
from repro.driver.params import SimulationParams
from repro.solver.burgers import CONSERVED
from repro.solver.history import HistoryRow
from repro.solver.initial_conditions import gaussian_blob

DECK = """
# VIBE-style configuration
<parthenon/mesh>
nx1 = 64
nx2 = 64
nx3 = 64
numlevel = 3
derefine_count = 10

<parthenon/meshblock>
nx1 = 16

<parthenon/time>
cfl = 0.3

<burgers>
num_scalars = 4
recon = plm

<platform>
backend = gpu
num_gpus = 2
ranks_per_gpu = 6
mode = modeled
"""


class TestParse:
    def test_sections_and_types(self):
        s = parse_input(DECK)
        assert s["parthenon/mesh"]["nx1"] == 64
        assert s["parthenon/time"]["cfl"] == 0.3
        assert s["burgers"]["recon"] == "plm"

    def test_comments_stripped(self):
        s = parse_input("<a>\nx = 1  # note\n")
        assert s["a"]["x"] == 1

    def test_booleans(self):
        s = parse_input("<a>\nflag = true\noff = False\n")
        assert s["a"]["flag"] is True and s["a"]["off"] is False

    def test_key_before_section_rejected(self):
        with pytest.raises(InputError, match="before any"):
            parse_input("x = 1")

    def test_garbage_line_rejected(self):
        with pytest.raises(InputError, match="key = value"):
            parse_input("<a>\nnonsense\n")


class TestBuild:
    def test_full_deck(self):
        params, config = params_from_input(DECK)
        assert params.ndim == 3
        assert params.mesh_size == 64
        assert params.block_size == 16
        assert params.num_levels == 3
        assert params.num_scalars == 4
        assert params.reconstruction == "plm"
        assert params.cfl == 0.3
        assert config.backend == "gpu"
        assert config.total_ranks == 12

    def test_2d_detection(self):
        params, _ = params_from_input(
            "<parthenon/mesh>\nnx1 = 32\nnx2 = 32\nnx3 = 1\n"
            "<parthenon/meshblock>\nnx1 = 8\n<burgers>\nnum_scalars = 1\n"
        )
        assert params.ndim == 2

    def test_anisotropic_rejected(self):
        with pytest.raises(InputError, match="anisotropic"):
            params_from_input(
                "<parthenon/mesh>\nnx1 = 64\nnx2 = 32\nnx3 = 32\n"
            )

    def test_roundtrip_through_render(self):
        params, config = params_from_input(DECK)
        params2, config2 = params_from_input(render_input(params, config))
        assert params2 == params
        assert config2.total_ranks == config.total_ranks

    def test_load_from_disk(self, tmp_path):
        path = tmp_path / "deck.vibe"
        path.write_text(DECK)
        params, _ = load_input(path)
        assert params.mesh_size == 64


class TestHistoryIO:
    def test_roundtrip(self, tmp_path):
        rows = [
            HistoryRow(
                cycle=i,
                time=0.1 * i,
                scalar_totals=[1.0, 2.0],
                momentum_totals=[0.5],
                total_d=0.25,
                max_speed=0.9,
            )
            for i in range(3)
        ]
        path = tmp_path / "run.hst"
        write_history(path, rows)
        back = read_history(path)
        assert len(back) == 3
        assert back[1][0] == 1.0  # cycle
        assert back[1][2] == pytest.approx(1.0)  # total_q0

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_history(tmp_path / "x.hst", [])


class TestMeshStructure:
    def test_dump_lists_every_block(self, tmp_path):
        d = ParthenonDriver(
            SimulationParams(
                ndim=2, mesh_size=32, block_size=8, num_levels=2,
                num_scalars=1, reconstruction="plm",
            ),
            ExecutionConfig(mode="numeric"),
            initial_conditions=gaussian_blob,
        )
        d.run(2)
        path = tmp_path / "mesh.txt"
        write_mesh_structure(path, d.mesh)
        lines = [
            l for l in path.read_text().splitlines() if not l.startswith("#")
        ]
        assert len(lines) == d.mesh.num_blocks


class TestRestart:
    def _driver(self):
        return ParthenonDriver(
            SimulationParams(
                ndim=2, mesh_size=32, block_size=8, num_levels=2,
                num_scalars=1, reconstruction="plm",
            ),
            ExecutionConfig(mode="numeric"),
            initial_conditions=gaussian_blob,
        )

    def test_roundtrip_preserves_everything(self, tmp_path):
        d = self._driver()
        d.run(3)
        path = tmp_path / "restart.npz"
        save_restart(path, d.mesh, cycle=d.cycle, time=d.time)
        mesh, cycle, time = load_restart(path)
        assert cycle == 3
        assert time == pytest.approx(d.time)
        assert mesh.num_blocks == d.mesh.num_blocks
        for a, b in zip(d.mesh.block_list, mesh.block_list):
            assert a.lloc == b.lloc
            assert a.rank == b.rank
            np.testing.assert_array_equal(a.fields[CONSERVED], b.fields[CONSERVED])

    def test_restarted_run_continues_identically(self, tmp_path):
        d = self._driver()
        d.run(2)
        path = tmp_path / "restart.npz"
        save_restart(path, d.mesh, cycle=d.cycle, time=d.time)
        # Continue the original.
        d.run(2)
        # Continue from the restart with a fresh driver wired to the
        # reloaded mesh.
        mesh, cycle, time = load_restart(path)
        d2 = self._driver()
        d2.mesh = mesh
        d2.time = time
        d2.cycle = cycle
        from repro.comm.bvals import BoundaryExchange
        from repro.comm.flux_correction import FluxCorrection

        d2.bx = BoundaryExchange(mesh, d2.mpi)
        d2.fc = FluxCorrection(mesh, d2.mpi)
        d2.fc.set_neighbor_table(d2.bx.neighbor_table)
        d2.run(2)
        assert d2.history[-1].scalar_totals[0] == pytest.approx(
            d.history[-1].scalar_totals[0], rel=1e-12
        )

    def test_model_mode_rejected(self, tmp_path):
        d = ParthenonDriver(
            SimulationParams(
                ndim=2, mesh_size=32, block_size=8, num_levels=2,
                num_scalars=1,
            ),
            ExecutionConfig(mode="modeled"),
        )
        with pytest.raises(ValueError, match="numeric"):
            save_restart(tmp_path / "x.npz", d.mesh)
