"""Tests for MeshBlock storage and geometry."""

import numpy as np
import pytest

from repro.mesh.block import FieldSpec, IndexShape, MeshBlock
from repro.mesh.logical_location import LogicalLocation


def make_block(ndim=2, nx=8, ng=2, allocate=True, ncomp=3):
    sizes = tuple(nx if a < ndim else 1 for a in range(3))
    bounds = tuple((0.0, 1.0) if a < ndim else (0.0, 1.0) for a in range(3))
    return MeshBlock(
        lloc=LogicalLocation(0, 0, 0, 0),
        gid=0,
        nx=sizes,
        ng=ng,
        ndim=ndim,
        bounds=bounds,
        field_specs=[FieldSpec("u", ncomp)],
        allocate=allocate,
    )


class TestIndexShape:
    def test_total_includes_ghosts_only_on_active_dims(self):
        shape = IndexShape((8, 8, 1), ng=2, ndim=2)
        assert shape.total == (12, 12, 1)
        assert shape.array_shape == (1, 12, 12)

    def test_interior_slice(self):
        shape = IndexShape((8, 1, 1), ng=3, ndim=1)
        assert shape.interior(0) == slice(3, 11)
        assert shape.interior(1) == slice(0, 1)

    def test_cell_counts(self):
        shape = IndexShape((4, 6, 1), ng=2, ndim=2)
        assert shape.interior_cells == 24
        assert shape.total_cells == 8 * 10

    def test_rejects_nonunit_inactive(self):
        with pytest.raises(ValueError):
            IndexShape((4, 4, 4), ng=2, ndim=2)


class TestFields:
    def test_field_array_shape(self):
        blk = make_block(ndim=2, nx=8, ng=2, ncomp=3)
        assert blk.fields["u"].shape == (3, 1, 12, 12)
        assert blk.coarse_fields["u"].shape == (3, 1, 8, 8)

    def test_3d_field_shape(self):
        blk = make_block(ndim=3, nx=8, ng=4)
        assert blk.fields["u"].shape == (3, 16, 16, 16)

    def test_duplicate_field_rejected(self):
        blk = make_block()
        with pytest.raises(ValueError):
            blk.add_field(FieldSpec("u", 1))

    def test_no_alloc_mode_has_no_arrays(self):
        blk = make_block(allocate=False)
        assert blk.fields == {}
        assert blk.interior_cells == 64
        assert blk.data_bytes() > 0

    def test_interior_view_writes_through(self):
        blk = make_block()
        blk.interior("u")[...] = 7.0
        total = blk.fields["u"].sum()
        assert total == pytest.approx(7.0 * 3 * 64)

    def test_flux_shapes(self):
        blk = make_block(ndim=2, nx=8, ng=2, ncomp=3)
        blk.allocate_fluxes("u")
        fx, fy, fz = blk.fluxes["u"]
        assert fx.shape == (3, 1, 8, 9)
        assert fy.shape == (3, 1, 9, 8)
        assert fz is None


class TestGeometry:
    def test_dx(self):
        blk = make_block(ndim=2, nx=8)
        assert blk.dx(0) == pytest.approx(1.0 / 8)

    def test_cell_centers_interior(self):
        blk = make_block(ndim=1, nx=4, ng=2)
        xs = blk.cell_centers(0, include_ghosts=False)
        assert np.allclose(xs, [0.125, 0.375, 0.625, 0.875])

    def test_cell_centers_with_ghosts_extend_outside(self):
        blk = make_block(ndim=1, nx=4, ng=1)
        xs = blk.cell_centers(0)
        assert xs[0] == pytest.approx(-0.125)
        assert xs[-1] == pytest.approx(1.125)

    def test_cell_volume(self):
        blk = make_block(ndim=2, nx=8)
        assert blk.cell_volume == pytest.approx((1.0 / 8) ** 2)

    def test_center(self):
        blk = make_block(ndim=2)
        assert blk.center()[:2] == (0.5, 0.5)

    def test_data_bytes_counts_fine_and_coarse(self):
        blk = make_block(ndim=1, nx=8, ng=2, ncomp=1)
        # fine: 12 cells, coarse: 8 cells, 8 bytes each
        assert blk.data_bytes() == (12 + 8) * 8
