"""End-to-end integration tests across subsystems."""

import numpy as np
import pytest

from repro.comm.bvals import BoundaryExchange
from repro.comm.flux_correction import FluxCorrection
from repro.comm.mpi import SimMPI
from repro.driver.driver import ParthenonDriver
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams
from repro.mesh.loadbalance import balance
from repro.solver.advance import advance_rk2, estimate_dt
from repro.solver.burgers import CONSERVED
from repro.solver.initial_conditions import gaussian_blob


def numeric_driver(**kw):
    defaults = dict(
        ndim=2,
        mesh_size=32,
        block_size=8,
        num_levels=2,
        num_scalars=1,
        reconstruction="plm",
    )
    defaults.update(kw)
    params = SimulationParams(**defaults)
    config = ExecutionConfig(
        backend="gpu", num_gpus=1, ranks_per_gpu=1, mode="numeric"
    )
    return ParthenonDriver(params, config, initial_conditions=gaussian_blob)


class TestNumericEndToEnd:
    def test_conservation_through_remeshing(self):
        """Refinement + derefinement mid-run must not break conservation."""
        d = numeric_driver(derefine_gap=2)
        d.run(6)
        totals = [h.scalar_totals[0] for h in d.history]
        assert max(totals) - min(totals) < 1e-10
        d.mesh.tree.check_valid()

    def test_block_count_tracks_the_pulse(self):
        d = numeric_driver()
        counts = []
        for _ in range(5):
            d.do_cycle()
            counts.append(d.mesh.num_blocks)
        assert max(counts) > counts[0] or counts[0] > 16

    def test_multirank_numeric_matches_single_rank(self):
        """Rank count changes cost accounting, never physics."""
        a = numeric_driver()
        a.run(4)
        params = a.params
        b = ParthenonDriver(
            params,
            ExecutionConfig(
                backend="gpu", num_gpus=1, ranks_per_gpu=4, mode="numeric"
            ),
            initial_conditions=gaussian_blob,
        )
        b.run(4)
        for ha, hb in zip(a.history, b.history):
            assert ha.scalar_totals[0] == pytest.approx(
                hb.scalar_totals[0], rel=1e-12
            )
            assert ha.total_d == pytest.approx(hb.total_d, rel=1e-12)

    def test_cpu_backend_numeric_matches_gpu_backend(self):
        a = numeric_driver()
        a.run(3)
        b = ParthenonDriver(
            a.params,
            ExecutionConfig(backend="cpu", cpu_ranks=4, mode="numeric"),
            initial_conditions=gaussian_blob,
        )
        b.run(3)
        assert a.history[-1].total_d == pytest.approx(
            b.history[-1].total_d, rel=1e-12
        )


class TestModeledConsistency:
    def test_comm_counts_scale_invariant_to_ranks(self):
        """Messages split local/remote differently, but cells don't change."""
        params = SimulationParams(
            ndim=2, mesh_size=64, block_size=16, num_levels=2,
            num_scalars=1,
        )
        results = {}
        for ranks in (1, 8):
            config = ExecutionConfig(
                backend="gpu", num_gpus=1, ranks_per_gpu=ranks
            )
            results[ranks] = ParthenonDriver(params, config).run(3)
        assert (
            results[1].cells_communicated == results[8].cells_communicated
        )
        assert results[8].remote_messages > results[1].remote_messages == 0

    def test_zone_cycles_equal_cell_updates(self):
        params = SimulationParams(
            ndim=2, mesh_size=64, block_size=16, num_levels=2, num_scalars=1
        )
        r = ParthenonDriver(
            params, ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=1)
        ).run(3)
        assert r.zone_cycles == r.cell_updates

    def test_more_gpus_split_kernel_time(self):
        params = SimulationParams(
            ndim=3, mesh_size=64, block_size=16, num_levels=2
        )
        one = ParthenonDriver(
            params, ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=4)
        ).run(2)
        four = ParthenonDriver(
            params, ExecutionConfig(backend="gpu", num_gpus=4, ranks_per_gpu=1)
        ).run(2)
        assert four.kernel_seconds < one.kernel_seconds


class TestManualPipelineMatchesDriver:
    def test_advance_rk2_equals_driver_step(self):
        """The uninstrumented advance and the driver's Step produce the
        same state evolution (identical math, different bookkeeping)."""
        d = numeric_driver(num_levels=1)
        # Manual pipeline on an identical second setup.
        params = d.params
        from repro.mesh.mesh import Mesh
        from repro.solver.burgers import BurgersPackage

        pkg = BurgersPackage(params.ndim, params.burgers_config())
        mesh = Mesh(params.geometry(), pkg.field_specs())
        gaussian_blob(mesh, pkg)
        mpi = SimMPI(1)
        bx = BoundaryExchange(mesh, mpi)
        fc = FluxCorrection(mesh, mpi)
        fc.set_neighbor_table(bx.neighbor_table)

        dt = d._current_dt()
        d._step()
        advance_rk2(mesh, pkg, bx, dt, fc)
        a = d.mesh.block_list[3].interior(CONSERVED)
        b = mesh.block_list[3].interior(CONSERVED)
        np.testing.assert_allclose(a, b, atol=1e-13)


class TestFailureModes:
    def test_oom_halts_run_gracefully(self):
        params = SimulationParams(
            ndim=3, mesh_size=64, block_size=8, num_levels=3
        )
        config = ExecutionConfig(
            backend="gpu", num_gpus=1, ranks_per_gpu=32
        )
        d = ParthenonDriver(params, config)
        r = d.run(5)
        assert r.oom
        assert r.cycles < 5 or r.device_memory_peak > 0

    def test_oom_raises_when_asked(self):
        from repro.kokkos.memory import OutOfMemoryError

        params = SimulationParams(
            ndim=3, mesh_size=64, block_size=8, num_levels=3
        )
        config = ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=32)
        with pytest.raises(OutOfMemoryError):
            d = ParthenonDriver(params, config, raise_on_oom=True)
            d.run(5)

    def test_load_balance_keeps_all_ranks_used(self):
        params = SimulationParams(
            ndim=2, mesh_size=64, block_size=8, num_levels=2, num_scalars=1
        )
        config = ExecutionConfig(backend="cpu", cpu_ranks=8)
        d = ParthenonDriver(params, config)
        d.run(3)
        ranks_used = {b.rank for b in d.mesh.block_list}
        assert ranks_used == set(range(8))
