"""Policy-registry tests: criteria, budget policy, bookkeeping, properties.

Covers the refinement-policy registry (did-you-mean validation, every
named policy constructible), the recovered-gradient criterion, the
block-budget policy's hard cap / hysteresis / determinism properties
(hypothesis), the derefine-gap rate limit under arbitrary flag
sequences, and the ``forget_stale`` bookkeeping contract.
"""

import math
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh.block import FieldSpec
from repro.mesh.mesh import Mesh, MeshGeometry
from repro.mesh.refinement import (
    KNOWN_POLICIES,
    AmrFlag,
    BlockBudgetPolicy,
    FirstDerivativeCriterion,
    RecoveredGradientCriterion,
    RefinementPolicy,
    SecondDerivativeCriterion,
    SphericalWavefrontTagger,
    TagReport,
    UnknownPolicyError,
    build_policy,
    check_policy,
    policy_names,
)


def make_mesh(levels=3, mesh=32, block=8, allocate=True):
    geo = MeshGeometry(
        ndim=2,
        mesh_size=(mesh, mesh, 1),
        block_size=(block, block, 1),
        ng=2,
        num_levels=levels,
    )
    return Mesh(geo, field_specs=[FieldSpec("q", 1)], allocate=allocate)


class UidIndicatorTagger:
    """Deterministic per-uid indicator for policy-level tests."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.overrides = {}

    def _value(self, uid: int, cycle: int) -> float:
        if uid in self.overrides:
            return self.overrides[uid]
        return (hash((self.seed, uid, cycle)) % 1000) / 1000.0

    def indicator(self, blk, cycle=0):
        return self._value(blk.uid, cycle)

    def flag_from(self, ind):
        if ind > 0.7:
            return AmrFlag.REFINE
        if ind < 0.3:
            return AmrFlag.DEREFINE
        return AmrFlag.SAME

    def tag(self, blk, cycle):
        return self.flag_from(self.indicator(blk, cycle))


class HashFlagTagger:
    """tag()-only tagger (no indicator): arbitrary deterministic flags."""

    def __init__(self, seed: int):
        self.seed = seed

    def tag(self, blk, cycle):
        return AmrFlag(hash((self.seed, blk.uid, cycle)) % 3 - 1)


# ------------------------------------------------------------- registry


class TestRegistry:
    def test_known_names(self):
        assert policy_names() == KNOWN_POLICIES
        assert "first_derivative" in KNOWN_POLICIES
        assert "second_derivative" in KNOWN_POLICIES
        assert "recovered_gradient" in KNOWN_POLICIES
        assert "block_budget" in KNOWN_POLICIES

    def test_unknown_name_suggests(self):
        with pytest.raises(UnknownPolicyError, match="did you mean"):
            check_policy("blok_budget")
        with pytest.raises(UnknownPolicyError):
            build_policy(
                "nope", numeric=True, refine_tol=0.3, derefine_tol=0.03
            )

    @pytest.mark.parametrize("name", KNOWN_POLICIES)
    def test_every_name_builds_numeric(self, name):
        policy = build_policy(
            name,
            numeric=True,
            refine_tol=0.3,
            derefine_tol=0.03,
            block_budget=10,
            field_name="q",
        )
        assert isinstance(policy, RefinementPolicy)
        if name == "block_budget":
            assert isinstance(policy, BlockBudgetPolicy)
            assert policy.target_blocks == 10

    @pytest.mark.parametrize("name", KNOWN_POLICIES)
    def test_every_name_builds_modeled(self, name):
        policy = build_policy(
            name,
            numeric=False,
            refine_tol=0.3,
            derefine_tol=0.03,
            block_budget=10,
            wavefront=SphericalWavefrontTagger(),
        )
        assert isinstance(policy.tagger, SphericalWavefrontTagger)

    def test_modeled_needs_wavefront(self):
        with pytest.raises(ValueError, match="SphericalWavefrontTagger"):
            build_policy(
                "first_derivative",
                numeric=False,
                refine_tol=0.3,
                derefine_tol=0.03,
            )

    def test_budget_policy_needs_budget(self):
        with pytest.raises(ValueError, match="block_budget >= 1"):
            build_policy(
                "block_budget",
                numeric=True,
                refine_tol=0.3,
                derefine_tol=0.03,
            )

    def test_criterion_selection(self):
        kinds = {
            "first_derivative": FirstDerivativeCriterion,
            "second_derivative": SecondDerivativeCriterion,
            "recovered_gradient": RecoveredGradientCriterion,
        }
        for name, cls in kinds.items():
            policy = build_policy(
                name,
                numeric=True,
                refine_tol=0.4,
                derefine_tol=0.04,
                field_name="q",
                component=2,
            )
            assert isinstance(policy.tagger, cls)
            assert policy.tagger.component == 2


# ----------------------------------------------------- recovered gradient


class TestRecoveredGradient:
    def test_flat_field_derefines(self):
        mesh = make_mesh()
        blk = mesh.block_list[0]
        blk.fields["q"][...] = 3.0
        crit = RecoveredGradientCriterion("q")
        assert crit.tag(blk, cycle=0) == AmrFlag.DEREFINE

    def test_linear_ramp_recovers_exactly(self):
        mesh = make_mesh()
        blk = mesh.block_list[0]
        x = blk.cell_centers(0)
        y = blk.cell_centers(1)
        blk.fields["q"][...] = 2.0 * x[None, None, None, :] + y[None, :, None]
        crit = RecoveredGradientCriterion("q")
        # A linear profile has a constant gradient; the box filter
        # reproduces it exactly, so the indicator is ~0.
        assert crit.indicator(blk) < 0.05

    def test_step_is_flagged(self):
        mesh = make_mesh()
        blk = mesh.block_list[0]
        blk.fields["q"][...] = 1.0
        blk.fields["q"][:, :, :, 6:] = 10.0
        crit = RecoveredGradientCriterion("q")
        assert crit.indicator(blk) > crit.refine_tol
        assert crit.tag(blk, cycle=0) == AmrFlag.REFINE

    def test_component_restriction(self):
        mesh = make_mesh()
        geo = mesh.geometry
        blk = Mesh(geo, field_specs=[FieldSpec("q", 3)]).block_list[0]
        blk.fields["q"][...] = 1.0
        blk.fields["q"][0, :, :, 6:] = 10.0  # step only in component 0
        full = RecoveredGradientCriterion("q").indicator(blk)
        c0 = RecoveredGradientCriterion("q", component=0).indicator(blk)
        c2 = RecoveredGradientCriterion("q", component=2).indicator(blk)
        assert full == c0
        assert c2 < c0

    def test_second_derivative_component_restriction(self):
        mesh = make_mesh()
        blk = Mesh(mesh.geometry, field_specs=[FieldSpec("q", 2)]).block_list[0]
        blk.fields["q"][...] = 1.0
        blk.fields["q"][1, :, :, 6:] = 10.0
        assert (
            SecondDerivativeCriterion("q", component=0).indicator(blk)
            < SecondDerivativeCriterion("q", component=1).indicator(blk)
        )


# ------------------------------------------------------ wavefront ranking


class TestWavefrontIndicator:
    def test_sign_matches_legacy_intersection_tag(self):
        mesh = make_mesh(allocate=False)
        tagger = SphericalWavefrontTagger(center=(0.5, 0.5, 0.0))
        for cycle in range(0, 40, 3):
            r = tagger.radius(cycle)
            for blk in mesh.block_list:
                dmin, dmax = tagger._distance_to_box(blk)
                intersects = (
                    dmin <= r + tagger.width and dmax >= r - tagger.width
                )
                ind = tagger.indicator(blk, cycle)
                assert (ind >= 0.0) == intersects
                expected = AmrFlag.REFINE if intersects else AmrFlag.DEREFINE
                assert tagger.tag(blk, cycle) == expected

    def test_indicator_ranks_by_distance(self):
        mesh = make_mesh(allocate=False)
        tagger = SphericalWavefrontTagger(center=(0.0, 0.0, 0.0), r0=0.05)
        inds = [tagger.indicator(b, 0) for b in mesh.block_list]
        # The block containing the center overlaps most.
        assert max(inds) == tagger.indicator(mesh.block_list[0], 0)


# ----------------------------------------------------------- TagReport


class TestTagReport:
    def test_legacy_tuple_unpacking(self):
        mesh = make_mesh(allocate=False)
        policy = RefinementPolicy(UidIndicatorTagger())
        refine, derefine, checked = policy.collect_flags(mesh, cycle=0)
        assert checked == mesh.num_blocks
        assert isinstance(refine, list) and isinstance(derefine, list)

    def test_counts_and_indicator(self):
        mesh = make_mesh(allocate=False)
        tagger = UidIndicatorTagger()
        for blk in mesh.block_list:
            tagger.overrides[blk.uid] = 0.9
        report = RefinementPolicy(tagger).collect_flags(mesh, cycle=0)
        assert report.refine_requests == mesh.num_blocks
        assert report.indicator_max == 0.9
        assert report.derefine_requests == 0

    def test_tag_only_tagger_has_no_indicator(self):
        mesh = make_mesh(allocate=False)
        report = RefinementPolicy(HashFlagTagger(1)).collect_flags(mesh, 0)
        assert report.indicator_max == 0.0

    def test_gap_blocked_counter(self):
        mesh = make_mesh(allocate=False)
        tagger = UidIndicatorTagger()
        policy = RefinementPolicy(tagger, derefine_gap=10)
        for blk in mesh.block_list:
            tagger.overrides[blk.uid] = 0.9
        report = policy.collect_flags(mesh, 0)
        mesh.remesh(report.refine, [])
        policy.forget_stale(mesh)
        for blk in mesh.block_list:
            tagger.overrides[blk.uid] = 0.0  # everyone wants out now
        report = policy.collect_flags(mesh, 1)
        assert report.derefine == []
        assert report.derefine_blocked > 0


# -------------------------------------------------- budget policy (props)


def run_budget_cycles(mesh, policy, tagger, cycles):
    counts = []
    for cycle in range(cycles):
        tagger.seed += 1  # fresh indicator landscape each cycle
        report = policy.collect_flags(mesh, cycle)
        mesh.remesh(report.refine, report.derefine)
        policy.forget_stale(mesh)
        mesh.tree.check_valid()
        counts.append(mesh.num_blocks)
    return counts


class TestBlockBudget:
    @settings(max_examples=15, deadline=None)
    @given(
        target=st.integers(min_value=4, max_value=60),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_never_exceeds_budget_after_cascade(self, target, seed):
        mesh = make_mesh(levels=3, allocate=False)
        initial = mesh.num_blocks
        tagger = UidIndicatorTagger(seed)
        policy = BlockBudgetPolicy(
            tagger, derefine_gap=2, target_blocks=target
        )
        counts = run_budget_cycles(mesh, policy, tagger, cycles=6)
        cap = max(target, initial)
        assert all(c <= cap for c in counts), (counts, target, initial)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_hysteresis_band_is_quiet(self, seed):
        mesh = make_mesh(levels=3, allocate=False)
        n = mesh.num_blocks
        # Pick a target whose band [floor(0.9 t), t] contains n.
        target = n + 1
        assert math.floor(target * 0.9) <= n <= target
        policy = BlockBudgetPolicy(
            UidIndicatorTagger(seed), target_blocks=target
        )
        report = policy.collect_flags(mesh, 0)
        assert report.refine == [] and report.derefine == []

    def test_refines_toward_target(self):
        mesh = make_mesh(levels=3, allocate=False)
        initial = mesh.num_blocks
        tagger = UidIndicatorTagger(3)
        policy = BlockBudgetPolicy(tagger, target_blocks=3 * initial)
        counts = run_budget_cycles(mesh, policy, tagger, cycles=4)
        assert counts[-1] <= 3 * initial
        assert counts[-1] > initial

    def test_derefines_excess_respecting_gap(self):
        mesh = make_mesh(levels=3, allocate=False)
        initial = mesh.num_blocks
        tagger = UidIndicatorTagger(5)
        grow = BlockBudgetPolicy(tagger, target_blocks=4 * initial)
        run_budget_cycles(mesh, grow, tagger, cycles=3)
        grown = mesh.num_blocks
        assert grown > initial
        shrink = BlockBudgetPolicy(
            tagger, derefine_gap=0, target_blocks=initial
        )
        # Young blocks block derefinement under a long gap.
        gapped = BlockBudgetPolicy(
            tagger, derefine_gap=1000, target_blocks=initial
        )
        report = gapped.collect_flags(mesh, cycle=3)
        assert report.derefine == []
        assert report.derefine_blocked > 0
        counts = run_budget_cycles(mesh, shrink, tagger, cycles=4)
        assert counts[-1] < grown

    def test_order_independent_and_deterministic(self):
        mesh = make_mesh(levels=3, allocate=False)
        tagger = UidIndicatorTagger(9)
        policy_a = BlockBudgetPolicy(tagger, target_blocks=40)
        policy_b = BlockBudgetPolicy(tagger, target_blocks=40)
        shuffled = list(mesh.block_list)
        rng = np.random.default_rng(0)
        rng.shuffle(shuffled)
        fake = SimpleNamespace(
            block_list=shuffled,
            geometry=mesh.geometry,
            tree=mesh.tree,
            num_blocks=mesh.num_blocks,
            ndim=mesh.ndim,
            remesh_generation=mesh.remesh_generation,
        )
        report_a = policy_a.collect_flags(mesh, 0)
        report_b = policy_b.collect_flags(fake, 0)
        assert set(report_a.refine) == set(report_b.refine)
        assert set(report_a.derefine) == set(report_b.derefine)

    def test_threshold_tagging_order_independent(self):
        mesh = make_mesh(allocate=False)
        tagger = UidIndicatorTagger(11)
        shuffled = list(mesh.block_list)
        np.random.default_rng(1).shuffle(shuffled)
        fake = SimpleNamespace(
            block_list=shuffled,
            geometry=mesh.geometry,
            remesh_generation=mesh.remesh_generation,
        )
        a = RefinementPolicy(tagger).collect_flags(mesh, 0)
        b = RefinementPolicy(tagger).collect_flags(fake, 0)
        assert set(a.refine) == set(b.refine)
        assert set(a.derefine) == set(b.derefine)

    def test_budget_requires_target(self):
        mesh = make_mesh(allocate=False)
        policy = BlockBudgetPolicy(UidIndicatorTagger())
        with pytest.raises(ValueError, match="target_blocks"):
            policy.collect_flags(mesh, 0)

    def test_budget_requires_indicator_tagger(self):
        mesh = make_mesh(allocate=False)
        policy = BlockBudgetPolicy(HashFlagTagger(0), target_blocks=1000)
        with pytest.raises(TypeError, match="indicator"):
            policy.collect_flags(mesh, 0)


# ----------------------------------------------- derefine-gap rate limit


class TestDerefineGapProperty:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        gap=st.integers(min_value=1, max_value=6),
    )
    def test_gap_holds_under_arbitrary_flags(self, seed, gap):
        mesh = make_mesh(levels=3, allocate=False)
        policy = RefinementPolicy(HashFlagTagger(seed), derefine_gap=gap)
        births = {}  # independent ledger: uid -> first cycle seen
        for cycle in range(10):
            for blk in mesh.block_list:
                births.setdefault(blk.uid, cycle)
            report = policy.collect_flags(mesh, cycle)
            by_loc = {b.lloc: b for b in mesh.block_list}
            for loc in report.derefine:
                age = cycle - births[by_loc[loc].uid]
                assert age >= gap, (cycle, loc, age, gap)
            mesh.remesh(report.refine, report.derefine)
            policy.forget_stale(mesh)


# --------------------------------------------- forget_stale bookkeeping


class TestForgetStale:
    def test_missed_cleanup_is_loud(self):
        mesh = make_mesh(allocate=False)
        policy = RefinementPolicy(UidIndicatorTagger())
        policy.collect_flags(mesh, 0)
        policy.forget_stale(mesh)
        mesh.remesh([], [])  # a remesh the policy never hears about
        with pytest.raises(RuntimeError, match="forget_stale"):
            policy.collect_flags(mesh, 1)

    def test_remeshes_observed_counts(self):
        mesh = make_mesh(allocate=False)
        policy = RefinementPolicy(UidIndicatorTagger())
        assert policy.remeshes_observed == 0
        for cycle in range(3):
            report = policy.collect_flags(mesh, cycle)
            mesh.remesh(report.refine, report.derefine)
            policy.forget_stale(mesh)
        assert policy.remeshes_observed == 3

    def test_no_dead_uids_over_remesh_heavy_run(self):
        """_birth_cycle never retains dead block uids (the satellite)."""
        from repro.api import RunSpec, Simulation, build_simulation_params
        from repro.api import build_execution_config

        params = build_simulation_params(
            ndim=2, mesh_size=32, block_size=8, num_levels=3,
            derefine_gap=2,
        )
        config = build_execution_config(backend="gpu", mode="modeled")
        sim = Simulation(
            RunSpec(params=params, config=config, ncycles=25, warmup=0)
        )
        sim.run()
        driver = sim.driver
        live = {b.uid for b in driver.mesh.block_list}
        assert set(driver.policy._birth_cycle) <= live
        assert driver.policy.consistent_with(driver.mesh)
        assert driver.policy.remeshes_observed == 25
        # The run actually churned the tree, so the check had teeth.
        assert driver.metrics.counters.get("remesh_events", 0) > 0
