"""Tests for prolongation/restriction operators (conservation, exactness)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.mesh.prolongation import limited_slopes, minmod, prolong, prolong_shape
from repro.mesh.restriction import restrict


class TestMinmod:
    def test_opposite_signs_give_zero(self):
        assert minmod(np.array([1.0]), np.array([-2.0]))[0] == 0.0

    def test_same_sign_gives_smaller_magnitude(self):
        assert minmod(np.array([3.0]), np.array([2.0]))[0] == 2.0
        assert minmod(np.array([-3.0]), np.array([-2.0]))[0] == -2.0

    def test_zero_argument_gives_zero(self):
        assert minmod(np.array([0.0]), np.array([5.0]))[0] == 0.0


class TestRestrict:
    def test_1d_average(self):
        fine = np.arange(8.0).reshape(1, 1, 1, 8)
        coarse = restrict(fine, 1)
        assert coarse.shape == (1, 1, 1, 4)
        assert np.allclose(coarse[0, 0, 0], [0.5, 2.5, 4.5, 6.5])

    def test_2d_average(self):
        fine = np.ones((2, 1, 4, 4))
        coarse = restrict(fine, 2)
        assert coarse.shape == (2, 1, 2, 2)
        assert np.allclose(coarse, 1.0)

    def test_3d_conservation(self):
        rng = np.random.default_rng(42)
        fine = rng.normal(size=(3, 8, 8, 8))
        coarse = restrict(fine, 3)
        assert coarse.sum() * 8 == pytest.approx(fine.sum())

    def test_rejects_odd_extent(self):
        with pytest.raises(ValueError):
            restrict(np.ones((1, 1, 1, 7)), 1)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            restrict(np.ones((4, 4)), 2)


class TestProlong:
    def test_output_shape(self):
        coarse = np.zeros((2, 1, 6, 6))
        fine = prolong(coarse, 2)
        assert fine.shape == (2, 1, 8, 8)
        assert prolong_shape((2, 1, 6, 6), 2) == (2, 1, 8, 8)

    def test_constant_exact(self):
        coarse = np.full((1, 1, 1, 6), 3.5)
        fine = prolong(coarse, 1)
        assert np.allclose(fine, 3.5)

    def test_linear_exact_1d(self):
        # q(x) = 2x on coarse cell centers; children at +-dx/4.
        xs = np.arange(6.0)
        coarse = (2.0 * xs).reshape(1, 1, 1, 6)
        fine = prolong(coarse, 1)
        expected_x = np.repeat(xs[1:-1], 2) + np.tile([-0.25, 0.25], 4)
        assert np.allclose(fine[0, 0, 0], 2.0 * expected_x)

    def test_linear_exact_3d(self):
        x = np.arange(5.0)
        X3, X2, X1 = np.meshgrid(x, x, x, indexing="ij")
        coarse = (1.5 * X1 - 2.0 * X2 + 0.5 * X3)[None]
        fine = prolong(coarse, 3)
        xf = np.repeat(x[1:-1], 2) + np.tile([-0.25, 0.25], 3)
        F3, F2, F1 = np.meshgrid(xf, xf, xf, indexing="ij")
        assert np.allclose(fine[0], 1.5 * F1 - 2.0 * F2 + 0.5 * F3)

    def test_preserves_cell_averages(self):
        rng = np.random.default_rng(7)
        coarse = rng.normal(size=(2, 1, 6, 6))
        fine = prolong(coarse, 2)
        # Restricting back must recover the coarse interior exactly.
        interior = coarse[:, :, 1:-1, 1:-1]
        assert np.allclose(restrict(fine, 2), interior)

    def test_limiter_suppresses_overshoot(self):
        # A step function: limited prolongation must not create new extrema.
        coarse = np.array([0.0, 0.0, 0.0, 1.0, 1.0, 1.0]).reshape(1, 1, 1, 6)
        fine = prolong(coarse, 1, limit=True)
        assert fine.min() >= 0.0 - 1e-14
        assert fine.max() <= 1.0 + 1e-14

    def test_unlimited_uses_central_slopes(self):
        coarse = np.array([0.0, 1.0, 4.0, 9.0, 16.0]).reshape(1, 1, 1, 5)
        limited = prolong(coarse, 1, limit=True)
        unlimited = prolong(coarse, 1, limit=False)
        assert not np.allclose(limited, unlimited)

    def test_rejects_missing_margin(self):
        with pytest.raises(ValueError):
            prolong(np.ones((1, 1, 1, 2)), 1)


class TestLimitedSlopes:
    def test_monotone_data_gets_minimum_slope(self):
        arr = np.array([0.0, 1.0, 3.0, 6.0]).reshape(1, 1, 1, 4)
        s = limited_slopes(arr, 3)
        assert np.allclose(s[0, 0, 0], [1.0, 2.0])

    def test_extremum_gets_zero_slope(self):
        arr = np.array([0.0, 1.0, 0.0]).reshape(1, 1, 1, 3)
        s = limited_slopes(arr, 3)
        assert s[0, 0, 0, 0] == 0.0


@settings(max_examples=30, deadline=None)
@given(
    hnp.arrays(
        np.float64,
        (1, 1, 6, 6),
        elements=st.floats(-100, 100, allow_nan=False),
    )
)
def test_prolong_restrict_roundtrip_property(coarse):
    """Property: restrict(prolong(c)) == interior(c) for any data."""
    fine = prolong(coarse, 2)
    assert np.allclose(restrict(fine, 2), coarse[:, :, 1:-1, 1:-1], atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    hnp.arrays(
        np.float64,
        (2, 1, 1, 8),
        elements=st.floats(-50, 50, allow_nan=False),
    )
)
def test_restrict_conserves_total_property(fine):
    """Property: volume-weighted total is invariant under restriction."""
    coarse = restrict(fine, 1)
    assert coarse.sum() * 2 == pytest.approx(fine.sum(), abs=1e-6)


@settings(max_examples=40, deadline=None)
@given(
    c=st.floats(-1e30, 1e30, allow_nan=False),
    ndim=st.integers(1, 3),
    ncomp=st.integers(1, 3),
    extent=st.sampled_from([4, 6, 8]),
)
def test_restrict_of_prolonged_constant_exact_property(c, ndim, ncomp, extent):
    """Property: a constant field survives prolong+restrict bit-exactly.

    Minmod slopes of a constant are exactly zero and the 2^ndim-child
    average divides by a power of two, so no rounding at all is allowed.
    """
    shape = (ncomp,) + (1,) * (3 - ndim) + (extent,) * ndim
    coarse = np.full(shape, c)
    fine = prolong(coarse, ndim)
    assert np.all(fine == c)
    interior = coarse[
        (slice(None),)
        + tuple(
            slice(1, -1) if axis >= 3 - ndim else slice(None)
            for axis in range(3)
        )
    ]
    assert np.array_equal(restrict(fine, ndim), interior)


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_restrict_conserves_sum_over_random_regions_property(data):
    """Property: restriction conserves the volume-weighted total for any
    refined region shape, dimensionality, and component count."""
    ndim = data.draw(st.integers(1, 3), label="ndim")
    ncomp = data.draw(st.integers(1, 4), label="ncomp")
    extents = tuple(
        data.draw(st.sampled_from([2, 4, 6, 8]), label=f"extent{axis}")
        for axis in range(ndim)
    )
    shape = (ncomp,) + (1,) * (3 - ndim) + extents
    fine = data.draw(
        hnp.arrays(
            np.float64,
            shape,
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        ),
        label="fine",
    )
    coarse = restrict(fine, ndim)
    # Each coarse cell has 2^ndim times the fine-cell volume.
    assert coarse.sum() * 2 ** ndim == pytest.approx(
        fine.sum(), rel=1e-9, abs=1e-5
    )
