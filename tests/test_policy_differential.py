"""Policy-differential gate (DESIGN §14, the ISSUE 10 tentpole contract).

What each named refinement policy ships under:

* the **default** policy (``first_derivative``) is the seed behavior —
  selecting it explicitly is indistinguishable from not selecting
  anything: ``RunResult`` equal at 0 ULP and the canonical trace
  byte-identical, in both modeled and numeric modes.  The criterion
  class itself reproduces the legacy in-driver tagger bitwise (pinned
  against ``pkg.first_derivative_indicator`` below).
* every **new** policy passes the same cross-engine gates the seed
  passes: packed vs per-block kernels agree to ``atol = 1e-13``, and
  sharded execution is 0-ULP identical to serial.
* every registry name survives a deck round trip, and the default deck
  rendering is unchanged (no ``<refinement>`` section — byte-stable
  decks and cache keys for all existing runs).
* the ``block_budget`` policy holds its target: on the mini deck with a
  budget of 120 the final population lands within 10% of the target and
  the cap is never exceeded, cascades included.
"""

import dataclasses
import json
from functools import lru_cache
from pathlib import Path

import numpy as np
import pytest

from repro.api import (
    ConfigError,
    RunSpec,
    Simulation,
    build_execution_config,
    build_simulation_params,
)
from repro.driver.driver import ParthenonDriver
from repro.driver.execution import ExecutionConfig
from repro.driver.input import (
    InputError,
    params_from_input,
    render_input,
)
from repro.driver.params import SimulationParams
from repro.mesh.mesh import Mesh, MeshGeometry
from repro.mesh.refinement import (
    KNOWN_POLICIES,
    FirstDerivativeCriterion,
)
from repro.observability import to_canonical_json
from repro.solver.burgers import CONSERVED, DERIVED, BurgersPackage
from repro.solver.initial_conditions import gaussian_blob

REPO = Path(__file__).resolve().parent.parent
MINI_DECK = REPO / "examples" / "mini.in"

ATOL = 1e-13
NCYCLES = 3

NEW_POLICIES = [
    ("second_derivative", 0),
    ("recovered_gradient", 0),
    ("block_budget", 30),
]


def _blob(mesh, pkg):
    gaussian_blob(mesh, pkg, amplitude=0.8, width=0.15)


def _run(spec: RunSpec):
    sim = Simulation(spec, initial_conditions=_blob, trace=True)
    result = sim.run()
    return result, to_canonical_json(sim.trace())


def _assert_identical(run_a, run_b):
    """0-ULP RunResult equality plus byte-identical canonical trace."""
    result_a, trace_a = run_a
    result_b, trace_b = run_b
    assert dataclasses.asdict(result_a) == dataclasses.asdict(result_b)
    assert trace_a == trace_b


# ------------------------------------------------ default is the seed


class TestDefaultPolicyIsSeed:
    def test_modeled_explicit_default_is_bitwise_identical(self):
        base = RunSpec.from_file(MINI_DECK)
        explicit = base.replace(
            params=dataclasses.replace(
                base.params, refinement_policy="first_derivative"
            )
        )
        sim_a = Simulation(base, trace=True)
        sim_b = Simulation(explicit, trace=True)
        result_a, result_b = sim_a.run(), sim_b.run()
        assert dataclasses.asdict(result_a) == dataclasses.asdict(result_b)
        assert to_canonical_json(sim_a.trace()) == to_canonical_json(
            sim_b.trace()
        )

    def test_numeric_explicit_default_is_bitwise_identical(self):
        def spec(**overrides):
            params = build_simulation_params(
                ndim=2, mesh_size=32, block_size=8, num_levels=2,
                num_scalars=1, **overrides,
            )
            config = build_execution_config(mode="numeric")
            return RunSpec(params=params, config=config, ncycles=3, warmup=1)

        _assert_identical(
            _run(spec()),
            _run(spec(refinement_policy="first_derivative")),
        )

    def test_criterion_matches_legacy_package_indicator_bitwise(self):
        """The registry criterion IS the legacy tagger, to the last ULP."""
        geo = MeshGeometry(
            ndim=2, mesh_size=(32, 32, 1), block_size=(8, 8, 1),
            ng=2, num_levels=2,
        )
        pkg = BurgersPackage(ndim=2)
        mesh = Mesh(geo, field_specs=pkg.field_specs())
        gaussian_blob(mesh, pkg, amplitude=0.8, width=0.15)
        rng = np.random.default_rng(7)
        crit = FirstDerivativeCriterion(CONSERVED, component=pkg.nvel)
        for blk in mesh.block_list:
            blk.fields[CONSERVED] += rng.normal(
                scale=0.05, size=blk.fields[CONSERVED].shape
            )
            assert crit.indicator(blk) == pkg.first_derivative_indicator(blk)


# --------------------------------------- packed vs per-block, per policy


@lru_cache(maxsize=None)
def run_driver(kernel_mode, policy, budget):
    params = SimulationParams(
        ndim=2, mesh_size=32, block_size=8, num_levels=2, num_scalars=1,
        refinement_policy=policy, block_budget=budget,
    )
    cfg = ExecutionConfig(
        backend="gpu", num_gpus=1, ranks_per_gpu=1,
        mode="numeric", kernel_mode=kernel_mode,
    )
    driver = ParthenonDriver(params, cfg, initial_conditions=_blob)
    driver.run(NCYCLES)
    return driver


@pytest.mark.parametrize("policy,budget", NEW_POLICIES)
def test_packed_vs_per_block_parity(policy, budget):
    dp = run_driver("packed", policy, budget)
    db = run_driver("per_block", policy, budget)
    bp = {b.lloc: b for b in dp.mesh.block_list}
    bb = {b.lloc: b for b in db.mesh.block_list}
    # Identical refinement decisions under the policy: same population.
    assert set(bp) == set(bb)
    for lloc, blk in bp.items():
        other = bb[lloc]
        np.testing.assert_allclose(
            blk.fields[CONSERVED], other.fields[CONSERVED], atol=ATOL, rtol=0
        )
        np.testing.assert_allclose(
            blk.fields[DERIVED], other.fields[DERIVED], atol=ATOL, rtol=0
        )
    for ha, hb in zip(dp.history, db.history):
        assert ha.total_d == pytest.approx(hb.total_d, abs=ATOL)
        assert ha.max_speed == pytest.approx(hb.max_speed, abs=ATOL)


# ------------------------------------------ sharded vs serial, per policy


def _sharded_spec(policy, budget, num_shards):
    params = build_simulation_params(
        ndim=2, mesh_size=32, block_size=8, num_levels=2, num_scalars=1,
        refinement_policy=policy, block_budget=budget,
    )
    config = build_execution_config(
        mode="numeric", kernel_mode="packed",
        num_gpus=1, ranks_per_gpu=2, num_shards=num_shards,
    )
    return RunSpec(params=params, config=config, ncycles=3, warmup=1)


def _normalize_trace(text: str) -> str:
    doc = json.loads(text)
    doc["meta"].pop("num_shards", None)
    doc["meta"].pop("shards", None)
    return json.dumps(doc, sort_keys=True)


@pytest.mark.parametrize("policy,budget", NEW_POLICIES)
def test_sharded_vs_serial_bitwise(policy, budget):
    result_a, trace_a = _run(_sharded_spec(policy, budget, 1))
    result_b, trace_b = _run(_sharded_spec(policy, budget, 2))
    normalized = dataclasses.replace(
        result_b, config=result_a.config, shards=result_a.shards
    )
    assert dataclasses.asdict(normalized) == dataclasses.asdict(result_a), (
        f"sharded {policy} run deviates from serial at the ULP level"
    )
    assert _normalize_trace(trace_b) == _normalize_trace(trace_a)


# --------------------------------------------------- deck round tripping


class TestDeckRoundTrip:
    @pytest.mark.parametrize("name", KNOWN_POLICIES)
    def test_every_registry_name_round_trips(self, name):
        budget = 64 if name == "block_budget" else 0
        params = build_simulation_params(
            refinement_policy=name, block_budget=budget
        )
        text = render_input(params, ExecutionConfig())
        parsed, _config = params_from_input(text)
        assert parsed.refinement_policy == name
        assert parsed.block_budget == budget
        assert parsed == params

    def test_default_deck_has_no_refinement_section(self):
        """Decks for existing runs must not change byte-wise."""
        text = render_input(build_simulation_params(), ExecutionConfig())
        assert "<refinement>" not in text
        assert "policy" not in text

    def test_unknown_deck_policy_is_loud(self):
        deck = "<refinement>\npolicy = blok_budget\n"
        with pytest.raises(InputError, match="did you mean"):
            params_from_input(deck)

    def test_budget_policy_deck_requires_budget(self):
        deck = "<refinement>\npolicy = block_budget\n"
        with pytest.raises(InputError, match="block_budget"):
            params_from_input(deck)

    def test_builder_rejects_unknown_policy(self):
        with pytest.raises(ConfigError, match="refinement_policy"):
            build_simulation_params(refinement_policy="nope")

    def test_builder_rejects_budget_policy_without_budget(self):
        with pytest.raises(ConfigError, match="block_budget"):
            build_simulation_params(refinement_policy="block_budget")

    def test_policy_rides_through_runspec_deck(self):
        spec = RunSpec(
            params=build_simulation_params(
                refinement_policy="block_budget", block_budget=96
            ),
            config=build_execution_config(),
            ncycles=2,
        )
        again = RunSpec.from_deck(spec.to_deck())
        assert again.params.refinement_policy == "block_budget"
        assert again.params.block_budget == 96


# -------------------------------------------- budget acceptance (mini)


class TestBudgetOnMiniDeck:
    def test_budget_within_ten_percent_of_target(self):
        target = 120
        base = RunSpec.from_file(MINI_DECK, ncycles=6, warmup=1)
        spec = base.replace(
            params=dataclasses.replace(
                base.params,
                refinement_policy="block_budget",
                block_budget=target,
            )
        )
        result = Simulation(spec).run()
        assert result.max_blocks <= target, "budget cap was exceeded"
        assert result.final_blocks <= target
        assert result.final_blocks >= 0.9 * target, (
            f"budget policy stalled at {result.final_blocks} blocks "
            f"(target {target})"
        )
