"""Fault-site matrix: every registered site × {fires once, fires never}.

The contract for each cell: the point either *recovers* (an ``ok``
artifact whose simulated quantities are identical to a fault-free run,
with honest ``attempts``/``resilience`` metadata) or fails *structurally*
(an ``error`` artifact naming the injected fault) — never silent
corruption, never a hang.  Determinism of the schedule itself is pinned
by ``tests/test_resilience.py``; this file pins the recovery paths.
"""

import multiprocessing as mp
import os
import signal
import time

import pytest

from repro.api import RunSpec, Simulation, build_execution_config, build_simulation_params
from repro.orchestration import PointTask, execute_point, run_campaign
from repro.parallel import ShardError
from repro.resilience import FAULT_SITES, FaultPlan

#: Keys that legitimately differ between a faulted/recovered run and the
#: clean baseline; every other key — every simulated quantity — must be
#: byte-identical.  ``parallel`` is the artifact schema's documented
#: wall-clock exception (per-shard stage timings).
_METADATA_KEYS = {"attempts", "resilience", "spec", "parallel"}


def _spec(site: str = "") -> RunSpec:
    """Per-site point spec: the ``shard_worker`` site only dispatches on
    a sharded numeric packed run, every other site on the cheap modeled
    deck."""
    if site == "shard_worker":
        params = build_simulation_params(
            ndim=2, mesh_size=16, block_size=8, num_levels=2, num_scalars=1
        )
        config = build_execution_config(
            mode="numeric", kernel_mode="packed", num_gpus=1,
            ranks_per_gpu=2, num_shards=2,
        )
        return RunSpec(
            params=params, config=config, ncycles=2, warmup=1, label="pt"
        )
    params = build_simulation_params(
        ndim=2, mesh_size=16, block_size=8, num_levels=2, num_scalars=1
    )
    config = build_execution_config(
        mode="modeled", kernel_mode="packed", num_gpus=1, ranks_per_gpu=2
    )
    return RunSpec(params=params, config=config, ncycles=2, warmup=1, label="pt")


@pytest.fixture(scope="module")
def clean_artifacts():
    """Fault-free baseline per distinct spec, keyed like ``_spec``."""
    return {
        "": execute_point(PointTask(spec=_spec())),
        "shard_worker": execute_point(PointTask(spec=_spec("shard_worker"))),
    }


def _baseline(clean_artifacts, site):
    return clean_artifacts[site if site == "shard_worker" else ""]


def _assert_simulated_quantities_match(artifact, clean):
    for key in set(artifact) | set(clean):
        if key in _METADATA_KEYS:
            continue
        assert artifact.get(key) == clean.get(key), (
            f"silent corruption: field {key!r} differs from the "
            "fault-free baseline"
        )


class TestFiresNever:
    @pytest.mark.parametrize("site", FAULT_SITES)
    def test_armed_but_silent_site_changes_nothing(self, site, clean_artifacts):
        plan = FaultPlan.single(site, probability=0.0, max_fires=1)
        artifact = execute_point(PointTask(spec=_spec(site), fault_plan=plan))
        assert artifact["status"] == "ok"
        assert artifact["attempts"] == 1
        faults = artifact["resilience"]["faults"]
        assert faults["fired"] == {}
        _assert_simulated_quantities_match(
            artifact, _baseline(clean_artifacts, site)
        )


class TestFiresOnce:
    @pytest.mark.parametrize("site", FAULT_SITES)
    def test_recovered_with_retry(self, site, clean_artifacts, tmp_path):
        """One transient fault + one retry: the point must recover, the
        artifact must record the fault honestly, and every simulated
        quantity must match the fault-free baseline."""
        plan = FaultPlan.single(site, probability=1.0, max_fires=1)
        artifact = execute_point(
            PointTask(
                spec=_spec(site),
                retries=1,
                checkpoint_dir=str(tmp_path / site),
                fault_plan=plan,
            )
        )
        assert artifact["status"] == "ok"
        assert artifact["attempts"] == 2
        faults = artifact["resilience"]["faults"]
        assert faults["fired"] == {site: 1}
        _assert_simulated_quantities_match(
            artifact, _baseline(clean_artifacts, site)
        )

    @pytest.mark.parametrize("site", FAULT_SITES)
    def test_structured_error_without_retry(self, site):
        """No retry budget: the fault must surface as a structured error
        artifact naming the injected fault — never a raise, never a hang."""
        plan = FaultPlan.single(site, probability=1.0, max_fires=1)
        artifact = execute_point(PointTask(spec=_spec(site), fault_plan=plan))
        assert artifact["status"] == "error"
        assert artifact["attempts"] == 1
        assert artifact["error"]["type"] == "InjectedFault"
        assert site in artifact["error"]["message"]
        assert artifact["resilience"]["faults"]["fired"] == {site: 1}


class TestCampaignResume:
    def test_crashed_point_resumes_from_checkpoint(self, tmp_path, clean_artifacts):
        """The acceptance-criteria path: a campaign point crashed by an
        injected worker fault resumes from its per-point checkpoint tree
        with ``resumed_from_cycle > 0`` recorded in the artifact."""
        plan = FaultPlan.single("kernel_launch", cycle=2)
        summary = run_campaign(
            [_spec()],
            tmp_path,
            workers=1,
            retries=1,
            checkpoint_every=1,
            fault_plan=plan,
        )
        assert summary.executed == 1 and summary.failed == 0
        artifact = summary.artifacts[0]
        assert artifact["status"] == "ok"
        assert artifact["attempts"] == 2
        assert artifact["resilience"]["resumed_from_cycle"] > 0
        assert artifact["resilience"]["faults"]["fired"] == {"kernel_launch": 1}
        # Per-point checkpoints live under <campaign>/checkpoints/<key>.
        key = artifact["cache_key"]
        assert any((tmp_path / "checkpoints" / key).glob("ckpt_*.json"))
        _assert_simulated_quantities_match(artifact, clean_artifacts[""])

    def test_faulted_campaign_caches_like_a_clean_one(self, tmp_path):
        """Resumed artifacts keep the spec's cache key, so a re-run of
        the same campaign without faults is served from cache."""
        plan = FaultPlan.single("kernel_launch", cycle=2)
        run_campaign(
            [_spec()], tmp_path, workers=1, retries=1,
            checkpoint_every=1, fault_plan=plan,
        )
        again = run_campaign([_spec()], tmp_path, workers=1)
        assert again.cached == 1 and again.executed == 0


class TestShardWorkerDeath:
    """Beyond the injected-exception site: a shard worker killed outright
    (SIGKILL, no goodbye message) must surface as a structured
    :class:`ShardError` — no hang, no silent corruption — and a sharded
    checkpointing run must still resume bitwise."""

    def test_killed_worker_surfaces_structured_error(self):
        sim = Simulation(_spec("shard_worker"))
        try:
            executor = sim.driver._shard_exec
            assert executor is not None
            executor.stage_timeout_s = 60.0  # fail the test, never hang CI
            executor._ensure_workers()
            victims = [
                p for p in mp.active_children()
                if p.name.startswith("repro-shard-")
            ]
            assert len(victims) == 2
            os.kill(victims[0].pid, signal.SIGKILL)
            t0 = time.monotonic()
            with pytest.raises(ShardError) as excinfo:
                sim.run()
            assert time.monotonic() - t0 < 30.0, "death detection hung"
            assert excinfo.value.shard >= 0
            assert excinfo.value.stage
        finally:
            sim.driver.shutdown_shards()

    def test_sharded_checkpoint_resume_is_bitwise(self, tmp_path):
        """Crash a sharded checkpointing run via the shard_worker site,
        resume from its last checkpoint: every simulated quantity must
        match a fault-free sharded run (which itself matches serial —
        ``tests/test_shard_parity.py``)."""
        plan = FaultPlan.single("shard_worker", cycle=2)
        summary = run_campaign(
            [_spec("shard_worker")],
            tmp_path,
            workers=1,
            retries=1,
            checkpoint_every=1,
            fault_plan=plan,
        )
        assert summary.executed == 1 and summary.failed == 0
        artifact = summary.artifacts[0]
        assert artifact["status"] == "ok"
        assert artifact["attempts"] == 2
        assert artifact["resilience"]["resumed_from_cycle"] > 0
        assert artifact["resilience"]["faults"]["fired"] == {"shard_worker": 1}
        clean = execute_point(PointTask(spec=_spec("shard_worker")))
        _assert_simulated_quantities_match(artifact, clean)
