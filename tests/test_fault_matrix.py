"""Fault-site matrix: every registered site × {fires once, fires never}.

The contract for each cell: the point either *recovers* (an ``ok``
artifact whose simulated quantities are identical to a fault-free run,
with honest ``attempts``/``resilience`` metadata) or fails *structurally*
(an ``error`` artifact naming the injected fault) — never silent
corruption, never a hang.  Determinism of the schedule itself is pinned
by ``tests/test_resilience.py``; this file pins the recovery paths.
"""

import pytest

from repro.api import RunSpec, build_execution_config, build_simulation_params
from repro.orchestration import PointTask, execute_point, run_campaign
from repro.resilience import FAULT_SITES, FaultPlan

#: Keys that legitimately differ between a faulted/recovered run and the
#: clean baseline; every other key — every simulated quantity — must be
#: byte-identical.
_METADATA_KEYS = {"attempts", "resilience", "spec"}


def _spec() -> RunSpec:
    params = build_simulation_params(
        ndim=2, mesh_size=16, block_size=8, num_levels=2, num_scalars=1
    )
    config = build_execution_config(
        mode="modeled", kernel_mode="packed", num_gpus=1, ranks_per_gpu=2
    )
    return RunSpec(params=params, config=config, ncycles=2, warmup=1, label="pt")


@pytest.fixture(scope="module")
def clean_artifact():
    return execute_point(PointTask(spec=_spec()))


def _assert_simulated_quantities_match(artifact, clean):
    for key in set(artifact) | set(clean):
        if key in _METADATA_KEYS:
            continue
        assert artifact.get(key) == clean.get(key), (
            f"silent corruption: field {key!r} differs from the "
            "fault-free baseline"
        )


class TestFiresNever:
    @pytest.mark.parametrize("site", FAULT_SITES)
    def test_armed_but_silent_site_changes_nothing(self, site, clean_artifact):
        plan = FaultPlan.single(site, probability=0.0, max_fires=1)
        artifact = execute_point(PointTask(spec=_spec(), fault_plan=plan))
        assert artifact["status"] == "ok"
        assert artifact["attempts"] == 1
        faults = artifact["resilience"]["faults"]
        assert faults["fired"] == {}
        _assert_simulated_quantities_match(artifact, clean_artifact)


class TestFiresOnce:
    @pytest.mark.parametrize("site", FAULT_SITES)
    def test_recovered_with_retry(self, site, clean_artifact, tmp_path):
        """One transient fault + one retry: the point must recover, the
        artifact must record the fault honestly, and every simulated
        quantity must match the fault-free baseline."""
        plan = FaultPlan.single(site, probability=1.0, max_fires=1)
        artifact = execute_point(
            PointTask(
                spec=_spec(),
                retries=1,
                checkpoint_dir=str(tmp_path / site),
                fault_plan=plan,
            )
        )
        assert artifact["status"] == "ok"
        assert artifact["attempts"] == 2
        faults = artifact["resilience"]["faults"]
        assert faults["fired"] == {site: 1}
        _assert_simulated_quantities_match(artifact, clean_artifact)

    @pytest.mark.parametrize("site", FAULT_SITES)
    def test_structured_error_without_retry(self, site):
        """No retry budget: the fault must surface as a structured error
        artifact naming the injected fault — never a raise, never a hang."""
        plan = FaultPlan.single(site, probability=1.0, max_fires=1)
        artifact = execute_point(PointTask(spec=_spec(), fault_plan=plan))
        assert artifact["status"] == "error"
        assert artifact["attempts"] == 1
        assert artifact["error"]["type"] == "InjectedFault"
        assert site in artifact["error"]["message"]
        assert artifact["resilience"]["faults"]["fired"] == {site: 1}


class TestCampaignResume:
    def test_crashed_point_resumes_from_checkpoint(self, tmp_path, clean_artifact):
        """The acceptance-criteria path: a campaign point crashed by an
        injected worker fault resumes from its per-point checkpoint tree
        with ``resumed_from_cycle > 0`` recorded in the artifact."""
        plan = FaultPlan.single("kernel_launch", cycle=2)
        summary = run_campaign(
            [_spec()],
            tmp_path,
            workers=1,
            retries=1,
            checkpoint_every=1,
            fault_plan=plan,
        )
        assert summary.executed == 1 and summary.failed == 0
        artifact = summary.artifacts[0]
        assert artifact["status"] == "ok"
        assert artifact["attempts"] == 2
        assert artifact["resilience"]["resumed_from_cycle"] > 0
        assert artifact["resilience"]["faults"]["fired"] == {"kernel_launch": 1}
        # Per-point checkpoints live under <campaign>/checkpoints/<key>.
        key = artifact["cache_key"]
        assert any((tmp_path / "checkpoints" / key).glob("ckpt_*.json"))
        _assert_simulated_quantities_match(artifact, clean_artifact)

    def test_faulted_campaign_caches_like_a_clean_one(self, tmp_path):
        """Resumed artifacts keep the spec's cache key, so a re-run of
        the same campaign without faults is served from cache."""
        plan = FaultPlan.single("kernel_launch", cycle=2)
        run_campaign(
            [_spec()], tmp_path, workers=1, retries=1,
            checkpoint_every=1, fault_plan=plan,
        )
        again = run_campaign([_spec()], tmp_path, workers=1)
        assert again.cached == 1 and again.executed == 0
