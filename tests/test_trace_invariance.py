"""Tracing must observe, never perturb.

The whole subsystem hangs off the simulated clock, so the gate is
strict: a traced run and an untraced run of the same deck produce the
*same* ``RunResult`` — FOM, region times, MPI counters, metrics — to
0 ULP (``==`` on the floats, no tolerance).  And with no recorder
attached, the profiler retains no per-event state at all, however long
the run.
"""

import dataclasses

from repro.api import RunSpec, Simulation
from repro.driver.driver import ParthenonDriver
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams
from repro.observability import NULL_RECORDER
from repro.solver.initial_conditions import gaussian_blob

MODELED_SPEC = RunSpec(
    params=SimulationParams(
        ndim=3, mesh_size=32, block_size=8, num_levels=2, num_scalars=2
    ),
    config=ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=2),
    ncycles=3,
    warmup=1,
)

NUMERIC_SPEC = RunSpec(
    params=SimulationParams(
        ndim=2, mesh_size=32, block_size=8, num_levels=2, num_scalars=1
    ),
    config=ExecutionConfig(
        backend="gpu", num_gpus=1, ranks_per_gpu=1, mode="numeric"
    ),
    ncycles=2,
    warmup=1,
)


def blob(mesh, pkg):
    gaussian_blob(mesh, pkg, amplitude=0.8, width=0.15)


def assert_results_identical(a, b):
    """Field-by-field 0-ULP equality on everything the paper reports."""
    assert a.fom == b.fom
    assert a.wall_seconds == b.wall_seconds
    assert a.kernel_seconds == b.kernel_seconds
    assert a.serial_seconds == b.serial_seconds
    assert a.function_breakdown == b.function_breakdown
    assert a.kernel_seconds_by_name == b.kernel_seconds_by_name
    assert a.mpi_counters == b.mpi_counters
    assert a.metrics == b.metrics
    assert a.cells_communicated == b.cells_communicated
    assert a.zone_cycles == b.zone_cycles
    assert a.final_blocks == b.final_blocks
    assert a.memory_breakdown == b.memory_breakdown
    assert a.device_memory_peak == b.device_memory_peak


class TestTracingInvariance:
    def test_modeled_run_invariant_under_tracing(self):
        untraced = Simulation(MODELED_SPEC).run()
        traced_sim = Simulation(MODELED_SPEC, trace=True)
        traced = traced_sim.run()
        assert_results_identical(untraced, traced)
        # the trace really recorded something (sum order differs from the
        # region-dict sum, so this one is approximate, not 0 ULP)
        assert abs(
            traced_sim.trace().total_seconds - traced.wall_seconds
        ) < 1e-12

    def test_numeric_run_invariant_under_tracing(self):
        untraced = Simulation(NUMERIC_SPEC, initial_conditions=blob).run()
        traced = Simulation(
            NUMERIC_SPEC, initial_conditions=blob, trace=True
        ).run()
        assert_results_identical(untraced, traced)
        assert [dataclasses.astuple(h) for h in untraced.history] == [
            dataclasses.astuple(h) for h in traced.history
        ]


class TestUntracedRetention:
    def test_500_cycle_untraced_run_keeps_events_empty(self):
        driver = ParthenonDriver(
            SimulationParams(
                ndim=2, mesh_size=16, block_size=8, num_levels=1,
                num_scalars=1,
            ),
            ExecutionConfig(backend="cpu", cpu_ranks=2),
        )
        driver.run(500)
        assert driver.prof.recorder is NULL_RECORDER
        assert driver.prof.events == []
        assert driver.prof.cycles == 500
        # accounting itself is unaffected by the gate
        assert driver.prof.total_seconds > 0.0
