"""The Mesh: geometry, the block tree, and the live MeshBlock registry.

Follows Section II-F of the paper: a Mesh is composed of MeshBlocks, the
MeshBlock is the unit of refinement, the total mesh size must be an exact
multiple of the MeshBlock size, and ``#AMR Levels`` caps the tree depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.mesh.block import FieldSpec, MeshBlock
from repro.mesh.logical_location import LogicalLocation
from repro.mesh.prolongation import prolong
from repro.mesh.restriction import restrict
from repro.mesh.tree import BlockTree


@dataclass(frozen=True)
class MeshGeometry:
    """Static description of the computational domain and its tiling.

    ``mesh_size`` and ``block_size`` are cells per dimension; unused
    dimensions must be 1.  ``ng`` is the ghost-zone depth (4 for WENO5,
    2 for PLM reconstruction).
    """

    ndim: int
    mesh_size: Tuple[int, int, int]
    block_size: Tuple[int, int, int]
    ng: int = 4
    num_levels: int = 1
    domain: Tuple[Tuple[float, float], ...] = (
        (0.0, 1.0),
        (0.0, 1.0),
        (0.0, 1.0),
    )
    periodic: Tuple[bool, bool, bool] = (True, True, True)

    def __post_init__(self) -> None:
        if self.ndim not in (1, 2, 3):
            raise ValueError(f"ndim must be 1, 2 or 3, got {self.ndim}")
        for a in range(3):
            n, b = self.mesh_size[a], self.block_size[a]
            if a >= self.ndim:
                if n != 1 or b != 1:
                    raise ValueError(
                        f"unused dimension {a} must have mesh and block size 1"
                    )
                continue
            if b < 1 or n < 1:
                raise ValueError("mesh and block sizes must be positive")
            if n % b != 0:
                raise ValueError(
                    f"mesh size {n} is not a multiple of block size {b} "
                    f"along dimension {a} (Section II-F rule)"
                )
            if self.num_levels > 1:
                if b % 4 != 0:
                    raise ValueError(
                        f"block size {b} must be a multiple of 4 for AMR "
                        "restriction and fine-neighbor ghost alignment"
                    )
                if self.ng % 2 != 0:
                    raise ValueError(
                        f"ghost depth {self.ng} must be even for AMR "
                        "restriction before send"
                    )
                if b < 2 * self.ng:
                    raise ValueError(
                        f"block size {b} must be >= 2*ng = {2 * self.ng} so a "
                        "fine block can fill a coarse neighbor's ghost zones"
                    )
            elif b < self.ng:
                raise ValueError(f"block size {b} must be >= ng = {self.ng}")

    @property
    def nroot(self) -> Tuple[int, int, int]:
        """Base-grid blocks per dimension."""
        return tuple(
            self.mesh_size[a] // self.block_size[a] for a in range(3)
        )

    def block_bounds(
        self, lloc: LogicalLocation
    ) -> Tuple[Tuple[float, float], ...]:
        """Physical bounds of the block at ``lloc``."""
        out = []
        for a in range(3):
            lo, hi = self.domain[a]
            if a >= self.ndim:
                out.append((lo, hi))
                continue
            nblocks = self.nroot[a] << lloc.level
            width = (hi - lo) / nblocks
            x0 = lo + lloc.coord(a) * width
            out.append((x0, x0 + width))
        return tuple(out)

    def finest_dx(self, axis: int) -> float:
        """Cell width along ``axis`` at the finest allowed level."""
        lo, hi = self.domain[axis]
        cells = self.mesh_size[axis] << (self.num_levels - 1)
        return (hi - lo) / cells


@dataclass
class RemeshStats:
    """Bookkeeping from one remesh, consumed by the platform cost model."""

    created: int = 0
    destroyed: int = 0
    refined_parents: int = 0
    derefined_parents: int = 0
    moved_cost: float = 0.0


class Mesh:
    """The live mesh: tree + blocks + field registry.

    Parameters
    ----------
    geometry:
        Domain/tiling description.
    field_specs:
        Cell-centered fields every block carries.
    allocate:
        False selects the platform-model execution mode: blocks carry no
        NumPy data, but all tree/topology/cost bookkeeping still runs.
    """

    def __init__(
        self,
        geometry: MeshGeometry,
        field_specs: Sequence[FieldSpec] = (),
        allocate: bool = True,
    ) -> None:
        self.geometry = geometry
        self.field_specs: List[FieldSpec] = list(field_specs)
        self.allocate = allocate
        self.tree = BlockTree(
            nroot=geometry.nroot,
            ndim=geometry.ndim,
            num_levels=geometry.num_levels,
            periodic=geometry.periodic,
        )
        self.blocks_by_loc: Dict[LogicalLocation, MeshBlock] = {}
        self.block_list: List[MeshBlock] = []
        self._next_uid = 0
        #: Bumped on every :meth:`remesh` — refinement policies compare it
        #: against the generation they last cleaned up after, turning a
        #: missed ``forget_stale`` into a loud error instead of a leak.
        self.remesh_generation = 0
        for lloc in self.tree.leaves_sorted():
            self.blocks_by_loc[lloc] = self._make_block(lloc)
        self._renumber()

    # ------------------------------------------------------------- queries

    @property
    def ndim(self) -> int:
        return self.geometry.ndim

    @property
    def num_blocks(self) -> int:
        return len(self.block_list)

    def block(self, gid: int) -> MeshBlock:
        return self.block_list[gid]

    def block_at(self, lloc: LogicalLocation) -> MeshBlock:
        return self.blocks_by_loc[lloc]

    def total_interior_cells(self) -> int:
        """Total cell count over all blocks — one cycle's 'cell updates'."""
        return sum(b.interior_cells for b in self.block_list)

    def blocks_on_rank(self, rank: int) -> List[MeshBlock]:
        return [b for b in self.block_list if b.rank == rank]

    def level_counts(self) -> Dict[int, int]:
        return self.tree.level_counts()

    # ------------------------------------------------------------ plumbing

    def _make_block(self, lloc: LogicalLocation) -> MeshBlock:
        blk = MeshBlock(
            lloc=lloc,
            gid=-1,
            nx=self.geometry.block_size,
            ng=self.geometry.ng,
            ndim=self.geometry.ndim,
            bounds=self.geometry.block_bounds(lloc),
            field_specs=self.field_specs,
            allocate=self.allocate,
        )
        blk.uid = self._next_uid
        self._next_uid += 1
        return blk

    def _renumber(self) -> None:
        """Reassign dense gids in Morton order after any tree change."""
        self.block_list = [
            self.blocks_by_loc[lloc] for lloc in self.tree.leaves_sorted()
        ]
        for gid, blk in enumerate(self.block_list):
            blk.gid = gid

    # -------------------------------------------------------------- remesh

    def remesh(
        self,
        refine: Iterable[LogicalLocation],
        derefine: Iterable[LogicalLocation],
    ) -> RemeshStats:
        """Apply refinement flags and rebuild the block registry.

        In numeric mode, new fine blocks are filled by slope-limited
        prolongation from their parent and merged blocks by restriction from
        their children, so conserved totals are preserved exactly.  Ghost
        zones of new blocks are garbage until the next exchange — same as
        Parthenon, which always re-communicates after remeshing.
        """
        self.remesh_generation += 1
        refined, derefined = self.tree.apply_flags(refine, derefine)
        stats = RemeshStats(
            refined_parents=len(refined), derefined_parents=len(derefined)
        )
        nchild = 2 ** self.ndim
        for parent_loc in refined:
            parent = self.blocks_by_loc.pop(parent_loc)
            stats.destroyed += 1
            for child_loc in parent_loc.children(self.ndim):
                child = self._make_block(child_loc)
                if self.allocate:
                    self._fill_child_from_parent(child, parent)
                self.blocks_by_loc[child_loc] = child
                stats.created += 1
        for parent_loc in derefined:
            children = [
                self.blocks_by_loc.pop(c) for c in parent_loc.children(self.ndim)
            ]
            stats.destroyed += nchild
            parent = self._make_block(parent_loc)
            if self.allocate:
                self._fill_parent_from_children(parent, children)
            self.blocks_by_loc[parent_loc] = parent
            stats.created += 1
        self._renumber()
        return stats

    def _fill_child_from_parent(self, child: MeshBlock, parent: MeshBlock) -> None:
        ci = child.lloc.child_index(self.ndim)
        ng = self.geometry.ng
        half = tuple(
            self.geometry.block_size[a] // 2 if a < self.ndim else 1
            for a in range(3)
        )
        for name in parent.fields:
            src = parent.fields[name]
            # Coarse source region covering the child, plus a 1-cell margin
            # (available because the parent carries ghost zones).
            sl = [slice(None)]
            for a in (2, 1, 0):
                if a >= self.ndim:
                    sl.append(slice(0, 1))
                    continue
                start = ng + ci[a] * half[a] - 1
                sl.append(slice(start, start + half[a] + 2))
            fine = prolong(src[tuple(sl)], self.ndim)
            child.interior(name)[...] = fine

    def _fill_parent_from_children(
        self, parent: MeshBlock, children: Sequence[MeshBlock]
    ) -> None:
        ng = self.geometry.ng
        half = tuple(
            self.geometry.block_size[a] // 2 if a < self.ndim else 1
            for a in range(3)
        )
        for child in children:
            ci = child.lloc.child_index(self.ndim)
            for name in parent.fields:
                coarse = restrict(
                    child.fields[name][
                        (slice(None),) + child.shape.interior_slices()
                    ],
                    self.ndim,
                )
                sl = [slice(None)]
                for a in (2, 1, 0):
                    if a >= self.ndim:
                        sl.append(slice(0, 1))
                        continue
                    start = ng + ci[a] * half[a]
                    sl.append(slice(start, start + half[a]))
                parent.fields[name][tuple(sl)] = coarse
