"""Forest-of-octrees block tree with 2:1 refinement enforcement.

The tree mirrors Parthenon's tree-based AMR (Section II-B): every spatial
location is covered by exactly one leaf MeshBlock, refinement subdivides a
leaf into 2**ndim children, and neighboring leaves never differ by more than
one refinement level.  The base grid forms the roots of the forest, so the
total mesh size must be an exact multiple of the MeshBlock size.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.mesh.logical_location import LogicalLocation

Offset = Tuple[int, int, int]


def neighbor_offsets(ndim: int) -> List[Offset]:
    """All face/edge/corner offsets for ``ndim`` dimensions (excluding zero).

    1D has 2 offsets, 2D has 8, 3D has 26 — the full neighborhood Parthenon
    exchanges ghost data with.
    """
    ranges = [(-1, 0, 1) if a < ndim else (0,) for a in range(3)]
    return [o for o in itertools.product(*ranges) if o != (0, 0, 0)]


class BlockTree:
    """The set of leaf MeshBlocks tiling the domain, with tree operations.

    Parameters
    ----------
    nroot:
        Number of base-grid (level 0) blocks along each dimension.  Unused
        dimensions must be 1.
    ndim:
        Spatial dimensionality (1, 2 or 3).
    num_levels:
        Total number of refinement levels including the base grid — the
        paper's ``#AMR Levels``.  ``num_levels=1`` disables refinement.
    periodic:
        Per-dimension periodicity of the domain boundary.
    """

    def __init__(
        self,
        nroot: Sequence[int],
        ndim: int,
        num_levels: int = 1,
        periodic: Sequence[bool] = (True, True, True),
    ) -> None:
        if ndim not in (1, 2, 3):
            raise ValueError(f"ndim must be 1, 2 or 3, got {ndim}")
        if num_levels < 1:
            raise ValueError(f"num_levels must be >= 1, got {num_levels}")
        nroot = tuple(nroot)
        if len(nroot) != 3:
            raise ValueError("nroot must have 3 entries (use 1 for unused dims)")
        for a in range(3):
            if a < ndim and nroot[a] < 1:
                raise ValueError(f"nroot[{a}] must be >= 1, got {nroot[a]}")
            if a >= ndim and nroot[a] != 1:
                raise ValueError(
                    f"nroot[{a}] must be 1 for an unused dimension, got {nroot[a]}"
                )
        self.nroot = nroot
        self.ndim = ndim
        self.num_levels = num_levels
        self.periodic = tuple(periodic)
        self._leaves: Set[LogicalLocation] = set(
            LogicalLocation(0, i, j, k)
            for k in range(nroot[2])
            for j in range(nroot[1])
            for i in range(nroot[0])
        )
        self._offsets = neighbor_offsets(ndim)
        self._dims_by_level = [
            tuple(n << lvl for n in nroot) for lvl in range(num_levels + 1)
        ]

    # ---------------------------------------------------------------- pickle

    def __getstate__(self) -> dict:
        """Canonicalize for pickling: the leaf *set* iterates in
        hash-table order, which depends on insertion/deletion history, so
        two equal trees could pickle to different bytes.  Serializing the
        leaves as a sorted list makes checkpoint save→load→save
        byte-stable (nothing in the simulation reads set order — block
        traversal always goes through :meth:`leaves_sorted`)."""
        state = dict(self.__dict__)
        state["_leaves"] = sorted(
            self._leaves, key=lambda l: (l.level, l.lx3, l.lx2, l.lx1)
        )
        return state

    def __setstate__(self, state: dict) -> None:
        state = dict(state)
        state["_leaves"] = set(state["_leaves"])
        self.__dict__.update(state)

    # ------------------------------------------------------------------ basic

    def clone(self) -> "BlockTree":
        """An independent copy sharing no mutable state.

        Cheap (one set copy): used by budget-targeted refinement policies
        to simulate the 2:1 cascade of candidate refinements without
        touching the live tree.
        """
        other = BlockTree(
            self.nroot, self.ndim, self.num_levels, self.periodic
        )
        other._leaves = set(self._leaves)
        return other

    @property
    def max_level(self) -> int:
        """Finest level refinement is allowed to reach."""
        return self.num_levels - 1

    @property
    def leaves(self) -> Set[LogicalLocation]:
        """The current leaf set (do not mutate)."""
        return self._leaves

    def __len__(self) -> int:
        return len(self._leaves)

    def __contains__(self, loc: LogicalLocation) -> bool:
        return loc in self._leaves

    def blocks_per_dim(self, level: int) -> Tuple[int, int, int]:
        """Number of block positions along each dimension at ``level``."""
        if level < len(self._dims_by_level):
            return self._dims_by_level[level]
        return tuple(n << level for n in self.nroot)

    def in_domain(self, loc: LogicalLocation) -> bool:
        """True when ``loc`` lies inside the domain (no wrapping applied)."""
        d = self.blocks_per_dim(loc.level)
        return (
            0 <= loc.lx1 < d[0]
            and 0 <= loc.lx2 < d[1]
            and 0 <= loc.lx3 < d[2]
        )

    def wrap(self, loc: LogicalLocation) -> Optional[LogicalLocation]:
        """Map ``loc`` into the domain via periodic wrapping.

        Returns None when the location is outside a non-periodic boundary
        (i.e. there is no neighbor there, only a physical boundary).
        """
        d = self.blocks_per_dim(loc.level)
        x1, x2, x3 = loc.lx1, loc.lx2, loc.lx3
        if 0 <= x1 < d[0] and 0 <= x2 < d[1] and 0 <= x3 < d[2]:
            return loc
        p = self.periodic
        if not (0 <= x1 < d[0]):
            if not p[0]:
                return None
            x1 %= d[0]
        if not (0 <= x2 < d[1]):
            if not p[1]:
                return None
            x2 %= d[1]
        if not (0 <= x3 < d[2]):
            if not p[2]:
                return None
            x3 %= d[2]
        return LogicalLocation(loc.level, x1, x2, x3)

    def leaves_sorted(self) -> List[LogicalLocation]:
        """Leaves in Morton (Z-order / depth-first) order."""
        top = self.finest_level_present()
        return sorted(self._leaves, key=lambda l: l.morton_key(top))

    def finest_level_present(self) -> int:
        """Finest level any current leaf sits on."""
        return max(l.level for l in self._leaves)

    # ------------------------------------------------------------- coverage

    def covering_leaf(self, loc: LogicalLocation) -> Optional[LogicalLocation]:
        """The leaf that covers location ``loc`` (itself or an ancestor).

        Returns None when ``loc``'s region is covered only by *finer* leaves
        (or the location is outside the domain).
        """
        if not self.in_domain(loc):
            return None
        probe = loc
        while True:
            if probe in self._leaves:
                return probe
            if probe.level == 0:
                return None
            probe = probe.parent()

    def neighbor_leaves(
        self, loc: LogicalLocation, offset: Offset
    ) -> List[Tuple[LogicalLocation, int]]:
        """Leaves adjacent to leaf ``loc`` across ``offset``.

        Returns ``(neighbor_location, level_delta)`` pairs where level_delta
        is ``neighbor.level - loc.level`` (−1 coarser, 0 same, +1 finer).
        Under the 2:1 rule these are the only possibilities.  An empty list
        means a physical (non-periodic) domain boundary.
        """
        nloc = self.wrap(loc.offset(*offset))
        if nloc is None:
            return []
        leaf = self.covering_leaf(nloc)
        if leaf is not None:
            delta = leaf.level - loc.level
            if delta < -1:
                raise RuntimeError(
                    f"2:1 violation: {loc} has neighbor leaf {leaf} across {offset}"
                )
            return [(leaf, delta)]
        # Covered by finer leaves: collect the children of nloc that touch loc.
        result = []
        for child in nloc.children(self.ndim):
            idx = child.child_index(self.ndim)
            touches = True
            for a in range(self.ndim):
                if offset[a] == -1 and idx[a] != 1:
                    touches = False
                elif offset[a] == 1 and idx[a] != 0:
                    touches = False
            if not touches:
                continue
            if child in self._leaves:
                result.append((child, child.level - loc.level))
            else:
                raise RuntimeError(
                    f"2:1 violation: region {child} adjacent to {loc} is "
                    "covered by leaves more than one level finer"
                )
        return result

    # ----------------------------------------------------------- refinement

    def refine(self, loc: LogicalLocation) -> List[LogicalLocation]:
        """Refine leaf ``loc``, cascading to preserve the 2:1 rule.

        Returns every leaf that was refined (``loc`` plus any coarser
        neighbors forced to refine first).
        """
        if loc not in self._leaves:
            raise ValueError(f"{loc} is not a leaf")
        if loc.level >= self.max_level:
            raise ValueError(
                f"{loc} is already at the maximum level {self.max_level}"
            )
        refined: List[LogicalLocation] = []
        self._refine_recursive(loc, refined)
        return refined

    def _refine_recursive(
        self, loc: LogicalLocation, refined: List[LogicalLocation]
    ) -> None:
        # Any neighbor region currently one level *coarser* must refine first,
        # otherwise loc's children (level+1) would touch a level-1 leaf.
        for offset in self._offsets:
            nloc = self.wrap(loc.offset(*offset))
            if nloc is None:
                continue
            leaf = self.covering_leaf(nloc)
            if leaf is not None and leaf.level == loc.level - 1:
                self._refine_recursive(leaf, refined)
        self._leaves.discard(loc)
        self._leaves.update(loc.children(self.ndim))
        refined.append(loc)

    def can_derefine(self, parent: LogicalLocation) -> bool:
        """Whether ``parent``'s children may be merged without violating 2:1."""
        children = list(parent.children(self.ndim))
        if not all(c in self._leaves for c in children):
            return False
        family = set(children)
        for child in children:
            for offset in self._offsets:
                nloc = self.wrap(child.offset(*offset))
                if nloc is None or nloc in family:
                    continue
                if nloc in self._leaves:
                    continue
                if self.covering_leaf(nloc) is not None:
                    continue
                # nloc's region is covered by finer leaves: after merging,
                # parent (level L) would neighbor level L+2 leaves.
                return False
        return True

    def derefine(self, parent: LogicalLocation) -> None:
        """Merge ``parent``'s children back into ``parent``."""
        if not self.can_derefine(parent):
            raise ValueError(f"cannot derefine {parent}")
        for child in parent.children(self.ndim):
            self._leaves.discard(child)
        self._leaves.add(parent)

    def apply_flags(
        self,
        refine: Iterable[LogicalLocation],
        derefine: Iterable[LogicalLocation],
    ) -> Tuple[List[LogicalLocation], List[LogicalLocation]]:
        """Apply per-leaf refinement/derefinement flags, Parthenon-style.

        Refinement takes priority; derefinement happens only when *all*
        siblings request it and the 2:1 rule allows the merge.  Returns the
        (refined_leaves, derefined_parents) actually performed — this is what
        ``UpdateMeshBlockTree`` does after the flag All-Gather.
        """
        refined: List[LogicalLocation] = []
        refine_set = {l for l in refine if l in self._leaves}
        for loc in sorted(refine_set, key=lambda l: (l.level, l.coords)):
            if loc in self._leaves and loc.level < self.max_level:
                refined.extend(self.refine(loc))

        derefined: List[LogicalLocation] = []
        wants = {l for l in derefine if l in self._leaves and l not in refine_set}
        parents: Dict[LogicalLocation, int] = {}
        for loc in wants:
            if loc.level == 0:
                continue
            p = loc.parent()
            parents[p] = parents.get(p, 0) + 1
        nchild = 2 ** self.ndim
        for parent, votes in sorted(parents.items(), key=lambda kv: kv[0]):
            if votes == nchild and self.can_derefine(parent):
                self.derefine(parent)
                derefined.append(parent)
        return refined, derefined

    # ----------------------------------------------------------- validation

    def check_valid(self) -> None:
        """Assert the leaf set tiles the domain exactly and satisfies 2:1."""
        total = 0.0
        for leaf in self._leaves:
            if leaf.level > self.max_level:
                raise AssertionError(f"{leaf} exceeds max level {self.max_level}")
            if not self.in_domain(leaf):
                raise AssertionError(f"{leaf} outside the domain")
            total += 2.0 ** (-self.ndim * leaf.level)
        expected = float(self.nroot[0] * self.nroot[1] * self.nroot[2])
        if abs(total - expected) > 1e-9 * expected:
            raise AssertionError(
                f"leaves cover {total} root-block volumes, expected {expected}"
            )
        for leaf in self._leaves:
            for offset in self._offsets:
                # neighbor_leaves raises on any 2:1 violation.
                self.neighbor_leaves(leaf, offset)

    def level_counts(self) -> Dict[int, int]:
        """Number of leaves on each level."""
        counts: Dict[int, int] = {}
        for leaf in self._leaves:
            counts[leaf.level] = counts.get(leaf.level, 0) + 1
        return counts

    def __iter__(self) -> Iterator[LogicalLocation]:
        return iter(self._leaves)
