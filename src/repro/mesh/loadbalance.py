"""Cost-based load balancing over the Morton-ordered block list.

Parthenon distributes MeshBlocks to MPI ranks by splitting the Z-order
(Morton) curve into contiguous chunks of approximately equal cost
(Section II-E, ``RedistributeAndRefineMeshBlocks``).  Contiguity along the
space-filling curve keeps most neighbor communication local to a rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.mesh.mesh import Mesh


@dataclass
class RedistributionPlan:
    """Outcome of one load-balancing pass, consumed by the cost model."""

    assignments: List[int]
    moved_blocks: int
    moved_cost: float
    rank_costs: List[float]

    @property
    def imbalance(self) -> float:
        """max/mean rank cost; 1.0 is perfect balance."""
        mean = sum(self.rank_costs) / len(self.rank_costs)
        if mean == 0.0:
            return 1.0
        return max(self.rank_costs) / mean


def partition_contiguous(costs: Sequence[float], nranks: int) -> List[int]:
    """Split ``costs`` into ``nranks`` contiguous chunks of near-equal cost.

    Uses Parthenon's sweep strategy: walk the Morton-ordered list keeping a
    running target of ``total / nranks`` per rank, advancing to the next rank
    once its share is met, while guaranteeing every remaining rank can still
    receive at least one block when there are enough blocks.
    """
    n = len(costs)
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    if n == 0:
        return []
    remaining_total = float(sum(costs))
    assignments = [0] * n
    rank = 0
    acc = 0.0
    # Target for the current rank, renormalized whenever a rank closes so
    # rounding never piles the remainder onto the final rank.
    target = remaining_total / nranks
    for i, cost in enumerate(costs):
        remaining_blocks = n - i
        ranks_after = nranks - rank - 1
        starving = remaining_blocks <= ranks_after
        # Advance when adding this block would overshoot the target by more
        # than stopping short undershoots it (choose the closer split).
        overshoots = acc + 0.5 * cost >= target
        if rank < nranks - 1 and acc > 0.0 and (overshoots or starving):
            rank += 1
            target = remaining_total / (nranks - rank)
            acc = 0.0
        assignments[i] = rank
        acc += cost
        remaining_total -= cost
    return assignments


def partition_lpt(costs: Sequence[float], nshards: int) -> List[int]:
    """Longest-processing-time-first assignment of ``costs`` to shards.

    Classic LPT greedy: visit items in decreasing cost (ties broken by
    original index so the result is deterministic), assigning each to the
    currently least-loaded shard (ties broken by lowest shard id).  Unlike
    :func:`partition_contiguous` the assignment need not be contiguous
    along the Morton curve, which buys a tighter makespan bound::

        max_load <= mean_load + max(costs)

    a property the shard-partitioner hypothesis suite pins.  Used by the
    shared-memory shard executor (``repro.parallel``), where work units
    are contiguous pack slabs, so locality is already captured inside each
    unit and the tighter balance wins.
    """
    if nshards < 1:
        raise ValueError(f"nshards must be >= 1, got {nshards}")
    assignments = [0] * len(costs)
    loads = [0.0] * nshards
    order = sorted(range(len(costs)), key=lambda i: (-float(costs[i]), i))
    for i in order:
        shard = min(range(nshards), key=lambda s: (loads[s], s))
        assignments[i] = shard
        loads[shard] += float(costs[i])
    return assignments


def partition_round_robin(ncosts: int, nranks: int) -> List[int]:
    """Strided block→rank assignment (the locality strawman).

    Spreads load perfectly for uniform costs but scatters neighboring
    blocks across ranks, turning most ghost exchanges into remote
    messages — the ablation benchmark quantifies the damage relative to
    the Morton-contiguous default.
    """
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    return [i % nranks for i in range(ncosts)]


def balance(
    mesh: Mesh, nranks: int, policy: str = "contiguous"
) -> RedistributionPlan:
    """Assign every block to a rank; record how many blocks moved.

    Blocks are in Morton order already (``Mesh`` renumbers after each tree
    change), so the contiguous partition is applied directly to
    ``mesh.block_list``.  ``policy`` selects Parthenon's Morton-contiguous
    split (default) or strided round-robin.
    """
    costs = [blk.cost for blk in mesh.block_list]
    if policy == "contiguous":
        assignments = partition_contiguous(costs, nranks)
    elif policy == "round_robin":
        assignments = partition_round_robin(len(costs), nranks)
    else:
        raise ValueError(
            f"unknown load-balance policy {policy!r}; "
            "expected 'contiguous' or 'round_robin'"
        )
    moved = 0
    moved_cost = 0.0
    rank_costs = [0.0] * nranks
    for blk, rank in zip(mesh.block_list, assignments):
        if blk.rank != rank:
            moved += 1
            moved_cost += blk.cost
        blk.rank = rank
        rank_costs[rank] += blk.cost
    return RedistributionPlan(
        assignments=assignments,
        moved_blocks=moved,
        moved_cost=moved_cost,
        rank_costs=rank_costs,
    )
