"""Refinement tagging: per-block criteria and flag collection.

Mirrors Parthenon's ``Refinement::Tag`` / ``CheckAllRefinement`` phase
(Sections II-E and VIII-A): every cycle each block evaluates its refinement
criteria (a scalar loop over blocks in the host code — one of the serial
bottlenecks the paper profiles), flags are aggregated, and derefinement is
rate-limited by a minimum gap of 10 cycles (Section II-G).

Two tagger families are provided:

* :class:`FirstDerivativeCriterion` — the numeric criterion used by the
  Burgers benchmark (and Table III's ``FirstDerivative`` kernel): refine
  where the normalized first derivative of a field exceeds a threshold.
* :class:`SphericalWavefrontTagger` — a synthetic workload generator for the
  platform-model execution mode: an expanding spherical wavefront (the
  paper's stone-dropped-in-water picture) sweeps the domain and keeps the
  tree churning with realistic block counts without numeric data.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

import numpy as np

from repro.mesh.block import MeshBlock
from repro.mesh.logical_location import LogicalLocation
from repro.mesh.mesh import Mesh

DEREFINE_GAP_CYCLES = 10


class AmrFlag(enum.IntEnum):
    """Per-block refinement request."""

    DEREFINE = -1
    SAME = 0
    REFINE = 1


class Tagger(Protocol):
    """A refinement criterion: maps a block (at a cycle) to a flag."""

    def tag(self, block: MeshBlock, cycle: int) -> AmrFlag: ...


@dataclass
class FirstDerivativeCriterion:
    """Refine where the normalized first derivative of ``field`` is steep.

    The indicator is ``max |q[i+1] - q[i-1]| / (2 * (|q| + offset))`` over the
    interior and all active dimensions and components.  ``refine_tol`` and
    ``derefine_tol`` bracket a hysteresis band, as in Parthenon's
    first-derivative refinement package.
    """

    field_name: str
    refine_tol: float = 0.3
    derefine_tol: float = 0.03
    offset: float = 1e-10

    def indicator(self, block: MeshBlock) -> float:
        data = block.fields[self.field_name]
        sl = block.shape.interior_slices()
        interior = data[(slice(None),) + sl]
        worst = 0.0
        for a in range(block.ndim):
            axis = 3 - a  # array axis holding dimension a
            hi = np.roll(data, -1, axis=axis)[(slice(None),) + sl]
            lo = np.roll(data, 1, axis=axis)[(slice(None),) + sl]
            denom = np.abs(interior) + self.offset
            worst = max(worst, float(np.max(np.abs(hi - lo) / (2.0 * denom))))
        return worst

    def tag(self, block: MeshBlock, cycle: int) -> AmrFlag:
        ind = self.indicator(block)
        if ind > self.refine_tol:
            return AmrFlag.REFINE
        if ind < self.derefine_tol:
            return AmrFlag.DEREFINE
        return AmrFlag.SAME


@dataclass
class SecondDerivativeCriterion:
    """Löhner-style estimator: normalized second derivative of ``field``.

    ``E = |q[i+1] - 2 q[i] + q[i-1]| /
    (|q[i+1] - q[i]| + |q[i] - q[i-1]| + eps * (|q[i+1]| + 2|q[i]| + |q[i-1]|))``

    maximized over the interior, components and active dimensions — the
    curvature-sensitive criterion Parthenon exposes as
    ``refinement/method = derivative_order_2``.  Less trigger-happy than the
    first-derivative check on smooth steep ramps, sharper on kinks.
    """

    field_name: str
    refine_tol: float = 0.5
    derefine_tol: float = 0.2
    filter_eps: float = 0.01

    def indicator(self, block: MeshBlock) -> float:
        data = block.fields[self.field_name]
        sl = block.shape.interior_slices()
        center = data[(slice(None),) + sl]
        # Absolute floor scaled to the block's data range: keeps noise in
        # near-zero background regions from reading as infinite curvature.
        scale = float(np.max(np.abs(data)))
        floor = self.filter_eps * max(scale, 1e-12)
        worst = 0.0
        for a in range(block.ndim):
            axis = 3 - a
            hi = np.roll(data, -1, axis=axis)[(slice(None),) + sl]
            lo = np.roll(data, 1, axis=axis)[(slice(None),) + sl]
            num = np.abs(hi - 2.0 * center + lo)
            den = (
                np.abs(hi - center)
                + np.abs(center - lo)
                + self.filter_eps
                * (np.abs(hi) + 2.0 * np.abs(center) + np.abs(lo))
                + floor
            )
            worst = max(worst, float(np.max(num / den)))
        return worst

    def tag(self, block: MeshBlock, cycle: int) -> AmrFlag:
        ind = self.indicator(block)
        if ind > self.refine_tol:
            return AmrFlag.REFINE
        if ind < self.derefine_tol:
            return AmrFlag.DEREFINE
        return AmrFlag.SAME


@dataclass
class SphericalWavefrontTagger:
    """Synthetic tagger: refine blocks intersecting an expanding shell.

    The shell has center ``center``, initial radius ``r0``, expansion speed
    ``speed`` (radius units per cycle) and half-width ``width``.  The radius
    wraps so refinement activity is sustained over arbitrarily long runs.
    Blocks whose bounding box intersects the shell annulus request the finest
    level; everything else requests derefinement — the 2:1 cascade then
    builds the intermediate levels, which produces level distributions very
    similar to the numeric criterion on an outgoing wave.
    """

    center: Tuple[float, float, float] = (0.5, 0.5, 0.5)
    r0: float = 0.12
    speed: float = 0.03
    width: float = 0.08
    r_max: float = 0.75

    def radius(self, cycle: int) -> float:
        span = max(self.r_max - self.r0, 1e-12)
        return self.r0 + (self.speed * cycle) % span

    def _distance_to_box(self, block: MeshBlock) -> Tuple[float, float]:
        """(min, max) distance from the shell center to the block's box."""
        dmin_sq = 0.0
        dmax_sq = 0.0
        for a in range(block.ndim):
            lo, hi = block.bounds[a]
            c = self.center[a]
            dmin = max(lo - c, c - hi, 0.0)
            dmax = max(abs(lo - c), abs(hi - c))
            dmin_sq += dmin * dmin
            dmax_sq += dmax * dmax
        return math.sqrt(dmin_sq), math.sqrt(dmax_sq)

    def tag(self, block: MeshBlock, cycle: int) -> AmrFlag:
        """Refine blocks whose box intersects the shell annulus."""
        r = self.radius(cycle)
        dmin, dmax = self._distance_to_box(block)
        intersects = dmin <= r + self.width and dmax >= r - self.width
        if intersects:
            return AmrFlag.REFINE
        return AmrFlag.DEREFINE


@dataclass
class RefinementPolicy:
    """Collects per-block flags and applies mesh-wide rules.

    Handles the derefinement rate limit: a block may only be derefined once
    it has survived ``derefine_gap`` cycles since its creation or since the
    last derefinement touched its location (Section II-G: "a minimum gap of
    10 cycles between successive derefinements").
    """

    tagger: Tagger
    derefine_gap: int = DEREFINE_GAP_CYCLES
    check_refinement_interval: int = 1
    _birth_cycle: Dict[int, int] = field(default_factory=dict)

    def note_new_blocks(self, mesh: Mesh, cycle: int) -> None:
        """Record creation cycles for blocks not yet seen."""
        for blk in mesh.block_list:
            self._birth_cycle.setdefault(blk.uid, cycle)

    def collect_flags(
        self, mesh: Mesh, cycle: int
    ) -> Tuple[List[LogicalLocation], List[LogicalLocation], int]:
        """Evaluate the tagger on every block.

        Returns (refine_locs, derefine_locs, blocks_checked).  The scalar
        per-block loop here is exactly the serial ``CheckAllRefinement``
        pattern Section VIII-A calls out.
        """
        self.note_new_blocks(mesh, cycle)
        refine: List[LogicalLocation] = []
        derefine: List[LogicalLocation] = []
        checked = 0
        for blk in mesh.block_list:
            flag = self.tagger.tag(blk, cycle)
            checked += 1
            if flag == AmrFlag.REFINE:
                if blk.lloc.level < mesh.geometry.num_levels - 1:
                    refine.append(blk.lloc)
            elif flag == AmrFlag.DEREFINE:
                if blk.lloc.level == 0:
                    continue
                age = cycle - self._birth_cycle.get(blk.uid, cycle)
                if age >= self.derefine_gap:
                    derefine.append(blk.lloc)
        return refine, derefine, checked

    def forget_stale(self, mesh: Mesh) -> None:
        """Drop birth records for blocks that no longer exist."""
        live = {blk.uid for blk in mesh.block_list}
        self._birth_cycle = {
            uid: c for uid, c in self._birth_cycle.items() if uid in live
        }
