"""Refinement tagging: per-block criteria, policies, and a named registry.

Mirrors Parthenon's ``Refinement::Tag`` / ``CheckAllRefinement`` phase
(Sections II-E and VIII-A): every cycle each block evaluates its refinement
criteria (a scalar loop over blocks in the host code — one of the serial
bottlenecks the paper profiles), flags are aggregated, and derefinement is
rate-limited by a minimum gap of 10 cycles (Section II-G).

Criteria (per-block scalar indicators with a hysteresis band):

* :class:`FirstDerivativeCriterion` — the numeric criterion used by the
  Burgers benchmark (and Table III's ``FirstDerivative`` kernel): refine
  where the normalized first derivative of a field exceeds a threshold.
* :class:`SecondDerivativeCriterion` — Löhner-style normalized second
  derivative (Parthenon's ``derivative_order_2``).
* :class:`RecoveredGradientCriterion` — Zienkiewicz–Zhu-style recovered
  gradient error indicator: compare the raw cell-centered gradient against
  a locally smoothed ("recovered") gradient; large mismatch marks cells the
  grid under-resolves.  The goal-oriented family from the
  pyroteus/goalie line of work, adapted to block-structured AMR.
* :class:`SphericalWavefrontTagger` — a synthetic workload generator for the
  platform-model execution mode: an expanding spherical wavefront (the
  paper's stone-dropped-in-water picture) sweeps the domain and keeps the
  tree churning with realistic block counts without numeric data.

Policies (mesh-wide flag collection on top of a criterion):

* :class:`RefinementPolicy` — classic threshold tagging with the
  derefinement rate limit.
* :class:`BlockBudgetPolicy` — budget-targeted regridding (AMReX-style):
  rank blocks by indicator and refine/derefine toward a fixed block-count
  target; the 2:1 cascade is simulated on a cloned tree so the budget is a
  hard cap, never exceeded.

The registry (:data:`KNOWN_POLICIES`, :func:`build_policy`) names these for
decks / ``repro.api`` / the CLI, with did-you-mean validation mirroring the
kernel-backend registry.
"""

from __future__ import annotations

import difflib
import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

import numpy as np

from repro.mesh.block import MeshBlock
from repro.mesh.logical_location import LogicalLocation
from repro.mesh.mesh import Mesh

DEREFINE_GAP_CYCLES = 10

#: Registry of policy names accepted by decks, the API builders and the
#: CLI.  ``first_derivative`` is the seed behavior and the default.
KNOWN_POLICIES: Tuple[str, ...] = (
    "first_derivative",
    "second_derivative",
    "recovered_gradient",
    "block_budget",
)

DEFAULT_POLICY = "first_derivative"


class UnknownPolicyError(ValueError):
    """A refinement-policy name not present in the registry."""


def policy_names() -> Tuple[str, ...]:
    """Every registered refinement-policy name."""
    return KNOWN_POLICIES


def _suggest(given: str) -> str:
    close = difflib.get_close_matches(given, KNOWN_POLICIES, n=1, cutoff=0.5)
    return f" (did you mean {close[0]!r}?)" if close else ""


def check_policy(name: str) -> str:
    """Validate ``name`` against the registry (with a did-you-mean hint)."""
    if name not in KNOWN_POLICIES:
        raise UnknownPolicyError(
            f"unknown refinement policy {name!r}; known policies: "
            f"{', '.join(KNOWN_POLICIES)}{_suggest(str(name))}"
        )
    return name


class AmrFlag(enum.IntEnum):
    """Per-block refinement request."""

    DEREFINE = -1
    SAME = 0
    REFINE = 1


class Tagger(Protocol):
    """A refinement criterion: maps a block (at a cycle) to a flag."""

    def tag(self, block: MeshBlock, cycle: int) -> AmrFlag: ...


def _component_view(data: np.ndarray, component: Optional[int]) -> np.ndarray:
    """Restrict a 4-axis (comp, x3, x2, x1) field to one component.

    The leading axis is kept (length 1) so the indicator arithmetic is
    element-identical to scanning the raw 3-axis component view — the
    bitwise contract that lets the driver's legacy ``FirstDerivative``
    tagger collapse into :class:`FirstDerivativeCriterion`.
    """
    if component is None:
        return data
    return data[component : component + 1]


@dataclass
class FirstDerivativeCriterion:
    """Refine where the normalized first derivative of ``field`` is steep.

    The indicator is ``max |q[i+1] - q[i-1]| / (2 * (|q| + offset))`` over the
    interior and all active dimensions and components (or the single
    ``component`` when set).  ``refine_tol`` and ``derefine_tol`` bracket a
    hysteresis band, as in Parthenon's first-derivative refinement package.
    """

    field_name: str
    refine_tol: float = 0.3
    derefine_tol: float = 0.03
    offset: float = 1e-10
    component: Optional[int] = None

    def indicator(self, block: MeshBlock, cycle: int = 0) -> float:
        data = _component_view(block.fields[self.field_name], self.component)
        sl = block.shape.interior_slices()
        interior = data[(slice(None),) + sl]
        worst = 0.0
        for a in range(block.ndim):
            axis = 3 - a  # array axis holding dimension a
            hi = np.roll(data, -1, axis=axis)[(slice(None),) + sl]
            lo = np.roll(data, 1, axis=axis)[(slice(None),) + sl]
            denom = np.abs(interior) + self.offset
            worst = max(worst, float(np.max(np.abs(hi - lo) / (2 * denom))))
        return worst

    def flag_from(self, ind: float) -> AmrFlag:
        if ind > self.refine_tol:
            return AmrFlag.REFINE
        if ind < self.derefine_tol:
            return AmrFlag.DEREFINE
        return AmrFlag.SAME

    def tag(self, block: MeshBlock, cycle: int) -> AmrFlag:
        return self.flag_from(self.indicator(block, cycle))


@dataclass
class SecondDerivativeCriterion:
    """Löhner-style estimator: normalized second derivative of ``field``.

    ``E = |q[i+1] - 2 q[i] + q[i-1]| /
    (|q[i+1] - q[i]| + |q[i] - q[i-1]| + eps * (|q[i+1]| + 2|q[i]| + |q[i-1]|))``

    maximized over the interior, components and active dimensions — the
    curvature-sensitive criterion Parthenon exposes as
    ``refinement/method = derivative_order_2``.  Less trigger-happy than the
    first-derivative check on smooth steep ramps, sharper on kinks.
    """

    field_name: str
    refine_tol: float = 0.5
    derefine_tol: float = 0.2
    filter_eps: float = 0.01
    component: Optional[int] = None

    def indicator(self, block: MeshBlock, cycle: int = 0) -> float:
        data = _component_view(block.fields[self.field_name], self.component)
        sl = block.shape.interior_slices()
        center = data[(slice(None),) + sl]
        # Absolute floor scaled to the block's data range: keeps noise in
        # near-zero background regions from reading as infinite curvature.
        scale = float(np.max(np.abs(data)))
        floor = self.filter_eps * max(scale, 1e-12)
        worst = 0.0
        for a in range(block.ndim):
            axis = 3 - a
            hi = np.roll(data, -1, axis=axis)[(slice(None),) + sl]
            lo = np.roll(data, 1, axis=axis)[(slice(None),) + sl]
            num = np.abs(hi - 2.0 * center + lo)
            den = (
                np.abs(hi - center)
                + np.abs(center - lo)
                + self.filter_eps
                * (np.abs(hi) + 2.0 * np.abs(center) + np.abs(lo))
                + floor
            )
            worst = max(worst, float(np.max(num / den)))
        return worst

    def flag_from(self, ind: float) -> AmrFlag:
        if ind > self.refine_tol:
            return AmrFlag.REFINE
        if ind < self.derefine_tol:
            return AmrFlag.DEREFINE
        return AmrFlag.SAME

    def tag(self, block: MeshBlock, cycle: int) -> AmrFlag:
        return self.flag_from(self.indicator(block, cycle))


@dataclass
class RecoveredGradientCriterion:
    """Zienkiewicz–Zhu-style recovered-gradient error indicator.

    The raw cell-centered gradient ``g = (q[i+1] - q[i-1]) / 2`` is compared
    against a *recovered* gradient ``g*`` — ``g`` smoothed by a separable
    3-point box filter over the block's active dimensions (the
    block-structured analogue of patchwise gradient recovery).  Where the
    solution is well resolved the two agree (recovery reproduces the
    gradient of any locally linear-in-gradient profile exactly); near
    under-resolved features they diverge.  The indicator is::

        E = max |g - g*| / (|g| + |g*| + eps * scale)

    over components (or the single ``component``), interior cells and
    active dimensions, with ``scale`` the block's data range — dimensionless
    and in ``[0, 1)`` like the Löhner estimator.
    """

    field_name: str
    refine_tol: float = 0.35
    derefine_tol: float = 0.08
    filter_eps: float = 0.01
    component: Optional[int] = None

    def indicator(self, block: MeshBlock, cycle: int = 0) -> float:
        data = _component_view(block.fields[self.field_name], self.component)
        sl = (slice(None),) + block.shape.interior_slices()
        scale = float(np.max(np.abs(data)))
        floor = self.filter_eps * max(scale, 1e-12)
        worst = 0.0
        for a in range(block.ndim):
            axis = 3 - a
            grad = (
                np.roll(data, -1, axis=axis) - np.roll(data, 1, axis=axis)
            ) * 0.5
            recovered = grad
            for b in range(block.ndim):
                ax = 3 - b
                recovered = (
                    np.roll(recovered, -1, axis=ax)
                    + recovered
                    + np.roll(recovered, 1, axis=ax)
                ) / 3.0
            num = np.abs(grad - recovered)[sl]
            den = (np.abs(grad) + np.abs(recovered))[sl] + floor
            worst = max(worst, float(np.max(num / den)))
        return worst

    def flag_from(self, ind: float) -> AmrFlag:
        if ind > self.refine_tol:
            return AmrFlag.REFINE
        if ind < self.derefine_tol:
            return AmrFlag.DEREFINE
        return AmrFlag.SAME

    def tag(self, block: MeshBlock, cycle: int) -> AmrFlag:
        return self.flag_from(self.indicator(block, cycle))


@dataclass
class SphericalWavefrontTagger:
    """Synthetic tagger: refine blocks intersecting an expanding shell.

    The shell has center ``center``, initial radius ``r0``, expansion speed
    ``speed`` (radius units per cycle) and half-width ``width``.  The radius
    wraps so refinement activity is sustained over arbitrarily long runs.
    Blocks whose bounding box intersects the shell annulus request the finest
    level; everything else requests derefinement — the 2:1 cascade then
    builds the intermediate levels, which produces level distributions very
    similar to the numeric criterion on an outgoing wave.
    """

    center: Tuple[float, float, float] = (0.5, 0.5, 0.5)
    r0: float = 0.12
    speed: float = 0.03
    width: float = 0.08
    r_max: float = 0.75

    def radius(self, cycle: int) -> float:
        span = max(self.r_max - self.r0, 1e-12)
        return self.r0 + (self.speed * cycle) % span

    def _distance_to_box(self, block: MeshBlock) -> Tuple[float, float]:
        """(min, max) distance from the shell center to the block's box."""
        dmin_sq = 0.0
        dmax_sq = 0.0
        for a in range(block.ndim):
            lo, hi = block.bounds[a]
            c = self.center[a]
            dmin = max(lo - c, c - hi, 0.0)
            dmax = max(abs(lo - c), abs(hi - c))
            dmin_sq += dmin * dmin
            dmax_sq += dmax * dmax
        return math.sqrt(dmin_sq), math.sqrt(dmax_sq)

    def indicator(self, block: MeshBlock, cycle: int = 0) -> float:
        """Signed overlap margin with the shell annulus.

        Non-negative exactly when the block's box intersects the annulus
        (the legacy refine condition); more positive means deeper overlap,
        more negative means farther away — a total order the budget policy
        can rank on.
        """
        r = self.radius(cycle)
        dmin, dmax = self._distance_to_box(block)
        return min((r + self.width) - dmin, dmax - (r - self.width))

    def flag_from(self, ind: float) -> AmrFlag:
        if ind >= 0.0:
            return AmrFlag.REFINE
        return AmrFlag.DEREFINE

    def tag(self, block: MeshBlock, cycle: int) -> AmrFlag:
        """Refine blocks whose box intersects the shell annulus."""
        return self.flag_from(self.indicator(block, cycle))


@dataclass
class TagReport:
    """What one ``Refinement::Tag`` pass decided, plus observability counts.

    Iterates as the legacy ``(refine, derefine, checked)`` 3-tuple so
    existing call sites keep working.
    """

    refine: List[LogicalLocation]
    derefine: List[LogicalLocation]
    checked: int
    #: Raw REFINE / DEREFINE requests from the criterion, before the
    #: max-level cap, level-0 floor and the derefine-gap rate limit.
    refine_requests: int = 0
    derefine_requests: int = 0
    #: DEREFINE requests suppressed by the rate limit (Section II-G).
    derefine_blocked: int = 0
    #: Largest per-block indicator this pass (0.0 when the criterion
    #: exposes no indicator, e.g. a bare ``tag``-only tagger).
    indicator_max: float = 0.0

    def __iter__(self):
        yield self.refine
        yield self.derefine
        yield self.checked


def _loc_key(loc: LogicalLocation) -> Tuple[int, int, int, int]:
    """Deterministic, data-independent tie-break order for locations."""
    return (loc.level, loc.lx3, loc.lx2, loc.lx1)


@dataclass
class RefinementPolicy:
    """Collects per-block flags and applies mesh-wide rules.

    Handles the derefinement rate limit: a block may only be derefined once
    it has survived ``derefine_gap`` cycles since its creation or since the
    last derefinement touched its location (Section II-G: "a minimum gap of
    10 cycles between successive derefinements").

    Bookkeeping contract: :meth:`forget_stale` must run after every remesh
    (the driver does this at the end of ``LoadBalancingAndAMR``); the policy
    tracks the mesh's remesh generation and :meth:`collect_flags` raises if
    a remesh slipped past without the cleanup, so ``_birth_cycle`` can never
    silently accumulate dead block uids.
    """

    tagger: Tagger
    derefine_gap: int = DEREFINE_GAP_CYCLES
    check_refinement_interval: int = 1
    _birth_cycle: Dict[int, int] = field(default_factory=dict)
    #: How many times forget_stale has run — one per remesh when the
    #: driver honors the bookkeeping contract.
    remeshes_observed: int = 0
    _seen_generation: Optional[int] = field(default=None, repr=False)

    def note_new_blocks(self, mesh: Mesh, cycle: int) -> None:
        """Record creation cycles for blocks not yet seen."""
        for blk in mesh.block_list:
            self._birth_cycle.setdefault(blk.uid, cycle)

    def _check_bookkeeping(self, mesh: Mesh) -> None:
        gen = getattr(mesh, "remesh_generation", None)
        if (
            gen is not None
            and self._seen_generation is not None
            and gen != self._seen_generation
        ):
            raise RuntimeError(
                "RefinementPolicy.forget_stale was not invoked after the "
                f"last remesh (mesh generation {gen}, policy saw "
                f"{self._seen_generation})"
            )

    def _classify(self, blk: MeshBlock, cycle: int) -> Tuple[AmrFlag, Optional[float]]:
        """(flag, indicator) for one block; indicator None for tag-only taggers."""
        indicator = getattr(self.tagger, "indicator", None)
        flag_from = getattr(self.tagger, "flag_from", None)
        if indicator is not None and flag_from is not None:
            ind = indicator(blk, cycle)
            return flag_from(ind), ind
        return self.tagger.tag(blk, cycle), None

    def collect_flags(self, mesh: Mesh, cycle: int) -> TagReport:
        """Evaluate the tagger on every block.

        Returns a :class:`TagReport` (iterable as the legacy
        ``(refine_locs, derefine_locs, blocks_checked)`` tuple).  The scalar
        per-block loop here is exactly the serial ``CheckAllRefinement``
        pattern Section VIII-A calls out.
        """
        self._check_bookkeeping(mesh)
        self.note_new_blocks(mesh, cycle)
        report = TagReport(refine=[], derefine=[], checked=0)
        worst: Optional[float] = None
        for blk in mesh.block_list:
            flag, ind = self._classify(blk, cycle)
            if ind is not None:
                worst = ind if worst is None else max(worst, ind)
            report.checked += 1
            if flag == AmrFlag.REFINE:
                report.refine_requests += 1
                if blk.lloc.level < mesh.geometry.num_levels - 1:
                    report.refine.append(blk.lloc)
            elif flag == AmrFlag.DEREFINE:
                report.derefine_requests += 1
                if blk.lloc.level == 0:
                    continue
                age = cycle - self._birth_cycle.get(blk.uid, cycle)
                if age >= self.derefine_gap:
                    report.derefine.append(blk.lloc)
                else:
                    report.derefine_blocked += 1
        if worst is not None:
            report.indicator_max = worst
        return report

    def forget_stale(self, mesh: Mesh) -> None:
        """Drop birth records for blocks that no longer exist."""
        live = {blk.uid for blk in mesh.block_list}
        self._birth_cycle = {
            uid: c for uid, c in self._birth_cycle.items() if uid in live
        }
        self.remeshes_observed += 1
        self._seen_generation = getattr(mesh, "remesh_generation", None)

    def consistent_with(self, mesh: Mesh) -> bool:
        """True when no dead block uid survives in ``_birth_cycle``."""
        live = {blk.uid for blk in mesh.block_list}
        return set(self._birth_cycle).issubset(live)


@dataclass
class BlockBudgetPolicy(RefinementPolicy):
    """Budget-targeted regridding: rank indicators, hold a block-count target.

    Instead of a fixed threshold, the policy ranks every block by its
    criterion indicator and steers the mesh toward ``target_blocks`` leaves
    (AMReX-style ``max_grid``-budget regridding):

    * when the population drops below ``(1 - hysteresis) * target``, the
      highest-indicator blocks are refined — each candidate's 2:1 cascade
      is simulated on a cloned :class:`~repro.mesh.tree.BlockTree`, and a
      candidate is accepted only if the *post-cascade* population still
      fits the budget.  The budget is therefore a hard cap, never exceeded
      by cascade fan-out.
    * when the population exceeds ``target``, complete sibling groups with
      the lowest group-maximum indicator are merged (respecting the
      derefine-gap rate limit and the 2:1 rule) until the projected
      population fits again.
    * inside the band nothing changes — the hysteresis keeps the tree from
      thrashing around the target.

    Candidate order is deterministic and data-independent (indicator, then
    ``(level, lx3, lx2, lx1)``), so tagging is reproducible and independent
    of block traversal order.
    """

    target_blocks: int = 0
    hysteresis: float = 0.1

    def collect_flags(self, mesh: Mesh, cycle: int) -> TagReport:
        if self.target_blocks < 1:
            raise ValueError(
                "BlockBudgetPolicy needs target_blocks >= 1, got "
                f"{self.target_blocks}"
            )
        self._check_bookkeeping(mesh)
        self.note_new_blocks(mesh, cycle)
        entries = []
        for blk in mesh.block_list:
            _, ind = self._classify(blk, cycle)
            if ind is None:
                raise TypeError(
                    "BlockBudgetPolicy needs a tagger exposing "
                    "indicator()/flag_from(), got "
                    f"{type(self.tagger).__name__}"
                )
            entries.append((ind, _loc_key(blk.lloc), blk))
        report = TagReport(refine=[], derefine=[], checked=len(entries))
        if entries:
            report.indicator_max = max(e[0] for e in entries)
        n = mesh.num_blocks
        target = self.target_blocks
        refine_below = math.floor(target * (1.0 - self.hysteresis))
        if n < refine_below:
            self._plan_refinement(mesh, entries, report, target)
        elif n > target:
            self._plan_derefinement(mesh, entries, report, cycle, n - target)
        return report

    def _plan_refinement(self, mesh, entries, report, target) -> None:
        max_level = mesh.geometry.num_levels - 1
        sim = mesh.tree.clone()
        for ind, _key, blk in sorted(entries, key=lambda e: (-e[0], e[1])):
            if blk.lloc.level >= max_level:
                continue
            if len(sim) >= target:
                break
            if blk.lloc not in sim:
                # An earlier candidate's cascade already refined this leaf.
                continue
            trial = sim.clone()
            trial.refine(blk.lloc)
            if len(trial) <= target:
                sim = trial
                report.refine.append(blk.lloc)
                report.refine_requests += 1

    def _plan_derefinement(self, mesh, entries, report, cycle, excess) -> None:
        nchild = 2 ** mesh.ndim
        groups: Dict[LogicalLocation, list] = {}
        for ind, key, blk in entries:
            if blk.lloc.level == 0:
                continue
            groups.setdefault(blk.lloc.parent(), []).append((ind, key, blk))
        candidates = []
        for parent, members in groups.items():
            if len(members) != nchild:
                continue
            if not mesh.tree.can_derefine(parent):
                continue
            if any(
                cycle - self._birth_cycle.get(b.uid, cycle) < self.derefine_gap
                for _, _, b in members
            ):
                report.derefine_blocked += 1
                continue
            group_max = max(ind for ind, _, _ in members)
            candidates.append((group_max, _loc_key(parent), members))
        # Merging one group removes (2**ndim - 1) leaves.  Sibling-group
        # merges only ever make neighborhoods coarser, so a group that can
        # derefine now still can after the other selected merges —
        # apply_flags re-checks and the projection can only undershoot.
        removed = 0
        for _gmax, _key, members in sorted(candidates, key=lambda c: (c[0], c[1])):
            if removed >= excess:
                break
            report.derefine.extend(b.lloc for _, _, b in members)
            report.derefine_requests += nchild
            removed += nchild - 1


# ------------------------------------------------------------- registry


def build_policy(
    name: str,
    *,
    numeric: bool,
    refine_tol: float,
    derefine_tol: float,
    derefine_gap: int = DEREFINE_GAP_CYCLES,
    block_budget: int = 0,
    budget_hysteresis: float = 0.1,
    field_name: str = "u",
    component: Optional[int] = None,
    wavefront: Optional[SphericalWavefrontTagger] = None,
) -> RefinementPolicy:
    """Construct a named refinement policy from the registry.

    ``numeric`` selects the criterion family: numeric runs evaluate real
    per-block indicators on ``field_name`` (restricted to ``component``
    when given, matching the legacy driver tagger bitwise); modeled runs
    always rank/tag via the supplied synthetic ``wavefront`` (there is no
    numeric data to differentiate the criteria), so in modeled mode the
    names differ only in the *policy* wrapper — threshold vs. budget.

    ``first_derivative`` keeps the deck's ``refine_tol``/``derefine_tol``
    (the seed behavior); the other criteria use their own calibrated
    hysteresis bands documented on the classes.
    """
    check_policy(name)
    if numeric:
        if name == "second_derivative":
            tagger: Tagger = SecondDerivativeCriterion(
                field_name, component=component
            )
        elif name == "recovered_gradient":
            tagger = RecoveredGradientCriterion(
                field_name, component=component
            )
        else:  # first_derivative, and the budget policy's ranking indicator
            tagger = FirstDerivativeCriterion(
                field_name,
                refine_tol=refine_tol,
                derefine_tol=derefine_tol,
                component=component,
            )
    else:
        if wavefront is None:
            raise ValueError(
                "modeled-mode policies need a SphericalWavefrontTagger"
            )
        tagger = wavefront
    if name == "block_budget":
        if block_budget < 1:
            raise ValueError(
                "refinement policy 'block_budget' needs block_budget >= 1 "
                f"(got {block_budget}); set params.block_budget or the "
                "deck's <refinement> block_budget key"
            )
        return BlockBudgetPolicy(
            tagger,
            derefine_gap=derefine_gap,
            target_blocks=block_budget,
            hysteresis=budget_hysteresis,
        )
    return RefinementPolicy(tagger, derefine_gap=derefine_gap)
