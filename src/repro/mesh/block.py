"""MeshBlock: a regular array of cells, the unit of refinement.

Field arrays are always stored with a uniform 4-axis layout
``(ncomp, n3, n2, n1)`` where inactive dimensions have size 1 and carry no
ghost zones.  This keeps every kernel and every ghost-exchange slice
dimension-agnostic.

Each block also owns a *coarse buffer* per field — the block's own extent
sampled at half resolution — used to receive data from coarser neighbors
before prolongation fills the fine ghost zones, exactly as in
Athena++/Parthenon (Section II-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mesh.logical_location import LogicalLocation


@dataclass(frozen=True)
class FieldSpec:
    """Declaration of one cell-centered field on a block."""

    name: str
    ncomp: int = 1


class IndexShape:
    """Cell-index bookkeeping for one block resolution.

    ``nx`` are interior cell counts per dimension (x1, x2, x3 order); unused
    dimensions have ``nx == 1`` and no ghost zones.
    """

    def __init__(self, nx: Sequence[int], ng: int, ndim: int) -> None:
        self.ndim = ndim
        self.ng = ng
        self.nx = tuple(nx)
        if len(self.nx) != 3:
            raise ValueError("nx must have 3 entries")
        for a in range(3):
            if a >= ndim and self.nx[a] != 1:
                raise ValueError(f"nx[{a}] must be 1 for an unused dimension")
            if a < ndim and self.nx[a] < 1:
                raise ValueError(f"nx[{a}] must be >= 1")

    def ghosts(self, axis: int) -> int:
        """Ghost-zone depth along ``axis`` (0 for inactive dimensions)."""
        return self.ng if axis < self.ndim else 0

    @property
    def total(self) -> Tuple[int, int, int]:
        """Cells per dimension including ghosts, (x1, x2, x3) order."""
        return tuple(self.nx[a] + 2 * self.ghosts(a) for a in range(3))

    @property
    def array_shape(self) -> Tuple[int, int, int]:
        """NumPy array shape (x3, x2, x1 order)."""
        t = self.total
        return (t[2], t[1], t[0])

    def interior(self, axis: int) -> slice:
        """Slice of interior cells along ``axis``."""
        g = self.ghosts(axis)
        return slice(g, g + self.nx[axis])

    def interior_slices(self) -> Tuple[slice, slice, slice]:
        """Array slices (x3, x2, x1 order) selecting the interior."""
        return (self.interior(2), self.interior(1), self.interior(0))

    @property
    def interior_cells(self) -> int:
        return self.nx[0] * self.nx[1] * self.nx[2]

    @property
    def total_cells(self) -> int:
        t = self.total
        return t[0] * t[1] * t[2]


class MeshBlock:
    """A sub-volume of the domain at one refinement level.

    Parameters
    ----------
    lloc:
        Logical location in the tree.
    gid:
        Global block id (dense, re-assigned after every tree change).
    nx:
        Interior cells per dimension.
    ng:
        Ghost-zone depth in active dimensions.
    bounds:
        Physical ``((x1min, x1max), (x2min, x2max), (x3min, x3max))``.
    allocate:
        When False (the platform-model execution mode) no NumPy arrays are
        created; geometry, sizes and costs remain available.
    """

    def __init__(
        self,
        lloc: LogicalLocation,
        gid: int,
        nx: Sequence[int],
        ng: int,
        ndim: int,
        bounds: Sequence[Tuple[float, float]],
        field_specs: Sequence[FieldSpec] = (),
        allocate: bool = True,
    ) -> None:
        self.lloc = lloc
        self.gid = gid
        self.ndim = ndim
        self.shape = IndexShape(nx, ng, ndim)
        cnx = tuple(max(1, nx[a] // 2) if a < ndim else 1 for a in range(3))
        self.coarse_shape = IndexShape(cnx, ng, ndim)
        self.bounds = tuple((float(lo), float(hi)) for lo, hi in bounds)
        self.field_specs: Dict[str, FieldSpec] = {}
        self.fields: Dict[str, np.ndarray] = {}
        self.coarse_fields: Dict[str, np.ndarray] = {}
        # Face-centered fluxes per axis, allocated on demand by the solver.
        self.fluxes: Dict[str, List[Optional[np.ndarray]]] = {}
        self.allocated = allocate
        self.cost = 1.0
        self.rank = 0
        for spec in field_specs:
            self.add_field(spec)

    # ------------------------------------------------------------ geometry

    def dx(self, axis: int) -> float:
        """Cell width along ``axis``."""
        lo, hi = self.bounds[axis]
        return (hi - lo) / self.shape.nx[axis]

    def cell_centers(self, axis: int, include_ghosts: bool = True) -> np.ndarray:
        """Physical cell-center coordinates along ``axis``."""
        lo, _ = self.bounds[axis]
        d = self.dx(axis)
        g = self.shape.ghosts(axis) if include_ghosts else 0
        n = self.shape.nx[axis] + 2 * g
        return lo + (np.arange(n) - g + 0.5) * d

    def center(self) -> Tuple[float, float, float]:
        """Physical center of the block."""
        return tuple(0.5 * (lo + hi) for lo, hi in self.bounds)

    @property
    def cell_volume(self) -> float:
        vol = 1.0
        for a in range(self.ndim):
            vol *= self.dx(a)
        return vol

    # -------------------------------------------------------------- fields

    def add_field(self, spec: FieldSpec) -> None:
        """Register (and in numeric mode allocate) a cell-centered field."""
        if spec.name in self.field_specs:
            raise ValueError(f"field {spec.name!r} already exists")
        self.field_specs[spec.name] = spec
        if self.allocated:
            self.fields[spec.name] = np.zeros(
                (spec.ncomp,) + self.shape.array_shape
            )
            self.coarse_fields[spec.name] = np.zeros(
                (spec.ncomp,) + self.coarse_shape.array_shape
            )

    def allocate_fluxes(self, name: str) -> None:
        """Allocate face-centered flux arrays for field ``name``.

        Axis ``a``'s flux array has ``nx[a] + 1`` faces along ``a`` and
        interior extent in the other active dimensions.
        """
        spec = self.field_specs[name]
        per_axis: List[Optional[np.ndarray]] = []
        for a in range(3):
            if a >= self.ndim:
                per_axis.append(None)
                continue
            dims = [
                self.shape.nx[ax] + (1 if ax == a else 0) if ax < self.ndim else 1
                for ax in range(3)
            ]
            per_axis.append(np.zeros((spec.ncomp, dims[2], dims[1], dims[0])))
        self.fluxes[name] = per_axis

    def interior(self, name: str) -> np.ndarray:
        """View of the interior cells of field ``name``."""
        return self.fields[name][(slice(None),) + self.shape.interior_slices()]

    # ------------------------------------------------------------- metrics

    @property
    def interior_cells(self) -> int:
        return self.shape.interior_cells

    def data_bytes(self, bytes_per_value: int = 8) -> int:
        """Bytes of cell-centered storage this block requires (fine + coarse)."""
        ncomp = sum(s.ncomp for s in self.field_specs.values())
        return ncomp * bytes_per_value * (
            self.shape.total_cells + self.coarse_shape.total_cells
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MeshBlock(gid={self.gid}, {self.lloc!r}, nx={self.shape.nx})"
