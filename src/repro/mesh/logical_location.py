"""Logical locations of MeshBlocks in the refinement tree.

A :class:`LogicalLocation` identifies a block by its refinement ``level``
(0 = the base grid) and integer coordinates ``(lx1, lx2, lx3)`` within that
level.  At level ``l`` the domain is tiled by ``nroot_i * 2**l`` blocks along
dimension ``i``, where ``nroot_i`` is the number of base-grid blocks.  The
tree in :mod:`repro.mesh.tree` is a forest rooted at the base grid, matching
Parthenon's requirement that the total mesh size be an exact multiple of the
MeshBlock size (Section II-F).

Coordinates in unused dimensions are always 0 (a 2D mesh keeps ``lx3 == 0``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple


def _interleave_bits(coords: Sequence[int], nbits: int) -> int:
    """Interleave the low ``nbits`` bits of each coordinate into a Morton key.

    Bit ``b`` of coordinate ``i`` lands at position ``b * len(coords) + i`` of
    the key, giving the standard Z-order curve.
    """
    key = 0
    ndim = len(coords)
    for b in range(nbits):
        for i, c in enumerate(coords):
            key |= ((c >> b) & 1) << (b * ndim + i)
    return key


@dataclass(frozen=True, order=True)
class LogicalLocation:
    """Position of a MeshBlock in the refinement hierarchy.

    Instances are immutable and hashable so they can serve as dictionary keys
    in the tree and in communication-buffer registries.
    """

    level: int
    lx1: int = 0
    lx2: int = 0
    lx3: int = 0

    @property
    def coords(self) -> Tuple[int, int, int]:
        return (self.lx1, self.lx2, self.lx3)

    def coord(self, axis: int) -> int:
        """Coordinate along ``axis`` (0, 1 or 2)."""
        return self.coords[axis]

    def parent(self) -> "LogicalLocation":
        """Location of the parent block one level coarser."""
        if self.level == 0:
            raise ValueError(f"base-grid block {self} has no parent")
        return LogicalLocation(
            self.level - 1, self.lx1 >> 1, self.lx2 >> 1, self.lx3 >> 1
        )

    def children(self, ndim: int) -> Iterator["LogicalLocation"]:
        """The 2**ndim child locations one level finer, in Z-order."""
        n1 = 2
        n2 = 2 if ndim >= 2 else 1
        n3 = 2 if ndim >= 3 else 1
        for k in range(n3):
            for j in range(n2):
                for i in range(n1):
                    yield LogicalLocation(
                        self.level + 1,
                        2 * self.lx1 + i,
                        2 * self.lx2 + j,
                        2 * self.lx3 + k,
                    )

    def child_index(self, ndim: int) -> Tuple[int, int, int]:
        """This block's position (0 or 1 per axis) within its parent."""
        if self.level == 0:
            raise ValueError(f"base-grid block {self} has no parent")
        idx = (self.lx1 & 1, self.lx2 & 1, self.lx3 & 1)
        return tuple(idx[a] if a < ndim else 0 for a in range(3))

    def offset(self, o1: int, o2: int = 0, o3: int = 0) -> "LogicalLocation":
        """Same-level location displaced by ``(o1, o2, o3)`` blocks."""
        return LogicalLocation(self.level, self.lx1 + o1, self.lx2 + o2, self.lx3 + o3)

    def is_ancestor_of(self, other: "LogicalLocation") -> bool:
        """True when ``other`` lies strictly inside this block's subtree."""
        if other.level <= self.level:
            return False
        shift = other.level - self.level
        return (
            (other.lx1 >> shift) == self.lx1
            and (other.lx2 >> shift) == self.lx2
            and (other.lx3 >> shift) == self.lx3
        )

    def contains(self, other: "LogicalLocation") -> bool:
        """True when ``other`` is this block or a descendant of it."""
        return other == self or self.is_ancestor_of(other)

    def morton_key(self, max_level: int) -> Tuple[int, int]:
        """Z-order sort key at a common finest level.

        Leaves sorted by this key appear in depth-first tree order: all
        descendants of a node share the node's high bits and therefore form a
        contiguous key range, which is what the Morton-ordered load balancer
        relies on.  The level is included as a tie-breaker so that a block
        always sorts before any of its descendants (relevant only when both
        appear in one list, e.g. during redistribution planning).
        """
        if max_level < self.level:
            raise ValueError(
                f"max_level {max_level} below block level {self.level}"
            )
        shift = max_level - self.level
        coords = (self.lx1 << shift, self.lx2 << shift, self.lx3 << shift)
        # 21 bits per axis is enough for any realistic tree (2^21 blocks/axis).
        return (_interleave_bits(coords, 21), self.level)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LL(l={self.level}, {self.lx1},{self.lx2},{self.lx3})"
