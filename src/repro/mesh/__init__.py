"""Block-structured AMR mesh substrate.

Implements the tree-based mesh described in Section II of the paper: logical
locations, a binary/quad/octree of MeshBlocks with the 2:1 refinement rule,
refinement tagging, prolongation/restriction operators, and Morton-ordered
cost-based load balancing.
"""

from repro.mesh.logical_location import LogicalLocation
from repro.mesh.tree import BlockTree
from repro.mesh.block import MeshBlock
from repro.mesh.mesh import Mesh, MeshGeometry

__all__ = ["LogicalLocation", "BlockTree", "MeshBlock", "Mesh", "MeshGeometry"]
