"""Restriction: volume-averaging fine cells onto the overlying coarse cells.

Used when derefining blocks, when synchronizing a block's coarse buffer, and
— crucially for communication volume (Section II-C) — *before* sending data
from a fine block to a coarser neighbor, which shrinks the message by
``2**ndim``.
"""

from __future__ import annotations

import numpy as np


def restrict(fine: np.ndarray, ndim: int) -> np.ndarray:
    """Average ``fine`` down by a factor of two per active dimension.

    ``fine`` has shape ``(ncomp, n3, n2, n1)``; every active dimension must
    have even extent.  Volume averaging is exact for conservation: the sum of
    ``coarse * 2**ndim`` equals the sum of ``fine``.
    """
    if fine.ndim != 4:
        raise ValueError(f"expected 4-axis array, got shape {fine.shape}")
    ncomp, n3, n2, n1 = fine.shape
    # Array axes (1, 2, 3) hold x3, x2, x1; axis 3 - a holds dimension a.
    for a in range(ndim):
        if fine.shape[3 - a] % 2 != 0:
            raise ValueError(
                f"active dimension {a} has odd extent {fine.shape[3 - a]}"
            )
    out = fine
    for a in range(ndim):
        axis = 3 - a
        shape = list(out.shape)
        shape[axis] //= 2
        shape.insert(axis + 1, 2)
        out = out.reshape(shape).mean(axis=axis + 1)
    return out
