"""Prolongation: slope-limited linear interpolation from coarse to fine cells.

Each coarse cell is split into ``2**ndim`` fine cells whose values are
``c ± s_a/4`` per active axis, with per-axis slopes ``s_a`` limited by minmod.
This is exact for linear fields (so ghost-zone fills across fine–coarse
boundaries introduce no error on smooth linear data — a property the tests
rely on) and preserves the coarse cell average, so refinement conserves the
total of every conserved variable.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def minmod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The minmod slope limiter: 0 on sign disagreement, else the smaller."""
    return np.where(a * b <= 0.0, 0.0, np.where(np.abs(a) < np.abs(b), a, b))


def _axis_slices(axis: int, lo: int, hi_offset: int, ndim_total: int = 4):
    """Slice tuple selecting ``[lo : n + hi_offset]`` along ``axis``."""
    s = [slice(None)] * ndim_total
    s[axis] = slice(lo, hi_offset if hi_offset < 0 else None)
    return tuple(s)


def limited_slopes(arr: np.ndarray, axis: int) -> np.ndarray:
    """Minmod-limited slopes along ``axis`` for the cells ``1..n-2``.

    The returned array is two cells shorter along ``axis`` than the input.
    """
    left = arr[_axis_slices(axis, 1, -1)] - arr[_axis_slices(axis, 0, -2)]
    right = arr[_axis_slices(axis, 2, 0)] - arr[_axis_slices(axis, 1, -1)]
    return minmod(left, right)


def prolong(coarse: np.ndarray, ndim: int, limit: bool = True) -> np.ndarray:
    """Interpolate ``coarse`` (with a 1-cell margin) to fine resolution.

    ``coarse`` has shape ``(ncomp, m3, m2, m1)`` where every *active*
    dimension carries at least one margin cell on each side for slope
    computation.  The result covers only the margin-stripped interior at
    double resolution: active extent ``2 * (m - 2)``.

    When ``limit`` is False, unlimited central-difference slopes are used
    (useful to demonstrate why limiting matters near discontinuities).
    """
    if coarse.ndim != 4:
        raise ValueError(f"expected 4-axis array, got shape {coarse.shape}")
    for a in range(ndim):
        if coarse.shape[3 - a] < 3:
            raise ValueError(
                f"active dimension {a} needs >= 3 cells (1-cell margins), "
                f"got {coarse.shape[3 - a]}"
            )

    # Strip margins to get the coarse interior, and per-axis slopes on it.
    center = coarse
    for a in range(ndim):
        center = center[_axis_slices(3 - a, 1, -1)]

    slopes = []
    for a in range(ndim):
        if limit:
            s = limited_slopes(coarse, 3 - a)
        else:
            s = 0.5 * (
                coarse[_axis_slices(3 - a, 2, 0)]
                - coarse[_axis_slices(3 - a, 0, -2)]
            )
        # Strip margins along the *other* active dimensions.
        for b in range(ndim):
            if b != a:
                s = s[_axis_slices(3 - b, 1, -1)]
        slopes.append(s)

    # Expand: repeat each coarse cell 2x per active axis, then add the
    # alternating ±s/4 offsets.
    fine = center
    for a in range(ndim):
        fine = np.repeat(fine, 2, axis=3 - a)
    for a, s in enumerate(slopes):
        axis = 3 - a
        expanded = s
        for b in range(ndim):
            expanded = np.repeat(expanded, 2, axis=3 - b)
        n = expanded.shape[axis]
        signs_shape = [1, 1, 1, 1]
        signs_shape[axis] = n
        signs = np.where(np.arange(n) % 2 == 0, -0.25, 0.25).reshape(signs_shape)
        fine = fine + expanded * signs
    return fine


def prolong_shape(
    coarse_shape: Tuple[int, ...], ndim: int
) -> Tuple[int, ...]:
    """Output shape of :func:`prolong` for a given input shape."""
    out = list(coarse_shape)
    for a in range(ndim):
        out[3 - a] = 2 * (out[3 - a] - 2)
    return tuple(out)
