"""A small synchronous client for the sweep service, plus a
``ServerThread`` harness that runs a :class:`SweepServer` on a
background event loop — how the tests and the load benchmark drive a
real server over real sockets without blocking the caller.

The client is stdlib sockets, not ``urllib``, for two reasons: the
event stream has no Content-Length (it ends at EOF, and ``urllib``
buffers), and the benchmark wants the cheapest possible request path so
measured latency is the *server's*, not the client library's.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple


class ServiceUnavailable(ConnectionError):
    """The server did not answer within the connect deadline."""


@dataclass
class Response:
    """One HTTP exchange, body already JSON-decoded where possible."""

    status: int
    headers: Dict[str, str]
    body: bytes

    @property
    def json(self) -> dict:
        return json.loads(self.body.decode("utf-8"))


class ServiceClient:
    """Synchronous client bound to one server address."""

    def __init__(
        self, host: str, port: int, timeout_s: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # -------------------------------------------------------------- wire

    def _connect(self) -> socket.socket:
        return socket.create_connection(
            (self.host, self.port), timeout=self.timeout_s
        )

    def _send(
        self,
        sock: socket.socket,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Dict[str, str],
    ) -> None:
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            "Connection: close",
        ]
        if body is not None:
            lines.append("Content-Type: application/json")
            lines.append(f"Content-Length: {len(body)}")
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        sock.sendall(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        if body is not None:
            sock.sendall(body)

    @staticmethod
    def _read_head(reader) -> Tuple[int, Dict[str, str]]:
        status_line = reader.readline().decode("latin-1")
        parts = status_line.split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise ConnectionError(f"malformed status line: {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            raw = reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        return status, headers

    def request(
        self,
        method: str,
        path: str,
        doc: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Response:
        body = (
            json.dumps(doc, sort_keys=True).encode("utf-8")
            if doc is not None
            else None
        )
        with self._connect() as sock:
            self._send(sock, method, path, body, headers or {})
            with sock.makefile("rb") as reader:
                status, resp_headers = self._read_head(reader)
                length = resp_headers.get("content-length")
                payload = (
                    reader.read(int(length))
                    if length is not None
                    else reader.read()
                )
        return Response(status=status, headers=resp_headers, body=payload)

    # --------------------------------------------------------- endpoints

    def submit(
        self,
        spec_doc: dict,
        tenant: Optional[str] = None,
        priority: int = 0,
    ) -> Response:
        doc = dict(spec_doc)
        if priority:
            doc["priority"] = priority
        headers = {"X-Tenant": tenant} if tenant is not None else {}
        return self.request("POST", "/runs", doc=doc, headers=headers)

    def status(self, run_id: str) -> Response:
        return self.request("GET", f"/runs/{run_id}")

    def result(self, run_id: str) -> Response:
        return self.request("GET", f"/runs/{run_id}/result")

    def cancel(self, run_id: str) -> Response:
        return self.request("DELETE", f"/runs/{run_id}")

    def stats(self) -> Response:
        return self.request("GET", "/stats")

    def events(self, run_id: str) -> Iterator[dict]:
        """Yield the run's NDJSON progress events as they stream.

        Terminates when the server closes the connection (after its
        ``{"event": "end", ...}`` line).
        """
        with self._connect() as sock:
            self._send(sock, "GET", f"/runs/{run_id}/events", None, {})
            with sock.makefile("rb") as reader:
                status, _ = self._read_head(reader)
                if status != 200:
                    payload = reader.read()
                    raise ConnectionError(
                        f"events stream returned {status}: {payload!r}"
                    )
                for raw in reader:
                    line = raw.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))

    def wait(
        self, run_id: str, timeout_s: float = 120.0, poll_s: float = 0.05
    ) -> Response:
        """Poll status until the run reaches a terminal state."""
        deadline = time.monotonic() + timeout_s
        while True:
            resp = self.status(run_id)
            if resp.status != 200:
                return resp
            if resp.json["status"] in ("done", "error", "cancelled"):
                return resp
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"run {run_id} still {resp.json['status']} "
                    f"after {timeout_s}s"
                )
            time.sleep(poll_s)


class ServerThread:
    """Run a :class:`SweepServer` on a dedicated event-loop thread.

    ``with ServerThread(data_dir) as client:`` starts the server on an
    ephemeral port, yields a bound :class:`ServiceClient`, and tears the
    loop down on exit.  ``stop()`` without ``join_loop`` kill semantics:
    in-flight jobs stay ``running`` in the journal, which is exactly the
    state the restart-resume test needs.
    """

    def __init__(self, data_dir, **server_kwargs) -> None:
        # Local import: keep client importable without asyncio machinery.
        from repro.service.server import SweepServer

        server_kwargs.setdefault("execution", "thread")
        self.server = SweepServer(data_dir, **server_kwargs)
        self._thread: Optional[threading.Thread] = None
        self._loop = None
        self._started = threading.Event()
        self._startup_error: List[BaseException] = []

    def start(self) -> "ServerThread":
        import asyncio

        def _run() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)

            async def _main() -> None:
                try:
                    await self.server.start()
                except BaseException as exc:  # startup failed — surface it
                    self._startup_error.append(exc)
                    raise
                finally:
                    self._started.set()

            try:
                loop.run_until_complete(_main())
                loop.run_forever()
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=_run, name="sweep-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise ServiceUnavailable("server failed to start within 30s")
        if self._startup_error:
            raise self._startup_error[0]
        return self

    def stop(self, timeout_s: float = 10.0) -> None:
        import asyncio

        if self._loop is None or self._thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop
        )
        try:
            future.result(timeout=timeout_s)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout_s)

    def client(self, timeout_s: float = 30.0) -> ServiceClient:
        return ServiceClient(
            self.server.host, self.server.port, timeout_s=timeout_s
        )

    def __enter__(self) -> ServiceClient:
        self.start()
        return self.client()

    def __exit__(self, *exc_info) -> None:
        self.stop()
