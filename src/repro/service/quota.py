"""Per-tenant admission control: token buckets and in-flight quotas.

Every rejection is a *structured* error — an exception carrying the
HTTP status and a JSON body the server returns verbatim — so clients can
machine-read why they were turned away and when to retry:

* 403 ``forbidden`` — the tenant is on the block list.
* 403 ``quota_exceeded`` — the tenant already owns ``max_inflight``
  live jobs; the body names the limit and the current count.
* 429 ``rate_limited`` — the tenant's token bucket is empty; the body
  carries ``retry_after_s`` (also surfaced as a ``Retry-After`` header).

Checks run in that order: identity, then standing quota, then rate —
a blocked tenant never consumes a token, and a tenant at quota is told
so even when their bucket happens to be full.

The bucket clock is injectable (``clock=`` a monotonic-seconds callable)
so tests can run the refill math deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet


class ServiceError(Exception):
    """An admission rejection with an HTTP status and JSON body."""

    status = 500

    def __init__(self, message: str, body: dict) -> None:
        super().__init__(message)
        self.body = body


class Forbidden(ServiceError):
    status = 403


class QuotaExceeded(ServiceError):
    status = 403


class RateLimited(ServiceError):
    status = 429

    def __init__(self, message: str, body: dict, retry_after_s: float) -> None:
        super().__init__(message, body)
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class QuotaPolicy:
    """The service-wide per-tenant limits."""

    #: Sustained submissions per second per tenant.
    rate_per_s: float = 50.0
    #: Burst capacity — a fresh tenant can submit this many instantly.
    burst: int = 100
    #: Maximum live (pending + running) queue entries per tenant.
    max_inflight: int = 64
    #: Tenants refused outright.
    blocked: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be > 0, got {self.rate_per_s}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )


class TokenBucket:
    """Classic token bucket: ``burst`` capacity, ``rate_per_s`` refill."""

    def __init__(
        self,
        rate_per_s: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate_per_s = rate_per_s
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._last) * self.rate_per_s
        )
        self._last = now

    def take(self) -> bool:
        """Consume one token if available."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after_s(self) -> float:
        """Seconds until one token will be available."""
        self._refill()
        missing = max(0.0, 1.0 - self._tokens)
        return missing / self.rate_per_s


@dataclass
class TenantQuotas:
    """Admission control over all tenants, one bucket each."""

    policy: QuotaPolicy = field(default_factory=QuotaPolicy)
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self) -> None:
        self._buckets: Dict[str, TokenBucket] = {}

    def admit(self, tenant: str, inflight: int) -> None:
        """Admit one submission from ``tenant`` or raise the structured
        rejection.  ``inflight`` is the tenant's current live job count
        (the queue knows; the quota layer judges)."""
        if tenant in self.policy.blocked:
            raise Forbidden(
                f"tenant {tenant!r} is blocked",
                body={"error": "forbidden", "tenant": tenant},
            )
        if inflight >= self.policy.max_inflight:
            raise QuotaExceeded(
                f"tenant {tenant!r} has {inflight} jobs in flight "
                f"(max {self.policy.max_inflight})",
                body={
                    "error": "quota_exceeded",
                    "tenant": tenant,
                    "inflight": inflight,
                    "max_inflight": self.policy.max_inflight,
                },
            )
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                self.policy.rate_per_s, self.policy.burst, clock=self.clock
            )
        if not bucket.take():
            retry_after = bucket.retry_after_s()
            raise RateLimited(
                f"tenant {tenant!r} exceeded {self.policy.rate_per_s}/s",
                body={
                    "error": "rate_limited",
                    "tenant": tenant,
                    "rate_per_s": self.policy.rate_per_s,
                    "retry_after_s": retry_after,
                },
                retry_after_s=retry_after,
            )
