"""The asyncio sweep server: an HTTP front door over the run cache.

Stdlib only — ``asyncio.start_server`` plus a small HTTP/1.1 reader —
because the repo's dependency contract is numpy-and-nothing-else.  One
connection serves one request (``Connection: close``); the event stream
ends at EOF, which keeps the framing trivial and the client universal
(curl works).

Routes::

    POST   /runs              submit a RunSpec as JSON -> job document
    GET    /runs/{id}         job status
    GET    /runs/{id}/result  the run artifact (exact cached bytes)
    GET    /runs/{id}/events  NDJSON stream of per-cycle progress
    DELETE /runs/{id}         cancel
    GET    /stats             queue counts + service counters
    GET    /healthz           liveness

Submission admission order: quota layer (403/429, structured bodies),
then queue dedup — a duplicate submission returns the *same* run id with
``created: false`` and costs no execution.  Workers are asyncio tasks
dispatching claimed jobs through ``orchestration.worker.execute_point``
in an executor — process pool by default (crash isolation: a dying
point, or even a dying pool, becomes a structured error artifact, never
a dead server), thread pool where fork is unwelcome.  Results land in
the same content-addressed ``RunCache`` campaigns use, so a service
data directory *is* a campaign directory and vice versa.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import json
import multiprocessing
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.api import ConfigError, RunSpec
from repro.orchestration.artifacts import load_artifact
from repro.orchestration.cache import RunCache
from repro.orchestration.worker import PointTask, execute_point
from repro.service.jobs import DONE, ERROR, TERMINAL, Job, JobQueue
from repro.service.quota import ServiceError, TenantQuotas

PROGRESS_DIR = "progress"

#: Submissions larger than this are rejected up front (a deck plus
#: builder options is a few KiB; megabytes means a confused client).
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class _BadRequest(Exception):
    """Malformed HTTP or JSON — reduced to a 400 with a structured body."""


def _json_bytes(doc: dict) -> bytes:
    return (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")


class SweepServer:
    """One service instance over one data directory.

    The data directory holds the queue journal (``queue.json``), the
    content-addressed artifacts (``points/``, ``errors/`` — a
    :class:`~repro.orchestration.cache.RunCache`), and per-job progress
    streams (``progress/``).  Restarting a server on the same directory
    resumes: the journal reload reverts in-flight jobs to pending and
    the worker pool picks them back up, skipping any whose artifact
    already made it to the cache.
    """

    def __init__(
        self,
        data_dir: Union[str, Path],
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        retries: int = 1,
        timeout_s: Optional[float] = None,
        quotas: Optional[TenantQuotas] = None,
        execution: str = "process",
        poll_interval_s: float = 0.05,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if execution not in ("process", "thread"):
            raise ValueError(
                f"execution must be 'process' or 'thread', got {execution!r}"
            )
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.host = host
        self.port = port
        self.workers = workers
        self.retries = retries
        self.timeout_s = timeout_s
        self.execution = execution
        self.poll_interval_s = poll_interval_s
        self.queue = JobQueue(self.data_dir)
        self.cache = RunCache(self.data_dir)
        self.quotas = quotas if quotas is not None else TenantQuotas()
        #: Service counters served by ``/stats``.  ``cache_hits`` counts
        #: jobs resolved from the artifact cache without executing;
        #: ``coalesced`` counts submissions deduped onto a live job —
        #: both are "hits" in the load-test sense.
        self.stats: Dict[str, int] = {
            "requests": 0,
            "submitted": 0,
            "coalesced": 0,
            "cache_hits": 0,
            "executed": 0,
            "failed": 0,
            "rejected": 0,
            "cancelled": 0,
        }
        self._server: Optional[asyncio.base_events.Server] = None
        self._worker_tasks: List[asyncio.Task] = []
        self._wake: Optional[asyncio.Event] = None
        self._executor: Optional[concurrent.futures.Executor] = None

    # ---------------------------------------------------------- lifecycle

    def _make_executor(self) -> concurrent.futures.Executor:
        if self.execution == "thread":
            return concurrent.futures.ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-service",
            )
        kwargs = {}
        if "fork" in multiprocessing.get_all_start_methods():
            kwargs["mp_context"] = multiprocessing.get_context("fork")
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers, **kwargs
        )

    async def start(self) -> None:
        """Bind the socket and start the worker pool (non-blocking)."""
        self._wake = asyncio.Event()
        self._executor = self._make_executor()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        self._worker_tasks = [
            loop.create_task(self._worker_loop(), name=f"sweep-worker-{i}")
            for i in range(self.workers)
        ]
        # Journal recovery: anything pending (including jobs reverted
        # from running) dispatches immediately.
        self._wake.set()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, cancel workers, shut the executor down.

        Jobs still running stay ``running`` in the journal; the next
        server on this data directory reverts them to pending and
        re-dispatches — the kill-and-restart resume path.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._worker_tasks:
            task.cancel()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._worker_tasks = []
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------ workers

    def _progress_path(self, key: str) -> Path:
        return self.data_dir / PROGRESS_DIR / f"{key}.ndjson"

    async def _worker_loop(self) -> None:
        assert self._wake is not None
        while True:
            job = self.queue.claim()
            if job is None:
                self._wake.clear()
                await self._wake.wait()
                continue
            await self._run_job(job)

    async def _run_job(self, job: Job) -> None:
        # Cache first: a key that already has an artifact costs nothing.
        cached = self.cache.load(job.key)
        if cached is not None:
            self.stats["cache_hits"] += 1
            self.queue.finish(job.key, DONE, cached=True)
            return
        try:
            spec = job.spec()
        except ConfigError as exc:  # journal predates a deck change
            self.stats["failed"] += 1
            self.queue.finish(job.key, ERROR, error=f"ConfigError: {exc}")
            return
        task = PointTask(
            spec=spec,
            retries=self.retries,
            timeout_s=self.timeout_s,
            progress_path=str(self._progress_path(job.key)),
        )
        loop = asyncio.get_running_loop()
        try:
            artifact = await loop.run_in_executor(
                self._executor, execute_point, task
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # execute_point never raises; this is the pool itself dying
            # (e.g. a worker process SIGKILLed).  Record and rebuild.
            self.stats["failed"] += 1
            self.queue.finish(
                job.key, ERROR, error=f"{type(exc).__name__}: {exc}"
            )
            with contextlib.suppress(Exception):
                self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = self._make_executor()
            return
        # Store even for a since-cancelled job: the artifact is
        # content-addressed and deterministic, so the next submission of
        # this key becomes an instant hit.
        self.cache.store(artifact)
        if artifact.get("status") == "ok":
            self.stats["executed"] += 1
            self.queue.finish(job.key, DONE)
        else:
            self.stats["failed"] += 1
            error = artifact.get("error", {})
            self.queue.finish(
                job.key,
                ERROR,
                error=f"{error.get('type')}: {error.get('message')}",
            )

    # --------------------------------------------------------------- HTTP

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is not None:
                await self._dispatch(request, writer)
        except _BadRequest as exc:
            with contextlib.suppress(Exception):
                await self._respond(
                    writer, 400, {"error": "bad_request", "message": str(exc)}
                )
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass
        except Exception as exc:  # noqa: BLE001 — a 500 beats a dead socket
            with contextlib.suppress(Exception):
                await self._respond(
                    writer,
                    500,
                    {"error": "internal", "message": f"{type(exc).__name__}: {exc}"},
                )
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _BadRequest("malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _BadRequest("malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise _BadRequest(
                f"body of {length} bytes exceeds the {MAX_BODY_BYTES} limit"
            )
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method, path, headers, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        doc: dict,
        extra_headers: Tuple[Tuple[str, str], ...] = (),
        raw: Optional[bytes] = None,
    ) -> None:
        payload = raw if raw is not None else _json_bytes(doc)
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        head.extend(f"{name}: {value}" for name, value in extra_headers)
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(payload)
        await writer.drain()

    def _job_doc(self, job: Job) -> dict:
        doc = {
            "id": job.key,
            "status": job.status,
            "tenant": job.tenant,
            "priority": job.priority,
            "submissions": job.submissions,
            "attempts": job.attempts,
            "cached": job.cached,
            "label": job.label,
            "links": {
                "self": f"/runs/{job.key}",
                "result": f"/runs/{job.key}/result",
                "events": f"/runs/{job.key}/events",
            },
        }
        if job.error:
            doc["error"] = job.error
        return doc

    async def _dispatch(
        self,
        request: Tuple[str, str, Dict[str, str], bytes],
        writer: asyncio.StreamWriter,
    ) -> None:
        method, path, headers, body = request
        self.stats["requests"] += 1
        if path == "/healthz":
            await self._respond(writer, 200, {"ok": True})
            return
        if path == "/stats":
            counts = self.queue.counts()
            await self._respond(
                writer,
                200,
                {
                    "queue": counts.by_status,
                    "stats": dict(self.stats),
                    "workers": self.workers,
                },
            )
            return
        if path == "/runs":
            if method != "POST":
                await self._respond(writer, 405, {"error": "method_not_allowed"})
                return
            await self._handle_submit(headers, body, writer)
            return
        if path.startswith("/runs/"):
            rest = path[len("/runs/"):]
            key, _, sub = rest.partition("/")
            if not key or (sub not in ("", "result", "events")):
                await self._respond(writer, 404, {"error": "not_found"})
                return
            if sub == "" and method == "DELETE":
                await self._handle_cancel(key, writer)
            elif method != "GET":
                await self._respond(writer, 405, {"error": "method_not_allowed"})
            elif sub == "":
                await self._handle_status(key, writer)
            elif sub == "result":
                await self._handle_result(key, writer)
            else:
                await self._handle_events(key, writer)
            return
        await self._respond(writer, 404, {"error": "not_found"})

    # ---------------------------------------------------------- endpoints

    async def _handle_submit(
        self,
        headers: Dict[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        tenant = headers.get("x-tenant", "anonymous")
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(f"body is not JSON: {exc}")
        if not isinstance(doc, dict):
            raise _BadRequest("body must be a JSON object")
        doc = dict(doc)
        priority = doc.pop("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise _BadRequest("priority must be an integer")
        try:
            spec = RunSpec.from_json(doc)
        except ConfigError as exc:
            await self._respond(
                writer, 400, {"error": "invalid_spec", "message": str(exc)}
            )
            return
        try:
            self.quotas.admit(tenant, self.queue.inflight(tenant))
        except ServiceError as exc:
            self.stats["rejected"] += 1
            extra: Tuple[Tuple[str, str], ...] = ()
            retry_after = getattr(exc, "retry_after_s", None)
            if retry_after is not None:
                extra = (("Retry-After", f"{max(retry_after, 0.0):.3f}"),)
            await self._respond(writer, exc.status, exc.body, extra)
            return
        job, created = self.queue.submit(spec, tenant=tenant, priority=priority)
        if created:
            self.stats["submitted"] += 1
            assert self._wake is not None
            self._wake.set()
        else:
            self.stats["coalesced"] += 1
        doc = self._job_doc(job)
        doc["created"] = created
        status = 202 if job.status not in TERMINAL else 200
        await self._respond(writer, status, doc)

    async def _handle_status(
        self, key: str, writer: asyncio.StreamWriter
    ) -> None:
        job = self.queue.get(key)
        if job is None:
            await self._respond(writer, 404, {"error": "not_found", "id": key})
            return
        await self._respond(writer, 200, self._job_doc(job))

    async def _handle_result(
        self, key: str, writer: asyncio.StreamWriter
    ) -> None:
        job = self.queue.get(key)
        if job is None:
            await self._respond(writer, 404, {"error": "not_found", "id": key})
            return
        # Serve the cached file verbatim: the wire bytes equal
        # dumps_artifact() of a direct Simulation.run(), byte for byte.
        point_path = self.cache.path(key)
        if point_path.is_file():
            await self._respond(writer, 200, {}, raw=point_path.read_bytes())
            return
        error_path = self.cache.error_path(key)
        if error_path.is_file():
            await self._respond(
                writer, 200, {}, raw=error_path.read_bytes()
            )
            return
        if job.status in TERMINAL:
            await self._respond(
                writer,
                409,
                {"error": "no_result", "id": key, "status": job.status},
            )
            return
        await self._respond(
            writer,
            409,
            {"error": "not_finished", "id": key, "status": job.status},
        )

    async def _handle_events(
        self, key: str, writer: asyncio.StreamWriter
    ) -> None:
        """Stream per-cycle progress as NDJSON until the job settles.

        Lines 1..N-1 are :class:`~repro.api.ProgressEvent` dicts (from
        the worker's progress file); the final line is
        ``{"event": "end", "status": ..., "cached": ...}``.  The
        response has no Content-Length — it ends at connection close,
        so a plain ``curl`` renders it live.
        """
        job = self.queue.get(key)
        if job is None:
            await self._respond(writer, 404, {"error": "not_found", "id": key})
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        path = self._progress_path(key)
        offset = 0
        while True:
            offset = await self._stream_new_lines(path, offset, writer)
            job = self.queue.get(key)
            assert job is not None
            if job.status in TERMINAL:
                # One final scan: the worker may have flushed between
                # our last read and the status flip.
                offset = await self._stream_new_lines(path, offset, writer)
                writer.write(
                    _json_bytes(
                        {
                            "event": "end",
                            "status": job.status,
                            "cached": job.cached,
                        }
                    )
                )
                await writer.drain()
                return
            await asyncio.sleep(self.poll_interval_s)

    async def _stream_new_lines(
        self, path: Path, offset: int, writer: asyncio.StreamWriter
    ) -> int:
        """Forward complete NDJSON lines appearing past ``offset``."""
        if not path.is_file():
            return offset
        with open(path, "rb") as f:
            f.seek(offset)
            chunk = f.read()
        if not chunk:
            return offset
        complete = chunk.rfind(b"\n")
        if complete < 0:
            return offset
        writer.write(chunk[: complete + 1])
        await writer.drain()
        return offset + complete + 1

    async def _handle_cancel(
        self, key: str, writer: asyncio.StreamWriter
    ) -> None:
        job, changed = self.queue.cancel(key)
        if job is None:
            await self._respond(writer, 404, {"error": "not_found", "id": key})
            return
        if not changed:
            await self._respond(
                writer,
                409,
                {
                    "error": "already_finished",
                    "id": key,
                    "status": job.status,
                },
            )
            return
        self.stats["cancelled"] += 1
        await self._respond(writer, 200, self._job_doc(job))


def load_result(data_dir: Union[str, Path], key: str) -> Optional[dict]:
    """Read a run's artifact straight from a service data directory —
    the no-HTTP escape hatch for co-located tooling."""
    cache = RunCache(data_dir)
    artifact = cache.load(key)
    if artifact is not None:
        return artifact
    error_path = cache.error_path(key)
    if error_path.is_file():
        return load_artifact(error_path)
    return None
