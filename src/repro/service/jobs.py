"""Persistent priority job queue with dedup-by-cache-key.

The queue is the service's source of truth for *what work exists and
where it stands*; the run cache (``orchestration.cache.RunCache``)
remains the source of truth for *results*.  Three properties carry the
"millions of users" story:

* **Dedup by content address.**  A job's id *is* its spec's
  :meth:`~repro.api.RunSpec.cache_key`, so N identical submissions — no
  matter how many tenants they come from — coalesce into one queue entry
  with ``submissions == N``: one execution, N subscribers.  A
  resubmission of a failed or cancelled key *reactivates* the same entry
  rather than duplicating it.
* **Crash-consistent journal.**  Every mutation rewrites
  ``queue.json`` with the checkpoint writer's atomic protocol
  (tmp + fsync + rename), so a killed server can never leave a torn
  journal.  On restart, jobs found ``running`` revert to ``pending`` —
  the execution died with the server — and are re-dispatched; ``done``
  jobs keep pointing at their cached artifacts.
* **Priority with FIFO ties.**  ``claim`` hands out the
  highest-priority pending job, submission order breaking ties, so a
  flood of bulk work cannot starve an earlier interactive request at
  equal priority.

The queue is deliberately not thread-safe: the server mutates it only
from the event-loop thread (workers hand results back via the loop), so
the journal write is the only synchronization that matters.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.api import RunSpec

JOURNAL_NAME = "queue.json"
QUEUE_SCHEMA_VERSION = 1

#: Job lifecycle: ``pending -> running -> done | error``, with
#: ``cancelled`` reachable from the two non-terminal states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
ERROR = "error"
CANCELLED = "cancelled"

STATUSES = (PENDING, RUNNING, DONE, ERROR, CANCELLED)
TERMINAL = frozenset({DONE, ERROR, CANCELLED})


class JournalError(ValueError):
    """The on-disk journal is unreadable or from an unknown schema."""


@dataclass
class Job:
    """One queue entry — every field JSON-primitive for the journal."""

    #: The spec's cache key: job id, dedup key, and artifact address.
    key: str
    #: The spec in deck form (``RunSpec.from_deck`` reconstructs it).
    deck: str
    tenant: str = "anonymous"
    priority: int = 0
    #: Submission sequence number — the FIFO tie-break within a priority.
    seq: int = 0
    status: str = PENDING
    #: How many submissions coalesced into this entry.
    submissions: int = 1
    #: Times a worker claimed this job (restart recoveries included).
    attempts: int = 0
    #: True when the job resolved straight from the run cache.
    cached: bool = False
    #: ``"Type: message"`` summary for ``status == "error"``.
    error: Optional[str] = None
    label: str = ""

    def spec(self) -> RunSpec:
        return RunSpec.from_deck(self.deck)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "Job":
        return cls(**doc)


@dataclass
class QueueCounts:
    """Status totals for ``/stats`` and scheduling decisions."""

    pending: int = 0
    running: int = 0
    done: int = 0
    error: int = 0
    cancelled: int = 0
    by_status: Dict[str, int] = field(default_factory=dict)


class JobQueue:
    """The persistent queue for one service data directory."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.journal = self.root / JOURNAL_NAME
        self._jobs: Dict[str, Job] = {}
        self._seq = 0
        #: Keys reverted from ``running`` to ``pending`` by the last
        #: load — the jobs whose executions died with the previous
        #: server process.
        self.recovered: List[str] = []
        self._load()

    # ---------------------------------------------------------- journal

    def _load(self) -> None:
        if not self.journal.is_file():
            return
        try:
            doc = json.loads(self.journal.read_text())
        except json.JSONDecodeError as exc:  # pragma: no cover — atomic
            raise JournalError(f"corrupt queue journal: {exc}") from exc
        if doc.get("schema_version") != QUEUE_SCHEMA_VERSION:
            raise JournalError(
                f"queue journal schema {doc.get('schema_version')!r} != "
                f"{QUEUE_SCHEMA_VERSION} (incompatible service version?)"
            )
        self._seq = int(doc.get("seq", 0))
        for job_doc in doc.get("jobs", []):
            job = Job.from_dict(job_doc)
            if job.status == RUNNING:
                # The claiming worker died with the previous process;
                # the run cache still dedups any work it completed.
                job.status = PENDING
                self.recovered.append(job.key)
            self._jobs[job.key] = job
        if self.recovered:
            self._persist()

    def _persist(self) -> None:
        """Atomic journal rewrite: tmp + fsync + rename (DESIGN §9's
        checkpoint protocol), so readers never observe a torn journal."""
        self.root.mkdir(parents=True, exist_ok=True)
        doc = {
            "schema_version": QUEUE_SCHEMA_VERSION,
            "seq": self._seq,
            "jobs": [
                job.to_dict()
                for job in sorted(self._jobs.values(), key=lambda j: j.seq)
            ],
        }
        tmp = self.journal.with_suffix(f".json.tmp{os.getpid()}")
        try:
            with open(tmp, "w") as f:
                json.dump(doc, f, sort_keys=True, indent=2)
                f.write("\n")
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, self.journal)
        finally:
            if tmp.exists():  # pragma: no cover — only on a failed write
                tmp.unlink()

    # --------------------------------------------------------- lifecycle

    def submit(
        self,
        spec: RunSpec,
        tenant: str = "anonymous",
        priority: int = 0,
    ) -> Tuple[Job, bool]:
        """Enqueue a spec; returns ``(job, created)``.

        ``created`` is False when the submission coalesced into an
        existing live entry (pending, running, or done) — the dedup
        path.  A failed or cancelled entry is *reactivated*: same key,
        same entry, back to pending, ``created`` True because a new
        execution was scheduled.
        """
        key = spec.cache_key()
        job = self._jobs.get(key)
        if job is not None:
            job.submissions += 1
            # A duplicate may raise the stakes but never lower them.
            job.priority = max(job.priority, priority)
            if job.status in (ERROR, CANCELLED):
                job.status = PENDING
                job.error = None
                job.cached = False
                self._persist()
                return job, True
            self._persist()
            return job, False
        self._seq += 1
        job = Job(
            key=key,
            deck=spec.to_deck(),
            tenant=tenant,
            priority=priority,
            seq=self._seq,
            label=spec.label or spec.describe(),
        )
        self._jobs[key] = job
        self._persist()
        return job, True

    def claim(self) -> Optional[Job]:
        """Highest-priority pending job (FIFO within a priority), marked
        running — or None when nothing is pending."""
        pending = [j for j in self._jobs.values() if j.status == PENDING]
        if not pending:
            return None
        job = min(pending, key=lambda j: (-j.priority, j.seq))
        job.status = RUNNING
        job.attempts += 1
        self._persist()
        return job

    def finish(
        self,
        key: str,
        status: str,
        error: Optional[str] = None,
        cached: bool = False,
    ) -> Job:
        """Record a claimed job's outcome (``done`` or ``error``).

        A job cancelled while running stays cancelled — the late result
        is still cached for the *next* submission, but this entry's fate
        was already decided by the tenant.
        """
        if status not in (DONE, ERROR):
            raise ValueError(f"finish() takes 'done' or 'error', got {status!r}")
        job = self._jobs[key]
        if job.status == CANCELLED:
            return job
        job.status = status
        job.error = error
        job.cached = cached
        self._persist()
        return job

    def cancel(self, key: str) -> Tuple[Optional[Job], bool]:
        """Cancel a job; returns ``(job, changed)``.

        Terminal jobs are left untouched (``changed`` False) — a result
        that already exists cannot be unhappened.
        """
        job = self._jobs.get(key)
        if job is None:
            return None, False
        if job.status in TERMINAL:
            return job, False
        job.status = CANCELLED
        self._persist()
        return job, True

    # ----------------------------------------------------------- queries

    def get(self, key: str) -> Optional[Job]:
        return self._jobs.get(key)

    def jobs(self) -> List[Job]:
        return sorted(self._jobs.values(), key=lambda j: j.seq)

    def inflight(self, tenant: str) -> int:
        """Live (pending + running) entries owned by ``tenant`` — the
        in-flight quota input.  Coalesced submissions count against the
        entry's original owner only."""
        return sum(
            1
            for j in self._jobs.values()
            if j.tenant == tenant and j.status not in TERMINAL
        )

    def counts(self) -> QueueCounts:
        counts = QueueCounts()
        by_status: Dict[str, int] = {status: 0 for status in STATUSES}
        for job in self._jobs.values():
            by_status[job.status] += 1
        counts.pending = by_status[PENDING]
        counts.running = by_status[RUNNING]
        counts.done = by_status[DONE]
        counts.error = by_status[ERROR]
        counts.cancelled = by_status[CANCELLED]
        counts.by_status = by_status
        return counts
