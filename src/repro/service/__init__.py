"""Campaign-as-a-service: the asyncio sweep server and its parts.

The service turns the library's run machinery into a long-lived HTTP
endpoint: submissions dedup by :meth:`repro.api.RunSpec.cache_key`
against a persistent journal, execute through the crash-isolated
campaign worker, and land in the same content-addressed run cache that
offline campaigns use.  See DESIGN.md §13 for the journal format, dedup
semantics, and quota model.
"""

from repro.service.client import Response, ServerThread, ServiceClient
from repro.service.jobs import (
    CANCELLED,
    DONE,
    ERROR,
    PENDING,
    RUNNING,
    TERMINAL,
    Job,
    JobQueue,
    JournalError,
    QueueCounts,
)
from repro.service.quota import (
    Forbidden,
    QuotaExceeded,
    QuotaPolicy,
    RateLimited,
    ServiceError,
    TenantQuotas,
    TokenBucket,
)
from repro.service.server import SweepServer, load_result

__all__ = [
    "CANCELLED",
    "DONE",
    "ERROR",
    "Forbidden",
    "Job",
    "JobQueue",
    "JournalError",
    "PENDING",
    "QueueCounts",
    "QuotaExceeded",
    "QuotaPolicy",
    "RUNNING",
    "RateLimited",
    "Response",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "SweepServer",
    "TERMINAL",
    "TokenBucket",
    "TenantQuotas",
    "load_result",
]
