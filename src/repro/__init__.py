"""Python reproduction of the IISWC 2025 Parthenon-VIBE AMR characterization study.

The package has two halves:

* the *workload*: a from-scratch block-structured AMR framework and
  Burgers (VIBE) solver (:mod:`repro.mesh`, :mod:`repro.comm`,
  :mod:`repro.solver`, :mod:`repro.driver`), and
* the *platform*: Kokkos-style instrumentation plus simulated H100 / Sapphire
  Rapids / Open MPI cost models (:mod:`repro.kokkos`, :mod:`repro.hardware`),

tied together by the characterization toolkit in :mod:`repro.core`, which
regenerates every figure and table in the paper.
"""

__version__ = "1.0.0"

from repro.driver.params import SimulationParams
from repro.driver.execution import ExecutionConfig, OptimizationFlags
from repro.driver.driver import ParthenonDriver, RunResult
from repro.core.characterize import characterize
from repro.api import (
    RunSpec,
    Simulation,
    build_execution_config,
    build_optimization_flags,
    build_simulation_params,
)

__all__ = [
    "SimulationParams",
    "ExecutionConfig",
    "OptimizationFlags",
    "ParthenonDriver",
    "RunResult",
    "RunSpec",
    "Simulation",
    "build_execution_config",
    "build_optimization_flags",
    "build_simulation_params",
    "characterize",
    "__version__",
]
