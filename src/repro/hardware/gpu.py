"""H100 performance model: kernel durations and Table III metrics.

The duration model is roofline-with-parallelism: a kernel's work time is the
larger of its compute time (FLOPs over attainable FP64 throughput) and its
memory time (bytes over attainable bandwidth), divided by a parallelism
efficiency that collapses when a launch exposes too few useful threads to
fill the machine — exactly the paper's "small mesh blocks are processed with
low SM utilization" mechanism.  Attainable rates are discounted by the
kernel's access-pattern efficiency (sparse mesh-block layouts reach only a
fraction of HBM peak) and the wasted-warp issue penalty found by PTX
inspection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.hardware.calibration import DEFAULT_CALIBRATION, Calibration
from repro.hardware.occupancy import OccupancyResult, occupancy
from repro.hardware.specs import GPUSpec, H100_SXM
from repro.kokkos.kernel import KernelLaunch, KernelProfile


@dataclass
class KernelMetrics:
    """One row of Table III."""

    name: str
    duration_s: float
    sm_utilization: float
    sm_occupancy: float
    warp_utilization: float
    bw_utilization: float
    arithmetic_intensity: float


def warp_utilization(profile: KernelProfile, block_nx: int, warp_size: int) -> float:
    """Active threads per warp instruction.

    Line kernels compute along one mesh-block x1-line per warp: lanes beyond
    the block size are masked off, so utilization degrades once the block
    size drops below the warp width (the paper's 94% → 68% shift from B32 to
    B16 in CalculateFluxes).  The uniform (non-divergent) instruction
    fraction blends the penalty.
    """
    base = 0.95
    if not profile.line_kernel:
        return base
    line = min(block_nx / warp_size, 1.0)
    f = profile.uniform_fraction
    return base * (f + (1.0 - f) * line)


class GPUModel:
    """Kernel-duration and microarchitecture model for one GPU."""

    def __init__(
        self,
        spec: GPUSpec = H100_SXM,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        self.spec = spec
        self.cal = calibration.gpu

    # ------------------------------------------------------------ pieces

    def occupancy_of(self, profile: KernelProfile) -> OccupancyResult:
        return occupancy(
            self.spec, profile.registers_per_thread, profile.threads_per_block
        )

    def parallelism_efficiency(self, launch: KernelLaunch) -> float:
        """Fraction of the machine's latency-hiding capacity a launch fills.

        Useful concurrent threads = min(threads the launch exposes, threads
        occupancy allows in flight); the machine saturates at
        ``saturation_warps_per_sm`` warps per SM.
        """
        profile = launch.profile
        occ = self.occupancy_of(profile)
        warp_util = warp_utilization(
            profile, launch.block_nx, self.spec.warp_size
        )
        if profile.line_kernel:
            # One warp of useful work per line; block over-provisioning
            # wastes the rest (counted via the issue penalty, not here).
            useful_threads = launch.lines * min(
                launch.block_nx, self.spec.warp_size
            )
        else:
            useful_threads = launch.cells
        in_flight = min(
            useful_threads,
            self.spec.sms * occ.active_warps_per_sm * self.spec.warp_size
            * warp_util,
        )
        saturation = (
            self.spec.sms * self.cal.saturation_warps_per_sm * self.spec.warp_size
        )
        return max(min(in_flight / saturation, 1.0), 1e-6)

    def issue_efficiency(self, profile: KernelProfile) -> float:
        """Useful-instruction issue fraction (wasted warps + divergence)."""
        eff_warps = profile.effective_warps_per_block
        warps_per_block = math.ceil(
            profile.threads_per_block / self.spec.warp_size
        )
        if eff_warps >= warps_per_block:
            return 1.0
        waste = 1.0 - eff_warps / warps_per_block
        return 1.0 - waste * self.cal.wasted_warp_issue_penalty

    # ---------------------------------------------------------- duration

    def kernel_duration(self, launch: KernelLaunch) -> float:
        """Wall seconds for one launch on this GPU.

        Warp divergence enters the work time directly: lanes masked off in
        line kernels (block size below the warp width) still occupy issue
        slots and memory transactions, so both attainable FLOPs and
        attainable bandwidth shrink with warp utilization — the per-cell
        slowdown behind Fig. 1(c).
        """
        profile = launch.profile
        issue = self.issue_efficiency(profile)
        wu = warp_utilization(profile, launch.block_nx, self.spec.warp_size)
        divergence = wu / 0.95  # strip the non-divergence base factor
        t_compute = launch.flops / (
            self.spec.peak_fp64_flops * issue * divergence
        )
        t_memory = launch.bytes / (
            self.spec.memory_bw_bytes_per_s
            * profile.mem_efficiency
            * divergence
        )
        work = max(t_compute, t_memory)
        eff = self.parallelism_efficiency(launch)
        return self.cal.launch_overhead_s + work / eff

    # ------------------------------------------------------- Table III

    def kernel_metrics(self, launch: KernelLaunch) -> KernelMetrics:
        """The Nsight-Compute-style row for one launch."""
        profile = launch.profile
        occ = self.occupancy_of(profile)
        duration = self.kernel_duration(launch)
        active = duration - self.cal.launch_overhead_s
        wu = warp_utilization(profile, launch.block_nx, self.spec.warp_size)
        bw_util = launch.bytes / (
            max(active, 1e-12) * self.spec.memory_bw_bytes_per_s
        )
        # SM utilization: issued-instruction pressure during active time.
        # Wasted warps (over-provisioned CUDA blocks) and divergence-masked
        # lanes still occupy issue slots, so the instruction load exceeds
        # the useful FLOP rate by the block's warp ratio and 1/divergence —
        # how CalculateFluxes shows ~28% SM utilization at 24% occupancy.
        t_compute = launch.flops / self.spec.peak_fp64_flops
        warps_per_block = math.ceil(
            profile.threads_per_block / self.spec.warp_size
        )
        divergence = max(wu / 0.95, 1e-3)
        compute_pressure = (
            t_compute
            / max(active, 1e-12)
            * (warps_per_block / profile.effective_warps_per_block)
            / divergence
        )
        # Streaming/copy kernels keep SMs busy with load/store issue even
        # with no FLOPs: LSU activity tracks achieved bandwidth.
        sm_util = max(compute_pressure, 1.1 * bw_util)
        ai = launch.flops / launch.bytes if launch.bytes else 0.0
        return KernelMetrics(
            name=launch.name,
            duration_s=duration,
            sm_utilization=min(sm_util, 1.0),
            sm_occupancy=occ.occupancy,
            warp_utilization=wu,
            bw_utilization=min(bw_util, 1.0),
            arithmetic_intensity=ai,
        )

    def aggregate_metrics(
        self, launches: Iterable[KernelLaunch]
    ) -> Dict[str, KernelMetrics]:
        """Duration-weighted per-kernel metrics over many launches."""
        sums: Dict[str, List] = {}
        for launch in launches:
            m = self.kernel_metrics(launch)
            if m.name not in sums:
                sums[m.name] = [0.0] * 6
            acc = sums[m.name]
            acc[0] += m.duration_s
            acc[1] += m.sm_utilization * m.duration_s
            acc[2] += m.sm_occupancy * m.duration_s
            acc[3] += m.warp_utilization * m.duration_s
            acc[4] += m.bw_utilization * m.duration_s
            acc[5] += m.arithmetic_intensity * m.duration_s
        out: Dict[str, KernelMetrics] = {}
        for name, acc in sums.items():
            d = acc[0]
            out[name] = KernelMetrics(
                name=name,
                duration_s=d,
                sm_utilization=acc[1] / d,
                sm_occupancy=acc[2] / d,
                warp_utilization=acc[3] / d,
                bw_utilization=acc[4] / d,
                arithmetic_intensity=acc[5] / d,
            )
        return out
