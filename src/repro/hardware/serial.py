"""Host serial-portion cost model (Section VIII-A's bottleneck inventory).

Converts the work counters the framework records (buffers packed, keys
sorted, blocks tagged, string hashes, messages posted, …) into simulated
host seconds.  These costs are what make small mesh blocks and deep AMR
expensive: the per-buffer and per-block terms scale with counts that explode
as blocks shrink.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.comm.buffers import CacheStats
from repro.comm.bvals import ExchangeStats, RebuildStats
from repro.hardware.calibration import DEFAULT_CALIBRATION, Calibration
from repro.mesh.mesh import RemeshStats
from repro.solver.state import LookupCounters


class SerialCostModel:
    """Seconds of host work for each serial code path."""

    def __init__(self, calibration: Calibration = DEFAULT_CALIBRATION) -> None:
        self.cal = calibration.serial
        self.coll = calibration.collective

    # --------------------------------------------------- communication

    def send_setup(self, stats: ExchangeStats) -> float:
        """SendBoundBufs host work: per-buffer metadata + message posting."""
        return (
            stats.buffers_packed * self.cal.per_buffer_pack_setup_s
            + stats.messages_remote * self.cal.per_remote_message_s
        )

    def buffer_cache_init(
        self, nbuffers: int, include_shuffle: bool = True
    ) -> float:
        """InitializeBufferCache: sort + shuffle of boundary keys.

        ``include_shuffle=False`` models Section VIII-A's suggestion of
        dropping the randomization pass.
        """
        if nbuffers <= 0:
            return 0.0
        t = nbuffers * math.log2(max(nbuffers, 2)) * self.cal.per_key_sort_s
        if include_shuffle:
            t += nbuffers * self.cal.per_key_shuffle_s
        return t

    def receive_polling(self, iprobe_calls: int, test_calls: int) -> float:
        """ReceiveBoundBufs: MPI progress polling."""
        return (
            iprobe_calls * self.cal.per_iprobe_s
            + test_calls * self.cal.per_test_s
        )

    def set_bounds_setup(self, stats: ExchangeStats) -> float:
        """SetBounds host work: buffer metadata updates + stale marking."""
        return stats.buffers_packed * self.cal.per_buffer_unpack_setup_s

    # ------------------------------------------------------ remeshing

    def rebuild_buffer_cache(self, rebuild: RebuildStats) -> float:
        """RebuildBufferCache: ViewsOfViews population + H2D copies."""
        c = rebuild.cache
        return c.views_rebuilt * self.cal.per_buffer_views_rebuild_s + (
            c.h2d_copies * self.cal.per_buffer_h2d_s
        )

    def build_tag_map(self, rebuild: RebuildStats) -> float:
        """BuildTagMapAndBoundaryBuffers + SetMeshBlockNeighbors."""
        return rebuild.nbuffers * self.cal.per_neighbor_link_s

    def remesh_allocation(
        self,
        stats: RemeshStats,
        bytes_per_block: int,
        alloc_scale: float = 1.0,
    ) -> float:
        """Block allocation/destruction + prolong/restrict data movement.

        ``alloc_scale < 1`` models pooled allocation (Section VIII-A's
        software memory pools batching the cudaMalloc traffic).
        """
        blocks_changed = stats.created + stats.destroyed
        data_bytes = stats.created * bytes_per_block
        return (
            blocks_changed * self.cal.per_block_alloc_s * alloc_scale
            + data_bytes / self.cal.redistribution_bw_bytes_s
        )

    def redistribution(self, moved_blocks: int, bytes_per_block: int) -> float:
        """Load-balance block moves (metadata + data transfer)."""
        return moved_blocks * self.cal.per_block_move_s + (
            moved_blocks * bytes_per_block / self.cal.redistribution_bw_bytes_s
        )

    # -------------------------------------------- tagging / tree update

    def refinement_tagging(self, blocks_checked: int) -> float:
        """CheckAllRefinement scalar loop over local blocks."""
        return blocks_checked * self.cal.per_block_tag_s

    def tree_update(self, total_blocks: int, tree_changes: int) -> float:
        """UpdateMeshBlockTree: flag processing over ALL blocks (every rank
        holds the whole tree) plus tree surgery."""
        return (
            total_blocks * self.cal.per_block_tree_update_s
            + tree_changes * self.cal.per_tree_change_s
        )

    # ------------------------------------------------- variable lookup

    def variable_lookup(self, counters: LookupCounters) -> float:
        """GetVariablesByFlag string hashing/comparison work."""
        return (
            counters.string_hashes * self.cal.per_string_hash_s
            + counters.string_comparisons * self.cal.per_string_comparison_s
        )

    # ------------------------------------------------------- tasking

    def task_overhead(self, ntasks: int) -> float:
        """Task-list management for the hierarchical tasking model."""
        return ntasks * self.cal.per_task_s

    # ----------------------------------------------------- collectives

    def collective(self, nranks: int, nbytes: int, internode: bool = False) -> float:
        """One All-Gather/All-Reduce over ``nranks`` ranks."""
        t = (
            self.coll.latency_s
            + self.coll.per_log2_rank_s * math.log2(max(nranks, 2))
            + nbytes / self.coll.bandwidth_bytes_s
        )
        if internode:
            t += self.coll.internode_latency_s + nbytes / (
                self.coll.internode_bandwidth_bytes_s
            )
        return t

    def gpu_rank_contention(self, total_blocks: int, ranks_per_gpu: int) -> float:
        """Rank-linear GPU-sharing contention (collective progress, CUDA IPC,
        driver serialization) — the term that turns Fig. 8 over past ~12
        ranks per GPU."""
        return (
            total_blocks
            * ranks_per_gpu
            * self.coll.gpu_contention_per_block_rank_s
        )

    def cpu_rank_contention(self, total_blocks: int, nranks: int) -> float:
        """The far milder CPU analog (Fig. 7's small uptick at 72-96)."""
        return (
            total_blocks * nranks * self.coll.cpu_contention_per_block_rank_s
        )


def mpi_driver_memory_bytes(
    nranks_on_device: int,
    npeers_per_rank: float,
    cycles: int,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> int:
    """Open MPI driver memory on one device (Fig. 10's pink region, part 2).

    Base CUDA context + runtime per rank, per-peer IPC/registration caches,
    and the footnoted IPC leak growing with simulation cycles.
    """
    cal = calibration.mpi_memory
    per_rank = (
        cal.driver_base_bytes_per_rank
        + int(npeers_per_rank * cal.per_peer_bytes)
        + cycles * cal.ipc_leak_bytes_per_cycle_per_rank
    )
    return nranks_on_device * per_rank
