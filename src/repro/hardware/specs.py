"""Hardware specifications — Tables I and II of the paper, as data.

The two constants :data:`SAPPHIRE_RAPIDS_8468` and :data:`H100_SXM` carry the
exact values the paper reports; derived quantities (peak FP64 throughput,
operational intensity) follow the paper's own arithmetic (footnote 2:
H100 operational intensity = 34 TFLOP/s ÷ 3.35 TB/s ≈ 10.1 FLOP/byte).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CPUSpec:
    """Table I: Intel Xeon Platinum 8468 (Sapphire Rapids) node."""

    name: str
    cores: int
    sockets: int
    base_ghz: float
    l1d_kb: int
    l1i_kb: int
    l2_kb_per_core: int
    l3_mb_shared: float
    memory_gib: int
    memory_bw_gbs: float
    #: FP64 FLOPs per cycle per core (2 AVX-512 FMA ports x 8 lanes x 2).
    fp64_flops_per_cycle: int = 32
    simd_doubles: int = 8

    @property
    def peak_fp64_gflops_per_core(self) -> float:
        return self.base_ghz * self.fp64_flops_per_cycle

    @property
    def peak_fp64_gflops(self) -> float:
        return self.cores * self.peak_fp64_gflops_per_core

    @property
    def memory_bytes(self) -> int:
        return self.memory_gib * 2**30


@dataclass(frozen=True)
class GPUSpec:
    """Table II: NVIDIA H100 (SXM)."""

    name: str
    sms: int
    base_ghz: float
    memory_mib: int
    memory_bw_tbs: float
    l1_scratch_kb: int
    l2_mb: int
    fp64_tflops: float
    warp_size: int = 32
    max_warps_per_sm: int = 64
    max_threads_per_block: int = 1024
    registers_per_sm: int = 65536
    max_blocks_per_sm: int = 32
    #: Register allocation granularity (registers are allocated per warp in
    #: chunks of this many).
    register_allocation_unit: int = 256

    @property
    def memory_bytes(self) -> int:
        return self.memory_mib * 2**20

    @property
    def memory_bw_bytes_per_s(self) -> float:
        return self.memory_bw_tbs * 1e12

    @property
    def peak_fp64_flops(self) -> float:
        return self.fp64_tflops * 1e12

    @property
    def operational_intensity(self) -> float:
        """Machine balance in FLOPs/byte (the paper's 10.1)."""
        return self.peak_fp64_flops / self.memory_bw_bytes_per_s


SAPPHIRE_RAPIDS_8468 = CPUSpec(
    name="Intel Xeon Platinum 8468 (Sapphire Rapids)",
    cores=96,
    sockets=2,
    base_ghz=3.1,
    l1d_kb=48,
    l1i_kb=32,
    l2_kb_per_core=2048,
    l3_mb_shared=105.0,
    memory_gib=1024,
    memory_bw_gbs=614.4,
)

H100_SXM = GPUSpec(
    name="NVIDIA H100",
    sms=132,
    base_ghz=1.98,
    memory_mib=81559,
    memory_bw_tbs=3.35,
    l1_scratch_kb=256,
    l2_mb=50,
    fp64_tflops=34.0,
)
