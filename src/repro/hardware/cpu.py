"""Sapphire Rapids performance model: data-parallel kernel durations.

CPU kernels are the same named launches as on the GPU, executed by OpenMP
across the MPI ranks' cores.  The model is roofline-style: attainable FP64
throughput scales with cores and the SIMD efficiency of the loop (which
degrades at small mesh-block sizes — Fig. 13's vector-share drop from 63% to
52% between B32 and B16), bounded by memory bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.calibration import DEFAULT_CALIBRATION, Calibration
from repro.hardware.specs import CPUSpec, SAPPHIRE_RAPIDS_8468
from repro.kokkos.kernel import KernelLaunch


def simd_efficiency(block_nx: int, simd_width: int = 8) -> float:
    """Fraction of inner-loop work executed in full SIMD lanes.

    An x1-line of ``block_nx`` cells fills ``block_nx // simd_width`` full
    vectors; the remainder runs scalar.  Short lines also pay relatively more
    loop/setup scalar work, folded in as a fixed per-line overhead of about
    half a vector.
    """
    if block_nx < 1:
        raise ValueError(f"block_nx must be >= 1, got {block_nx}")
    full = (block_nx // simd_width) * simd_width
    overhead = 0.5 * simd_width
    return full / (block_nx + overhead)


class CPUModel:
    """Kernel-duration model for data-parallel execution on CPU cores."""

    def __init__(
        self,
        spec: CPUSpec = SAPPHIRE_RAPIDS_8468,
        calibration: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        self.spec = spec
        self.cal = calibration.cpu

    def attainable_gflops(self, ncores: int, block_nx: int) -> float:
        """FP64 GFLOP/s of ``ncores`` cores on ``block_nx``-sized loops."""
        if ncores < 1 or ncores > self.spec.cores:
            raise ValueError(
                f"ncores must be in [1, {self.spec.cores}], got {ncores}"
            )
        ve = simd_efficiency(block_nx, self.spec.simd_doubles)
        per_lane = self.cal.flop_efficiency
        # Vectorized share at vector throughput, remainder at scalar rate.
        eff = ve * per_lane + (1.0 - ve) * self.cal.scalar_penalty
        return ncores * self.spec.peak_fp64_gflops_per_core * eff

    def kernel_duration(
        self, launch: KernelLaunch, ncores: int, total_ranks: int = 0
    ) -> float:
        """Wall seconds for one data-parallel launch on ``ncores`` cores.

        ``total_ranks`` is how many ranks run concurrently on the node and
        therefore share the socket bandwidth; each rank's slice is capped at
        what ~4 cores can draw (a single core cannot saturate the memory
        controllers) and floored by an equal share when the node is full.
        """
        if total_ranks < ncores:
            total_ranks = ncores
        gflops = self.attainable_gflops(ncores, launch.block_nx)
        t_compute = launch.flops / (gflops * 1e9)
        bw_total = self.spec.memory_bw_gbs * 1e9 * self.cal.mem_efficiency
        share = min(4.0 * ncores / self.spec.cores, ncores / total_ranks)
        # Per-core L2/L3 residency absorbs most of the worst-case traffic.
        dram_bytes = launch.bytes * self.cal.cache_traffic_factor
        t_memory = dram_bytes / (bw_total * share)
        return self.cal.dispatch_overhead_s + max(t_compute, t_memory)
