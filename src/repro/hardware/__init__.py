"""Simulated heterogeneous platform: H100 GPU, Sapphire Rapids CPU, Open MPI.

The paper's testbed (Tables I and II) is modeled analytically: an occupancy
calculator and roofline-style kernel duration model for the GPU, a
strong-scaling throughput model for the CPU, per-operation serial cost models
for the host code paths Section VIII-A profiles, collective communication
models, an Open-MPI driver memory model (including the IPC leak the paper
footnotes), and a MICA-style instruction-mix model for Fig. 13.

All tunable constants live in :mod:`repro.hardware.calibration` with their
derivations from the paper's anchor measurements.
"""

from repro.hardware.specs import CPUSpec, GPUSpec, H100_SXM, SAPPHIRE_RAPIDS_8468
from repro.hardware.occupancy import occupancy
from repro.hardware.gpu import GPUModel, KernelMetrics
from repro.hardware.cpu import CPUModel
from repro.hardware.serial import SerialCostModel
from repro.hardware.opcode import OpcodeModel

__all__ = [
    "CPUSpec",
    "GPUSpec",
    "H100_SXM",
    "SAPPHIRE_RAPIDS_8468",
    "occupancy",
    "GPUModel",
    "KernelMetrics",
    "CPUModel",
    "SerialCostModel",
    "OpcodeModel",
]
