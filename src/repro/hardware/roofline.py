"""Roofline utilities: operational intensity vs attainable throughput.

Used by the microarchitecture analysis (Section VII-A) to classify kernels:
the H100's machine balance is ~10.1 FLOPs/byte, while the VIBE kernels
average 5.0-5.4, so every kernel is memory-bound — yet achieves low
bandwidth utilization because of sparse access patterns.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.specs import GPUSpec


@dataclass(frozen=True)
class RooflinePoint:
    """A kernel's placement on the roofline."""

    arithmetic_intensity: float
    attainable_flops: float
    memory_bound: bool

    def attainable_fraction_of_peak(self, peak_flops: float) -> float:
        return self.attainable_flops / peak_flops


def roofline_point(gpu: GPUSpec, arithmetic_intensity: float) -> RooflinePoint:
    """Attainable FP64 throughput at the given operational intensity."""
    if arithmetic_intensity < 0:
        raise ValueError("arithmetic intensity must be non-negative")
    bw_bound = arithmetic_intensity * gpu.memory_bw_bytes_per_s
    attainable = min(gpu.peak_fp64_flops, bw_bound)
    return RooflinePoint(
        arithmetic_intensity=arithmetic_intensity,
        attainable_flops=attainable,
        memory_bound=bw_bound < gpu.peak_fp64_flops,
    )
