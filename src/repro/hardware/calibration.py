"""Calibration constants for the platform models, with derivations.

Every tunable of the simulated platform lives here.  Values are anchored to
measurements the paper reports; where the paper gives only ratios (its
absolute seconds depend on an unreported cycle count) the constants are
chosen so the *per-cycle ratios* land on the paper's numbers:

* GPU 1-rank, mesh 128 / block 8 / 3 levels: serial:kernel ≈ 2659:122 ≈ 21.8
  (Section IV-E), with ``RedistributeAndRefineMeshBlocks`` the largest
  function bar (Fig. 11).
* GPU ranks-per-GPU sweep peaks near 12 ranks (Fig. 8): the divisible serial
  work (∝ 1/R) crosses the rank-linear collective/IPC contention term near
  R* = sqrt(divisible/contention) ≈ 12.
* ``RebuildBufferCache`` ≈ 13.3% of total runtime at 1 GPU - 1 rank,
  mesh 128 / block 16 / 3 levels (Section VIII-A).
* Kokkos kernel fraction at mesh 128 / block 16: 31.2% / 23.4% / 17.9% for
  1 / 2 / 3 AMR levels (Section IV-C).
* CPU strong scaling: near-ideal to 48 cores, serial plateau past 64
  (Fig. 7).

The raw per-operation magnitudes (microseconds per buffer, per block, per
launch) are in the range of published host-overhead measurements: a CUDA
kernel launch + completion costs ~5-10 us, a cudaMalloc tens of us, a
std::map string lookup ~0.1 us.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUCalibration:
    """Per-launch and saturation constants of the GPU duration model."""

    #: Host-side cost of one kernel launch incl. driver work (s).
    launch_overhead_s: float = 8e-6
    #: Device-side fence/sync after dependent launches (s).
    fence_overhead_s: float = 4e-6
    #: Warps in flight per SM needed to saturate HBM bandwidth.  Below this,
    #: throughput scales with available parallelism (latency-bound regime).
    saturation_warps_per_sm: int = 8
    #: Issue efficiency of useful instructions when only a fraction of each
    #: CUDA block's warps do real work (the 78%-wasted-instructions finding).
    wasted_warp_issue_penalty: float = 0.35


@dataclass(frozen=True)
class CPUCalibration:
    """CPU throughput model constants."""

    #: Dispatch cost of one data-parallel region (OpenMP fork/join, s).
    dispatch_overhead_s: float = 3e-6
    #: Fraction of peak DRAM bandwidth achievable on mesh kernels:
    #: block-sparse layouts plus cross-socket (NUMA) traffic on the
    #: two-socket node keep stencil streams well under STREAM rates.
    mem_efficiency: float = 0.35
    #: Fraction of per-core peak FP64 achieved in fully vectorized loops.
    #: Derivation: the H100 runs CalculateFluxes at ~6.5% of its FP64 peak
    #: (Table III: 135 ms for ~300 GFLOP); Fig. 1(b)'s ~3x GPU advantage at
    #: block 32 — close to the raw 34/9.5 TFLOP ratio — implies the CPU
    #: achieves a similar fraction of *its* peak, not the 40-60% of an
    #: idealized FMA stream.
    flop_efficiency: float = 0.07
    #: Scalar fallback throughput relative to vector lanes.
    scalar_penalty: float = 0.03
    #: Fraction of a kernel's worst-case DRAM traffic that actually reaches
    #: memory on the CPU: an 8^3..32^3 block (plus temporaries) is largely
    #: resident in the 2 MB per-core L2, unlike on the GPU.
    cache_traffic_factor: float = 0.3


@dataclass(frozen=True)
class SerialCalibration:
    """Per-operation host (serial-portion) costs, in seconds.

    These drive the function-level breakdown of Figs. 11/12.  The dominant
    terms at small block sizes are the per-buffer costs (hundreds of
    thousands of boundary buffers at mesh 128 / block 8 / 3 levels).
    """

    # --- communication setup (SendBoundBufs / SetBounds serial parts) ---
    per_buffer_pack_setup_s: float = 2.5e-6
    per_buffer_unpack_setup_s: float = 1.5e-6
    per_remote_message_s: float = 1.2e-6
    per_iprobe_s: float = 0.4e-6
    per_test_s: float = 0.3e-6
    # InitializeBufferCache: sort + shuffle of boundary keys, every send.
    per_key_sort_s: float = 0.10e-6  # x n log2 n
    per_key_shuffle_s: float = 0.05e-6

    # --- RedistributeAndRefineMeshBlocks -------------------------------
    #: cudaMalloc/free-scale cost per block created or destroyed.
    per_block_alloc_s: float = 60e-6
    #: Metadata/list update per moved block (data movement charged by bytes).
    per_block_move_s: float = 8e-6
    #: RebuildBufferCache: ViewsOfViews allocation + population per buffer.
    per_buffer_views_rebuild_s: float = 9e-6
    #: Host-to-device copy per buffer's metadata entry.
    per_buffer_h2d_s: float = 1.5e-6
    #: BuildTagMapAndBoundaryBuffers / SetMeshBlockNeighbors per link.
    per_neighbor_link_s: float = 1.0e-6

    # --- refinement tagging / tree update ------------------------------
    #: CheckAllRefinement scalar loop per block (host side).
    per_block_tag_s: float = 6e-6
    #: UpdateMeshBlockTree flag processing per block (runs on EVERY rank —
    #: this is the undividable Amdahl floor of Fig. 7's serial plateau).
    per_block_tree_update_s: float = 1.2e-6
    #: Tree surgery per refined/derefined block.
    per_tree_change_s: float = 10e-6

    # --- variable lookup (GetVariablesByFlag) --------------------------
    per_string_hash_s: float = 0.08e-6
    per_string_comparison_s: float = 0.02e-6

    # --- per-block task overheads ---------------------------------------
    #: Task-list management per block-task (hierarchical tasking, §II-C).
    per_task_s: float = 1.5e-6

    # --- data movement ---------------------------------------------------
    #: Host-mediated bandwidth for block redistribution copies (bytes/s).
    redistribution_bw_bytes_s: float = 25e9


@dataclass(frozen=True)
class CollectiveCalibration:
    """MPI collective and progress-engine costs.

    ``gpu_contention_per_block_rank_s`` is the rank-linear term that caps GPU
    rank scaling: with R ranks sharing a GPU, collective progress, CUDA IPC
    handling and driver serialization grow ~linearly in R and with the
    global block count.  Calibrated so the Fig. 8 optimum lands near
    R* ≈ 12 at mesh 128 / block 8 / 3 levels.
    """

    latency_s: float = 15e-6  # base collective latency
    per_log2_rank_s: float = 10e-6
    bandwidth_bytes_s: float = 20e9
    #: GPU-sharing contention: seconds per (total block x rank) per cycle.
    #: Derivation: divisible serial at 1 rank for mesh 128 / block 8 /
    #: 3 levels is ~6 s/cycle over ~8000 blocks; Fig. 8's optimum at
    #: R* = sqrt(divisible / (c * nblocks)) ≈ 12 gives c ≈ 5e-6.
    gpu_contention_per_block_rank_s: float = 5.0e-6
    #: CPU collectives are far cheaper (no device sync / IPC): Fig. 7 shows
    #: only a mild serial uptick at 72-96 ranks.
    cpu_contention_per_block_rank_s: float = 2.0e-7
    #: Extra latency for internode collectives/messages (Section V).
    internode_latency_s: float = 4e-6
    internode_bandwidth_bytes_s: float = 25e9


@dataclass(frozen=True)
class KokkosMemoryCalibration:
    """Device-resident fraction of the worst-case auxiliary footprint.

    Section VIII-B's pre-optimization formula is the worst-case per-block
    scratch; Parthenon's pack-at-a-time execution recycles part of it
    between kernel launches, so the resident footprint sits below the
    formula's total.  Calibrated so Fig. 10's 12-rank block-8 configuration
    lands near the paper's 75.5 GB while the paper's mesh-256 runs still
    fit in HBM.
    """

    aux_residency: float = 0.45


@dataclass(frozen=True)
class MPIMemoryCalibration:
    """Open MPI driver memory model (Fig. 10's pink region).

    The paper attributes most of the per-rank growth to MPI communication
    buffers and the Open MPI driver, noting a CUDA-IPC cache leak
    (open-mpi/ompi#12849) that grows usage over time.
    """

    #: CUDA context + Open MPI runtime per rank on the device (bytes).
    #: Derivation: Fig. 10's 12-rank total of 75.5 GB minus the ~42 GB of
    #: Kokkos allocations leaves ~33 GB of driver+buffer overhead across
    #: 12 ranks ≈ 2.2 GB/rank base (the IPC-leak bug inflates this).
    driver_base_bytes_per_rank: int = 2200 * 2**20
    #: Registration/IPC-cache overhead per remote peer per rank (bytes).
    per_peer_bytes: int = 24 * 2**20
    #: IPC cache leak per cycle per rank (bytes) — the footnoted bug.
    ipc_leak_bytes_per_cycle_per_rank: int = 6 * 2**20
    #: Multiplier on registered communication buffers (eager/rendezvous
    #: duplication inside the library).
    buffer_overhead_factor: float = 2.0


@dataclass(frozen=True)
class Calibration:
    """The full platform calibration bundle."""

    gpu: GPUCalibration = GPUCalibration()
    cpu: CPUCalibration = CPUCalibration()
    serial: SerialCalibration = SerialCalibration()
    collective: CollectiveCalibration = CollectiveCalibration()
    mpi_memory: MPIMemoryCalibration = MPIMemoryCalibration()
    kokkos_memory: KokkosMemoryCalibration = KokkosMemoryCalibration()


DEFAULT_CALIBRATION = Calibration()
