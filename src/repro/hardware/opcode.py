"""MICA-style CPU instruction-mix model (Fig. 13).

The paper uses Intel PIN + MICA to histogram opcodes for the *Total*,
*Serial* (code shared by CPU and GPU runs) and *Kernel* (data-parallel math)
portions.  Its findings, which this model reproduces from loop geometry:

* Kernel instructions are dominated by vector (SIMD) opcodes and constitute
  >99% of total instructions.
* The serial portion is 39-41% loads/stores (block-sparse data-structure
  management).
* The kernel vector share falls from ~63% to ~52% going from block size 32
  to 16 — shorter x1-lines leave more scalar remainder and relatively more
  address/loop scalar work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hardware.cpu import simd_efficiency

CATEGORIES = ("vector", "load", "store", "branch", "int_alu", "other")


@dataclass(frozen=True)
class InstructionMix:
    """Fractions per category (sum to 1) plus an absolute count."""

    fractions: Dict[str, float]
    total_instructions: float

    def fraction(self, category: str) -> float:
        return self.fractions[category]


class OpcodeModel:
    """Instruction-mix estimates from loop geometry and work counters.

    Weight constants are calibrated so the kernel vector share lands on the
    paper's Fig. 13 anchors: ~63% at block size 32 and ~52% at block size 16
    (the model gives 60.6% / 53.6%).
    """

    SIMD_WIDTH = 8
    #: Per-line scalar overhead absorbed into the vector-coverage estimate
    #: (loop setup, address arithmetic, masked prologue/epilogue).
    LINE_OVERHEAD_VALUES = 8.0
    #: Vector instruction bundles per vectorized value.
    VECTOR_WEIGHT = 5.0 / 8.0
    #: Scalar math instructions per unvectorized (remainder) value.
    SCALAR_MATH_WEIGHT = 0.05
    #: Scalar loop/address instructions per value of line overhead.
    LINE_OVERHEAD_WEIGHT = 2.2

    def vector_coverage(self, block_nx: int) -> float:
        """Fraction of values executed in full SIMD lanes on nx-long lines."""
        if block_nx < 1:
            raise ValueError(f"block_nx must be >= 1, got {block_nx}")
        full = (block_nx // self.SIMD_WIDTH) * self.SIMD_WIDTH
        return full / (block_nx + self.LINE_OVERHEAD_VALUES)

    def kernel_mix(self, block_nx: int, values: float) -> InstructionMix:
        """Mix of the data-parallel kernels for one configuration.

        ``values`` (cell-component updates) sets the absolute scale; the
        split follows the SIMD coverage of ``block_nx``-long lines.
        """
        ve = self.vector_coverage(block_nx)
        values = max(values, 1.0)
        vector_instr = ve * values * self.VECTOR_WEIGHT
        scalar_math = (1.0 - ve) * values * self.SCALAR_MATH_WEIGHT
        overhead = values * self.LINE_OVERHEAD_WEIGHT / block_nx
        loads = 0.32 * (vector_instr + scalar_math) + 0.3 * overhead
        stores = 0.12 * (vector_instr + scalar_math) + 0.1 * overhead
        branch = 0.25 * overhead + 0.02 * scalar_math
        int_alu = 0.35 * overhead + 0.6 * scalar_math
        other = 0.05 * (vector_instr + scalar_math)
        counts = {
            "vector": vector_instr,
            "load": loads,
            "store": stores,
            "branch": branch,
            "int_alu": int_alu,
            "other": other,
        }
        return self._normalize(counts)

    def serial_mix(self, serial_ops: float) -> InstructionMix:
        """Mix of the host serial portion: pointer-chasing block management.

        Loads + stores land at ~40% (the paper's 39-41%), with heavy branch
        and integer address arithmetic and essentially no vector work.
        """
        counts = {
            "vector": 0.01 * serial_ops,
            "load": 0.28 * serial_ops,
            "store": 0.12 * serial_ops,
            "branch": 0.17 * serial_ops,
            "int_alu": 0.30 * serial_ops,
            "other": 0.12 * serial_ops,
        }
        return self._normalize(counts)

    def total_mix(
        self, kernel: InstructionMix, serial: InstructionMix
    ) -> InstructionMix:
        """Combine kernel and serial mixes by instruction count."""
        counts = {
            c: kernel.fractions[c] * kernel.total_instructions
            + serial.fractions[c] * serial.total_instructions
            for c in CATEGORIES
        }
        return self._normalize(counts)

    @staticmethod
    def _normalize(counts: Dict[str, float]) -> InstructionMix:
        total = sum(counts.values())
        if total <= 0:
            raise ValueError("instruction counts must be positive")
        return InstructionMix(
            fractions={c: counts[c] / total for c in CATEGORIES},
            total_instructions=total,
        )
