"""CUDA occupancy calculation — the "SM Occ." column of Table III.

Occupancy is the ratio of active warps to the maximum warps an SM supports.
The paper finds register pressure to be the binding constraint in Parthenon's
kernels: CalculateFluxes at >100 registers/thread fits only four 128-thread
blocks per SM (16 of 64 warps ≈ 24%).  This module reproduces the standard
occupancy arithmetic (register, warp-slot and block-slot limits).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.specs import GPUSpec


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy calculation for one kernel configuration."""

    blocks_per_sm: int
    active_warps_per_sm: int
    occupancy: float
    limiter: str  # "registers" | "warps" | "blocks"


def occupancy(
    gpu: GPUSpec, registers_per_thread: int, threads_per_block: int
) -> OccupancyResult:
    """Active-warp occupancy for a kernel configuration on ``gpu``."""
    if threads_per_block < 1 or threads_per_block > gpu.max_threads_per_block:
        raise ValueError(
            f"threads_per_block must be in [1, {gpu.max_threads_per_block}], "
            f"got {threads_per_block}"
        )
    if registers_per_thread < 1:
        raise ValueError(f"registers_per_thread must be >= 1")
    warps_per_block = math.ceil(threads_per_block / gpu.warp_size)

    # Registers are allocated per warp in fixed-size chunks.
    regs_per_warp = registers_per_thread * gpu.warp_size
    unit = gpu.register_allocation_unit
    regs_per_warp = math.ceil(regs_per_warp / unit) * unit
    regs_per_block = regs_per_warp * warps_per_block

    by_registers = gpu.registers_per_sm // regs_per_block
    by_warps = gpu.max_warps_per_sm // warps_per_block
    by_blocks = gpu.max_blocks_per_sm

    blocks = min(by_registers, by_warps, by_blocks)
    if blocks == by_registers and by_registers <= min(by_warps, by_blocks):
        limiter = "registers"
    elif blocks == by_warps and by_warps <= by_blocks:
        limiter = "warps"
    else:
        limiter = "blocks"
    if blocks == 0:
        raise ValueError(
            f"kernel with {registers_per_thread} regs x {threads_per_block} "
            "threads does not fit on one SM"
        )
    active_warps = blocks * warps_per_block
    return OccupancyResult(
        blocks_per_sm=blocks,
        active_warps_per_sm=active_warps,
        occupancy=active_warps / gpu.max_warps_per_sm,
        limiter=limiter,
    )
