"""Plain-text rendering of the paper's figures and tables.

The benchmark harness prints these so ``pytest benchmarks/ --benchmark-only``
regenerates every figure/table as readable rows, mirroring what the paper
plots.  The ``render_campaign_*`` family consumes the persisted run
artifacts of a campaign directory (:mod:`repro.orchestration`) instead
of in-memory results, so figures regenerate incrementally from disk.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.core.microarch import MicroarchTable
from repro.core.sweeps import SweepPoint
from repro.driver.driver import RunResult


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width ASCII table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def fmt_fom(fom: float) -> str:
    return f"{fom:.3e}"


def render_sweep(
    series: Dict[str, List[SweepPoint]], x_name: str, title: str
) -> str:
    """A figure with several FOM-vs-x series (Figs. 4, 5, 6)."""
    xs = sorted({p.x for pts in series.values() for p in pts})
    headers = [x_name] + list(series)
    rows = []
    for x in xs:
        row: List[object] = [int(x) if float(x).is_integer() else x]
        for name in series:
            pt = next((p for p in series[name] if p.x == x), None)
            if pt is None:
                row.append("-")
            elif pt.oom:
                row.append("OOM")
            else:
                row.append(fmt_fom(pt.fom))
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_breakdown(result: RunResult, title: str, top: int = 12) -> str:
    """Per-function serial/kernel seconds (Figs. 11/12 style)."""
    headers = ["function", "serial_s", "kernel_s", "share_%"]
    total = result.wall_seconds
    rows = []
    for name, (serial, kernel) in list(result.function_breakdown.items())[:top]:
        share = 100.0 * (serial + kernel) / total if total else 0.0
        rows.append([name, f"{serial:.3f}", f"{kernel:.3f}", f"{share:.1f}"])
    return render_table(headers, rows, title=title)


def render_microarch(table: MicroarchTable, title: str) -> str:
    """Table III layout."""
    headers = [
        "Kernel",
        "Dur.(ms)",
        "SM Util.(%)",
        "SM Occ.(%)",
        "Warp Util.(%)",
        "BW Util.(%)",
        "Arith.Int.",
    ]
    rows = []
    for m in list(table.rows) + [table.total]:
        rows.append(
            [
                m.name,
                f"{m.duration_s * 1e3:.1f}",
                f"{m.sm_utilization * 100:.1f}",
                f"{m.sm_occupancy * 100:.1f}",
                f"{m.warp_utilization * 100:.1f}",
                f"{m.bw_utilization * 100:.1f}",
                f"{m.arithmetic_intensity:.1f}",
            ]
        )
    return render_table(headers, rows, title=title)


def render_campaign_summary(
    artifacts: Iterable[Mapping], title: str = "Campaign summary"
) -> str:
    """One row per persisted point artifact: the campaign's ledger.

    Every quantity shown is simulated (deterministic), so the same
    campaign always renders the same summary — the CI mini-sweep diffs
    this against a committed golden file.
    """
    headers = ["point", "status", "FOM", "wall_s", "kernel_%", "blocks"]
    rows: List[List[object]] = []
    for art in artifacts:
        label = art.get("label") or art.get("cache_key", "")[:12]
        if art.get("status") != "ok":
            err = art.get("error", {})
            rows.append([label, f"error:{err.get('type', '?')}", "-", "-", "-", "-"])
            continue
        timings = art["timings"]
        wall = timings["wall_seconds"]
        kfrac = 100.0 * timings["kernel_seconds"] / wall if wall else 0.0
        rows.append(
            [
                label,
                "OOM" if art.get("oom") else "ok",
                fmt_fom(art["fom"]),
                f"{wall:.3f}",
                f"{kfrac:.1f}",
                art["blocks"]["final"],
            ]
        )
    return render_table(headers, rows, title=title)


def render_campaign_sweep(
    artifacts: Iterable[Mapping], x_name: str, title: str
) -> str:
    """Regroup campaign artifacts labeled ``<series>/<axis>=<value>``
    into the FOM-vs-x figure layout (Figs. 4, 5, 6) — the artifact-backed
    twin of :func:`render_sweep`."""
    series: Dict[str, Dict[float, str]] = {}
    xs = set()
    for art in artifacts:
        label = art.get("label", "")
        name, _, axis_part = label.rpartition("/")
        try:
            x = float(axis_part.rsplit("=", 1)[1])
        except (IndexError, ValueError):
            name, x = label, 0.0
        name = name or label
        xs.add(x)
        if art.get("status") != "ok":
            cell = "ERR"
        elif art.get("oom"):
            cell = "OOM"
        else:
            cell = fmt_fom(art["fom"])
        series.setdefault(name, {})[x] = cell
    headers = [x_name] + list(series)
    rows = []
    for x in sorted(xs):
        row: List[object] = [int(x) if float(x).is_integer() else x]
        row += [series[name].get(x, "-") for name in series]
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_memory(result: RunResult, title: str) -> str:
    """Fig. 10 style: labeled GiB on the most-loaded device."""
    headers = ["component", "GiB"]
    rows = [
        [label, f"{nbytes / 2**30:.2f}"]
        for label, nbytes in result.memory_breakdown.items()
    ]
    rows.append(["total", f"{result.device_memory_peak / 2**30:.2f}"])
    return render_table(headers, rows, title=title)
