"""The characterization toolkit — the paper's primary contribution.

Everything needed to regenerate the paper's evaluation: the figure of merit
(Section III-A), parameter sweeps (Sections IV-A..IV-E and V), the Table III
microarchitecture builder, the Section VIII-B memory-footprint model, the
Fig. 13 opcode analysis, optimization ablations (Section VIII), and plain-
text rendering of every figure/table.
"""

from repro.core.fom import zone_cycles, zone_cycles_per_second
from repro.core.characterize import characterize
from repro.core.memory_footprint import (
    aux_memory_bytes_per_block,
    aux_memory_post_optimization,
    aux_memory_pre_optimization,
)

__all__ = [
    "zone_cycles",
    "zone_cycles_per_second",
    "characterize",
    "aux_memory_bytes_per_block",
    "aux_memory_pre_optimization",
    "aux_memory_post_optimization",
]
