"""Ablation harness for Section VIII's optimization recommendations.

Runs a configuration with each optimization enabled in isolation (and all
together) and reports the change in FOM, serial time, and device memory —
the design-choice studies DESIGN.md calls out.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from repro.core.characterize import characterize
from repro.driver.driver import RunResult
from repro.driver.execution import ExecutionConfig, OptimizationFlags
from repro.driver.params import SimulationParams

ABLATIONS: Dict[str, OptimizationFlags] = {
    "baseline": OptimizationFlags(),
    "integer-indexing": OptimizationFlags(integer_variable_indexing=True),
    "pooled-allocation": OptimizationFlags(pooled_block_allocation=True),
    "restructured-kernels": OptimizationFlags(restructured_kernels=True),
    "no-buffer-shuffle": OptimizationFlags(skip_buffer_shuffle=True),
    "parallel-host-tasks": OptimizationFlags(parallel_host_tasks=True),
    "no-packing": OptimizationFlags(disable_packing=True),
    "all": OptimizationFlags(
        integer_variable_indexing=True,
        pooled_block_allocation=True,
        restructured_kernels=True,
        skip_buffer_shuffle=True,
        parallel_host_tasks=True,
    ),
}


@dataclass
class AblationRow:
    """One optimization's effect relative to the baseline."""

    name: str
    result: RunResult
    fom_speedup: float
    serial_reduction: float  # fraction of baseline serial time removed
    memory_reduction_bytes: int


def run_ablations(
    params: SimulationParams,
    config: ExecutionConfig,
    ncycles: int = 3,
    which: List[str] = None,
) -> List[AblationRow]:
    """Run each ablation and compare against the baseline."""
    names = which or list(ABLATIONS)
    if "baseline" not in names:
        names = ["baseline"] + names
    results: Dict[str, RunResult] = {}
    for name in names:
        flags = ABLATIONS[name]
        results[name] = characterize(
            params, replace(config, optimizations=flags), ncycles
        )
    base = results["baseline"]
    rows = []
    for name in names:
        r = results[name]
        rows.append(
            AblationRow(
                name=name,
                result=r,
                fom_speedup=r.fom / base.fom if base.fom else 0.0,
                serial_reduction=(
                    1.0 - r.serial_seconds / base.serial_seconds
                    if base.serial_seconds
                    else 0.0
                ),
                memory_reduction_bytes=(
                    base.device_memory_peak - r.device_memory_peak
                ),
            )
        )
    return rows
