"""Automatic bottleneck analysis and optimization advice (Section VIII).

Given a :class:`RunResult`, computes where the time went, the Amdahl
ceiling of fixing each serial component, and which of the paper's
recommendations apply — turning the characterization into the actionable
advice the paper's Section VIII gives by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.report import render_table
from repro.driver.driver import RunResult

#: Functions whose serial time each recommendation primarily attacks.
RECOMMENDATION_TARGETS = {
    "pooled block allocation (§VIII-A)": ["RedistributeAndRefineMeshBlocks"],
    "parallel buffer-cache init (§VIII-A)": [
        "SendBoundBufs",
        "RedistributeAndRefineMeshBlocks",
    ],
    "integer variable indexing (§VIII-A)": [
        "CalculateFluxes",
        "FluxDivergence",
        "SendBoundBufs",
        "FillDerived",
    ],
    "more ranks per GPU (§IV-E)": ["*divisible-serial*"],
    "restructured 2D/3D kernels (§VIII-B)": ["*kernel-CalculateFluxes*"],
}


@dataclass
class Finding:
    """One bottleneck observation with its Amdahl ceiling."""

    component: str
    seconds: float
    share_of_total: float
    amdahl_speedup_if_removed: float
    advice: str


def analyze(result: RunResult, top: int = 6) -> List[Finding]:
    """Rank serial components by impact with the matching §VIII advice."""
    total = result.wall_seconds
    if total <= 0:
        raise ValueError("result carries no time")
    findings: List[Finding] = []
    for name, (serial, _kernel) in result.function_breakdown.items():
        if serial <= 0:
            continue
        advice = "increase rank concurrency (§IV-E)"
        if name == "RedistributeAndRefineMeshBlocks":
            advice = (
                "pool block allocations; parallelize RebuildBufferCache "
                "(§VIII-A)"
            )
        elif name == "SendBoundBufs":
            advice = (
                "drop/parallelize the buffer-key sort+shuffle; integer "
                "variable indexing (§VIII-A)"
            )
        elif name == "UpdateMeshBlockTree":
            advice = "undividable tree update: the Amdahl floor (§IV-D)"
        elif name == "Refinement::Tag":
            advice = "offload refinement tagging to the device (§VIII-A)"
        elif name in ("ReceiveBoundBufs", "SetBounds", "StartRecvBoundBufs"):
            advice = "overlap communication; raise ranks per GPU (§IV-E)"
        findings.append(
            Finding(
                component=name,
                seconds=serial,
                share_of_total=serial / total,
                amdahl_speedup_if_removed=total / max(total - serial, 1e-12),
                advice=advice,
            )
        )
    findings.sort(key=lambda f: f.seconds, reverse=True)
    return findings[:top]


def serial_fraction(result: RunResult) -> float:
    return result.serial_seconds / max(result.wall_seconds, 1e-12)


def max_rank_scaling_speedup(result: RunResult) -> float:
    """Amdahl bound of scaling ranks with the kernel time held fixed."""
    return result.wall_seconds / max(result.kernel_seconds, 1e-12)


def render_recommendations(result: RunResult) -> str:
    """Human-readable advisory report."""
    findings = analyze(result)
    rows = [
        [
            f.component,
            f"{f.seconds:.3f}",
            f"{f.share_of_total * 100:.1f}%",
            f"{f.amdahl_speedup_if_removed:.2f}x",
            f.advice,
        ]
        for f in findings
    ]
    header = (
        f"Bottleneck analysis for {result.config.describe()} — serial "
        f"fraction {serial_fraction(result) * 100:.1f}%, rank-scaling "
        f"Amdahl bound {max_rank_scaling_speedup(result):.1f}x"
    )
    return render_table(
        ["serial component", "seconds", "of total", "if removed", "recommendation"],
        rows,
        title=header,
    )
