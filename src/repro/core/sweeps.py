"""Parameter sweeps matching the paper's experiments.

Each sweep returns ``SweepPoint`` rows — one per configuration — carrying
the full :class:`RunResult`, ready for the benchmark harness to print as the
corresponding figure's series.  Cycle counts are small (the FOM is a steady
per-cycle rate) and configurable for quick runs.

Every point is a :class:`repro.api.RunSpec`: the ``*_specs`` builders
expose the same sweeps as spec lists for the parallel, resumable
campaign runner (:func:`repro.orchestration.run_campaign`), and the
classic ``*_sweep`` functions execute those specs inline.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.api import RunSpec, Simulation
from repro.driver.driver import RunResult
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams

#: Sweep axis name -> SimulationParams field it varies.
SWEEP_AXES = {
    "mesh": "mesh_size",
    "block": "block_size",
    "levels": "num_levels",
}


@dataclass
class SweepPoint:
    """One configuration's outcome within a sweep."""

    label: str
    x: float
    result: Optional[RunResult]  # None when the configuration went OOM
    oom: bool = False

    @property
    def fom(self) -> float:
        if self.result is None:
            return 0.0
        return self.result.fom


def _run_spec(spec: RunSpec) -> SweepPoint:
    result = Simulation(spec).run()
    x = float(spec.label.rsplit("=", 1)[1]) if "=" in spec.label else 0.0
    name = spec.label.rsplit("/", 1)[0]
    return SweepPoint(label=name, x=x, result=result, oom=result.oom)


GPU_1R = ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=1)
CPU_96R = ExecutionConfig(backend="cpu", cpu_ranks=96)


# ------------------------------------------------------------ spec builders


def axis_specs(
    base: SimulationParams,
    configs: Dict[str, ExecutionConfig],
    axis: str,
    values: Sequence[int],
    ncycles: int = 3,
    warmup: int = 2,
) -> List[RunSpec]:
    """Specs for one paper sweep: ``axis`` in :data:`SWEEP_AXES`, one
    point per (config, value).  Labels are ``<series>/<axis>=<value>``
    so campaign artifacts regroup into figure series."""
    if axis not in SWEEP_AXES:
        raise ValueError(
            f"unknown sweep axis {axis!r}; valid axes: "
            f"{', '.join(sorted(SWEEP_AXES))}"
        )
    field = SWEEP_AXES[axis]
    specs = []
    for value in values:
        params = replace(base, **{field: value})
        for name, config in configs.items():
            specs.append(
                RunSpec(
                    params=params,
                    config=config,
                    ncycles=ncycles,
                    warmup=warmup,
                    label=f"{name}/{axis}={value}",
                )
            )
    return specs


def grid_specs(
    base: SimulationParams,
    config: ExecutionConfig,
    mesh_sizes: Sequence[int],
    block_sizes: Sequence[int],
    ncycles: int = 3,
    warmup: int = 2,
) -> List[RunSpec]:
    """The mesh x block cartesian campaign (the CI mini-sweep shape)."""
    specs = []
    for mesh in mesh_sizes:
        for block in block_sizes:
            params = replace(base, mesh_size=mesh, block_size=block)
            specs.append(
                RunSpec(
                    params=params,
                    config=config,
                    ncycles=ncycles,
                    warmup=warmup,
                    label=f"mesh{mesh}-block{block}",
                )
            )
    return specs


def policy_specs(
    base: SimulationParams,
    config: ExecutionConfig,
    policies: Sequence[str] = ("first_derivative",),
    budgets: Sequence[int] = (),
    ncycles: int = 3,
    warmup: int = 2,
) -> List[RunSpec]:
    """The AMR-policy characterization campaign (ROADMAP item 3).

    One point per threshold ``policy`` name plus one ``block_budget``
    point per target in ``budgets`` — the paper's Fig. 6 axes (FOM,
    block count, ghost traffic, remesh cost) swept along the refinement
    policy instead of AMR depth.
    """
    specs = []
    for name in policies:
        params = replace(base, refinement_policy=name, block_budget=0)
        specs.append(
            RunSpec(
                params=params,
                config=config,
                ncycles=ncycles,
                warmup=warmup,
                label=f"policy={name}",
            )
        )
    for budget in budgets:
        params = replace(
            base, refinement_policy="block_budget", block_budget=budget
        )
        specs.append(
            RunSpec(
                params=params,
                config=config,
                ncycles=ncycles,
                warmup=warmup,
                label=f"policy=budget{budget}",
            )
        )
    return specs


def series_from_points(points: Sequence[SweepPoint]) -> Dict[str, List[SweepPoint]]:
    out: Dict[str, List[SweepPoint]] = {}
    for p in points:
        out.setdefault(p.label, []).append(p)
    return out


# -------------------------------------------------------- classic sweeps


def _axis_sweep(
    base: SimulationParams,
    configs: Dict[str, ExecutionConfig],
    axis: str,
    values: Sequence[int],
    ncycles: int,
) -> Dict[str, List[SweepPoint]]:
    out: Dict[str, List[SweepPoint]] = {name: [] for name in configs}
    for spec in axis_specs(base, configs, axis, values, ncycles=ncycles):
        point = _run_spec(spec)
        out[point.label].append(point)
    return out


def mesh_size_sweep(
    base: SimulationParams,
    configs: Dict[str, ExecutionConfig],
    mesh_sizes: Sequence[int] = (64, 96, 128, 160, 192, 256),
    ncycles: int = 3,
) -> Dict[str, List[SweepPoint]]:
    """Fig. 4: static scaling over mesh size (block 16, 3 levels)."""
    return _axis_sweep(base, configs, "mesh", mesh_sizes, ncycles)


def block_size_sweep(
    base: SimulationParams,
    configs: Dict[str, ExecutionConfig],
    block_sizes: Sequence[int] = (8, 16, 32),
    ncycles: int = 3,
) -> Dict[str, List[SweepPoint]]:
    """Fig. 5 (and Fig. 1b/1c): performance vs MeshBlockSize."""
    return _axis_sweep(base, configs, "block", block_sizes, ncycles)


def amr_level_sweep(
    base: SimulationParams,
    configs: Dict[str, ExecutionConfig],
    levels: Sequence[int] = (1, 2, 3),
    ncycles: int = 3,
) -> Dict[str, List[SweepPoint]]:
    """Fig. 6: performance vs #AMR Levels (mesh 128, block 16)."""
    return _axis_sweep(base, configs, "levels", levels, ncycles)


def cpu_rank_sweep(
    base: SimulationParams,
    ranks: Sequence[int] = (4, 8, 16, 24, 32, 48, 64, 72, 96),
    ncycles: int = 3,
) -> List[SweepPoint]:
    """Fig. 7: CPU strong scaling (total/kernel/serial in each result)."""
    out: List[SweepPoint] = []
    for r in ranks:
        config = ExecutionConfig(backend="cpu", cpu_ranks=r)
        spec = RunSpec(params=base, config=config, ncycles=ncycles)
        result = Simulation(spec).run()
        out.append(
            SweepPoint(label=f"CPU-{r}R", x=r, result=result, oom=result.oom)
        )
    return out


def gpu_rank_sweep(
    base: SimulationParams,
    ranks_per_gpu: Sequence[int] = (1, 2, 4, 6, 8, 12, 16, 24, 32),
    num_gpus: int = 1,
    ncycles: int = 3,
) -> List[SweepPoint]:
    """Fig. 8: FOM vs MPI ranks per GPU — OOM marks the memory wall."""
    out: List[SweepPoint] = []
    for r in ranks_per_gpu:
        config = ExecutionConfig(
            backend="gpu", num_gpus=num_gpus, ranks_per_gpu=r
        )
        spec = RunSpec(params=base, config=config, ncycles=ncycles)
        result = Simulation(spec).run()
        out.append(
            SweepPoint(
                label=f"{num_gpus}GPU-{r}R", x=r, result=result, oom=result.oom
            )
        )
    return out


def best_rank_gpu(
    base: SimulationParams,
    num_gpus: int = 1,
    candidates: Sequence[int] = (1, 2, 4, 6, 8, 12, 16),
    ncycles: int = 2,
) -> SweepPoint:
    """The paper's BestR configuration: the rank count maximizing FOM."""
    points = gpu_rank_sweep(
        base, ranks_per_gpu=candidates, num_gpus=num_gpus, ncycles=ncycles
    )
    viable = [p for p in points if not p.oom and p.result is not None]
    if not viable:
        return points[0]
    return max(viable, key=lambda p: p.fom)


def multinode_comparison(
    base: SimulationParams,
    nodes: Sequence[int] = (1, 2),
    ncycles: int = 2,
) -> Dict[str, List[SweepPoint]]:
    """Section V: two-node scaling, 1 rank/GPU and 1 rank/core."""
    out: Dict[str, List[SweepPoint]] = {"GPU": [], "CPU": []}
    for n in nodes:
        gpu = ExecutionConfig(
            backend="gpu", num_gpus=8, ranks_per_gpu=1, num_nodes=n
        )
        cpu = ExecutionConfig(backend="cpu", cpu_ranks=96, num_nodes=n)
        for name, config in (("GPU", gpu), ("CPU", cpu)):
            spec = RunSpec(params=base, config=config, ncycles=ncycles)
            result = Simulation(spec).run()
            out[name].append(
                SweepPoint(
                    label=f"{name}-{n}node", x=n, result=result, oom=result.oom
                )
            )
    return out
