"""Parameter sweeps matching the paper's experiments.

Each sweep returns ``SweepPoint`` rows — one per configuration — carrying
the full :class:`RunResult`, ready for the benchmark harness to print as the
corresponding figure's series.  Cycle counts are small (the FOM is a steady
per-cycle rate) and configurable for quick runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.core.characterize import characterize
from repro.driver.driver import RunResult
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams


@dataclass
class SweepPoint:
    """One configuration's outcome within a sweep."""

    label: str
    x: float
    result: Optional[RunResult]  # None when the configuration went OOM
    oom: bool = False

    @property
    def fom(self) -> float:
        if self.result is None:
            return 0.0
        return self.result.fom


def _run(params: SimulationParams, config: ExecutionConfig, ncycles: int):
    result = characterize(params, config, ncycles)
    return result, result.oom


GPU_1R = ExecutionConfig(backend="gpu", num_gpus=1, ranks_per_gpu=1)
CPU_96R = ExecutionConfig(backend="cpu", cpu_ranks=96)


def mesh_size_sweep(
    base: SimulationParams,
    configs: Dict[str, ExecutionConfig],
    mesh_sizes: Sequence[int] = (64, 96, 128, 160, 192, 256),
    ncycles: int = 3,
) -> Dict[str, List[SweepPoint]]:
    """Fig. 4: static scaling over mesh size (block 16, 3 levels)."""
    out: Dict[str, List[SweepPoint]] = {name: [] for name in configs}
    for mesh in mesh_sizes:
        params = replace(base, mesh_size=mesh)
        for name, config in configs.items():
            result, oom = _run(params, config, ncycles)
            out[name].append(
                SweepPoint(label=name, x=mesh, result=result, oom=oom)
            )
    return out


def block_size_sweep(
    base: SimulationParams,
    configs: Dict[str, ExecutionConfig],
    block_sizes: Sequence[int] = (8, 16, 32),
    ncycles: int = 3,
) -> Dict[str, List[SweepPoint]]:
    """Fig. 5 (and Fig. 1b/1c): performance vs MeshBlockSize."""
    out: Dict[str, List[SweepPoint]] = {name: [] for name in configs}
    for block in block_sizes:
        params = replace(base, block_size=block)
        for name, config in configs.items():
            result, oom = _run(params, config, ncycles)
            out[name].append(
                SweepPoint(label=name, x=block, result=result, oom=oom)
            )
    return out


def amr_level_sweep(
    base: SimulationParams,
    configs: Dict[str, ExecutionConfig],
    levels: Sequence[int] = (1, 2, 3),
    ncycles: int = 3,
) -> Dict[str, List[SweepPoint]]:
    """Fig. 6: performance vs #AMR Levels (mesh 128, block 16)."""
    out: Dict[str, List[SweepPoint]] = {name: [] for name in configs}
    for lvl in levels:
        params = replace(base, num_levels=lvl)
        for name, config in configs.items():
            result, oom = _run(params, config, ncycles)
            out[name].append(
                SweepPoint(label=name, x=lvl, result=result, oom=oom)
            )
    return out


def cpu_rank_sweep(
    base: SimulationParams,
    ranks: Sequence[int] = (4, 8, 16, 24, 32, 48, 64, 72, 96),
    ncycles: int = 3,
) -> List[SweepPoint]:
    """Fig. 7: CPU strong scaling (total/kernel/serial in each result)."""
    out: List[SweepPoint] = []
    for r in ranks:
        config = ExecutionConfig(backend="cpu", cpu_ranks=r)
        result, oom = _run(base, config, ncycles)
        out.append(SweepPoint(label=f"CPU-{r}R", x=r, result=result, oom=oom))
    return out


def gpu_rank_sweep(
    base: SimulationParams,
    ranks_per_gpu: Sequence[int] = (1, 2, 4, 6, 8, 12, 16, 24, 32),
    num_gpus: int = 1,
    ncycles: int = 3,
) -> List[SweepPoint]:
    """Fig. 8: FOM vs MPI ranks per GPU — OOM marks the memory wall."""
    out: List[SweepPoint] = []
    for r in ranks_per_gpu:
        config = ExecutionConfig(
            backend="gpu", num_gpus=num_gpus, ranks_per_gpu=r
        )
        result, oom = _run(base, config, ncycles)
        out.append(
            SweepPoint(label=f"{num_gpus}GPU-{r}R", x=r, result=result, oom=oom)
        )
    return out


def best_rank_gpu(
    base: SimulationParams,
    num_gpus: int = 1,
    candidates: Sequence[int] = (1, 2, 4, 6, 8, 12, 16),
    ncycles: int = 2,
) -> SweepPoint:
    """The paper's BestR configuration: the rank count maximizing FOM."""
    points = gpu_rank_sweep(
        base, ranks_per_gpu=candidates, num_gpus=num_gpus, ncycles=ncycles
    )
    viable = [p for p in points if not p.oom and p.result is not None]
    if not viable:
        return points[0]
    return max(viable, key=lambda p: p.fom)


def multinode_comparison(
    base: SimulationParams,
    nodes: Sequence[int] = (1, 2),
    ncycles: int = 2,
) -> Dict[str, List[SweepPoint]]:
    """Section V: two-node scaling, 1 rank/GPU and 1 rank/core."""
    out: Dict[str, List[SweepPoint]] = {"GPU": [], "CPU": []}
    for n in nodes:
        gpu = ExecutionConfig(
            backend="gpu", num_gpus=8, ranks_per_gpu=1, num_nodes=n
        )
        cpu = ExecutionConfig(backend="cpu", cpu_ranks=96, num_nodes=n)
        for name, config in (("GPU", gpu), ("CPU", cpu)):
            result, oom = _run(base, config, ncycles)
            out[name].append(
                SweepPoint(label=f"{name}-{n}node", x=n, result=result, oom=oom)
            )
    return out
