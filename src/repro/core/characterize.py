"""One-call characterization runs, and ratio helpers for the paper's text.

``characterize`` builds a driver, runs N cycles, and returns the
:class:`~repro.driver.driver.RunResult` with everything the benchmarks
print.  The helpers compute the derived quantities the paper's prose quotes
(communication-to-computation ratios, growth factors between
configurations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.driver.driver import ParthenonDriver, RunResult
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams


def characterize(
    params: SimulationParams,
    config: ExecutionConfig,
    ncycles: int = 4,
    warmup: int = 2,
    initial_conditions: Optional[Callable] = None,
) -> RunResult:
    """Run one configuration on the simulated platform and report.

    ``warmup`` cycles develop the refinement front before measurement so
    the reported per-cycle rates reflect the steady-state block population.
    """
    if ncycles < 1:
        raise ValueError(f"ncycles must be >= 1, got {ncycles}")
    driver = ParthenonDriver(
        params, config, initial_conditions=initial_conditions
    )
    return driver.run(ncycles, warmup=warmup)


def comm_to_comp_ratio(result: RunResult) -> float:
    """Communicated cells per cell update (Section IV-B's 10.9x metric)."""
    if result.cell_updates == 0:
        return float("inf")
    return result.cells_communicated / result.cell_updates


def growth_factor(base: RunResult, other: RunResult, attr: str) -> float:
    """``other.attr / base.attr`` — the paper's "grows by N x" statements."""
    b = getattr(base, attr)
    o = getattr(other, attr)
    if b == 0:
        raise ValueError(f"base {attr} is zero")
    return o / b


def kernel_fraction(result: RunResult) -> float:
    """Fraction of wall time inside Kokkos kernels (Section IV-C's
    31.2% / 23.4% / 17.9% series)."""
    if result.wall_seconds == 0:
        return 0.0
    return result.kernel_seconds / result.wall_seconds
