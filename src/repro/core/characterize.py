"""One-call characterization runs, and ratio helpers for the paper's text.

The run entry point moved to :mod:`repro.api` (``Simulation`` /
``RunSpec``); :func:`characterize` remains as a thin deprecated shim.
The ratio helpers compute the derived quantities the paper's prose
quotes (communication-to-computation ratios, growth factors between
configurations) and accept either an in-memory
:class:`~repro.driver.driver.RunResult` or a campaign run-artifact dict
(:mod:`repro.orchestration.artifacts`), so figures regenerate from a
campaign directory without re-running anything.
"""

from __future__ import annotations

import warnings
from typing import Callable, Mapping, Optional, Union

from repro.driver.driver import RunResult
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams

ResultLike = Union[RunResult, Mapping]

#: artifact paths for each RunResult attribute the helpers read
_ARTIFACT_PATHS = {
    "fom": ("fom",),
    "cell_updates": ("communication", "cell_updates"),
    "cells_communicated": ("communication", "cells_communicated"),
    "remote_messages": ("communication", "remote_messages"),
    "wall_seconds": ("timings", "wall_seconds"),
    "kernel_seconds": ("timings", "kernel_seconds"),
    "serial_seconds": ("timings", "serial_seconds"),
    "zone_cycles": ("zone_cycles",),
    "cycles": ("cycles",),
    "device_memory_peak": ("memory", "device_peak_bytes"),
    "final_blocks": ("blocks", "final"),
    "max_blocks": ("blocks", "max"),
}


def metric(result: ResultLike, attr: str):
    """Read one metric off a :class:`RunResult` *or* a run-artifact dict."""
    if isinstance(result, Mapping):
        node = result
        for step in _ARTIFACT_PATHS[attr]:
            node = node[step]
        return node
    return getattr(result, attr)


def characterize(
    params: SimulationParams,
    config: ExecutionConfig,
    ncycles: int = 4,
    warmup: int = 2,
    initial_conditions: Optional[Callable] = None,
) -> RunResult:
    """Deprecated shim: use :class:`repro.api.Simulation` instead.

    ``Simulation(RunSpec(params=..., config=..., ncycles=..., warmup=...))
    .run()`` is the supported spelling; this wrapper survives only so
    pre-campaign scripts keep working.
    """
    warnings.warn(
        "repro.core.characterize.characterize() is deprecated; build a "
        "repro.api.RunSpec and call repro.api.Simulation(spec).run()",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import RunSpec, Simulation

    if ncycles < 1:
        raise ValueError(f"ncycles must be >= 1, got {ncycles}")
    spec = RunSpec(params=params, config=config, ncycles=ncycles, warmup=warmup)
    return Simulation(spec, initial_conditions=initial_conditions).run()


def comm_to_comp_ratio(result: ResultLike) -> float:
    """Communicated cells per cell update (Section IV-B's 10.9x metric)."""
    if metric(result, "cell_updates") == 0:
        return float("inf")
    return metric(result, "cells_communicated") / metric(result, "cell_updates")


def growth_factor(base: ResultLike, other: ResultLike, attr: str) -> float:
    """``other.attr / base.attr`` — the paper's "grows by N x" statements."""
    b = metric(base, attr)
    o = metric(other, attr)
    if b == 0:
        raise ValueError(f"base {attr} is zero")
    return o / b


def kernel_fraction(result: ResultLike) -> float:
    """Fraction of wall time inside Kokkos kernels (Section IV-C's
    31.2% / 23.4% / 17.9% series)."""
    if metric(result, "wall_seconds") == 0:
        return 0.0
    return metric(result, "kernel_seconds") / metric(result, "wall_seconds")
