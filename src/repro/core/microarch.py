"""Table III builder: per-kernel GPU microarchitecture analysis.

Aggregates a run's kernel launches (with launch counts) through the GPU
model into the Nsight-Compute-style rows the paper reports: duration, SM
utilization, SM occupancy, warp utilization, DRAM bandwidth utilization and
arithmetic intensity, for the N most time-consuming kernels, plus the
duration-weighted Total row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.hardware.gpu import GPUModel, KernelMetrics
from repro.kokkos.kernel import KernelLaunch


@dataclass
class MicroarchTable:
    """Table III: per-kernel rows plus the weighted total."""

    rows: List[KernelMetrics]
    total: KernelMetrics


def build_microarch_table(
    launch_records: Sequence[Tuple[KernelLaunch, int]],
    gpu_model: GPUModel,
    top_n: int = 10,
    per_cycle_of: int = 1,
) -> MicroarchTable:
    """Aggregate launch records into the Table III layout.

    ``launch_records`` are (launch, count) pairs from a driver run;
    ``per_cycle_of`` divides durations so the table reports per-cycle kernel
    time like the paper ("CUDA kernel time during a single cycle").
    """
    if per_cycle_of < 1:
        raise ValueError(f"per_cycle_of must be >= 1, got {per_cycle_of}")
    acc: Dict[str, List[float]] = {}
    for launch, count in launch_records:
        m = gpu_model.kernel_metrics(launch)
        d = m.duration_s * count
        if m.name not in acc:
            acc[m.name] = [0.0] * 6
        a = acc[m.name]
        a[0] += d
        a[1] += m.sm_utilization * d
        a[2] += m.sm_occupancy * d
        a[3] += m.warp_utilization * d
        a[4] += m.bw_utilization * d
        a[5] += m.arithmetic_intensity * d

    rows = []
    for name, a in acc.items():
        d = a[0]
        rows.append(
            KernelMetrics(
                name=name,
                duration_s=d / per_cycle_of,
                sm_utilization=a[1] / d,
                sm_occupancy=a[2] / d,
                warp_utilization=a[3] / d,
                bw_utilization=a[4] / d,
                arithmetic_intensity=a[5] / d,
            )
        )
    rows.sort(key=lambda m: m.duration_s, reverse=True)
    rows = rows[:top_n]

    total_d = sum(m.duration_s for m in rows)
    if total_d <= 0:
        raise ValueError("no kernel time recorded")
    total = KernelMetrics(
        name="Total",
        duration_s=total_d,
        sm_utilization=sum(m.sm_utilization * m.duration_s for m in rows) / total_d,
        sm_occupancy=sum(m.sm_occupancy * m.duration_s for m in rows) / total_d,
        warp_utilization=sum(m.warp_utilization * m.duration_s for m in rows)
        / total_d,
        bw_utilization=sum(m.bw_utilization * m.duration_s for m in rows)
        / total_d,
        arithmetic_intensity=sum(
            m.arithmetic_intensity * m.duration_s for m in rows
        )
        / total_d,
    )
    return MicroarchTable(rows=rows, total=total)
