"""The figure of merit: zone-cycles per second (Section III-A).

``zone-cycles = N_blocks x B_x x B_y x B_z`` summed over all simulation
cycles — i.e. total cell updates — divided by wall-clock seconds.  Higher is
better; this is the metric on every performance figure's Y axis.
"""

from __future__ import annotations

from typing import Sequence, Tuple


def zone_cycles(
    blocks_per_cycle: Sequence[int], block_size: Tuple[int, int, int]
) -> int:
    """Total zone-cycles over a run.

    ``blocks_per_cycle`` holds the block count of each executed cycle (the
    mesh evolves, so counts differ cycle to cycle).
    """
    per_block = block_size[0] * block_size[1] * block_size[2]
    if per_block <= 0:
        raise ValueError(f"invalid block size {block_size}")
    return per_block * sum(blocks_per_cycle)


def zone_cycles_per_second(total_zone_cycles: int, wall_seconds: float) -> float:
    """The FOM itself."""
    if wall_seconds <= 0:
        raise ValueError(f"wall_seconds must be positive, got {wall_seconds}")
    return total_zone_cycles / wall_seconds
