"""Section VIII-B's auxiliary-memory model, exactly as the paper states it.

Pre-optimization, the 3D Kokkos kernels allocate full-volume intermediate
buffers per MeshBlock::

    #MeshBlocks x B x 6 x (nx1 + 2 ng)^dim x (3 + num_scalar)

After restructuring the kernels to 2D (or lower-d) loops, the buffers shrink
to per-ThreadBlock slices::

    #ThreadBlocks x B x 6 x (nx1 + 2 ng)^d x (3 + num_scalar)

with ``d`` the reduced loop dimensionality.  The paper's worked example
(``num_scalar = 8``, ``nx1 = 8``, ``ng = 4``, ``B = 8``, 1024 thread blocks,
``d = 2``) gives 8.858 GB → 0.138 GB; the tests pin those numbers.
"""

from __future__ import annotations


def aux_memory_bytes_per_block(
    nx1: int,
    ng: int,
    num_scalar: int,
    dim: int = 3,
    bytes_per_value: int = 8,
) -> int:
    """Auxiliary bytes one MeshBlock's intermediate buffers occupy."""
    if nx1 < 1 or ng < 0 or num_scalar < 0 or dim < 1:
        raise ValueError("invalid geometry for the aux-memory model")
    return (
        bytes_per_value
        * 6
        * (nx1 + 2 * ng) ** dim
        * (3 + num_scalar)
    )


def aux_memory_pre_optimization(
    num_blocks: int,
    nx1: int,
    ng: int,
    num_scalar: int,
    dim: int = 3,
    bytes_per_value: int = 8,
) -> int:
    """Total auxiliary memory before kernel restructuring (per-MeshBlock)."""
    if num_blocks < 0:
        raise ValueError(f"num_blocks must be >= 0, got {num_blocks}")
    return num_blocks * aux_memory_bytes_per_block(
        nx1, ng, num_scalar, dim, bytes_per_value
    )


def aux_memory_post_optimization(
    num_thread_blocks: int,
    nx1: int,
    ng: int,
    num_scalar: int,
    reduced_dim: int = 2,
    bytes_per_value: int = 8,
) -> int:
    """Total auxiliary memory after restructuring (per-ThreadBlock slices)."""
    if num_thread_blocks < 0:
        raise ValueError(
            f"num_thread_blocks must be >= 0, got {num_thread_blocks}"
        )
    return num_thread_blocks * aux_memory_bytes_per_block(
        nx1, ng, num_scalar, reduced_dim, bytes_per_value
    )
