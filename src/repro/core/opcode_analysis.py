"""Fig. 13 generator: CPU instruction-opcode distribution.

Builds Total / Serial / Kernel instruction mixes for a run configuration
using the MICA-style model: kernel instructions scale with cell-component
updates at the configuration's block size; serial instructions scale with
the serial host work the run measured.  Reproduces the paper's three
findings: kernel instructions >99% of total, serial 39-41% loads/stores,
vector share dropping from ~63% to ~52% between block sizes 32 and 16.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.driver.driver import RunResult
from repro.hardware.opcode import InstructionMix, OpcodeModel

#: Host scalar instruction throughput used to convert measured serial
#: wall seconds into per-rank instruction counts (pointer-chasing block
#: management runs well under 1 IPC at 3.1 GHz).
SERIAL_INSTRUCTIONS_PER_SECOND = 1.5e9

#: Instruction-equivalents per cell-component update per dimension: WENO5
#: smoothness indicators + candidate stencils + HLL plus the supporting
#: kernels come to ~280 instructions per component per direction sweep.
OPS_PER_COMPONENT_SWEEP = 280.0


@dataclass
class OpcodeBreakdown:
    """The three bars of one Fig. 13 group."""

    total: InstructionMix
    serial: InstructionMix
    kernel: InstructionMix

    @property
    def kernel_instruction_share(self) -> float:
        """Kernel instructions / total instructions (the paper's >99%)."""
        return (
            self.kernel.total_instructions / self.total.total_instructions
        )


def opcode_breakdown(
    result: RunResult, model: OpcodeModel = OpcodeModel()
) -> OpcodeBreakdown:
    """Instruction mixes for one run."""
    block_nx = result.params.block_size
    ncomp = result.params.ncomp
    # Kernel instruction stream: one sweep per dimension per component, at
    # the full reconstruction+Riemann instruction cost.
    values = max(
        result.cell_updates
        * ncomp
        * result.params.ndim
        * OPS_PER_COMPONENT_SWEEP,
        1.0,
    )
    kernel = model.kernel_mix(block_nx, float(values))
    # Serial stream: the measured per-rank serial wall time, executed by
    # every rank.
    serial_ops = max(
        result.serial_seconds
        * result.config.total_ranks
        * SERIAL_INSTRUCTIONS_PER_SECOND,
        1.0,
    )
    serial = model.serial_mix(serial_ops)
    total = model.total_mix(kernel, serial)
    return OpcodeBreakdown(total=total, serial=serial, kernel=kernel)
