"""Render a :class:`Trace` for machines (golden files, Perfetto) or
humans (summary tables), and diff two canonical traces.

Canonical export is the regression currency: a schema-versioned JSON
document with sorted keys, 2-space indentation and a trailing newline.
Every value in it is a simulated quantity, so re-running the same deck
reproduces the document *byte for byte* — ``tests/golden/`` commits
these and CI diffs them on every push.

Chrome export targets the ``trace_event`` format (chrome://tracing,
Perfetto): complete ``"X"`` events, host serial work on tid 1 and
device kernels on tid 2, timestamps in simulated microseconds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.observability.trace import Span, Trace

#: Canonical document identity; see DESIGN §8 for the update policy.
#: v2: ``meta`` gained ``kernel_backend`` — the effective engine the
#: numeric packed kernels ran on (the backend-registry tentpole).
#: v3: ``meta`` gained ``num_shards`` (always) and, for sharded runs
#: only, a ``shards`` section with the shard topology and per-shard
#: stage wall-clock — the canonical document's sole nondeterministic
#: field (DESIGN §12); golden comparisons strip it.
#: v4: ``meta`` gained ``refinement_policy`` (always) and
#: ``block_budget`` (budget-policy runs only); ``metrics`` gained the
#: per-cycle refinement counters (``refine_flags``, ``derefine_flags``,
#: ``derefine_blocked_gap``) and the ``refinement_indicator_max`` gauge
#: — the policy-registry tentpole (DESIGN §14).
CANONICAL_SCHEMA = "repro.trace"
CANONICAL_SCHEMA_VERSION = 4


# ----------------------------------------------------------- canonical


def _span_to_dict(span: Span) -> dict:
    doc: dict = {
        "cat": span.cat,
        "cycle": span.cycle,
        "dur": span.dur,
        "name": span.name,
        "t0": span.t0,
    }
    if span.meta:
        doc["meta"] = dict(span.meta)
    if span.children:
        doc["children"] = [_span_to_dict(c) for c in span.children]
    return doc


def to_canonical_dict(trace: Trace) -> dict:
    """The canonical document as a plain dict (pre-serialization)."""
    return {
        "schema": CANONICAL_SCHEMA,
        "schema_version": CANONICAL_SCHEMA_VERSION,
        "meta": dict(trace.meta),
        "total_seconds": trace.total_seconds,
        "regions": trace.region_totals(),
        "kernels": trace.kernel_totals(),
        "metrics": dict(trace.metrics),
        "spans": [_span_to_dict(s) for s in trace.spans],
    }


def to_canonical_json(trace: Trace) -> str:
    """Byte-exact serialization: sorted keys, indent 2, newline-final."""
    return (
        json.dumps(to_canonical_dict(trace), sort_keys=True, indent=2) + "\n"
    )


# -------------------------------------------------------------- chrome


def to_chrome_trace(trace: Trace) -> dict:
    """Chrome ``trace_event`` JSON of the span tree.

    Region and serial spans share the host lane (tid 1); kernel spans
    get the device lane (tid 2) — the Nsight-Systems-style two-track
    view of the run.  Nesting on a lane follows from the timestamps.
    """
    events: List[dict] = []
    for span in trace.walk():
        args: dict = {"cycle": span.cycle}
        args.update(span.meta)
        events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": span.t0 * 1e6,
                "dur": span.dur * 1e6,
                "pid": 1,
                "tid": 2 if span.cat == "kernel" else 1,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema_version": CANONICAL_SCHEMA_VERSION,
            "source": "repro simulated platform",
            **{k: v for k, v in trace.meta.items()},
        },
    }


# ---------------------------------------------------------------- diff


@dataclass
class RegionDelta:
    """One region's total-time difference between two traces."""

    name: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def rel(self) -> float:
        """Relative change, against the larger side (symmetric)."""
        base = max(abs(self.a), abs(self.b))
        return self.delta / base if base > 0 else 0.0


def _region_totals_of(doc: Mapping) -> Dict[str, float]:
    return {
        name: times["serial"] + times["kernel"]
        for name, times in doc.get("regions", {}).items()
    }


def diff_region_totals(
    doc_a: Mapping, doc_b: Mapping
) -> List[RegionDelta]:
    """Per-region total-time deltas between two canonical documents."""
    for doc, label in ((doc_a, "A"), (doc_b, "B")):
        if doc.get("schema") != CANONICAL_SCHEMA:
            raise ValueError(
                f"trace {label} is not a canonical repro.trace document "
                f"(schema={doc.get('schema')!r})"
            )
    totals_a = _region_totals_of(doc_a)
    totals_b = _region_totals_of(doc_b)
    return [
        RegionDelta(name, totals_a.get(name, 0.0), totals_b.get(name, 0.0))
        for name in sorted(set(totals_a) | set(totals_b))
    ]


def render_trace_diff(
    deltas: List[RegionDelta], tolerance: float, title: str = "Trace diff"
) -> str:
    """ASCII diff table; regions beyond ``tolerance`` are flagged."""
    from repro.core.report import render_table

    rows = []
    for d in deltas:
        flag = "!" if abs(d.rel) > tolerance else ""
        rows.append(
            [
                d.name,
                f"{d.a:.6f}",
                f"{d.b:.6f}",
                f"{d.delta:+.6f}",
                f"{d.rel * 100:+.2f}%",
                flag,
            ]
        )
    return render_table(
        ["region", "A_s", "B_s", "delta_s", "rel", ">tol"], rows, title=title
    )


def within_tolerance(deltas: List[RegionDelta], tolerance: float) -> bool:
    return all(abs(d.rel) <= tolerance for d in deltas)


# ------------------------------------------------------------- summary


def render_trace_summary(trace_doc: Mapping, top: int = 12) -> str:
    """Human summary of a canonical document: regions, kernels, counters."""
    from repro.core.report import render_table

    total = trace_doc.get("total_seconds", 0.0)
    region_rows = []
    regions = trace_doc.get("regions", {})
    ranked = sorted(
        regions.items(),
        key=lambda kv: kv[1]["serial"] + kv[1]["kernel"],
        reverse=True,
    )
    for name, times in ranked[:top]:
        t = times["serial"] + times["kernel"]
        share = 100.0 * t / total if total else 0.0
        region_rows.append(
            [name, f"{times['serial']:.4f}", f"{times['kernel']:.4f}",
             f"{share:.1f}"]
        )
    parts = [
        f"trace: {total:.4f} simulated seconds, "
        f"schema v{trace_doc.get('schema_version')}",
        "",
        render_table(
            ["region", "serial_s", "kernel_s", "share_%"],
            region_rows,
            title="Per-region breakdown",
        ),
    ]
    kernels = trace_doc.get("kernels", {})
    if kernels:
        ranked_k = sorted(kernels.items(), key=lambda kv: kv[1], reverse=True)
        parts += [
            "",
            render_table(
                ["kernel", "seconds"],
                [[n, f"{s:.4f}"] for n, s in ranked_k[:top]],
                title="Top kernels",
            ),
        ]
    counters = trace_doc.get("metrics", {}).get("counters", {})
    if counters:
        parts += [
            "",
            render_table(
                ["counter", "value"],
                [[n, v] for n, v in sorted(counters.items())],
                title="Counters",
            ),
        ]
    return "\n".join(parts)
