"""Structured tracing and metrics over the simulated clock.

The characterization study's core artifacts are *time breakdowns* —
per-function serial/kernel splits (Figs. 7/9/11/12) and per-kernel
duration tables (Table III).  This package turns those from flat
accumulations into first-class, exportable, diffable objects:

* :class:`TraceRecorder` builds a nested span tree from the
  :class:`repro.kokkos.profiler.Profiler`'s region push/pop and
  serial/kernel charges (the Kokkos-Tools connector pattern);
* :mod:`repro.observability.exporters` renders a :class:`Trace` as a
  Chrome ``trace_event`` JSON (Perfetto-loadable), as a canonical
  schema-versioned JSON suitable for byte-exact golden files, or as a
  human summary, and diffs two canonical traces region by region;
* :class:`MetricsRegistry` counts framework events (kernel launches,
  ghost bytes, remesh events, pack rebuilds) with per-cycle snapshots
  and an associative/commutative merge for campaign aggregation.

Tracing is zero-cost-when-off: the profiler holds a shared
:data:`NULL_RECORDER` unless a real recorder is attached, and nothing
about the simulated clock depends on whether spans are retained (the
profiler-invariance test pins this to 0 ULP).
"""

from repro.observability.metrics import Histogram, MetricsRegistry
from repro.observability.trace import (
    NULL_RECORDER,
    NullRecorder,
    Span,
    Trace,
    TraceError,
    TraceRecorder,
)
from repro.observability.exporters import (
    CANONICAL_SCHEMA,
    CANONICAL_SCHEMA_VERSION,
    RegionDelta,
    diff_region_totals,
    render_trace_diff,
    to_canonical_dict,
    to_canonical_json,
    to_chrome_trace,
)

__all__ = [
    "CANONICAL_SCHEMA",
    "CANONICAL_SCHEMA_VERSION",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "RegionDelta",
    "Span",
    "Trace",
    "TraceError",
    "TraceRecorder",
    "diff_region_totals",
    "render_trace_diff",
    "to_canonical_dict",
    "to_canonical_json",
    "to_chrome_trace",
]
