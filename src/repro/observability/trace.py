"""The span tree: what one run *did*, on the simulated timeline.

A :class:`TraceRecorder` listens to the profiler's three event sources —
region push/pop, serial charges, kernel charges — and assembles them
into nested :class:`Span` objects.  Region spans open at the simulated
time of entry and close at exit; every charge becomes a zero-gap leaf
span under the innermost open region.  Because the simulated clock only
advances through charges, the resulting tree tiles the timeline exactly:
the sum of top-level span durations equals the profiler's wall clock
(a property test pins this).

The :data:`NULL_RECORDER` singleton implements the same interface as a
set of no-ops.  It is the profiler's default, so an untraced run makes
the same calls but allocates nothing — tracing cannot perturb the
simulated clock either way, and the driver only retains its flat event
list when a live recorder is attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

#: Version of the in-memory span model / canonical document it feeds.
#: Bump whenever a span field changes meaning — committed golden traces
#: carry this number, and the golden-update policy (DESIGN §8) requires
#: regenerating them on a bump.
TRACE_SCHEMA_VERSION = 1


class TraceError(RuntimeError):
    """Structurally invalid recording (unbalanced or misnested regions)."""


@dataclass
class Span:
    """One contiguous interval of simulated time.

    ``cat`` is ``"region"`` for profiler regions (interior nodes) and
    ``"serial"`` / ``"kernel"`` for charges (leaves, matching the
    paper's two time categories).  ``meta`` carries launch metadata for
    kernel leaves: cells, bytes, launch count, execution space.
    """

    name: str
    cat: str
    t0: float
    t1: float
    cycle: int
    meta: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def dur(self) -> float:
        return self.t1 - self.t0

    def walk(self) -> Iterator["Span"]:
        """Depth-first, self first."""
        yield self
        for child in self.children:
            yield from child.walk()


class NullRecorder:
    """The explicit no-op recorder: same interface, zero retention."""

    active = False

    def open_region(self, name: str, now: float, cycle: int) -> None:
        pass

    def close_region(self, name: str, now: float, cycle: int) -> None:
        pass

    def record(
        self,
        category: str,
        region: str,
        kernel: Optional[str],
        start: float,
        duration: float,
        cycle: int,
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        pass

    def end_cycle(self, cycle: int) -> None:
        pass

    def clear(self) -> None:
        pass


#: Shared default for every profiler: attaching a real recorder is the
#: single opt-in switch for tracing.
NULL_RECORDER = NullRecorder()


class TraceRecorder(NullRecorder):
    """Builds the span tree from profiler notifications."""

    active = True

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self.cycles: int = 0
        self._open: List[Span] = []

    # -------------------------------------------------------------- hooks

    def open_region(self, name: str, now: float, cycle: int) -> None:
        span = Span(name=name, cat="region", t0=now, t1=now, cycle=cycle)
        self._sink().append(span)
        self._open.append(span)

    def close_region(self, name: str, now: float, cycle: int) -> None:
        if not self._open:
            raise TraceError(f"close_region({name!r}) with no open region")
        span = self._open.pop()
        if span.name != name:
            raise TraceError(
                f"misnested regions: closing {name!r}, "
                f"innermost open is {span.name!r}"
            )
        span.t1 = now

    def record(
        self,
        category: str,
        region: str,
        kernel: Optional[str],
        start: float,
        duration: float,
        cycle: int,
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        if duration < 0:
            raise TraceError(f"negative span duration {duration}")
        span = Span(
            name=kernel or region,
            cat=category,
            t0=start,
            t1=start + duration,
            cycle=cycle,
            meta=dict(meta or {}),
        )
        self._sink().append(span)
        # An open region always covers its charges.
        for parent in self._open:
            parent.t1 = max(parent.t1, span.t1)

    def end_cycle(self, cycle: int) -> None:
        self.cycles = max(self.cycles, cycle)

    def clear(self) -> None:
        """Drop everything recorded so far (warmup-boundary reset)."""
        self.roots = []
        self.cycles = 0
        self._open = []

    # ------------------------------------------------------------ queries

    def _sink(self) -> List[Span]:
        return self._open[-1].children if self._open else self.roots

    @property
    def depth(self) -> int:
        return len(self._open)

    def to_trace(
        self,
        meta: Optional[Dict[str, object]] = None,
        metrics: Optional[Dict[str, object]] = None,
    ) -> "Trace":
        """Freeze the recording into a :class:`Trace`.

        Raises :class:`TraceError` while regions are still open — a
        trace of a half-finished scope has ill-defined durations.
        """
        if self._open:
            names = ", ".join(s.name for s in self._open)
            raise TraceError(f"regions still open: {names}")
        return Trace(
            meta=dict(meta or {}),
            spans=list(self.roots),
            metrics=dict(metrics or {}),
        )


@dataclass
class Trace:
    """A finished recording plus run identity and final metrics."""

    meta: Dict[str, object] = field(default_factory=dict)
    spans: List[Span] = field(default_factory=list)
    metrics: Dict[str, object] = field(default_factory=dict)
    schema_version: int = TRACE_SCHEMA_VERSION

    def walk(self) -> Iterator[Span]:
        for span in self.spans:
            yield from span.walk()

    @property
    def total_seconds(self) -> float:
        """Simulated wall clock: top-level spans tile the timeline."""
        return sum(span.dur for span in self.spans)

    def region_totals(self) -> Dict[str, Dict[str, float]]:
        """Leaf time by innermost enclosing region, split by category.

        Mirrors ``Profiler.regions`` exactly — the equivalence is pinned
        by a test — so trace diffs speak the same per-function language
        as Figs. 11/12.
        """
        totals: Dict[str, Dict[str, float]] = {}

        def visit(span: Span, region: str) -> None:
            if span.cat == "region":
                for child in span.children:
                    visit(child, span.name)
                return
            bucket = totals.setdefault(region, {"serial": 0.0, "kernel": 0.0})
            bucket[span.cat] += span.dur

        for span in self.spans:
            visit(span, "other")
        return {name: totals[name] for name in sorted(totals)}

    def kernel_totals(self) -> Dict[str, float]:
        """Seconds per kernel name (Table III's duration column)."""
        totals: Dict[str, float] = {}
        for span in self.walk():
            if span.cat == "kernel":
                totals[span.name] = totals.get(span.name, 0.0) + span.dur
        return {name: totals[name] for name in sorted(totals)}
