"""Counters, gauges and histograms for framework events.

The paper characterizes the framework by *counting* — kernel launches
(the launch-overhead story), ghost bytes (Section II-D), remesh events,
buffer-cache rebuilds — so the registry mirrors the three classic
metric kinds:

* counters — monotonically accumulated totals (``count``),
* gauges   — last-set level, merged by ``max`` (peak semantics), and
* histograms — fixed-bucket distributions (``observe``).

``end_cycle`` appends a cumulative counter snapshot, giving per-cycle
series without per-event retention.  ``merge`` folds another registry
in and is associative and commutative (counters add, gauges max,
histogram buckets add) — a hypothesis test pins this — so campaign
aggregation order can never change a reported total.  Everything in
``to_dict`` is deterministic: sorted keys, simulated quantities only.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence

#: Power-of-ten sub-decade bucket upper bounds, wide enough for both
#: byte counts and (sub)second durations.
DEFAULT_BOUNDS: Sequence[float] = tuple(
    m * 10.0 ** e for e in range(-9, 10) for m in (1.0, 2.0, 5.0)
)


class Histogram:
    """Fixed-bucket histogram with exact sum/min/max sidecars."""

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        self.bounds: List[float] = list(bounds)
        if self.bounds != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted")
        #: counts[i] counts observations <= bounds[i]; the final slot is
        #: the overflow bucket.
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.count += other.count
        self.sum += other.sum
        for attr, pick in (("min", min), ("max", max)):
            mine, theirs = getattr(self, attr), getattr(other, attr)
            if theirs is not None:
                setattr(
                    self, attr, theirs if mine is None else pick(mine, theirs)
                )

    def to_dict(self) -> dict:
        """Sparse bucket map (only non-zero buckets) plus the sidecars."""
        buckets = {}
        for i, n in enumerate(self.counts):
            if n:
                key = "+inf" if i == len(self.bounds) else repr(self.bounds[i])
                buckets[key] = n
        return {
            "buckets": buckets,
            "count": self.count,
            "max": self.max,
            "min": self.min,
            "sum": self.sum,
        }


class MetricsRegistry:
    """One run's (or one campaign's) named metrics."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: Cumulative counter values at each cycle boundary.
        self.cycle_snapshots: List[dict] = []

    # ----------------------------------------------------------- feeding

    def count(self, name: str, delta: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(
        self, name: str, value: float, bounds: Sequence[float] = DEFAULT_BOUNDS
    ) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(bounds)
        hist.observe(value)

    def end_cycle(self, cycle: int) -> None:
        self.cycle_snapshots.append(
            {"cycle": cycle, "counters": dict(sorted(self.counters.items()))}
        )

    def clear(self) -> None:
        """Zero everything in place (identity-preserving, like the
        driver's warmup reset — holders of this registry stay wired)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.cycle_snapshots.clear()

    # ----------------------------------------------------------- merging

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` in: counters add, gauges max, histograms add.

        Associative and commutative, so campaign-level aggregation is
        independent of point completion order.  Per-cycle snapshots are
        a *sequence*, not a set, and are deliberately not merged.
        """
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in other.gauges.items():
            mine = self.gauges.get(name)
            self.gauges[name] = value if mine is None else max(mine, value)
        for name, hist in other.histograms.items():
            if name in self.histograms:
                self.histograms[name].merge(hist)
            else:
                clone = Histogram(hist.bounds)
                clone.merge(hist)
                self.histograms[name] = clone

    # ------------------------------------------------------------ export

    def to_dict(self, per_cycle: bool = True) -> dict:
        doc = {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: self.histograms[name].to_dict()
                for name in sorted(self.histograms)
            },
        }
        if per_cycle:
            doc["per_cycle"] = list(self.cycle_snapshots)
        return doc
