"""Shard planning and worker-side pack views.

Bitwise contract (the reason ``tests/test_shard_parity.py`` can demand
0-ULP agreement with the serial engine): the unit of shard work is not a
block but one *chunk* of the serial engine's own chunk grid.  The numpy
``calculate_fluxes`` processes blocks in runs of
``step = max(1, PACK_CHUNK_CELLS // interior_cells)`` — the only stage
whose floating-point result depends on how the block axis is batched
(BLAS reassociates within a GEMM batch).  Sharding along exactly those
chunk boundaries hands every worker whole serial chunks, so the GEMM
batch shapes — and therefore every rounding decision — are identical to
the serial sweep.  All other stages (divergence/update, FillDerived,
save-base, the timestep reduce, and the numba per-pencil sweep) are
elementwise or per-block and bitwise-safe under *any* block split.

Units are assigned to shards by LPT (``mesh.loadbalance.partition_lpt``)
over per-unit costs, giving the makespan bound
``max_load <= mean_load + max_cost`` that the hypothesis suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.backends.numpy_backend import PACK_CHUNK_CELLS
from repro.mesh.loadbalance import partition_lpt

Unit = Tuple[int, int]


def compute_units(nblocks: int, interior_cells: int) -> List[Unit]:
    """The serial engine's chunk grid: ``[lo, hi)`` runs of the block axis."""
    if nblocks < 1:
        raise ValueError(f"need at least one block, got {nblocks}")
    step = max(1, PACK_CHUNK_CELLS // max(1, interior_cells))
    return [(lo, min(nblocks, lo + step)) for lo in range(0, nblocks, step)]


@dataclass(frozen=True)
class ShardPlan:
    """Deterministic unit→shard assignment for one pack generation."""

    num_shards: int
    units: Tuple[Unit, ...]
    assignments: Tuple[int, ...]  # unit index -> shard id

    @property
    def units_by_shard(self) -> List[List[Unit]]:
        out: List[List[Unit]] = [[] for _ in range(self.num_shards)]
        for unit, shard in zip(self.units, self.assignments):
            out[shard].append(unit)
        return out

    def shard_blocks(self) -> List[int]:
        counts = [0] * self.num_shards
        for (lo, hi), shard in zip(self.units, self.assignments):
            counts[shard] += hi - lo
        return counts

    def shard_costs(self, costs: Sequence[float]) -> List[float]:
        loads = [0.0] * self.num_shards
        for (lo, hi), shard in zip(self.units, self.assignments):
            loads[shard] += float(sum(costs[lo:hi]))
        return loads


def plan_shards(
    costs: Sequence[float], interior_cells: int, num_shards: int
) -> ShardPlan:
    """Partition the chunk grid over ``costs`` (one entry per block)."""
    units = compute_units(len(costs), interior_cells)
    unit_costs = [float(sum(costs[lo:hi])) for lo, hi in units]
    assignments = partition_lpt(unit_costs, num_shards)
    return ShardPlan(
        num_shards=num_shards,
        units=tuple(units),
        assignments=tuple(assignments),
    )


class _BlockStub:
    """The slice of MeshBlock the pack kernels actually touch."""

    __slots__ = ("shape", "ndim", "interior_cells")

    def __init__(self, shape) -> None:
        self.shape = shape
        self.ndim = shape.ndim
        self.interior_cells = shape.interior_cells


class ShardPack:
    """A kernels-facing view of one unit's slab of the shared pack.

    Implements exactly the :class:`repro.solver.packs.MeshBlockPack`
    surface the packed kernels consume — ``field``/``flux_data``/
    ``dx_array``/``component_slice``/``blocks`` — over ``[lo, hi)`` of
    the shared arrays, so every backend's kernels run unmodified inside
    a worker process.
    """

    def __init__(
        self,
        data: np.ndarray,
        flux_axes: Sequence[Optional[np.ndarray]],
        flux_field: str,
        slices: Dict[str, slice],
        shape,
        dx_table: Sequence[Optional[np.ndarray]],
        lo: int,
        hi: int,
    ) -> None:
        self.lo = lo
        self.hi = hi
        self.data = data[lo:hi]
        self.flux_data: Dict[str, List[Optional[np.ndarray]]] = {
            flux_field: [
                None if arr is None else arr[lo:hi] for arr in flux_axes
            ]
        }
        self._slices = dict(slices)
        stub = _BlockStub(shape)
        self.blocks = [stub] * (hi - lo)
        self._dx = [
            None if row is None else row[lo:hi] for row in dx_table
        ]

    def __len__(self) -> int:
        return self.hi - self.lo

    def field(self, name: str) -> np.ndarray:
        return self.data[:, self._slices[name]]

    def component_slice(self, name: str) -> slice:
        return self._slices[name]

    def _require_contiguous(self) -> np.ndarray:
        return self.data

    def dx_array(self, axis: int) -> np.ndarray:
        row = self._dx[axis]
        if row is None:
            raise ValueError(f"no dx table for inactive axis {axis}")
        return row
