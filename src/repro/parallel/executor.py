"""The shard executor: pack stages fanned out to worker processes.

``ShardedPackKernels`` implements the same five-stage interface as the
packed backend engines (``calculate_fluxes`` / ``flux_divergence_and_update``
/ ``fill_derived`` / ``save_base`` / ``estimate_timestep``), so the driver
swaps it in transparently when ``ExecutionConfig.num_shards > 1``.  The
split of responsibilities:

* the **parent** keeps everything framework-shaped — mesh/tree, ghost
  exchange through the pooled comm buffers, flux correction, refinement,
  load balancing, the platform cost model and all observability.  Because
  the adopted block views alias shared-memory pack storage, the parent's
  ghost fills are immediately visible to every worker (and vice versa)
  with no explicit transfer;
* each **worker process** owns a fixed set of chunk-grid units (see
  ``repro.parallel.shards``) and executes the numeric stages over them
  with its own instance of the configured kernel backend.

Barrier protocol: every stage is one message to each worker and one ack
back; the parent blocks on all acks before returning, so stages never
overlap with each other or with the parent's comm phases.  The parent
waits on connections *and* process sentinels simultaneously, so a dead
or wedged worker surfaces as a structured :class:`ShardError` — never a
hang, never a silently corrupt pack.

Remesh: the driver invalidates the pack; the next build allocates a new
shared generation through :meth:`ShardedPackKernels.allocator`, and
:meth:`rebind` repartitions the new chunk grid, points every worker at
the new segments, and only then retires the previous generation.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
import traceback
import weakref
from multiprocessing.connection import wait as _conn_wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.parallel.shards import ShardPack, plan_shards
from repro.parallel.shm import SharedSlab, attach_slab, create_slab

#: Ceiling on one stage barrier; a worker that exceeds it is declared
#: wedged and surfaced as a ShardError (the no-hang guarantee).
STAGE_TIMEOUT_S = 300.0


class ShardError(RuntimeError):
    """A shard worker died, wedged, or raised during a stage."""

    def __init__(self, message: str, shard: int = -1, stage: str = "") -> None:
        super().__init__(message)
        self.shard = shard
        self.stage = stage


class _WorkerProxy:
    """Parent-side handle: one duplex pipe (+ sentinel for processes)."""

    def __init__(self, shard_id: int, conn, sentinel, stopper) -> None:
        self.shard_id = shard_id
        self.conn = conn
        self.sentinel = sentinel
        self._stopper = stopper

    def send(self, msg) -> None:
        self.conn.send(msg)

    def stop(self) -> None:
        self._stopper()


def _worker_loop(conn, shard_id: int) -> None:
    """Message loop run inside each worker (process or thread).

    State machine: ``init`` builds the kernel engine, ``rebuild`` attaches
    one pack generation and carves it into per-unit :class:`ShardPack`
    views, ``stage`` executes one kernel stage over every owned unit.
    """
    kernels = None
    slabs: List[SharedSlab] = []
    packs: List[ShardPack] = []
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg[0]
        try:
            if kind == "shutdown":
                conn.send(("ok", None, 0.0))
                break
            if kind == "init":
                _, params, backend_name = msg
                from repro.kernels.backends import resolve_backend
                from repro.solver.burgers import BurgersPackage

                pkg = BurgersPackage(params.ndim, params.burgers_config())
                kernels = resolve_backend(backend_name).create_kernels(pkg)
                conn.send(("ok", None, 0.0))
            elif kind == "rebuild":
                _, segs, meta = msg
                new_slabs = [attach_slab(*segs["data"])]
                flux_axes: List[Optional[np.ndarray]] = []
                for seg in segs["flux"]:
                    if seg is None:
                        flux_axes.append(None)
                    else:
                        slab = attach_slab(*seg)
                        new_slabs.append(slab)
                        flux_axes.append(slab.array)
                packs = [
                    ShardPack(
                        new_slabs[0].array,
                        flux_axes,
                        meta["flux_field"],
                        meta["slices"],
                        meta["shape"],
                        meta["dx"],
                        lo,
                        hi,
                    )
                    for lo, hi in meta["units"]
                ]
                old, slabs = slabs, new_slabs
                for slab in old:
                    slab.close()
                conn.send(("ok", None, 0.0))
            elif kind == "stage":
                _, stage, args = msg
                t0 = time.perf_counter()
                if stage == "estimate_timestep":
                    payload = [
                        ((p.lo, p.hi), kernels.estimate_timestep(p))
                        for p in packs
                    ]
                else:
                    fn = getattr(kernels, stage)
                    for p in packs:
                        fn(p, *args)
                    payload = None
                conn.send(("ok", payload, time.perf_counter() - t0))
            else:
                raise ValueError(f"unknown shard message {kind!r}")
        except Exception:
            try:
                conn.send(("err", traceback.format_exc()))
            except (BrokenPipeError, OSError):
                break
    try:
        conn.close()
    except OSError:
        pass


def _release_segments(slabs: List[SharedSlab]) -> None:
    """Finalizer backstop: unlink every still-live segment by handle."""
    for slab in list(slabs):
        slab.unlink()
        slab.close()
    slabs.clear()


class ShardedPackKernels:
    """Drop-in packed engine that fans stages out to shard workers.

    Parameters
    ----------
    params:
        The run's :class:`SimulationParams` (picklable) — each worker
        rebuilds the Burgers package from it.
    backend_name:
        *Effective* kernel backend name (post registry resolution), so
        workers construct the identical engine without re-warning.
    num_shards:
        Worker count; every worker is one OS process under the ``fork``
        start method (or one thread with ``transport="thread"``, the
        in-process mode the protocol/coverage tests drive).
    injector_provider / cycle_provider:
        Callables giving the driver's fault injector and current cycle;
        the ``shard_worker`` fault site fires at stage dispatch.
    """

    def __init__(
        self,
        params,
        backend_name: str,
        num_shards: int,
        injector_provider: Optional[Callable[[], object]] = None,
        cycle_provider: Optional[Callable[[], int]] = None,
        transport: str = "process",
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if transport not in ("process", "thread"):
            raise ValueError(f"unknown shard transport {transport!r}")
        if transport == "process" and "fork" not in mp.get_all_start_methods():
            raise RuntimeError(
                "sharded execution requires the 'fork' start method; "
                "use transport='thread' on this platform"
            )
        self.params = params
        self.backend_name = backend_name
        self.num_shards = num_shards
        self.transport = transport
        self.stage_timeout_s = STAGE_TIMEOUT_S
        self._injector_provider = injector_provider
        self._cycle_provider = cycle_provider
        self._workers: Optional[List[_WorkerProxy]] = None
        #: Slabs handed out by :meth:`allocator` since the last rebind.
        self._pending: List[SharedSlab] = []
        #: The live generation's slabs (data first, then active flux axes).
        self._current: List[SharedSlab] = []
        #: All not-yet-unlinked slabs, shared with the GC finalizer.
        self._live: List[SharedSlab] = []
        self._bound_pack = None
        self._plan = None
        self._nblocks = 0
        self.generation = 0
        self.topology: Dict[str, object] = {}
        self._stage_seconds: Dict[int, Dict[str, float]] = {
            s: {} for s in range(num_shards)
        }
        self._closed = False
        self._finalizer = weakref.finalize(self, _release_segments, self._live)

    # ------------------------------------------------------------ lifecycle

    def allocator(self, shape: Sequence[int]) -> np.ndarray:
        """Pack-storage allocator: zeroed float64 array in shared memory.

        Passed to :func:`repro.solver.packs.build_numeric_pack`; every
        allocation between two :meth:`rebind` calls belongs to the next
        pack generation.
        """
        slab = create_slab(shape)
        self._pending.append(slab)
        self._live.append(slab)
        return slab.array

    def _send(self, proxy: _WorkerProxy, msg, stage: str) -> None:
        """Send with death detection: a closed pipe (the worker is gone)
        surfaces as a structured ShardError, like a missing ack would."""
        try:
            proxy.send(msg)
        except (BrokenPipeError, OSError):
            raise ShardError(
                f"shard worker {proxy.shard_id} is gone "
                f"(send failed in stage {stage!r})",
                shard=proxy.shard_id,
                stage=stage,
            )

    def _ensure_workers(self) -> List[_WorkerProxy]:
        if self._closed:
            raise ShardError("shard executor already shut down")
        if self._workers is None:
            workers: List[_WorkerProxy] = []
            for shard in range(self.num_shards):
                parent_conn, child_conn = mp.Pipe()
                if self.transport == "process":
                    ctx = mp.get_context("fork")
                    proc = ctx.Process(
                        target=_worker_loop,
                        args=(child_conn, shard),
                        name=f"repro-shard-{shard}",
                        daemon=True,
                    )
                    proc.start()
                    child_conn.close()
                    proxy = _WorkerProxy(
                        shard, parent_conn, proc.sentinel,
                        lambda p=proc: (p.terminate(), p.join(timeout=5)),
                    )
                else:
                    thread = threading.Thread(
                        target=_worker_loop,
                        args=(child_conn, shard),
                        name=f"repro-shard-{shard}",
                        daemon=True,
                    )
                    thread.start()
                    proxy = _WorkerProxy(shard, parent_conn, None, lambda: None)
                self._send(proxy, ("init", self.params, self.backend_name), "init")
                workers.append(proxy)
            self._collect_from(workers, "init")
            self._workers = workers
        return self._workers

    def rebind(self, pack) -> None:
        """Point every worker at a freshly allocated pack generation.

        ``pack`` must have been built with :meth:`allocator`; its chunk
        grid is repartitioned by LPT over the current block costs, every
        worker attaches the new segments and acks, and only then is the
        previous generation retired (unlink + best-effort unmap) — so the
        gather from old views during the pack build never races teardown.
        """
        slabs, self._pending = self._pending, []
        if not slabs or slabs[0].array is not pack.data:
            raise RuntimeError(
                "pack was not allocated through this executor's allocator"
            )
        flux_field = next(iter(pack.flux_data))
        flux_axes = pack.flux_data[flux_field]
        owned = {id(s.array) for s in slabs}
        for arr in flux_axes:
            if arr is not None and id(arr) not in owned:
                raise RuntimeError("flux storage missing from shared slabs")
        by_id = {id(s.array): s for s in slabs}
        nb = len(pack.blocks)
        shape = pack.blocks[0].shape
        costs = [blk.cost for blk in pack.blocks]
        self._plan = plan_shards(costs, shape.interior_cells, self.num_shards)
        self._nblocks = nb
        ndim = shape.ndim
        dx_table = [
            np.array([blk.dx(a) for blk in pack.blocks]) if a < ndim else None
            for a in range(3)
        ]
        segs = {
            "data": (slabs[0].name, slabs[0].shape),
            "flux": [
                None
                if arr is None
                else (by_id[id(arr)].name, by_id[id(arr)].shape)
                for arr in flux_axes
            ],
        }
        units_by_shard = self._plan.units_by_shard
        workers = self._ensure_workers()
        for proxy in workers:
            self._send(
                proxy,
                (
                    "rebuild",
                    segs,
                    {
                        "flux_field": flux_field,
                        "slices": pack._slices,
                        "shape": shape,
                        "dx": dx_table,
                        "units": units_by_shard[proxy.shard_id],
                    },
                ),
                "rebuild",
            )
        self._collect_from(workers, "rebuild")
        for slab in self._current:
            self._retire(slab)
        self._current = slabs
        self._bound_pack = weakref.ref(pack)
        self.generation += 1
        self.topology = {
            "num_shards": self.num_shards,
            "generation": self.generation,
            "units": [
                [[lo, hi] for lo, hi in units] for units in units_by_shard
            ],
            "blocks": self._plan.shard_blocks(),
            "cost": self._plan.shard_costs(costs),
        }

    def _retire(self, slab: SharedSlab) -> None:
        slab.unlink()
        slab.close()
        if slab in self._live:
            self._live.remove(slab)

    def shutdown(self) -> None:
        """Stop workers and release every shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        workers, self._workers = self._workers, None
        if workers:
            for proxy in workers:
                try:
                    proxy.send(("shutdown",))
                except (BrokenPipeError, OSError):
                    pass
            deadline = time.monotonic() + 5.0
            for proxy in workers:
                try:
                    if proxy.conn.poll(max(0.0, deadline - time.monotonic())):
                        proxy.conn.recv()
                except (EOFError, OSError):
                    pass
                proxy.stop()
                try:
                    proxy.conn.close()
                except OSError:
                    pass
        for slab in list(self._live):
            self._retire(slab)
        self._current = []
        self._pending = []
        self._bound_pack = None

    # ------------------------------------------------------------- dispatch

    def _dispatch(self, stage: str, pack, args: Tuple = ()) -> Dict[int, tuple]:
        if self._injector_provider is not None:
            cycle = self._cycle_provider() if self._cycle_provider else 0
            self._injector_provider().check("shard_worker", cycle)
        bound = self._bound_pack() if self._bound_pack is not None else None
        if bound is not pack:
            raise RuntimeError(
                "shard executor is not bound to this pack; rebind first"
            )
        workers = self._ensure_workers()
        for proxy in workers:
            self._send(proxy, ("stage", stage, args), stage)
        replies = self._collect_from(workers, stage)
        for shard, (payload, elapsed) in replies.items():
            per = self._stage_seconds[shard]
            per[stage] = per.get(stage, 0.0) + elapsed
        return replies

    def _collect_from(
        self, workers: List[_WorkerProxy], stage: str
    ) -> Dict[int, tuple]:
        """Barrier: one ack per worker, with death/wedge detection."""
        pending = {proxy.shard_id: proxy for proxy in workers}
        replies: Dict[int, tuple] = {}
        deadline = time.monotonic() + self.stage_timeout_s
        while pending:
            waitables = []
            for proxy in pending.values():
                waitables.append(proxy.conn)
                if proxy.sentinel is not None:
                    waitables.append(proxy.sentinel)
            timeout = deadline - time.monotonic()
            ready = _conn_wait(waitables, max(0.0, timeout)) if timeout > 0 else []
            if not ready:
                raise ShardError(
                    f"shard barrier timed out after {self.stage_timeout_s:.0f}s "
                    f"in stage {stage!r} waiting on shards "
                    f"{sorted(pending)}",
                    shard=min(pending),
                    stage=stage,
                )
            for proxy in list(pending.values()):
                if proxy.conn in ready:
                    try:
                        msg = proxy.conn.recv()
                    except (EOFError, OSError):
                        raise ShardError(
                            f"shard worker {proxy.shard_id} closed its pipe "
                            f"during stage {stage!r}",
                            shard=proxy.shard_id,
                            stage=stage,
                        )
                    if msg[0] == "err":
                        raise ShardError(
                            f"shard worker {proxy.shard_id} failed in stage "
                            f"{stage!r}:\n{msg[1]}",
                            shard=proxy.shard_id,
                            stage=stage,
                        )
                    replies[proxy.shard_id] = (msg[1], msg[2])
                    del pending[proxy.shard_id]
                elif proxy.sentinel is not None and proxy.sentinel in ready:
                    # The process may have exited *after* replying: drain
                    # the pipe first, declare death only if it is empty.
                    if proxy.conn.poll(0.05):
                        continue
                    raise ShardError(
                        f"shard worker {proxy.shard_id} died during stage "
                        f"{stage!r} (no reply)",
                        shard=proxy.shard_id,
                        stage=stage,
                    )
        return replies

    # ------------------------------------------------------ stage interface

    def calculate_fluxes(self, pack) -> None:
        self._dispatch("calculate_fluxes", pack)

    def flux_divergence_and_update(
        self, pack, gam0: float, gam1: float, beta_dt: float
    ) -> None:
        self._dispatch(
            "flux_divergence_and_update", pack, (gam0, gam1, beta_dt)
        )

    def fill_derived(self, pack) -> None:
        self._dispatch("fill_derived", pack)

    def save_base(self, pack) -> None:
        self._dispatch("save_base", pack)

    def estimate_timestep(self, pack) -> np.ndarray:
        """Per-block ``cfl·dt`` assembled from per-unit worker results.

        Entries land at their global block indices, so the driver's
        ``min`` reduce sees exactly the serial engine's array.
        """
        replies = self._dispatch("estimate_timestep", pack)
        dt = np.empty(self._nblocks)
        for payload, _elapsed in replies.values():
            for (lo, hi), values in payload:
                dt[lo:hi] = values
        return dt

    # -------------------------------------------------------- observability

    def reset_timings(self) -> None:
        """Zero per-shard stage clocks (the driver's warmup boundary)."""
        self._stage_seconds = {s: {} for s in range(self.num_shards)}

    def summary(self) -> Dict[str, object]:
        """Shard topology + per-shard wall timings for result/artifact.

        Topology is deterministic; ``stage_seconds`` is host wall-clock
        and explicitly exempt from the byte-determinism contract (the
        schema notes in ``orchestration.artifacts`` document this).
        """
        return {
            "topology": dict(self.topology),
            "transport": self.transport,
            "stage_seconds": {
                str(shard): {k: v for k, v in sorted(per.items())}
                for shard, per in self._stage_seconds.items()
            },
        }
