"""POSIX shared-memory slabs backing sharded MeshBlockPack storage.

The shard executor (DESIGN §12) keeps the contiguous pack array and its
per-axis face-flux arrays in ``multiprocessing.shared_memory`` segments so
worker processes operate on the *same* bytes the parent's framework code
(ghost exchange, flux correction, prolongation) mutates through the
adopted block views — zero copies cross the process boundary.

Lifecycle contract (parent side):

* the parent **creates** every segment (registered with the process-wide
  resource tracker, so a crashed run still gets cleaned up at interpreter
  exit);
* workers are forked and **attach** by name; under the fork start method
  all processes share one resource tracker, so attaching must *not*
  re-register or unregister — the parent's single registration is the
  only one, and ``SharedMemory.unlink()`` removes it;
* the parent **unlinks** a generation's segments once every worker has
  rebound to the next generation.  POSIX keeps the memory alive while
  mappings exist, so unlink-while-mapped is safe and is the idempotent
  retirement primitive;
* ``close()`` is best-effort everywhere: it raises ``BufferError`` while
  NumPy views are still exported, in which case the mapping is simply
  left for garbage collection / process exit.
"""

from __future__ import annotations

import math
from multiprocessing import shared_memory
from typing import Sequence, Tuple

import numpy as np


class SharedSlab:
    """One shared-memory segment viewed as a float64 ndarray."""

    __slots__ = ("shm", "array", "shape", "owner")

    def __init__(
        self, shm: shared_memory.SharedMemory,
        shape: Tuple[int, ...],
        owner: bool,
    ) -> None:
        self.shm = shm
        self.shape = tuple(shape)
        self.owner = owner
        self.array = np.ndarray(self.shape, dtype=np.float64, buffer=shm.buf)

    @property
    def name(self) -> str:
        return self.shm.name

    def close(self) -> bool:
        """Drop this process's mapping; False if views still pin it."""
        self.array = None
        try:
            self.shm.close()
        except BufferError:
            return False
        return True

    def unlink(self) -> None:
        """Remove the segment name (memory lives until unmapped).

        Idempotent: a second unlink of the same name is swallowed, so
        retirement paths and the executor's finalizer can overlap.
        """
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass


def create_slab(shape: Sequence[int]) -> SharedSlab:
    """Parent-side: allocate a zero-filled shared float64 array."""
    nbytes = max(8, int(math.prod(shape)) * 8)
    shm = shared_memory.SharedMemory(create=True, size=nbytes)
    slab = SharedSlab(shm, tuple(shape), owner=True)
    slab.array.fill(0.0)
    return slab


def attach_slab(name: str, shape: Sequence[int]) -> SharedSlab:
    """Worker-side: map an existing segment created by the parent.

    No resource-tracker bookkeeping happens here: under fork the children
    share the parent's tracker, the name is already registered once, and
    the parent's ``unlink()`` is what unregisters it.
    """
    shm = shared_memory.SharedMemory(name=name)
    return SharedSlab(shm, tuple(shape), owner=False)
