"""Shared-memory shard execution for MeshBlockPacks (DESIGN §12).

One simulation, many processes: the contiguous pack lives in
``multiprocessing.shared_memory``, the serial engine's chunk grid is
partitioned across worker processes by LPT, and every numeric stage runs
behind a barrier — bitwise-identical to the serial path by construction
(``tests/test_shard_parity.py`` pins 0-ULP agreement).
"""

from repro.parallel.executor import (
    STAGE_TIMEOUT_S,
    ShardedPackKernels,
    ShardError,
)
from repro.parallel.shards import (
    ShardPack,
    ShardPlan,
    compute_units,
    plan_shards,
)
from repro.parallel.shm import SharedSlab, attach_slab, create_slab

__all__ = [
    "STAGE_TIMEOUT_S",
    "ShardError",
    "ShardedPackKernels",
    "ShardPack",
    "ShardPlan",
    "SharedSlab",
    "attach_slab",
    "compute_units",
    "create_slab",
    "plan_shards",
]
