"""Content-addressed run cache — the resume mechanism.

Completed points live under ``<campaign>/points/<cache_key>.json``; the
key is :meth:`repro.api.RunSpec.cache_key` (a sha256 over deck +
ExecutionConfig + OptimizationFlags + cycle counts + code version), so a
rerun of the same campaign skips every point whose artifact already
exists, and *any* change to a point's identity — or a new code version —
misses cleanly instead of serving stale results.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.orchestration.artifacts import load_artifact, write_artifact

POINTS_DIR = "points"
ERRORS_DIR = "errors"


class RunCache:
    """Artifact store for one campaign directory.

    Successful points are the cache proper (``points/``); failed points
    are recorded beside it (``errors/``) for inspection but never count
    as hits — a resumed campaign retries them.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.points = self.root / POINTS_DIR
        self.errors = self.root / ERRORS_DIR

    # ------------------------------------------------------------ points

    def path(self, key: str) -> Path:
        return self.points / f"{key}.json"

    def error_path(self, key: str) -> Path:
        return self.errors / f"{key}.json"

    def has(self, key: str) -> bool:
        return self.path(key).is_file()

    def load(self, key: str) -> Optional[dict]:
        if not self.has(key):
            return None
        return load_artifact(self.path(key))

    def store(self, artifact: dict) -> Path:
        """File the artifact by status: a success replaces any stale
        error record; a failure never shadows a cached success."""
        key = artifact["cache_key"]
        if artifact.get("status") == "ok":
            path = write_artifact(self.path(key), artifact)
            stale = self.error_path(key)
            if stale.is_file():
                stale.unlink()
            return path
        return write_artifact(self.error_path(key), artifact)

    def keys(self) -> List[str]:
        if not self.points.is_dir():
            return []
        return sorted(p.stem for p in self.points.glob("*.json"))

    def load_all(self) -> Dict[str, dict]:
        return {key: load_artifact(self.path(key)) for key in self.keys()}
