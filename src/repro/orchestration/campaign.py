"""Campaign runner: fan sweep points over workers, persist, resume.

``run_campaign`` takes a list of :class:`~repro.api.RunSpec` points and
a campaign directory and guarantees, on return, one artifact per unique
point: cached points are skipped (resume), pending points execute across
a ``multiprocessing`` pool (``workers`` processes, default
``os.cpu_count()``), failures are isolated per point with bounded retry,
and every completed artifact is written to disk *as it arrives* so an
interrupted campaign loses at most the points in flight.

Pending points dispatch longest-estimated-first (classic LPT
scheduling): the paper's sweeps mix 8^3 and 16^3 blocks whose costs
differ by ~8x, and LPT keeps the big points from landing on one worker
back-to-back.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.api import RunSpec
from repro.orchestration.artifacts import ARTIFACT_SCHEMA_VERSION
from repro.orchestration.cache import RunCache
from repro.orchestration.worker import PointTask, execute_point
from repro.resilience import FaultPlan

MANIFEST_NAME = "manifest.json"

#: Per-point checkpoint trees live under ``<campaign>/checkpoints/<key>``.
CHECKPOINT_SUBDIR = "checkpoints"

#: ``progress(outcome)`` is invoked once per point as its fate is known.
ProgressFn = Callable[["PointOutcome"], None]


@dataclass
class PointOutcome:
    """One point's fate within a campaign run."""

    spec: RunSpec
    artifact: dict
    from_cache: bool

    @property
    def ok(self) -> bool:
        return self.artifact.get("status") == "ok"

    @property
    def fom(self) -> float:
        return float(self.artifact.get("fom", 0.0))

    @property
    def label(self) -> str:
        return self.spec.label or self.spec.describe()


@dataclass
class CampaignSummary:
    """What ``run_campaign`` did, plus every point's artifact."""

    campaign_dir: Path
    outcomes: List[PointOutcome] = field(default_factory=list)
    executed: int = 0
    cached: int = 0
    failed: int = 0
    workers: int = 1
    elapsed_s: float = 0.0

    @property
    def artifacts(self) -> List[dict]:
        return [o.artifact for o in self.outcomes]

    def describe(self) -> str:
        return (
            f"{len(self.outcomes)} points -> executed {self.executed}, "
            f"cached {self.cached}, failed {self.failed} "
            f"({self.workers} workers, {self.elapsed_s:.1f}s)"
        )


def _work_estimate(spec: RunSpec) -> float:
    """Relative cost proxy for LPT ordering: block count x depth x cycles."""
    p = spec.params
    blocks = (max(p.mesh_size // p.block_size, 1)) ** p.ndim
    return float(blocks * p.num_levels * (spec.ncycles + spec.warmup))


def _dedupe(specs: Sequence[RunSpec]) -> "Dict[str, RunSpec]":
    unique: Dict[str, RunSpec] = {}
    for spec in specs:
        unique.setdefault(spec.cache_key(), spec)
    return unique


def _pool_context() -> multiprocessing.context.BaseContext:
    method = os.environ.get("REPRO_MP_START")
    if method:
        return multiprocessing.get_context(method)
    # fork keeps worker start cheap (no re-import of numpy per worker);
    # fall back to the platform default where fork does not exist.
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _write_manifest(cache: RunCache, unique: Dict[str, RunSpec]) -> None:
    from repro import __version__

    manifest = {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "code_version": __version__,
        "points": [
            {
                "cache_key": key,
                "label": spec.label,
                "describe": spec.describe(),
            }
            for key, spec in unique.items()
        ],
    }
    path = cache.root / MANIFEST_NAME
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, sort_keys=True, indent=2) + "\n")


def run_campaign(
    specs: Sequence[RunSpec],
    campaign_dir: Union[str, Path],
    workers: Optional[int] = None,
    retries: int = 1,
    timeout_s: Optional[float] = None,
    progress: Optional[ProgressFn] = None,
    checkpoint_every: int = 0,
    fault_plan: Optional[FaultPlan] = None,
) -> CampaignSummary:
    """Ensure every unique spec has an artifact under ``campaign_dir``.

    Points whose artifact already exists (same cache key) are *not*
    re-executed; the rest run on ``workers`` processes (default
    ``os.cpu_count()``; ``1`` runs inline with no pool).  A point that
    keeps failing after ``retries`` re-attempts — or exceeds
    ``timeout_s`` per attempt — contributes a structured error artifact
    and the campaign continues.

    ``checkpoint_every > 0`` makes each point checkpoint every N cycles
    under ``<campaign>/checkpoints/<cache_key>/`` and turns the retry
    path into *resume*: a crashed or timed-out attempt restarts from its
    last valid checkpoint instead of cycle 0, recorded in the artifact's
    ``resilience.resumed_from_cycle``.  The cadence never changes a
    point's cache key or simulated outcome (the bitwise-resume
    guarantee).  ``fault_plan`` arms the same deterministic fault plan
    inside every worker — the fault-injection test harness's entry
    point.
    """
    start = time.perf_counter()
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if checkpoint_every < 0:
        raise ValueError(
            f"checkpoint_every must be >= 0, got {checkpoint_every}"
        )
    cache = RunCache(campaign_dir)
    unique = _dedupe(specs)
    _write_manifest(cache, unique)
    summary = CampaignSummary(campaign_dir=Path(campaign_dir), workers=workers)

    outcome_by_key: Dict[str, PointOutcome] = {}

    def record(key: str, outcome: PointOutcome) -> None:
        outcome_by_key[key] = outcome
        if outcome.from_cache:
            summary.cached += 1
        elif outcome.ok:
            summary.executed += 1
        else:
            summary.failed += 1
        if progress is not None:
            progress(outcome)

    pending: List[PointTask] = []
    for key, spec in unique.items():
        cached = cache.load(key)
        if cached is not None:
            record(key, PointOutcome(spec, cached, from_cache=True))
        else:
            point_spec, ckpt_dir = spec, None
            if checkpoint_every > 0:
                ckpt_dir = str(
                    Path(campaign_dir) / CHECKPOINT_SUBDIR / key
                )
                point_spec = spec.replace(
                    config=replace(
                        spec.config, checkpoint_every=checkpoint_every
                    )
                )
            pending.append(
                PointTask(
                    spec=point_spec,
                    retries=retries,
                    timeout_s=timeout_s,
                    checkpoint_dir=ckpt_dir,
                    fault_plan=fault_plan,
                )
            )
    pending.sort(key=lambda t: _work_estimate(t.spec), reverse=True)

    def finish(artifact: dict) -> None:
        key = artifact["cache_key"]
        cache.store(artifact)
        record(
            key,
            PointOutcome(unique[key], artifact, from_cache=False),
        )

    if pending:
        if workers == 1 or len(pending) == 1:
            for task in pending:
                finish(execute_point(task))
        else:
            ctx = _pool_context()
            nproc = min(workers, len(pending))
            with ctx.Pool(processes=nproc) as pool:
                for artifact in pool.imap_unordered(
                    execute_point, pending, chunksize=1
                ):
                    finish(artifact)

    # Report in the caller's original spec order.
    summary.outcomes = [outcome_by_key[key] for key in unique]
    summary.elapsed_s = time.perf_counter() - start
    return summary


def load_campaign(campaign_dir: Union[str, Path]) -> List[dict]:
    """All completed-point artifacts in a campaign directory, in the
    manifest's order when present (filename order otherwise)."""
    cache = RunCache(campaign_dir)
    manifest_path = cache.root / MANIFEST_NAME
    artifacts = cache.load_all()
    if manifest_path.is_file():
        manifest = json.loads(manifest_path.read_text())
        ordered = [
            artifacts.pop(point["cache_key"])
            for point in manifest.get("points", [])
            if point["cache_key"] in artifacts
        ]
        return ordered + [artifacts[k] for k in sorted(artifacts)]
    return [artifacts[k] for k in sorted(artifacts)]
