"""Structured run artifacts — the on-disk record of one sweep point.

Each completed point becomes one JSON document carrying everything the
reporting layer needs (FOM, per-region timings from the Kokkos-style
profiler, MPI counters, memory footprint), so figures regenerate from a
campaign directory without re-running anything.  The document is
*deterministic*: it contains only simulated quantities, never host
wall-clock timestamps, so re-executing an identical spec reproduces the
artifact byte-for-byte (the resume test relies on this).

Schema (``schema_version`` 6; v2 added the ``metrics`` section — the
:class:`repro.observability.MetricsRegistry` snapshot with counters,
gauges, histograms and the per-cycle counter series; v3 added the
*optional* ``resilience`` section, present only when a point resumed
from a checkpoint or ran with a fault plan armed; v4 added backend
identity — ``config.kernel_backend`` is the *requested* engine and the
ok-document's top-level ``kernel_backend`` the *effective* one, which
differ exactly when the run fell back to numpy; v5 added
``config.num_shards`` plus the *optional* ``parallel`` section — shard
topology and per-shard stage timings, present only for sharded runs.
``parallel.stage_seconds`` holds host wall-clock measured inside the
shard workers: the one documented exception to the no-wall-clock rule
above, which is why it lives in its own optional section and why the
simulated quantities stay byte-reproducible — sharding is 0-ULP
identical to serial execution, DESIGN §12; v6 added the
refinement-policy axis — ``params.refinement_policy`` and
``params.block_budget`` — alongside the per-cycle refinement counters
that now ride in ``metrics``, DESIGN §14)::

    {
      "schema_version": 6,
      "status": "ok" | "error",
      "cache_key": "<sha256 of the spec's canonical identity>",
      "code_version": "<repro.__version__>",
      "label": "<presentation label>",
      "attempts": <int>,                       # 1 unless retries happened
      "spec": {"deck": "...", "ncycles": N, "warmup": N},
      "params": {ndim, mesh_size, block_size, num_levels, num_scalars,
                 refinement_policy, block_budget},
      "config": {backend, mode, kernel_mode, total_ranks, describe},
      # status == "ok" only:
      "kernel_backend": "<effective engine the numeric kernels ran on>",
      "fom": <zone-cycles/s>, "oom": bool, "cycles": N, "zone_cycles": N,
      "blocks": {"final": N, "max": N},
      "timings": {
        "wall_seconds": s, "kernel_seconds": s, "serial_seconds": s,
        "rebuild_buffer_cache_seconds": s,
        "regions": {name: {"serial": s, "kernel": s}},
        "kernels": {name: s}
      },
      "communication": {
        "cells_communicated": N, "cell_updates": N, "remote_messages": N,
        "mpi_counters": {<MPICounters fields>}
      },
      "memory": {"breakdown": {label: bytes}, "device_peak_bytes": N},
      "metrics": {
        "counters": {name: N}, "gauges": {name: x},
        "histograms": {name: {"buckets": {...}, "count", "sum", "min", "max"}},
        "per_cycle": [{"cycle": N, "counters": {...}}, ...]
      },
      # status == "error" only:
      "error": {"type": "...", "message": "...", "traceback": "..."},
      # optional (v3) — resumed and/or fault-injected points only:
      "resilience": {
        "resumed_from_cycle": N,                 # retry resumed here
        "faults": {"checks": {site: N}, "fired": {site: N}}
      },
      # optional (v5) — sharded (num_shards > 1) points only:
      "parallel": {
        "topology": {num_shards, generation, units, blocks, cost},
        "transport": "process" | "thread",
        "stage_seconds": {shard: {stage: s}}     # host wall-clock!
      }
    }
"""

from __future__ import annotations

import json
import os
import traceback
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, Union

from repro import __version__

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import RunSpec
    from repro.driver.driver import RunResult

ARTIFACT_SCHEMA_VERSION = 6


def _spec_header(spec: "RunSpec") -> dict:
    p, c = spec.params, spec.config
    return {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "cache_key": spec.cache_key(),
        "code_version": __version__,
        "label": spec.label,
        "spec": {
            "deck": spec.to_deck(),
            "ncycles": spec.ncycles,
            "warmup": spec.warmup,
        },
        "params": {
            "ndim": p.ndim,
            "mesh_size": p.mesh_size,
            "block_size": p.block_size,
            "num_levels": p.num_levels,
            "num_scalars": p.num_scalars,
            # v6: the refinement-policy axis (DESIGN §14).
            "refinement_policy": p.refinement_policy,
            "block_budget": p.block_budget,
        },
        "config": {
            "backend": c.backend,
            "mode": c.mode,
            "kernel_mode": c.kernel_mode,
            "kernel_backend": c.kernel_backend,
            "num_shards": c.num_shards,
            "total_ranks": c.total_ranks,
            "describe": c.describe(),
        },
    }


def result_to_artifact(
    spec: "RunSpec", result: "RunResult", attempts: int = 1
) -> dict:
    """Reduce a :class:`RunResult` to the schema-1 "ok" document."""
    doc = _spec_header(spec)
    doc.update(
        status="ok",
        attempts=attempts,
        kernel_backend=result.kernel_backend,
        fom=result.fom,
        oom=result.oom,
        cycles=result.cycles,
        zone_cycles=result.zone_cycles,
        blocks={"final": result.final_blocks, "max": result.max_blocks},
        timings={
            "wall_seconds": result.wall_seconds,
            "kernel_seconds": result.kernel_seconds,
            "serial_seconds": result.serial_seconds,
            "rebuild_buffer_cache_seconds": result.rebuild_buffer_cache_seconds,
            "regions": {
                name: {"serial": serial, "kernel": kernel}
                for name, (serial, kernel) in result.function_breakdown.items()
            },
            "kernels": dict(result.kernel_seconds_by_name),
        },
        communication={
            "cells_communicated": result.cells_communicated,
            "cell_updates": result.cell_updates,
            "remote_messages": result.remote_messages,
            "mpi_counters": dict(result.mpi_counters),
        },
        memory={
            "breakdown": dict(result.memory_breakdown),
            "device_peak_bytes": result.device_memory_peak,
        },
        metrics=dict(result.metrics),
    )
    if result.shards:
        # v5 optional section; stage_seconds is worker wall-clock — the
        # schema's sole nondeterministic field (see module docstring).
        doc["parallel"] = dict(result.shards)
    return doc


def error_artifact(
    spec: "RunSpec", exc: BaseException, attempts: int
) -> dict:
    """The schema-1 "error" document for a point that kept failing."""
    doc = _spec_header(spec)
    doc.update(
        status="error",
        attempts=attempts,
        error={
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": "".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
        },
    )
    return doc


def dumps_artifact(artifact: dict) -> str:
    """Canonical serialization: sorted keys, 2-space indent, newline."""
    return json.dumps(artifact, sort_keys=True, indent=2) + "\n"


def write_artifact(path: Union[str, Path], artifact: dict) -> Path:
    """Atomically persist one artifact (write-temp + rename), so a killed
    campaign never leaves a half-written point for resume to trip over."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
    tmp.write_text(dumps_artifact(artifact))
    os.replace(tmp, path)
    return path


def load_artifact(path: Union[str, Path]) -> dict:
    return json.loads(Path(path).read_text())


def iter_artifacts(directory: Union[str, Path]) -> Iterator[dict]:
    """Artifacts in a directory, sorted by filename for stable reports."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.json")):
        yield load_artifact(path)
