"""The unit of work a pool worker executes: one spec, fully isolated.

``execute_point`` never raises: any exception inside the simulated run —
bad parameters, a numeric blow-up, a timeout — is retried up to the
task's bound and then reduced to a structured error artifact, so one
crashed point cannot kill a campaign.  The payload is a single picklable
:class:`PointTask` (the ``RunSpec`` plus the retry/timeout policy), not
a bag of kwargs.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.api import RunSpec, Simulation
from repro.orchestration.artifacts import error_artifact, result_to_artifact


class PointTimeout(Exception):
    """A point exceeded its per-attempt wall-clock budget."""


@dataclass(frozen=True)
class PointTask:
    """One sweep point plus its failure policy, as sent to a worker."""

    spec: RunSpec
    #: Re-attempts after the first failure (total attempts = retries + 1).
    retries: int = 0
    #: Per-attempt wall-clock limit in seconds (None = unlimited).
    timeout_s: Optional[float] = None


@contextmanager
def _deadline(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`PointTimeout` after ``seconds`` of wall time.

    Uses ``SIGALRM`` (delivered to the worker process's main thread,
    which is where pool workers run tasks).  A no-op where alarms are
    unavailable (non-POSIX, or a non-main thread).
    """
    usable = (
        seconds is not None
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise PointTimeout(f"point exceeded {seconds}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def execute_point(task: PointTask) -> dict:
    """Run one point to an artifact — success or structured failure."""
    attempts = 0
    while True:
        attempts += 1
        try:
            with _deadline(task.timeout_s):
                result = Simulation(task.spec).run()
            return result_to_artifact(task.spec, result, attempts=attempts)
        except Exception as exc:  # noqa: BLE001 — isolation is the contract
            if attempts > task.retries:
                return error_artifact(task.spec, exc, attempts=attempts)
