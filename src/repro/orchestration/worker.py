"""The unit of work a pool worker executes: one spec, fully isolated.

``execute_point`` never raises: any exception inside the simulated run —
bad parameters, a numeric blow-up, a timeout, an injected fault — is
retried up to the task's bound and then reduced to a structured error
artifact, so one crashed point cannot kill a campaign.  The payload is a
single picklable :class:`PointTask` (the ``RunSpec`` plus the
retry/timeout/resilience policy), not a bag of kwargs.

When the task carries a ``checkpoint_dir``, each attempt checkpoints at
the spec's cadence and every *retry* resumes from the last valid
checkpoint instead of cycle 0 — the artifact records the resume point in
its ``resilience.resumed_from_cycle`` field, and the bitwise-resume
guarantee (DESIGN §9) means the resumed artifact's simulated quantities
are identical to an uninterrupted run's.

One :class:`~repro.resilience.FaultInjector` is built per *task*, not
per attempt: its counters persist across retries, so a ``max_fires=1``
fault fires once, crashes one attempt, and stays quiet on the resume —
exactly the transient-fault model the recovery path exists for.
"""

from __future__ import annotations

import json
import signal
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Optional

from repro.api import ProgressEvent, RunSpec, Simulation
from repro.orchestration.artifacts import error_artifact, result_to_artifact
from repro.resilience import FaultInjector, FaultPlan, latest_checkpoint


class PointTimeout(Exception):
    """A point exceeded its per-attempt wall-clock budget."""


@dataclass(frozen=True)
class PointTask:
    """One sweep point plus its failure policy, as sent to a worker."""

    spec: RunSpec
    #: Re-attempts after the first failure (total attempts = retries + 1).
    retries: int = 0
    #: Per-attempt wall-clock limit in seconds (None = unlimited).
    timeout_s: Optional[float] = None
    #: Where this point checkpoints (None disables checkpoint + resume).
    checkpoint_dir: Optional[str] = None
    #: Deterministic faults to arm inside this point's worker.
    fault_plan: Optional[FaultPlan] = None
    #: Append one :class:`~repro.api.ProgressEvent` JSON line per
    #: completed cycle to this file (None disables).  The service tails
    #: it to stream per-cycle progress; lines are flushed per cycle so a
    #: reader in another process sees each cycle as it completes.  On a
    #: retry the cycle numbers restart (or continue from the checkpoint
    #: resume point) — readers key on ``measured``/``ncycles``, not on
    #: line count.
    progress_path: Optional[str] = None


@contextmanager
def _deadline(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`PointTimeout` after ``seconds`` of wall time.

    Uses ``SIGALRM`` (delivered to the worker process's main thread,
    which is where pool workers run tasks).  A no-op where alarms are
    unavailable (non-POSIX, or a non-main thread).
    """
    usable = (
        seconds is not None
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise PointTimeout(f"point exceeded {seconds}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _attach_resilience(
    artifact: dict,
    resumed_from_cycle: Optional[int],
    injector: Optional[FaultInjector],
) -> None:
    """Add the optional ``resilience`` section (schema v3) when relevant."""
    section: dict = {}
    if resumed_from_cycle is not None:
        section["resumed_from_cycle"] = resumed_from_cycle
    if injector is not None and injector.armed:
        section["faults"] = injector.counters.to_dict()
    if section:
        artifact["resilience"] = section


@contextmanager
def _progress_sink(
    task: PointTask,
) -> Iterator[Optional[Callable]]:
    """Per-cycle hook appending ``ProgressEvent`` lines to the task's
    progress file (None when the task carries no ``progress_path``)."""
    if task.progress_path is None:
        yield None
        return
    path = Path(task.progress_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as stream:

        def on_cycle(driver) -> None:
            event = ProgressEvent.from_driver(driver, task.spec.ncycles)
            stream.write(
                json.dumps(event.to_dict(), sort_keys=True) + "\n"
            )
            stream.flush()

        yield on_cycle


def execute_point(task: PointTask) -> dict:
    """Run one point to an artifact — success or structured failure."""
    injector = (
        FaultInjector(task.fault_plan) if task.fault_plan is not None else None
    )
    attempts = 0
    resumed_from_cycle: Optional[int] = None
    while True:
        attempts += 1
        sim: Optional[Simulation] = None
        try:
            restart_from = None
            if task.checkpoint_dir is not None and attempts > 1:
                # Bounded-retry recovery: resume the crashed attempt from
                # the last valid checkpoint, not from cycle 0.
                restart_from = latest_checkpoint(task.checkpoint_dir)
            sim = Simulation(
                task.spec,
                checkpoint_dir=task.checkpoint_dir,
                restart_from=restart_from,
                fault_injector=injector,
            )
            with _deadline(task.timeout_s), _progress_sink(task) as on_cycle:
                result = sim.run(on_cycle=on_cycle)
            if sim.resumed_from_cycle is not None:
                resumed_from_cycle = sim.resumed_from_cycle
            if injector is not None:
                injector.check("campaign_worker")
            artifact = result_to_artifact(task.spec, result, attempts=attempts)
            _attach_resilience(artifact, resumed_from_cycle, injector)
            if injector is not None:
                injector.check("artifact_write")
            return artifact
        except Exception as exc:  # noqa: BLE001 — isolation is the contract
            if sim is not None and sim.resumed_from_cycle is not None:
                resumed_from_cycle = sim.resumed_from_cycle
            if attempts > task.retries:
                artifact = error_artifact(task.spec, exc, attempts=attempts)
                _attach_resilience(artifact, resumed_from_cycle, injector)
                return artifact
