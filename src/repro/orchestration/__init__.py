"""Parallel, resumable sweep orchestration.

The paper's results are parameter-sweep campaigns (mesh size x block
size x AMR depth x ranks-per-GPU, Figs. 5-10).  This package runs those
campaigns as fleets of :class:`~repro.api.RunSpec` points:

* :mod:`repro.orchestration.campaign` fans points out across a
  ``multiprocessing`` worker pool, isolating failures per point with
  bounded retry and an optional per-point timeout;
* :mod:`repro.orchestration.cache` persists every completed point under
  its content address so an interrupted campaign resumes by skipping
  finished points;
* :mod:`repro.orchestration.artifacts` defines the structured run
  artifact (JSON: FOM, per-region timings, MPI counters, memory
  footprint) that :mod:`repro.core.report` renders into the figures.
"""

from repro.orchestration.artifacts import (
    ARTIFACT_SCHEMA_VERSION,
    error_artifact,
    load_artifact,
    result_to_artifact,
    write_artifact,
)
from repro.orchestration.cache import RunCache
from repro.orchestration.campaign import (
    CampaignSummary,
    PointOutcome,
    load_campaign,
    run_campaign,
)
from repro.orchestration.worker import PointTask, PointTimeout, execute_point

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "CampaignSummary",
    "PointOutcome",
    "PointTask",
    "PointTimeout",
    "RunCache",
    "error_artifact",
    "execute_point",
    "load_artifact",
    "load_campaign",
    "result_to_artifact",
    "run_campaign",
    "write_artifact",
]
