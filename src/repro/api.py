"""The typed front door: ``RunSpec`` + ``Simulation``.

Every way of running one Parthenon-VIBE configuration — CLI, sweeps,
campaigns, benchmarks, examples — goes through this module:

* :class:`RunSpec` is the single serializable description of a run
  (deck-expressible parameters + platform + cycle counts).  It pickles
  cleanly (the worker-pool requirement), round-trips through the
  Parthenon deck format, and hashes to a stable content address
  (:meth:`RunSpec.cache_key`) used by the run cache for resumable
  campaigns.
* :class:`Simulation` is the facade that executes a spec:
  ``Simulation.from_deck(...)``, ``.run()``, ``.result()``.
* :func:`build_simulation_params` / :func:`build_execution_config` /
  :func:`build_optimization_flags` are the validating builders — they
  reject typos in *both* option names and option values with an
  actionable error listing the valid choices, instead of failing deep in
  the driver.

Old entry points (``repro.core.characterize.characterize``) remain as
thin shims that emit :class:`DeprecationWarning`.
"""

from __future__ import annotations

import dataclasses
import difflib
import hashlib
import json
import queue as queue_module
import threading
from dataclasses import dataclass, replace
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    Optional,
    Sequence,
    Union,
)

from repro import __version__
from repro.driver.driver import ParthenonDriver, RunResult
from repro.driver.execution import ExecutionConfig, OptimizationFlags
from repro.driver.input import parse_input, params_from_input, render_input
from repro.driver.params import SimulationParams
from repro.mesh.refinement import KNOWN_POLICIES
from repro.observability import Trace, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.faults import FaultInjector

__all__ = [
    "ConfigError",
    "ProgressEvent",
    "RunSpec",
    "Simulation",
    "Trace",
    "build_execution_config",
    "build_optimization_flags",
    "build_simulation_params",
    "iter_progress",
    "run",
]


class ConfigError(ValueError):
    """A run configuration that could never be valid (typo, bad choice)."""


#: The string-choice axes and their valid values, shared by the builders
#: and the CLI so every layer rejects the same typos the same way.
VALID_CHOICES: Dict[str, Sequence[str]] = {
    "backend": ("gpu", "cpu"),
    "mode": ("modeled", "numeric"),
    "kernel_mode": ("packed", "per_block"),
    "kernel_backend": ("numpy", "numba", "cupy"),
    "reconstruction": ("weno5", "plm"),
    "riemann": ("hll", "llf"),
    "refinement_policy": KNOWN_POLICIES,
}


def _suggest(given: str, valid: Sequence[str]) -> str:
    close = difflib.get_close_matches(given, list(valid), n=1, cutoff=0.5)
    return f" (did you mean {close[0]!r}?)" if close else ""


def _check_choice(option: str, value: object) -> None:
    valid = VALID_CHOICES[option]
    if value not in valid:
        raise ConfigError(
            f"invalid {option} {value!r}; valid choices: "
            f"{', '.join(valid)}{_suggest(str(value), valid)}"
        )


def _check_names(kind: str, given: Dict[str, object], valid: Sequence[str]) -> None:
    for name in given:
        if name not in valid:
            raise ConfigError(
                f"unknown {kind} option {name!r}; valid options: "
                f"{', '.join(sorted(valid))}{_suggest(name, valid)}"
            )


def build_optimization_flags(**flags: bool) -> OptimizationFlags:
    """Validating builder for :class:`OptimizationFlags`.

    Accepts only the boolean toggles (the ``*_SPEEDUP`` calibration
    constants are not settable here) and rejects misspelled flags with a
    suggestion.
    """
    valid = [
        f.name
        for f in dataclasses.fields(OptimizationFlags)
        if isinstance(f.default, bool)
    ]
    _check_names("optimization", flags, valid)
    for name, value in flags.items():
        if not isinstance(value, bool):
            raise ConfigError(
                f"optimization flag {name!r} must be a bool, got {value!r}"
            )
    return OptimizationFlags(**flags)


def build_execution_config(
    optimizations: Union[OptimizationFlags, Dict[str, bool], None] = None,
    **options: object,
) -> ExecutionConfig:
    """Validating builder for :class:`ExecutionConfig`.

    One funnel for every caller that assembles a platform configuration:
    unknown option names and invalid choice values fail *here*, with the
    valid choices spelled out, rather than deep inside the driver.
    ``optimizations`` may be an :class:`OptimizationFlags` or a plain
    dict of flag names (routed through :func:`build_optimization_flags`).
    """
    valid = [f.name for f in dataclasses.fields(ExecutionConfig)]
    valid.remove("optimizations")
    _check_names("execution", options, valid)
    for option in ("backend", "mode", "kernel_mode", "kernel_backend"):
        if option in options:
            _check_choice(option, options[option])
    if isinstance(optimizations, dict):
        optimizations = build_optimization_flags(**optimizations)
    elif optimizations is None:
        optimizations = OptimizationFlags()
    try:
        return ExecutionConfig(optimizations=optimizations, **options)
    except ValueError as exc:  # range errors from __post_init__
        raise ConfigError(str(exc)) from exc


def build_simulation_params(**options: object) -> SimulationParams:
    """Validating builder for :class:`SimulationParams`."""
    valid = [f.name for f in dataclasses.fields(SimulationParams)]
    _check_names("simulation", options, valid)
    for option in ("reconstruction", "riemann", "refinement_policy"):
        if option in options:
            _check_choice(option, options[option])
    try:
        params = SimulationParams(**options)
    except ValueError as exc:
        raise ConfigError(str(exc)) from exc
    if params.refinement_policy == "block_budget" and params.block_budget < 1:
        raise ConfigError(
            "refinement_policy 'block_budget' needs block_budget >= 1 "
            f"(got {params.block_budget})"
        )
    return params


# --------------------------------------------------------------- RunSpec

#: ExecutionConfig fields settable through the JSON wire schema
#: (:meth:`RunSpec.from_json`).  Only primitive knobs travel over the
#: wire; hardware specs, calibration constants and the optimization
#: speedup constants stay server-side defaults.
JSON_CONFIG_FIELDS: Sequence[str] = (
    "backend",
    "num_gpus",
    "ranks_per_gpu",
    "cpu_ranks",
    "num_nodes",
    "mode",
    "kernel_mode",
    "kernel_backend",
    "checkpoint_every",
    "num_shards",
)

#: SimulationParams fields settable through the JSON wire schema — all
#: of them (every field is a primitive).
JSON_PARAMS_FIELDS: Sequence[str] = tuple(
    f.name for f in dataclasses.fields(SimulationParams)
)

#: Top-level keys of the RunSpec JSON document.
JSON_SPEC_FIELDS: Sequence[str] = (
    "deck",
    "params",
    "config",
    "ncycles",
    "warmup",
    "label",
)


@dataclass(frozen=True)
class RunSpec:
    """One fully-specified run: what to solve, where, and for how long.

    The unit of work for sweeps and campaigns.  Frozen, hashable,
    picklable (workers receive a ``RunSpec``, not a bag of kwargs), and
    deck-round-trippable.  ``label`` is presentation-only and excluded
    from the cache identity, so relabeling a point never invalidates its
    cached artifact.
    """

    params: SimulationParams = SimulationParams()
    config: ExecutionConfig = ExecutionConfig()
    ncycles: int = 4
    warmup: int = 2
    label: str = ""

    def __post_init__(self) -> None:
        if self.ncycles < 1:
            raise ConfigError(f"ncycles must be >= 1, got {self.ncycles}")
        if self.warmup < 0:
            raise ConfigError(f"warmup must be >= 0, got {self.warmup}")

    # ------------------------------------------------------------- decks

    def to_deck(self) -> str:
        """Render as a Parthenon-style input deck (with a ``<campaign>``
        section carrying the cycle counts and label)."""
        deck = render_input(self.params, self.config)
        lines = [
            "",
            "<campaign>",
            f"ncycles = {self.ncycles}",
            f"warmup = {self.warmup}",
        ]
        if self.label:
            lines.append(f"label = {self.label}")
        return deck + "\n".join(lines) + "\n"

    @classmethod
    def from_deck(
        cls,
        text: str,
        ncycles: Optional[int] = None,
        warmup: Optional[int] = None,
        label: Optional[str] = None,
    ) -> "RunSpec":
        """Parse a deck; explicit arguments override the ``<campaign>``
        section, which overrides the defaults."""
        try:
            params, config = params_from_input(text)
        except ValueError as exc:  # bad deck values -> one error type
            raise ConfigError(f"invalid input deck: {exc}") from exc
        camp = parse_input(text).get("campaign", {})
        return cls(
            params=params,
            config=config,
            ncycles=int(camp.get("ncycles", 4)) if ncycles is None else ncycles,
            warmup=int(camp.get("warmup", 2)) if warmup is None else warmup,
            label=str(camp.get("label", "")) if label is None else label,
        )

    @classmethod
    def from_file(cls, path: Union[str, Path], **overrides) -> "RunSpec":
        return cls.from_deck(Path(path).read_text(), **overrides)

    # -------------------------------------------------------------- JSON

    def to_json(self) -> dict:
        """JSON-dict form of the spec — the service wire schema.

        Round-trips through :meth:`from_json` for every wire-expressible
        spec (anything built from the validating builders' primitive
        options).  Optimization flags appear only when enabled, so the
        common case is compact.
        """
        config = {
            name: getattr(self.config, name) for name in JSON_CONFIG_FIELDS
        }
        flags = {
            f.name: getattr(self.config.optimizations, f.name)
            for f in dataclasses.fields(OptimizationFlags)
            if isinstance(f.default, bool)
            and getattr(self.config.optimizations, f.name)
        }
        if flags:
            config["optimizations"] = flags
        doc = {
            "params": dataclasses.asdict(self.params),
            "config": config,
            "ncycles": self.ncycles,
            "warmup": self.warmup,
        }
        if self.label:
            doc["label"] = self.label
        return doc

    @classmethod
    def from_json(cls, doc: object) -> "RunSpec":
        """Build a spec from its JSON-dict form, validating every layer.

        Two shapes are accepted: ``{"deck": "...", ...}`` (a rendered
        input deck, exclusive with ``params``/``config``) and the
        structured form ``{"params": {...}, "config": {...}, "ncycles":
        N, "warmup": N, "label": "..."}``.  Unknown field names anywhere
        — top level, params, config — raise :class:`ConfigError` with
        the valid options listed, exactly like the builders.
        """
        if not isinstance(doc, dict):
            raise ConfigError(
                f"RunSpec JSON must be an object, got {type(doc).__name__}"
            )
        _check_names("RunSpec", doc, JSON_SPEC_FIELDS)
        if "deck" in doc:
            if "params" in doc or "config" in doc:
                raise ConfigError(
                    "RunSpec JSON takes either 'deck' or "
                    "'params'/'config', not both"
                )
            if not isinstance(doc["deck"], str):
                raise ConfigError("RunSpec 'deck' must be a string")
            kwargs = {}
            for field in ("ncycles", "warmup", "label"):
                if field in doc:
                    kwargs[field] = doc[field]
            try:
                return cls.from_deck(doc["deck"], **kwargs)
            except (TypeError, ValueError) as exc:
                raise ConfigError(f"invalid RunSpec JSON: {exc}") from exc
        params_doc = doc.get("params", {})
        config_doc = doc.get("config", {})
        for name, value in (("params", params_doc), ("config", config_doc)):
            if not isinstance(value, dict):
                raise ConfigError(
                    f"RunSpec {name!r} must be an object, "
                    f"got {type(value).__name__}"
                )
        config_doc = dict(config_doc)
        optimizations = config_doc.pop("optimizations", None)
        if optimizations is not None and not isinstance(optimizations, dict):
            raise ConfigError("RunSpec 'config.optimizations' must be an object")
        _check_names("execution", config_doc, JSON_CONFIG_FIELDS)
        _check_names("simulation", params_doc, JSON_PARAMS_FIELDS)
        params = build_simulation_params(**params_doc)
        config = build_execution_config(
            optimizations=optimizations, **config_doc
        )
        try:
            return cls(
                params=params,
                config=config,
                ncycles=doc.get("ncycles", 4),
                warmup=doc.get("warmup", 2),
                label=str(doc.get("label", "")),
            )
        except TypeError as exc:
            raise ConfigError(f"invalid RunSpec JSON: {exc}") from exc

    # ---------------------------------------------------------- identity

    def cache_key(self) -> str:
        """Content address of this run: a sha256 over the canonical JSON
        of (deck, full ExecutionConfig including specs/calibration/
        OptimizationFlags, cycle counts, code version).

        Any field that changes the simulated outcome changes the key;
        ``label`` does not participate, and neither does
        ``checkpoint_every`` — checkpoint cadence is observability, not
        physics (the bitwise-resume guarantee), so turning checkpoints on
        never invalidates a cached artifact.  ``num_shards`` is excluded
        for the same reason: sharded execution is 0-ULP identical to
        serial (DESIGN §12), so the shard count is a how, not a what.
        """
        outcome_config = replace(
            self.config, checkpoint_every=0, num_shards=1
        )
        config_fields = dataclasses.asdict(outcome_config)
        config_fields.pop("checkpoint_every", None)
        config_fields.pop("num_shards", None)
        payload = {
            "code_version": __version__,
            "deck": render_input(self.params, outcome_config),
            "params": dataclasses.asdict(self.params),
            "config": config_fields,
            "ncycles": self.ncycles,
            "warmup": self.warmup,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def replace(self, **changes) -> "RunSpec":
        """A copy with fields replaced (``dataclasses.replace`` sugar)."""
        return replace(self, **changes)

    def describe(self) -> str:
        base = self.label or (
            f"mesh{self.params.mesh_size}-block{self.params.block_size}"
            f"-lv{self.params.num_levels}"
        )
        return f"{base} [{self.config.describe()}]"


# ------------------------------------------------------------ Simulation


class Simulation:
    """Facade over :class:`ParthenonDriver` for one :class:`RunSpec`.

    ``run()`` executes the spec's warmup + measured cycles and returns
    the :class:`RunResult`; ``result()`` returns the last result, running
    first if needed.  The underlying driver stays reachable via
    ``.driver`` for callers that need mesh/profiler internals.

    With ``trace=True`` a :class:`repro.observability.TraceRecorder` is
    attached to the driver's profiler and :meth:`trace` returns the
    measured cycles' span tree as a :class:`Trace` (warmup spans are
    discarded at the warmup boundary, like every other metric).  Tracing
    never changes the simulated outcome — the profiler-invariance test
    pins the traced and untraced ``RunResult`` equal to 0 ULP.

    Resilience (DESIGN §9): ``checkpoint_dir`` enables crash-consistent
    periodic checkpoints (cadence from ``config.checkpoint_every``, or
    every cycle when the config leaves it 0); ``restart_from`` resumes
    from a checkpoint directory / manifest instead of cycle 0, and the
    resumed run's ``RunResult`` and canonical trace are bitwise identical
    to an uninterrupted run's; ``fault_injector`` arms deterministic
    fault sites inside the driver for resilience tests.
    """

    def __init__(
        self,
        spec: RunSpec,
        initial_conditions: Optional[Callable] = None,
        trace: bool = False,
        checkpoint_dir: Union[str, Path, None] = None,
        restart_from: Union[str, Path, None] = None,
        fault_injector: Optional["FaultInjector"] = None,
    ) -> None:
        if not isinstance(spec, RunSpec):
            raise ConfigError(
                f"Simulation expects a RunSpec, got {type(spec).__name__}"
            )
        self.spec = spec
        self._initial_conditions = initial_conditions
        self._recorder: Optional[TraceRecorder] = (
            TraceRecorder() if trace else None
        )
        self._driver: Optional[ParthenonDriver] = None
        self._result: Optional[RunResult] = None
        self._checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self._restart_from = Path(restart_from) if restart_from else None
        self._fault_injector = fault_injector
        #: Cycle the driver resumed from (``restart_from``), else None.
        self.resumed_from_cycle: Optional[int] = None
        #: The :class:`repro.resilience.CheckpointManager` of the last
        #: run, when checkpointing was enabled.
        self.checkpointer = None

    @classmethod
    def from_deck(
        cls,
        deck: Union[str, Path],
        initial_conditions: Optional[Callable] = None,
        trace: bool = False,
        checkpoint_dir: Union[str, Path, None] = None,
        restart_from: Union[str, Path, None] = None,
        fault_injector: Optional["FaultInjector"] = None,
        **overrides,
    ) -> "Simulation":
        """Build from deck text or a deck file path."""
        if isinstance(deck, Path):
            spec = RunSpec.from_file(deck, **overrides)
        elif "\n" in deck or "<" in deck:
            spec = RunSpec.from_deck(deck, **overrides)
        else:
            spec = RunSpec.from_file(deck, **overrides)
        return cls(
            spec,
            initial_conditions=initial_conditions,
            trace=trace,
            checkpoint_dir=checkpoint_dir,
            restart_from=restart_from,
            fault_injector=fault_injector,
        )

    def _restore_driver(self) -> ParthenonDriver:
        from repro.driver.outputs import RestartError
        from repro.resilience.checkpoint import read_checkpoint, restore_driver
        from repro.observability.trace import TraceRecorder as _Recorder

        payload = read_checkpoint(self._restart_from)
        if payload["params"] != self.spec.params:
            raise RestartError(
                f"checkpoint {self._restart_from} was written for different "
                f"simulation parameters than this spec"
            )
        if replace(payload["config"], checkpoint_every=0, num_shards=1) != replace(
            self.spec.config, checkpoint_every=0, num_shards=1
        ):
            raise RestartError(
                f"checkpoint {self._restart_from} was written for a "
                f"different execution config than this spec"
            )
        driver = restore_driver(payload, fault_injector=self._fault_injector)
        if self._recorder is not None:
            if not isinstance(driver.prof.recorder, _Recorder):
                raise RestartError(
                    "cannot trace a resume from an untraced checkpoint; "
                    "run the checkpointing simulation with trace=True"
                )
            # Adopt the restored recorder: it already holds the spans of
            # the cycles that ran before the checkpoint.
            self._recorder = driver.prof.recorder
        self.resumed_from_cycle = payload["cycle"]
        return driver

    @property
    def driver(self) -> ParthenonDriver:
        if self._driver is None:
            if self._restart_from is not None:
                self._driver = self._restore_driver()
            else:
                self._driver = ParthenonDriver(
                    self.spec.params,
                    self.spec.config,
                    initial_conditions=self._initial_conditions,
                    recorder=self._recorder,
                    fault_injector=self._fault_injector,
                )
        return self._driver

    def run(
        self, on_cycle: Optional[Callable[[ParthenonDriver], None]] = None
    ) -> RunResult:
        """Execute the spec and return the result.

        The first call consumes the lazily-built driver (so pre-run
        inspection of ``.driver`` sees the same mesh the run uses);
        calling ``run()`` again executes a fresh driver.

        ``on_cycle`` is invoked with the driver after every completed
        cycle (warmup cycles included) — the per-cycle progress hook
        behind :func:`iter_progress` and the service event stream.  It
        runs outside every profiler region and after the cycle's metrics
        snapshot, so observing progress never perturbs the simulated
        outcome.
        """
        if self._result is not None:
            self._driver = None
        if self._recorder is not None and self._restart_from is None:
            self._recorder.clear()
        checkpointer = None
        if self._checkpoint_dir is not None:
            from repro.resilience.checkpoint import CheckpointManager

            checkpointer = CheckpointManager(
                self._checkpoint_dir,
                every=self.spec.config.checkpoint_every or 1,
            )
        self.checkpointer = checkpointer
        try:
            self._result = self.driver.run(
                self.spec.ncycles,
                warmup=self.spec.warmup,
                checkpointer=checkpointer,
                on_cycle=on_cycle,
            )
        finally:
            # Shard workers and their shared segments are only needed
            # while cycles execute; results/trace/mesh stay readable.
            self.driver.shutdown_shards()
        return self._result

    def trace(self) -> Trace:
        """The last run's span tree (running first if needed).

        Only available when the simulation was created with
        ``trace=True`` — tracing is an explicit opt-in, so untraced runs
        retain no per-event state at all.
        """
        if self._recorder is None:
            raise ConfigError(
                "tracing is not enabled; construct with "
                "Simulation(spec, trace=True)"
            )
        self.result()
        p, c = self.spec.params, self.spec.config
        meta = {
            "backend": c.backend,
            "block_size": p.block_size,
            # Effective engine (post-fallback), not the request: golden
            # traces must be invariant to which backends are installed
            # apart from this one field.
            "kernel_backend": self.driver.kernel_backend,
            "kernel_mode": c.kernel_mode,
            "label": self.spec.label,
            "mesh_size": p.mesh_size,
            "mode": c.mode,
            "ncycles": self.spec.ncycles,
            "ndim": p.ndim,
            "num_levels": p.num_levels,
            "num_scalars": p.num_scalars,
            "num_shards": c.num_shards,
            "refinement_policy": p.refinement_policy,
            "total_ranks": c.total_ranks,
            "warmup": self.spec.warmup,
        }
        if p.block_budget:
            meta["block_budget"] = p.block_budget
        result = self.result()
        if result.shards:
            # Shard topology + per-shard timings (canonical schema v3).
            # The timings are host wall-clock — the one documented
            # exception to trace byte-determinism, present only when the
            # run actually sharded.
            meta["shards"] = result.shards
        return self._recorder.to_trace(
            meta=meta, metrics=self.driver.metrics.to_dict()
        )

    def result(self) -> RunResult:
        """The last run's result, running the simulation first if needed."""
        if self._result is None:
            return self.run()
        return self._result

    def artifact(self) -> dict:
        """The run-artifact JSON document for this simulation's result."""
        from repro.orchestration.artifacts import result_to_artifact

        return result_to_artifact(self.spec, self.result())


def run(
    spec: RunSpec, initial_conditions: Optional[Callable] = None
) -> RunResult:
    """One-call convenience: execute ``spec`` and return its result."""
    return Simulation(spec, initial_conditions=initial_conditions).run()


# -------------------------------------------------------------- progress


@dataclass(frozen=True)
class ProgressEvent:
    """One completed cycle's cumulative progress.

    Derived from the :class:`~repro.observability.MetricsRegistry`
    per-cycle snapshot the driver appends at every cycle boundary —
    simulated quantities only, no wall-clock — so a progress stream is
    deterministic for a deterministic spec.
    """

    #: Cycles completed since the start of the run, warmup included.
    cycle: int
    #: Measured cycles completed (0 while the warmup front develops).
    measured: int
    #: Measured-cycle target — ``done`` when ``measured`` reaches it.
    ncycles: int
    #: True while this is still a warmup cycle (discarded from metrics).
    warmup: bool
    #: Current block count — the AMR activity signal.
    blocks: int
    #: Cumulative counter snapshot (kernel launches, ghost traffic,
    #: remesh events, ...) as of this cycle.
    counters: Dict[str, float]

    @property
    def done(self) -> bool:
        return self.measured >= self.ncycles

    def to_dict(self) -> dict:
        """JSON-clean dict (the service event-stream line format)."""
        return {
            "cycle": self.cycle,
            "measured": self.measured,
            "ncycles": self.ncycles,
            "warmup": self.warmup,
            "blocks": self.blocks,
            "counters": dict(self.counters),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ProgressEvent":
        return cls(
            cycle=int(doc["cycle"]),
            measured=int(doc["measured"]),
            ncycles=int(doc["ncycles"]),
            warmup=bool(doc["warmup"]),
            blocks=int(doc["blocks"]),
            counters=dict(doc["counters"]),
        )

    @classmethod
    def from_driver(
        cls, driver: ParthenonDriver, ncycles: int
    ) -> "ProgressEvent":
        """Snapshot the driver's registry right after a completed cycle."""
        metrics = driver.metrics
        if metrics.cycle_snapshots:
            counters = dict(metrics.cycle_snapshots[-1]["counters"])
        else:  # pragma: no cover — end_cycle always precedes the hook
            counters = dict(sorted(metrics.counters.items()))
        in_warmup = not driver._measuring
        return cls(
            cycle=driver.cycle,
            measured=0 if in_warmup else driver.prof.cycles,
            ncycles=ncycles,
            warmup=in_warmup,
            blocks=int(metrics.gauges.get("blocks", 0)),
            counters=counters,
        )


def iter_progress(sim: Simulation) -> Iterator[ProgressEvent]:
    """Run ``sim`` and yield a :class:`ProgressEvent` per completed cycle.

    The simulation executes on a background thread while events are
    consumed; the final event has ``done == True`` (unless the run hit
    OOM first), and by the time the iterator is exhausted
    ``sim.result()`` is available without re-running.  An exception
    inside the run is re-raised here, after any events that preceded it.

    Abandoning the iterator early does not cancel the run — it completes
    in the background and remaining events are discarded.
    """
    if not isinstance(sim, Simulation):
        raise ConfigError(
            f"iter_progress expects a Simulation, got {type(sim).__name__}"
        )
    events: "queue_module.Queue[object]" = queue_module.Queue()
    finished = object()

    def pump() -> None:
        try:
            sim.run(
                on_cycle=lambda driver: events.put(
                    ProgressEvent.from_driver(driver, sim.spec.ncycles)
                )
            )
        except BaseException as exc:  # re-raised on the consumer side
            events.put(exc)
        else:
            events.put(finished)

    worker = threading.Thread(
        target=pump, name="repro-iter-progress", daemon=True
    )
    worker.start()
    while True:
        item = events.get()
        if item is finished:
            worker.join()
            return
        if isinstance(item, BaseException):
            worker.join()
            raise item
        yield item
