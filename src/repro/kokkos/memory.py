"""Labeled memory tracking, mirroring the paper's Fig. 10 methodology.

The paper attributes GPU device memory to (1) Parthenon/Kokkos mesh
allocations and (2) MPI communication buffers plus the Open MPI driver, via
Kokkos Tools and Nsight Systems allocation traces.  This tracker keeps the
same labeled view: current bytes and high-water marks per label and per rank,
with an out-of-memory check against a device capacity.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Canonical labels used across the package.
KOKKOS_MESH = "kokkos_mesh"
KOKKOS_AUX = "kokkos_aux"
MPI_BUFFERS = "mpi_buffers"
MPI_DRIVER = "mpi_driver"


class OutOfMemoryError(RuntimeError):
    """Raised when tracked device usage exceeds the device capacity —
    the OOM wall of Section IV-E."""


class MemoryTracker:
    """Current/high-water byte accounting by (label, rank)."""

    def __init__(self, device_capacity_bytes: Optional[int] = None) -> None:
        self.device_capacity_bytes = device_capacity_bytes
        self._current: Dict[Tuple[str, int], int] = defaultdict(int)
        self._high_water: Dict[Tuple[str, int], int] = defaultdict(int)

    # ----------------------------------------------------------- mutation

    def allocate(self, label: str, nbytes: int, rank: int = 0) -> None:
        if nbytes < 0:
            raise ValueError(f"negative allocation {nbytes}")
        key = (label, rank)
        self._current[key] += nbytes
        self._high_water[key] = max(self._high_water[key], self._current[key])

    def free(self, label: str, nbytes: int, rank: int = 0) -> None:
        key = (label, rank)
        if nbytes > self._current[key]:
            raise ValueError(
                f"freeing {nbytes} bytes from {label!r}/rank{rank} which "
                f"holds only {self._current[key]}"
            )
        self._current[key] -= nbytes

    def set_level(self, label: str, nbytes: int, rank: int = 0) -> None:
        """Set a label's current usage outright (for model-derived levels)."""
        if nbytes < 0:
            raise ValueError(f"negative level {nbytes}")
        key = (label, rank)
        self._current[key] = nbytes
        self._high_water[key] = max(self._high_water[key], nbytes)

    # ------------------------------------------------------------ queries

    def current(self, label: Optional[str] = None, rank: Optional[int] = None) -> int:
        return self._sum(self._current, label, rank)

    def high_water(
        self, label: Optional[str] = None, rank: Optional[int] = None
    ) -> int:
        return self._sum(self._high_water, label, rank)

    def _sum(
        self,
        table: Dict[Tuple[str, int], int],
        label: Optional[str],
        rank: Optional[int],
    ) -> int:
        return sum(
            v
            for (lbl, rnk), v in table.items()
            if (label is None or lbl == label)
            and (rank is None or rnk == rank)
        )

    def breakdown(self) -> Dict[str, int]:
        """Current bytes per label, summed over ranks (Fig. 10's bars)."""
        out: Dict[str, int] = defaultdict(int)
        for (label, _), v in self._current.items():
            out[label] += v
        return dict(out)

    def check_capacity(self) -> None:
        """Raise :class:`OutOfMemoryError` if usage exceeds device capacity."""
        if self.device_capacity_bytes is None:
            return
        used = self.current()
        if used > self.device_capacity_bytes:
            raise OutOfMemoryError(
                f"device memory exhausted: {used / 2**30:.1f} GiB used of "
                f"{self.device_capacity_bytes / 2**30:.1f} GiB"
            )
