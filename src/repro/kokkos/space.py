"""Execution and memory spaces, mirroring Kokkos' abstractions."""

from __future__ import annotations

import enum


class ExecutionSpace(enum.Enum):
    """Where a kernel runs."""

    HOST_SERIAL = "host_serial"
    HOST_OPENMP = "host_openmp"
    CUDA = "cuda"

    @property
    def is_device(self) -> bool:
        return self is ExecutionSpace.CUDA


class MemorySpace(enum.Enum):
    """Where an allocation lives.

    Parthenon allocates all simulation data directly in device memory on GPU
    builds (Section II-C), so the memory tracker places mesh data in
    ``DEVICE`` whenever the execution space is CUDA.
    """

    HOST = "host"
    DEVICE = "device"
