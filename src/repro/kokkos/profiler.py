"""Kokkos-Tools-style profiler over the *simulated* clock.

Regions are pushed/popped around the driver's functions (the names of
Fig. 3: ``CalculateFluxes``, ``SendBoundBufs``, ``RedistributeAndRefine-
MeshBlocks``, …).  Time is attributed to the innermost open region, split
into the paper's two categories:

* ``kernel`` — inside a named kernel launch (GPU-offloaded, or data-parallel
  on the CPU), and
* ``serial`` — everything else (Section II-C's "serial portion").

The per-kernel accumulation regenerates Table III's duration column; the
per-region split regenerates Figs. 7, 9, 11 and 12.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.observability.trace import NULL_RECORDER, NullRecorder


@dataclass
class RegionTimes:
    """Seconds attributed to one region, split by category."""

    serial: float = 0.0
    kernel: float = 0.0

    @property
    def total(self) -> float:
        return self.serial + self.kernel


class Profiler:
    """Accumulates simulated seconds by region and by kernel."""

    TOPLEVEL = "other"

    def __init__(self, recorder: Optional[NullRecorder] = None) -> None:
        self._stack: List[str] = []
        self.regions: Dict[str, RegionTimes] = defaultdict(RegionTimes)
        self.kernel_seconds: Dict[str, float] = defaultdict(float)
        self.kernel_launches: Dict[str, int] = defaultdict(int)
        self.cycles: int = 0
        #: Serialized simulated-timeline events: (region, category,
        #: kernel-or-None, start_s, duration_s, cycle).  Only retained
        #: while a live recorder is attached — without a consumer the
        #: list would grow unboundedly over long runs.
        self.events: List[Tuple[str, str, Optional[str], float, float, int]] = []
        #: Span-tree consumer (:class:`repro.observability.TraceRecorder`);
        #: the shared no-op :data:`NULL_RECORDER` when tracing is off.
        self.recorder: NullRecorder = recorder if recorder is not None else NULL_RECORDER
        self._now = 0.0

    def attach(self, recorder: NullRecorder) -> None:
        """Attach a recorder; subsequent charges are recorded as spans."""
        self.recorder = recorder

    # ------------------------------------------------------------- regions

    @contextmanager
    def region(self, name: str) -> Iterator[None]:
        """Scope all time charged inside to ``name``."""
        self._stack.append(name)
        self.recorder.open_region(name, self._now, self.cycles)
        try:
            yield
        finally:
            self._stack.pop()
            self.recorder.close_region(name, self._now, self.cycles)

    @property
    def current_region(self) -> str:
        return self._stack[-1] if self._stack else self.TOPLEVEL

    # ------------------------------------------------------------ charging

    def add_serial(self, seconds: float) -> None:
        """Charge serial-portion time to the current region."""
        if seconds < 0:
            raise ValueError(f"negative time {seconds}")
        region = self.current_region
        self.regions[region].serial += seconds
        if self.recorder.active:
            self.events.append(
                (region, "serial", None, self._now, seconds, self.cycles)
            )
            self.recorder.record(
                "serial", region, None, self._now, seconds, self.cycles
            )
        self._now += seconds

    def add_kernel(
        self,
        name: str,
        seconds: float,
        cells: Optional[int] = None,
        bytes: Optional[int] = None,
        launches: Optional[int] = None,
        space: Optional[str] = None,
    ) -> None:
        """Charge kernel time to the current region and the kernel's bin.

        The optional keywords are launch metadata forwarded to the
        attached recorder (span ``meta``); they never affect accounting.
        """
        if seconds < 0:
            raise ValueError(f"negative time {seconds}")
        region = self.current_region
        self.regions[region].kernel += seconds
        self.kernel_seconds[name] += seconds
        self.kernel_launches[name] += 1
        if self.recorder.active:
            meta = {
                key: value
                for key, value in (
                    ("cells", cells),
                    ("bytes", bytes),
                    ("launches", launches),
                    ("space", space),
                )
                if value is not None
            }
            self.events.append(
                (region, "kernel", name, self._now, seconds, self.cycles)
            )
            self.recorder.record(
                "kernel", region, name, self._now, seconds, self.cycles, meta
            )
        self._now += seconds

    def end_cycle(self) -> None:
        self.cycles += 1
        self.recorder.end_cycle(self.cycles)

    # ------------------------------------------------------------- queries

    @property
    def total_seconds(self) -> float:
        return sum(r.total for r in self.regions.values())

    @property
    def total_kernel_seconds(self) -> float:
        return sum(r.kernel for r in self.regions.values())

    @property
    def total_serial_seconds(self) -> float:
        return sum(r.serial for r in self.regions.values())

    def kernel_fraction(self) -> float:
        """Fraction of total time inside kernels (Fig. 9's split)."""
        total = self.total_seconds
        return self.total_kernel_seconds / total if total > 0 else 0.0

    def function_breakdown(self) -> Dict[str, RegionTimes]:
        """Per-function times, Fig. 11/12 style (sorted by total, desc)."""
        return dict(
            sorted(
                self.regions.items(), key=lambda kv: kv[1].total, reverse=True
            )
        )

    def top_kernels(self, n: int = 10) -> List[Tuple[str, float]]:
        """The n most time-consuming kernels (Table III's selection)."""
        ranked = sorted(
            self.kernel_seconds.items(), key=lambda kv: kv[1], reverse=True
        )
        return ranked[:n]

    def to_chrome_trace(self) -> dict:
        """Export the simulated timeline as a Chrome-trace/Perfetto JSON.

        Two lanes: tid 1 carries the host serial portion, tid 2 the device
        kernels — the Nsight-Systems-style view of the run.  Timestamps are
        simulated microseconds.
        """
        trace = []
        for region, category, kernel, start, dur, cycle in self.events:
            trace.append(
                {
                    "name": kernel or region,
                    "cat": category,
                    "ph": "X",
                    "ts": start * 1e6,
                    "dur": dur * 1e6,
                    "pid": 1,
                    "tid": 1 if category == "serial" else 2,
                    "args": {"region": region, "cycle": cycle},
                }
            )
        return {
            "traceEvents": trace,
            "displayTimeUnit": "ms",
            "otherData": {"source": "repro simulated platform"},
        }

    def merge(self, other: "Profiler") -> None:
        """Fold another profiler's accumulations into this one."""
        for name, times in other.regions.items():
            self.regions[name].serial += times.serial
            self.regions[name].kernel += times.kernel
        for name, sec in other.kernel_seconds.items():
            self.kernel_seconds[name] += sec
        for name, cnt in other.kernel_launches.items():
            self.kernel_launches[name] += cnt
        self.cycles += other.cycles
