"""Kernel launches and the static per-kernel profiles behind Table III.

A :class:`KernelLaunch` is one instrumented ``parallel_for``-style dispatch:
it carries the work geometry (cells, FLOPs, bytes) the platform models need.
A :class:`KernelProfile` captures the *static* microarchitectural character
of each named kernel — register pressure, CUDA block configuration, memory
access efficiency, and warp-divergence behavior — matching what the paper
extracted with Nsight Compute and PTX inspection (Section VII-A):

* ``CalculateFluxes`` uses >100 registers/thread, limiting active warps per
  SM to four (24% occupancy), and is launched with 128-thread CUDA blocks in
  which only one warp does useful work ("line" kernels sweep one mesh-block
  x1-line per warp, so half the lanes idle when the block size is 16).
* Copy-style kernels (``SendBoundBufs``/``SetBounds`` pack/unpack,
  ``WeightedSumData``) have low register counts, near-full occupancy and
  arithmetic intensity below one.

The numeric per-cell FLOP/byte figures assume the standard VIBE configuration
(3D, ``num_scalars = 8`` → 11 components); the driver scales them linearly
for other configurations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.kokkos.space import ExecutionSpace

#: Component count of the reference VIBE configuration the per-cell numbers
#: in :data:`KERNEL_PROFILES` were derived for.
REFERENCE_NCOMP = 11


@dataclass(frozen=True)
class KernelProfile:
    """Static microarchitectural character of one named kernel."""

    name: str
    registers_per_thread: int
    threads_per_block: int = 128
    #: Warps per CUDA block doing useful work (PTX inspection showed 1 of 4
    #: for CalculateFluxes).
    effective_warps_per_block: int = 4
    #: True when each warp sweeps one mesh-block x1-line, so lanes beyond
    #: the block size idle (control divergence at small blocks).
    line_kernel: bool = False
    #: Fraction of instructions outside the divergent line loop (blends the
    #: warp-utilization penalty for line kernels).
    uniform_fraction: float = 0.4
    #: Achievable fraction of peak DRAM bandwidth for this kernel's access
    #: pattern (sparse mesh-block layouts achieve far below streaming peak).
    mem_efficiency: float = 0.5
    #: True for kernels Parthenon launches once per MeshBlock rather than
    #: once per pack (refinement tagging, per-block reductions).  Their cost
    #: is dominated by launch overhead at small block sizes — the reason
    #: Table III shows them with 2-6% SM utilization.
    per_block_launch: bool = False
    #: FLOPs and DRAM bytes per geometric cell at the reference 11-component
    #: VIBE configuration.
    flops_per_cell: float = 0.0
    bytes_per_cell: float = 8.0

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs/byte — Table III's last column."""
        if self.bytes_per_cell == 0:
            return 0.0
        return self.flops_per_cell / self.bytes_per_cell


#: Profiles for the ten most time-consuming kernels of Table III plus the
#: auxiliary kernels the driver launches.  Register counts are chosen so the
#: CUDA occupancy calculation lands on the occupancies Nsight reported
#: (e.g. 104 regs x 128 threads -> 4 blocks/SM -> 16/64 warps ~ 24%).
KERNEL_PROFILES: Dict[str, KernelProfile] = {
    p.name: p
    for p in [
        KernelProfile(
            "CalculateFluxes",
            registers_per_thread=104,
            effective_warps_per_block=1,
            line_kernel=True,
            uniform_fraction=0.4,
            mem_efficiency=0.18,
            flops_per_cell=9000.0,
            bytes_per_cell=2400.0,
        ),
        KernelProfile(
            "FirstDerivative",
            registers_per_thread=64,
            line_kernel=True,
            uniform_fraction=0.9,
            mem_efficiency=0.50,
            flops_per_cell=640.0,
            bytes_per_cell=40.0,
            per_block_launch=True,
        ),
        KernelProfile(
            "MassHistory",
            registers_per_thread=104,
            line_kernel=True,
            uniform_fraction=0.0,
            mem_efficiency=0.30,
            flops_per_cell=260.0,
            bytes_per_cell=90.0,
            per_block_launch=True,
        ),
        KernelProfile(
            "WeightedSumData",
            registers_per_thread=32,
            mem_efficiency=0.50,
            flops_per_cell=170.0,
            bytes_per_cell=560.0,
        ),
        KernelProfile(
            "SendBoundBufs",
            registers_per_thread=32,
            mem_efficiency=0.10,
            flops_per_cell=0.0,
            bytes_per_cell=400.0,
        ),
        KernelProfile(
            "SetBounds",
            registers_per_thread=64,
            mem_efficiency=0.10,
            flops_per_cell=40.0,
            bytes_per_cell=400.0,
        ),
        KernelProfile(
            "FluxDivergence",
            registers_per_thread=32,
            mem_efficiency=0.50,
            flops_per_cell=130.0,
            bytes_per_cell=230.0,
        ),
        KernelProfile(
            "EstimateTimestepMesh",
            registers_per_thread=104,
            line_kernel=True,
            uniform_fraction=0.0,
            mem_efficiency=0.15,
            flops_per_cell=130.0,
            bytes_per_cell=176.0,
        ),
        KernelProfile(
            "ProlongationRestrictionLoop",
            registers_per_thread=56,
            mem_efficiency=0.55,
            flops_per_cell=70.0,
            bytes_per_cell=176.0,
        ),
        KernelProfile(
            "CalculateDerived",
            registers_per_thread=80,
            mem_efficiency=0.45,
            flops_per_cell=6.0,
            bytes_per_cell=48.0,
        ),
    ]
}


#: Restructured-kernel variant (Section VIII-B): 3D CUDA blocks aligned with
#: the mesh-block dimensions — all warps useful, no line divergence, better
#: coalescing.  Registered under its own name so ablation runs report it
#: distinctly.
KERNEL_PROFILES["CalculateFluxes3D"] = KernelProfile(
    "CalculateFluxes3D",
    registers_per_thread=104,
    effective_warps_per_block=4,
    line_kernel=False,
    mem_efficiency=0.30,
    flops_per_cell=9000.0,
    bytes_per_cell=1600.0,  # smaller aux buffers -> less intermediate traffic
)


@dataclass(frozen=True)
class KernelLaunch:
    """One instrumented kernel dispatch, ready for the platform cost model.

    ``cells`` is the geometric work size; ``lines`` the number of x1-lines
    (the warp-level work unit of line kernels); ``block_nx`` the mesh-block
    size along x1 (drives warp divergence).
    """

    name: str
    space: ExecutionSpace
    cells: int
    flops: float
    bytes: float
    lines: int = 0
    block_nx: int = 32

    @property
    def profile(self) -> KernelProfile:
        try:
            return KERNEL_PROFILES[self.name]
        except KeyError:
            raise KeyError(
                f"no kernel profile registered for {self.name!r}"
            ) from None


def make_launch(
    name: str,
    space: ExecutionSpace,
    cells: int,
    block_nx: int,
    ncomp: int = REFERENCE_NCOMP,
    lines: Optional[int] = None,
) -> KernelLaunch:
    """Build a launch from a registered profile, scaling by component count."""
    profile = KERNEL_PROFILES[name]
    scale = ncomp / REFERENCE_NCOMP
    if lines is None:
        lines = max(1, cells // max(block_nx, 1))
    return KernelLaunch(
        name=name,
        space=space,
        cells=cells,
        flops=profile.flops_per_cell * cells * scale,
        bytes=profile.bytes_per_cell * cells * scale,
        lines=lines,
        block_nx=block_nx,
    )


def launch_plan(
    cells: int, block_cells: int, num_packs: int, per_block: bool
) -> Tuple[int, int]:
    """``(num_launches, cells_per_launch)`` for one kernel sweep.

    Packed execution dispatches once per MeshBlockPack over all its cells;
    per-block execution (Parthenon's ``per_block_launch`` kernels, or the
    ``kernel_mode="per_block"`` ablation) dispatches once per mesh block.
    This is the launch-count arithmetic behind the paper's Fig. 1c
    launch-overhead discussion.
    """
    if cells <= 0 or block_cells <= 0 or num_packs <= 0:
        raise ValueError("cells, block_cells and num_packs must be positive")
    if per_block:
        return max(1, round(cells / block_cells)), block_cells
    return num_packs, max(1, math.ceil(cells / num_packs))
