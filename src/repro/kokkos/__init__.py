"""Kokkos-style execution abstraction and instrumentation.

Reproduces the measurement boundary the paper uses: everything inside a
named kernel launch is "kernel time" (GPU-offloaded, or data-parallel on
CPU); everything outside is the "serial portion" (Section II-C).  The
profiler mirrors Kokkos Tools' region/kernel view; the memory tracker mirrors
the Kokkos + Nsight allocation traces behind Fig. 10.
"""

from repro.kokkos.space import ExecutionSpace, MemorySpace
from repro.kokkos.kernel import KernelLaunch, KernelProfile, KERNEL_PROFILES
from repro.kokkos.profiler import Profiler
from repro.kokkos.memory import MemoryTracker

__all__ = [
    "ExecutionSpace",
    "MemorySpace",
    "KernelLaunch",
    "KernelProfile",
    "KERNEL_PROFILES",
    "Profiler",
    "MemoryTracker",
]
