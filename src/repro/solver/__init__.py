"""The VIBE physics package: the 3D Vector Inviscid Burgers' Equation.

Implements the Burgers benchmark of Section II-G: a Godunov-type finite
volume scheme with slope-limited linear (PLM) or WENO5 reconstruction, HLL
fluxes, second-order Runge-Kutta time integration, one or more passive
scalars advected with the flow, and the derived kinetic-energy-like quantity
``d = 1/2 * q0 * u·u``.
"""

from repro.solver.state import Metadata, StateDescriptor, VariableRegistry
from repro.solver.burgers import BurgersPackage
from repro.solver.reconstruction import plm_face_states, weno5_face_states
from repro.solver.riemann import hll_flux, llf_flux

__all__ = [
    "Metadata",
    "StateDescriptor",
    "VariableRegistry",
    "BurgersPackage",
    "plm_face_states",
    "weno5_face_states",
    "hll_flux",
    "llf_flux",
]
