"""History reductions (the paper's ``MassHistory`` kernel).

Every cycle Parthenon-VIBE reduces conserved totals over all blocks and
All-Reduces them across ranks.  Besides feeding the output file, these totals
are the conservation ground truth the test suite checks: with periodic
boundaries and flux correction enabled, each scalar's total must be constant
to machine precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.mesh.mesh import Mesh
from repro.solver.burgers import BurgersPackage, CONSERVED, DERIVED


@dataclass
class HistoryRow:
    """One cycle's reduced quantities."""

    cycle: int
    time: float
    scalar_totals: List[float]
    momentum_totals: List[float]
    total_d: float
    max_speed: float


def reduce_history(
    mesh: Mesh, pkg: BurgersPackage, cycle: int, time: float
) -> HistoryRow:
    """Volume-weighted totals over every block (``MassHistory``)."""
    nvel = pkg.nvel
    scalars = [0.0] * pkg.config.num_scalars
    momenta = [0.0] * nvel
    total_d = 0.0
    max_speed = 0.0
    for blk in mesh.block_list:
        vol = blk.cell_volume
        u = blk.interior(CONSERVED)
        for j in range(pkg.config.num_scalars):
            scalars[j] += float(u[nvel + j].sum()) * vol
        for i in range(nvel):
            momenta[i] += float(u[i].sum()) * vol
            max_speed = max(max_speed, float(np.max(np.abs(u[i]))))
        total_d += float(blk.interior(DERIVED).sum()) * vol
    return HistoryRow(
        cycle=cycle,
        time=time,
        scalar_totals=scalars,
        momentum_totals=momenta,
        total_d=total_d,
        max_speed=max_speed,
    )
