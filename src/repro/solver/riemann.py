"""Riemann solvers for the vector inviscid Burgers system.

State vector layout (``ncomp = nvel + nscalar`` components):
``U = [u_1 .. u_nvel, q_0 .. q_{nscalar-1}]``.  The flux in direction ``d``
is ``F_i = 1/2 u_i u_d`` for velocity components and ``F_j = q_j u_d`` for
passive scalars; the characteristic speed is the normal velocity ``u_d``.

Both the HLL solver used by Parthenon-VIBE (Section II-G) and a simpler
local Lax-Friedrichs (Rusanov) solver are provided.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def physical_flux(u: np.ndarray, direction: int, nvel: int) -> np.ndarray:
    """Burgers flux of state ``u`` (components on axis 0) along ``direction``."""
    un = u[direction]
    flux = np.empty_like(u)
    flux[:nvel] = 0.5 * u[:nvel] * un
    flux[nvel:] = u[nvel:] * un
    return flux


def wave_speeds(
    ul: np.ndarray, ur: np.ndarray, direction: int
) -> Tuple[np.ndarray, np.ndarray]:
    """HLL signal-speed estimates ``(s_left, s_right)`` from normal velocity."""
    sl = np.minimum(np.minimum(ul[direction], ur[direction]), 0.0)
    sr = np.maximum(np.maximum(ul[direction], ur[direction]), 0.0)
    return sl, sr


def hll_flux(
    ul: np.ndarray, ur: np.ndarray, direction: int, nvel: int
) -> np.ndarray:
    """HLL numerical flux between left/right face states.

    With the signal speeds clamped to bracket zero, the HLL formula reduces
    to pure upwinding when the flow does not change sign across the face and
    adds the dissipative jump term otherwise.
    """
    fl = physical_flux(ul, direction, nvel)
    fr = physical_flux(ur, direction, nvel)
    sl, sr = wave_speeds(ul, ur, direction)
    width = sr - sl
    # Where both speeds are zero the interface is quiescent: flux = 0 is
    # consistent with both sides (avoid 0/0).
    safe = np.where(width > 0.0, width, 1.0)
    flux = (sr * fl - sl * fr + sl * sr * (ur - ul)) / safe
    return np.where(width > 0.0, flux, 0.0)


def llf_flux(
    ul: np.ndarray, ur: np.ndarray, direction: int, nvel: int
) -> np.ndarray:
    """Local Lax-Friedrichs (Rusanov) flux — maximally dissipative baseline."""
    fl = physical_flux(ul, direction, nvel)
    fr = physical_flux(ur, direction, nvel)
    smax = np.maximum(np.abs(ul[direction]), np.abs(ur[direction]))
    return 0.5 * (fl + fr) - 0.5 * smax * (ur - ul)


RIEMANN_SOLVERS = {"hll": hll_flux, "llf": llf_flux}


# --------------------------------------------------------------------------
# In-place pack-level solvers.
#
# The packed execution engine evaluates fluxes for a whole chunk of blocks
# per call on arrays shaped ``(nblocks, ncomp, *face_dims)``.  Writing the
# HLL formula in coefficient form,
#
#   F = B * ql + A * qr + C * (qr - ql),
#   B = sr * unl / w,  A = -sl * unr / w,  C = sl * sr / w   (w = sr - sl),
#
# with the velocity components halved afterwards (their physical flux is
# ``u_i u_d / 2`` vs ``q_j u_d`` for scalars) folds the per-component
# physical fluxes into three face-shaped coefficient arrays, roughly halving
# the number of full-size array passes versus the textbook expression.  All
# intermediates live in caller-provided scratch so steady-state sweeps are
# allocation-free.


class HLLScratch:
    """Preallocated face-shaped intermediates for the in-place solvers.

    ``state_shape`` is the full flux shape ``(nblocks, ncomp, *face_dims)``;
    the coefficient buffers drop the component axis.
    """

    __slots__ = ("a", "b", "c", "width", "safe", "pos", "neg", "ftmp")

    def __init__(self, state_shape: Tuple[int, ...]) -> None:
        face = state_shape[:1] + state_shape[2:]
        self.a = np.empty(face)
        self.b = np.empty(face)
        self.c = np.empty(face)
        self.width = np.empty(face)
        self.safe = np.empty(face)
        self.pos = np.empty(face, dtype=bool)
        self.neg = np.empty(face, dtype=bool)
        self.ftmp = np.empty(state_shape)


def hll_flux_into(
    ul: np.ndarray,
    ur: np.ndarray,
    direction: int,
    nvel: int,
    out: np.ndarray,
    scratch: HLLScratch,
) -> np.ndarray:
    """HLL flux of :func:`hll_flux`, batched over a leading block axis.

    ``ul``/``ur``/``out`` are ``(nblocks, ncomp, *face_dims)``; components
    sit on axis 1.  ``out`` must not alias the inputs.
    """
    unl = ul[:, direction]
    unr = ur[:, direction]
    a, b, c = scratch.a, scratch.b, scratch.c
    np.minimum(unl, unr, out=a)
    np.minimum(a, 0.0, out=a)  # sl <= 0
    np.maximum(unl, unr, out=b)
    np.maximum(b, 0.0, out=b)  # sr >= 0
    np.subtract(b, a, out=scratch.width)
    np.greater(scratch.width, 0.0, out=scratch.pos)
    np.logical_not(scratch.pos, out=scratch.neg)
    np.copyto(scratch.safe, 1.0)
    np.copyto(scratch.safe, scratch.width, where=scratch.pos)
    np.multiply(a, b, out=c)
    np.divide(c, scratch.safe, out=c)  # C = sl*sr/w
    np.divide(a, scratch.safe, out=a)
    np.divide(b, scratch.safe, out=b)
    np.multiply(b, unl, out=b)  # B = sr*unl/w
    np.multiply(a, unr, out=a)
    np.negative(a, out=a)  # A = -sl*unr/w
    np.copyto(a, 0.0, where=scratch.neg)
    np.copyto(b, 0.0, where=scratch.neg)
    np.copyto(c, 0.0, where=scratch.neg)
    np.multiply(ul, b[:, None], out=out)
    np.multiply(ur, a[:, None], out=scratch.ftmp)
    np.add(out, scratch.ftmp, out=out)
    out[:, :nvel] *= 0.5
    np.subtract(ur, ul, out=scratch.ftmp)
    np.multiply(scratch.ftmp, c[:, None], out=scratch.ftmp)
    np.add(out, scratch.ftmp, out=out)
    return out


def llf_flux_into(
    ul: np.ndarray,
    ur: np.ndarray,
    direction: int,
    nvel: int,
    out: np.ndarray,
    scratch: HLLScratch,
) -> np.ndarray:
    """Local Lax-Friedrichs flux, batched over a leading block axis."""
    unl = ul[:, direction]
    unr = ur[:, direction]
    np.multiply(ul, unl[:, None], out=out)
    np.multiply(ur, unr[:, None], out=scratch.ftmp)
    np.add(out, scratch.ftmp, out=out)
    out *= 0.5
    out[:, :nvel] *= 0.5
    np.absolute(unl, out=scratch.a)
    np.absolute(unr, out=scratch.b)
    np.maximum(scratch.a, scratch.b, out=scratch.a)
    scratch.a *= 0.5
    np.subtract(ur, ul, out=scratch.ftmp)
    np.multiply(scratch.ftmp, scratch.a[:, None], out=scratch.ftmp)
    np.subtract(out, scratch.ftmp, out=out)
    return out


#: In-place pack-level counterparts of :data:`RIEMANN_SOLVERS`.
RIEMANN_SOLVERS_FUSED = {"hll": hll_flux_into, "llf": llf_flux_into}
