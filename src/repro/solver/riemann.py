"""Riemann solvers for the vector inviscid Burgers system.

State vector layout (``ncomp = nvel + nscalar`` components):
``U = [u_1 .. u_nvel, q_0 .. q_{nscalar-1}]``.  The flux in direction ``d``
is ``F_i = 1/2 u_i u_d`` for velocity components and ``F_j = q_j u_d`` for
passive scalars; the characteristic speed is the normal velocity ``u_d``.

Both the HLL solver used by Parthenon-VIBE (Section II-G) and a simpler
local Lax-Friedrichs (Rusanov) solver are provided.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def physical_flux(u: np.ndarray, direction: int, nvel: int) -> np.ndarray:
    """Burgers flux of state ``u`` (components on axis 0) along ``direction``."""
    un = u[direction]
    flux = np.empty_like(u)
    flux[:nvel] = 0.5 * u[:nvel] * un
    flux[nvel:] = u[nvel:] * un
    return flux


def wave_speeds(
    ul: np.ndarray, ur: np.ndarray, direction: int
) -> Tuple[np.ndarray, np.ndarray]:
    """HLL signal-speed estimates ``(s_left, s_right)`` from normal velocity."""
    sl = np.minimum(np.minimum(ul[direction], ur[direction]), 0.0)
    sr = np.maximum(np.maximum(ul[direction], ur[direction]), 0.0)
    return sl, sr


def hll_flux(
    ul: np.ndarray, ur: np.ndarray, direction: int, nvel: int
) -> np.ndarray:
    """HLL numerical flux between left/right face states.

    With the signal speeds clamped to bracket zero, the HLL formula reduces
    to pure upwinding when the flow does not change sign across the face and
    adds the dissipative jump term otherwise.
    """
    fl = physical_flux(ul, direction, nvel)
    fr = physical_flux(ur, direction, nvel)
    sl, sr = wave_speeds(ul, ur, direction)
    width = sr - sl
    # Where both speeds are zero the interface is quiescent: flux = 0 is
    # consistent with both sides (avoid 0/0).
    safe = np.where(width > 0.0, width, 1.0)
    flux = (sr * fl - sl * fr + sl * sr * (ur - ul)) / safe
    return np.where(width > 0.0, flux, 0.0)


def llf_flux(
    ul: np.ndarray, ur: np.ndarray, direction: int, nvel: int
) -> np.ndarray:
    """Local Lax-Friedrichs (Rusanov) flux — maximally dissipative baseline."""
    fl = physical_flux(ul, direction, nvel)
    fr = physical_flux(ur, direction, nvel)
    smax = np.maximum(np.abs(ul[direction]), np.abs(ur[direction]))
    return 0.5 * (fl + fr) - 0.5 * smax * (ur - ul)


RIEMANN_SOLVERS = {"hll": hll_flux, "llf": llf_flux}
