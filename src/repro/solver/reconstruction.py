"""Face-value reconstruction: WENO5 and slope-limited linear (PLM).

Both operate on arrays whose *last* axis is the reconstruction direction
(callers use ``np.moveaxis`` views, so no data is copied).  For a block with
``nxa`` interior cells and ``ng`` ghost cells along that axis, reconstruction
produces left/right states at the ``nxa + 1`` interior faces; face ``j`` sits
between cells ``ng + j - 1`` and ``ng + j``.

WENO5 follows Jiang & Shu (1996) — the scheme the paper's experiments use
(Section II-G) — and needs 3 ghost cells; PLM needs 2.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.mesh.prolongation import minmod

WENO_EPS = 1e-6
#: Ghost cells each scheme requires.
STENCIL_GHOSTS = {"weno5": 3, "plm": 2}
#: Approximate floating-point operations per reconstructed face value,
#: used by the platform cost model (WENO5 smoothness indicators dominate).
FLOPS_PER_FACE = {"weno5": 100, "plm": 12}


def _shift(q: np.ndarray, lo: int, hi: int, k: int) -> np.ndarray:
    """Cells ``lo+k .. hi+k`` along the last axis (half-open)."""
    return q[..., lo + k : hi + k]


def weno5_states_along(q: np.ndarray, ng: int, nxa: int) -> Tuple[np.ndarray, np.ndarray]:
    """WENO5 left/right states at the ``nxa + 1`` faces of the last axis."""
    if ng < 3:
        raise ValueError(f"WENO5 needs >= 3 ghost cells, got {ng}")
    nfaces = nxa + 1

    def biased(c_lo: int, reverse: bool) -> np.ndarray:
        """Upwind-biased WENO5 value at one edge of cells c_lo..c_lo+nfaces.

        ``reverse=False`` gives the right-edge (i+1/2) value of each cell,
        ``reverse=True`` the left-edge (i-1/2) value, by mirroring the
        stencil.
        """
        s = -1 if reverse else 1
        qm2 = _shift(q, c_lo, c_lo + nfaces, -2 * s)
        qm1 = _shift(q, c_lo, c_lo + nfaces, -1 * s)
        q0 = _shift(q, c_lo, c_lo + nfaces, 0)
        qp1 = _shift(q, c_lo, c_lo + nfaces, 1 * s)
        qp2 = _shift(q, c_lo, c_lo + nfaces, 2 * s)

        p0 = (2.0 * qm2 - 7.0 * qm1 + 11.0 * q0) / 6.0
        p1 = (-qm1 + 5.0 * q0 + 2.0 * qp1) / 6.0
        p2 = (2.0 * q0 + 5.0 * qp1 - qp2) / 6.0

        b0 = (13.0 / 12.0) * (qm2 - 2.0 * qm1 + q0) ** 2 + 0.25 * (
            qm2 - 4.0 * qm1 + 3.0 * q0
        ) ** 2
        b1 = (13.0 / 12.0) * (qm1 - 2.0 * q0 + qp1) ** 2 + 0.25 * (
            qm1 - qp1
        ) ** 2
        b2 = (13.0 / 12.0) * (q0 - 2.0 * qp1 + qp2) ** 2 + 0.25 * (
            3.0 * q0 - 4.0 * qp1 + qp2
        ) ** 2

        a0 = 0.1 / (WENO_EPS + b0) ** 2
        a1 = 0.6 / (WENO_EPS + b1) ** 2
        a2 = 0.3 / (WENO_EPS + b2) ** 2
        asum = a0 + a1 + a2
        return (a0 * p0 + a1 * p1 + a2 * p2) / asum

    # Left state at face j: right edge of cell ng+j-1.
    ql = biased(ng - 1, reverse=False)
    # Right state at face j: left edge of cell ng+j.
    qr = biased(ng, reverse=True)
    return ql, qr


def plm_states_along(q: np.ndarray, ng: int, nxa: int) -> Tuple[np.ndarray, np.ndarray]:
    """Minmod-limited piecewise-linear states at the interior faces."""
    if ng < 2:
        raise ValueError(f"PLM needs >= 2 ghost cells, got {ng}")
    nfaces = nxa + 1

    def states(c_lo: int, sign: float) -> np.ndarray:
        center = _shift(q, c_lo, c_lo + nfaces, 0)
        left = center - _shift(q, c_lo, c_lo + nfaces, -1)
        right = _shift(q, c_lo, c_lo + nfaces, 1) - center
        return center + sign * 0.5 * minmod(left, right)

    ql = states(ng - 1, +1.0)
    qr = states(ng, -1.0)
    return ql, qr


_SCHEMES = {"weno5": weno5_states_along, "plm": plm_states_along}


def weno5_face_states(
    q: np.ndarray, axis: int, ng: int, nxa: int
) -> Tuple[np.ndarray, np.ndarray]:
    """WENO5 states along array ``axis`` (moveaxis convenience wrapper)."""
    return face_states(q, axis, ng, nxa, scheme="weno5")


def plm_face_states(
    q: np.ndarray, axis: int, ng: int, nxa: int
) -> Tuple[np.ndarray, np.ndarray]:
    """PLM states along array ``axis``."""
    return face_states(q, axis, ng, nxa, scheme="plm")


def face_states(
    q: np.ndarray, axis: int, ng: int, nxa: int, scheme: str = "weno5"
) -> Tuple[np.ndarray, np.ndarray]:
    """Reconstruct left/right states at faces along ``axis``.

    Returns arrays with ``nxa + 1`` entries along ``axis`` and unchanged
    extent elsewhere.
    """
    try:
        fn = _SCHEMES[scheme]
    except KeyError:
        raise ValueError(
            f"unknown reconstruction {scheme!r}; expected one of "
            f"{sorted(_SCHEMES)}"
        ) from None
    moved = np.moveaxis(q, axis, -1)
    ql, qr = fn(moved, ng, nxa)
    return np.moveaxis(ql, -1, axis), np.moveaxis(qr, -1, axis)


# --------------------------------------------------------------------------
# Fused pack-level WENO5 (GEMM-formulated stencils)
#
# The twelve linear stencil contractions of one WENO5 face pair — the three
# beta "jump" terms of each smoothness indicator (split into the squared
# second-difference ``t`` and first-difference ``u`` parts) and the six
# candidate polynomials (forward and mirrored) — are all dot products of the
# same 5-cell sliding window.  Stacking them into one (12, 5) matrix turns
# the whole stencil phase into a single BLAS dgemm over every window of every
# block in a pack, which is how the packed execution engine amortizes
# per-call overhead the way Parthenon's MeshBlockPack amortizes kernel
# launches (Section II-C).
#
# Constant folding keeps the elementwise epilogue short: sqrt(13/12) into the
# ``t`` rows and 1/2 into the ``u`` rows (so beta = t^2 + u^2), 1/6 into all
# polynomial rows, and the mirrored-weight ratios 3 and 9 into the reversed
# p1/p2 rows (the mirrored betas satisfy b0r = b2, b1r = b1, b2r = b0, so the
# reversed nonlinear weights reuse the forward g's as
# num = g2*p0r + g1*(3 p1r) + g0*(9 p2r), den = g2 + 3 g1 + 9 g0).


def _build_weno5_matrix() -> np.ndarray:
    m = np.array(
        [
            [1, -2, 1, 0, 0],    # t0: second difference of the left stencil
            [1, -4, 3, 0, 0],    # u0: first-difference part of beta0
            [0, 1, -2, 1, 0],    # t1
            [0, 1, 0, -1, 0],    # u1
            [0, 0, 1, -2, 1],    # t2
            [0, 0, 3, -4, 1],    # u2
            [2, -7, 11, 0, 0],   # p0 forward
            [0, -1, 5, 2, 0],    # p1 forward
            [0, 0, 2, 5, -1],    # p2 forward
            [0, 0, 11, -7, 2],   # p0 reversed
            [0, 2, 5, -1, 0],    # p1 reversed
            [-1, 5, 2, 0, 0],    # p2 reversed
        ],
        dtype=float,
    )
    sq = math.sqrt(13.0 / 12.0)
    for row in (0, 2, 4):
        m[row] *= sq
    for row in (1, 3, 5):
        m[row] *= 0.5
    m[6:] /= 6.0
    m[10] *= 3.0
    m[11] *= 9.0
    return np.ascontiguousarray(m)


#: (12, 5) stencil matrix: one dgemm with this against the 5-cell windows
#: yields every linear quantity WENO5 needs (see the folding notes above).
WENO5_STENCIL_MATRIX = _build_weno5_matrix()

#: Linear WENO5 weights (forward orientation).
_WENO_D = (0.1, 0.6, 0.3)


class _Weno5Scratch:
    """Preallocated workspace for one (leading-shape, window-count) geometry."""

    __slots__ = ("win_c", "win_view", "out", "ql", "qr")

    def __init__(self, lead: Tuple[int, ...], nc: int) -> None:
        n = int(np.prod(lead)) * nc
        self.win_c = np.empty((n, 5))
        self.win_view = self.win_c.reshape(lead + (nc, 5))
        self.out = np.empty((12, n))
        self.ql = np.empty(n)
        self.qr = np.empty(n)


class FusedWeno5:
    """Batched WENO5 reconstruction over contiguous recon-last arrays.

    ``faces(w, ng, nxa)`` consumes an array whose last axis is the
    reconstruction direction (interior + ghosts) and returns left/right
    states at the ``nxa + 1`` interior faces, numerically equivalent to
    :func:`weno5_states_along` (identical algebra, different — batched —
    evaluation order, so agreement is at rounding level, ~1e-16).

    Returned arrays are views into internal scratch: valid until the next
    call with the same geometry.  Scratch is cached per input shape so
    steady-state sweeps perform no allocations.
    """

    def __init__(self) -> None:
        self._scratch: Dict[Tuple[Tuple[int, ...], int], _Weno5Scratch] = {}

    def _get_scratch(self, lead: Tuple[int, ...], nc: int) -> _Weno5Scratch:
        key = (lead, nc)
        s = self._scratch.get(key)
        if s is None:
            s = _Weno5Scratch(lead, nc)
            self._scratch[key] = s
        return s

    def faces(
        self, w: np.ndarray, ng: int, nxa: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        if ng < 3:
            raise ValueError(f"WENO5 needs >= 3 ghost cells, got {ng}")
        lead = w.shape[:-1]
        nc = nxa + 2  # cells contributing an edge value: ng-1 .. ng+nxa
        s = self._get_scratch(lead, nc)

        # One copy: the sliding windows of the ghost-extended span, laid out
        # contiguously as (N, 5) rows for the gemm.  (Reshaping the strided
        # window view itself would silently copy a second time.)
        win = sliding_window_view(w[..., ng - 3 : ng + nxa + 3], 5, axis=-1)
        np.copyto(s.win_view, win)
        np.matmul(WENO5_STENCIL_MATRIX, s.win_c.T, out=s.out)

        t0, u0, t1, u1, t2, u2, p0f, p1f, p2f, p0r, p1r, p2r = s.out
        # beta_k = t_k^2 + u_k^2 (constants folded into the matrix rows);
        # computed in place into the t rows, freeing them for reuse.
        b0, b1, b2 = t0, t1, t2
        np.multiply(t0, t0, out=b0)
        np.multiply(u0, u0, out=u0)
        np.add(b0, u0, out=b0)
        np.multiply(t1, t1, out=b1)
        np.multiply(u1, u1, out=u1)
        np.add(b1, u1, out=b1)
        np.multiply(t2, t2, out=b2)
        np.multiply(u2, u2, out=u2)
        np.add(b2, u2, out=b2)
        # Unnormalized nonlinear weights g_k = d_k / (eps + beta_k)^2,
        # overwriting the (now free) u rows.
        g0, g1, g2 = u0, u1, u2
        for b, g, d in ((b0, g0, _WENO_D[0]), (b1, g1, _WENO_D[1]), (b2, g2, _WENO_D[2])):
            np.add(b, WENO_EPS, out=b)
            np.multiply(b, b, out=b)
            np.divide(d, b, out=g)
        num, den, tmp = t0, t1, t2  # t rows are free again
        # Forward (left state at each face = right edge of the cell).
        np.multiply(g0, p0f, out=num)
        np.multiply(g1, p1f, out=tmp)
        np.add(num, tmp, out=num)
        np.multiply(g2, p2f, out=tmp)
        np.add(num, tmp, out=num)
        np.add(g0, g1, out=den)
        np.add(den, g2, out=den)
        np.divide(num, den, out=s.ql)
        # Reversed (right state = left edge): mirrored betas reuse the g's.
        np.multiply(g2, p0r, out=num)
        np.multiply(g1, p1r, out=tmp)
        np.add(num, tmp, out=num)
        np.multiply(g0, p2r, out=tmp)
        np.add(num, tmp, out=num)
        np.multiply(g1, 3.0, out=den)
        np.add(den, g2, out=den)
        np.multiply(g0, 9.0, out=tmp)
        np.add(den, tmp, out=den)
        np.divide(num, den, out=s.qr)

        shape = lead + (nc,)
        ql = s.ql.reshape(shape)[..., : nxa + 1]
        qr = s.qr.reshape(shape)[..., 1 : nxa + 2]
        return ql, qr
