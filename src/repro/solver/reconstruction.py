"""Face-value reconstruction: WENO5 and slope-limited linear (PLM).

Both operate on arrays whose *last* axis is the reconstruction direction
(callers use ``np.moveaxis`` views, so no data is copied).  For a block with
``nxa`` interior cells and ``ng`` ghost cells along that axis, reconstruction
produces left/right states at the ``nxa + 1`` interior faces; face ``j`` sits
between cells ``ng + j - 1`` and ``ng + j``.

WENO5 follows Jiang & Shu (1996) — the scheme the paper's experiments use
(Section II-G) — and needs 3 ghost cells; PLM needs 2.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.mesh.prolongation import minmod

WENO_EPS = 1e-6
#: Ghost cells each scheme requires.
STENCIL_GHOSTS = {"weno5": 3, "plm": 2}
#: Approximate floating-point operations per reconstructed face value,
#: used by the platform cost model (WENO5 smoothness indicators dominate).
FLOPS_PER_FACE = {"weno5": 100, "plm": 12}


def _shift(q: np.ndarray, lo: int, hi: int, k: int) -> np.ndarray:
    """Cells ``lo+k .. hi+k`` along the last axis (half-open)."""
    return q[..., lo + k : hi + k]


def weno5_states_along(q: np.ndarray, ng: int, nxa: int) -> Tuple[np.ndarray, np.ndarray]:
    """WENO5 left/right states at the ``nxa + 1`` faces of the last axis."""
    if ng < 3:
        raise ValueError(f"WENO5 needs >= 3 ghost cells, got {ng}")
    nfaces = nxa + 1

    def biased(c_lo: int, reverse: bool) -> np.ndarray:
        """Upwind-biased WENO5 value at one edge of cells c_lo..c_lo+nfaces.

        ``reverse=False`` gives the right-edge (i+1/2) value of each cell,
        ``reverse=True`` the left-edge (i-1/2) value, by mirroring the
        stencil.
        """
        s = -1 if reverse else 1
        qm2 = _shift(q, c_lo, c_lo + nfaces, -2 * s)
        qm1 = _shift(q, c_lo, c_lo + nfaces, -1 * s)
        q0 = _shift(q, c_lo, c_lo + nfaces, 0)
        qp1 = _shift(q, c_lo, c_lo + nfaces, 1 * s)
        qp2 = _shift(q, c_lo, c_lo + nfaces, 2 * s)

        p0 = (2.0 * qm2 - 7.0 * qm1 + 11.0 * q0) / 6.0
        p1 = (-qm1 + 5.0 * q0 + 2.0 * qp1) / 6.0
        p2 = (2.0 * q0 + 5.0 * qp1 - qp2) / 6.0

        b0 = (13.0 / 12.0) * (qm2 - 2.0 * qm1 + q0) ** 2 + 0.25 * (
            qm2 - 4.0 * qm1 + 3.0 * q0
        ) ** 2
        b1 = (13.0 / 12.0) * (qm1 - 2.0 * q0 + qp1) ** 2 + 0.25 * (
            qm1 - qp1
        ) ** 2
        b2 = (13.0 / 12.0) * (q0 - 2.0 * qp1 + qp2) ** 2 + 0.25 * (
            3.0 * q0 - 4.0 * qp1 + qp2
        ) ** 2

        a0 = 0.1 / (WENO_EPS + b0) ** 2
        a1 = 0.6 / (WENO_EPS + b1) ** 2
        a2 = 0.3 / (WENO_EPS + b2) ** 2
        asum = a0 + a1 + a2
        return (a0 * p0 + a1 * p1 + a2 * p2) / asum

    # Left state at face j: right edge of cell ng+j-1.
    ql = biased(ng - 1, reverse=False)
    # Right state at face j: left edge of cell ng+j.
    qr = biased(ng, reverse=True)
    return ql, qr


def plm_states_along(q: np.ndarray, ng: int, nxa: int) -> Tuple[np.ndarray, np.ndarray]:
    """Minmod-limited piecewise-linear states at the interior faces."""
    if ng < 2:
        raise ValueError(f"PLM needs >= 2 ghost cells, got {ng}")
    nfaces = nxa + 1

    def states(c_lo: int, sign: float) -> np.ndarray:
        center = _shift(q, c_lo, c_lo + nfaces, 0)
        left = center - _shift(q, c_lo, c_lo + nfaces, -1)
        right = _shift(q, c_lo, c_lo + nfaces, 1) - center
        return center + sign * 0.5 * minmod(left, right)

    ql = states(ng - 1, +1.0)
    qr = states(ng, -1.0)
    return ql, qr


_SCHEMES = {"weno5": weno5_states_along, "plm": plm_states_along}


def weno5_face_states(
    q: np.ndarray, axis: int, ng: int, nxa: int
) -> Tuple[np.ndarray, np.ndarray]:
    """WENO5 states along array ``axis`` (moveaxis convenience wrapper)."""
    return face_states(q, axis, ng, nxa, scheme="weno5")


def plm_face_states(
    q: np.ndarray, axis: int, ng: int, nxa: int
) -> Tuple[np.ndarray, np.ndarray]:
    """PLM states along array ``axis``."""
    return face_states(q, axis, ng, nxa, scheme="plm")


def face_states(
    q: np.ndarray, axis: int, ng: int, nxa: int, scheme: str = "weno5"
) -> Tuple[np.ndarray, np.ndarray]:
    """Reconstruct left/right states at faces along ``axis``.

    Returns arrays with ``nxa + 1`` entries along ``axis`` and unchanged
    extent elsewhere.
    """
    try:
        fn = _SCHEMES[scheme]
    except KeyError:
        raise ValueError(
            f"unknown reconstruction {scheme!r}; expected one of "
            f"{sorted(_SCHEMES)}"
        ) from None
    moved = np.moveaxis(q, axis, -1)
    ql, qr = fn(moved, ng, nxa)
    return np.moveaxis(ql, -1, axis), np.moveaxis(qr, -1, axis)
