"""A second physics package: linear advection.

Parthenon is a *generalized* AMR framework serving many packages (Riot,
AthenaPK, Artemis, KHARMA — Section IX); this package demonstrates that the
reproduction's substrate is equally package-agnostic.  It solves

    ∂q/∂t + v · ∇q = 0

for ``ncomp`` scalars in a constant velocity field, using the same
reconstruction/Riemann/integration machinery as the Burgers package but
with a trivially exact solution — q(x, t) = q(x − v t, 0) — making it ideal
for convergence and AMR-correctness studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.mesh.block import FieldSpec, MeshBlock
from repro.solver.reconstruction import STENCIL_GHOSTS, face_states
from repro.solver.state import Metadata, StateDescriptor, VariableRegistry

ADVECTED = "adv"
ADVECTED_BASE = "adv_base"


@dataclass(frozen=True)
class AdvectionConfig:
    """Constant-velocity advection of ``ncomp`` scalars."""

    velocity: Tuple[float, float, float] = (1.0, 0.5, 0.25)
    ncomp: int = 1
    reconstruction: str = "weno5"
    cfl: float = 0.4

    def required_ghosts(self) -> int:
        ng = STENCIL_GHOSTS[self.reconstruction]
        return ng + (ng % 2)


class AdvectionPackage:
    """Upwind finite-volume advection on the shared AMR substrate."""

    def __init__(self, ndim: int, config: AdvectionConfig = AdvectionConfig()):
        if config.reconstruction not in STENCIL_GHOSTS:
            raise ValueError(f"unknown reconstruction {config.reconstruction!r}")
        if config.ncomp < 1:
            raise ValueError("need at least one advected component")
        self.ndim = ndim
        self.config = config
        self.ncomp = config.ncomp
        self.registry = VariableRegistry(
            [
                StateDescriptor(
                    ADVECTED,
                    config.ncomp,
                    Metadata.INDEPENDENT
                    | Metadata.FILL_GHOST
                    | Metadata.WITH_FLUXES,
                ),
                StateDescriptor(
                    ADVECTED_BASE, config.ncomp, Metadata.REQUIRES_RESTART
                ),
            ]
        )

    def field_specs(self) -> List[FieldSpec]:
        return [
            FieldSpec(ADVECTED, self.ncomp),
            FieldSpec(ADVECTED_BASE, self.ncomp),
        ]

    def exchange_fields(self) -> List[str]:
        return [ADVECTED]

    def prepare_block(self, block: MeshBlock) -> None:
        if block.allocated and ADVECTED not in block.fluxes:
            block.allocate_fluxes(ADVECTED)

    # ------------------------------------------------------------- kernels

    def calculate_fluxes(self, block: MeshBlock) -> None:
        """Upwind flux from reconstructed face states: F = v_a * q_upwind."""
        self.prepare_block(block)
        q = block.fields[ADVECTED]
        ng = block.shape.ng
        nx = block.shape.nx
        for a in range(self.ndim):
            v = self.config.velocity[a]
            axis = 3 - a
            sl: List[slice] = [slice(None)]
            for arr_axis, dim in ((1, 2), (2, 1), (3, 0)):
                if dim == a or dim >= self.ndim:
                    sl.append(slice(None))
                else:
                    g = block.shape.ghosts(dim)
                    sl.append(slice(g, g + nx[dim]))
            sliced = q[tuple(sl)]
            ql, qr = face_states(
                sliced, axis, ng, nx[a], scheme=self.config.reconstruction
            )
            upwind = ql if v >= 0 else qr
            block.fluxes[ADVECTED][a][...] = v * upwind

    def flux_divergence(self, block: MeshBlock) -> np.ndarray:
        nx = block.shape.nx
        dqdt = np.zeros(
            (self.ncomp,)
            + tuple(nx[d] if d < self.ndim else 1 for d in (2, 1, 0))
        )
        for a in range(self.ndim):
            axis = 3 - a
            flux = block.fluxes[ADVECTED][a]
            lo = [slice(None)] * 4
            hi = [slice(None)] * 4
            lo[axis] = slice(0, nx[a])
            hi[axis] = slice(1, nx[a] + 1)
            dqdt -= (flux[tuple(hi)] - flux[tuple(lo)]) / block.dx(a)
        return dqdt

    def estimate_timestep(self, block: MeshBlock) -> float:
        dt = np.inf
        for a in range(self.ndim):
            v = abs(self.config.velocity[a])
            if v > 0:
                dt = min(dt, block.dx(a) / v)
        return self.config.cfl * dt

    # --------------------------------------------- integrator support

    @staticmethod
    def save_base(block: MeshBlock) -> None:
        block.fields[ADVECTED_BASE][...] = block.fields[ADVECTED]

    def weighted_sum(
        self,
        block: MeshBlock,
        dqdt: np.ndarray,
        gam0: float,
        gam1: float,
        beta_dt: float,
    ) -> None:
        q = block.fields[ADVECTED][
            (slice(None),) + block.shape.interior_slices()
        ]
        q0 = block.fields[ADVECTED_BASE][
            (slice(None),) + block.shape.interior_slices()
        ]
        q[...] = gam0 * q + gam1 * q0 + beta_dt * dqdt


def advance_advection_rk2(mesh, pkg: AdvectionPackage, bx, dt, fc=None) -> None:
    """RK2 advance for the advection package (same scheme as Burgers)."""
    from repro.solver.advance import RK2_STAGES

    for blk in mesh.block_list:
        pkg.save_base(blk)
    for gam0, gam1, beta in RK2_STAGES:
        bx.exchange([ADVECTED])
        for blk in mesh.block_list:
            pkg.calculate_fluxes(blk)
        if fc is not None:
            fc.correct([ADVECTED])
        for blk in mesh.block_list:
            dqdt = pkg.flux_divergence(blk)
            pkg.weighted_sum(blk, dqdt, gam0, gam1, beta * dt)
