"""Variable and MeshBlock packing (Section II-C).

Parthenon "supports logical packing of variables and mesh blocks, reducing
kernel launch overhead": instead of one CUDA launch per block per variable,
a MeshBlockPack gathers every block's arrays behind one indexable view and
launches once per pack.  This module implements the pack abstraction for
the numeric mode and quantifies the launch-overhead effect for the platform
model (the ``per_block_kernels`` ablation disables packing and watches GPU
time explode at small block sizes — the paper's Fig. 1c mechanism at the
launch level).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.mesh.block import MeshBlock
from repro.mesh.mesh import Mesh


@dataclass
class PackDescriptor:
    """What a pack contains: which blocks and which variables."""

    gids: Tuple[int, ...]
    field_names: Tuple[str, ...]
    ncomp_total: int


class MeshBlockPack:
    """An indexable bundle of per-block arrays for one rank's blocks.

    ``pack[b]`` returns the stacked ``(ncomp_total, x3, x2, x1)`` view of
    block ``b``'s packed variables.  Blocks in one pack share a common shape
    (guaranteed by the Mesh); the pack exposes iteration so a "kernel" can
    sweep all blocks from a single dispatch — exactly the launch-count
    reduction Parthenon gets on the GPU.

    With ``contiguous=True`` the pack additionally *owns* one dense
    ``(nblocks, ncomp_total, x3, x2, x1)`` array (``self.data``) holding
    every block's packed variables — the memory layout fused pack kernels
    sweep in a single NumPy dispatch.  :meth:`gather` copies per-block
    storage into it; :meth:`adopt_blocks` then re-points each block's field
    arrays at the corresponding pack views, so ghost exchange, flux
    correction and prolongation mutate pack storage directly and no
    steady-state scatter/gather is needed (the Python analogue of Kokkos'
    view-of-views aliasing).
    """

    def __init__(
        self,
        blocks: Sequence[MeshBlock],
        field_names: Sequence[str],
        contiguous: bool = False,
        allocator: Optional[Callable[[Tuple[int, ...]], np.ndarray]] = None,
    ):
        if not blocks:
            raise ValueError("a pack needs at least one block")
        self.blocks = list(blocks)
        self.field_names = tuple(field_names)
        #: Storage allocator for contiguous mode: shape -> zeroed float64
        #: array.  Defaults to np.zeros; the shard executor substitutes a
        #: shared-memory allocator so worker processes can map the pack.
        self._allocator = allocator if allocator is not None else np.zeros
        shapes = {b.shape.array_shape for b in self.blocks}
        if len(shapes) != 1:
            raise ValueError(f"blocks in a pack must share a shape, got {shapes}")
        ncomp = 0
        self._slices: Dict[str, slice] = {}
        for name in self.field_names:
            spec = self.blocks[0].field_specs[name]
            self._slices[name] = slice(ncomp, ncomp + spec.ncomp)
            ncomp += spec.ncomp
        self.ncomp_total = ncomp
        self.contiguous = contiguous
        self.data: Optional[np.ndarray] = None
        #: Pack-owned face-flux storage per field: axis -> (nblocks, ...) array.
        self.flux_data: Dict[str, List[Optional[np.ndarray]]] = {}
        if contiguous:
            self.data = self._allocator(
                (len(self.blocks), ncomp) + self.blocks[0].shape.array_shape
            )
            self.gather()

    def describe(self) -> PackDescriptor:
        return PackDescriptor(
            gids=tuple(b.gid for b in self.blocks),
            field_names=self.field_names,
            ncomp_total=self.ncomp_total,
        )

    def __len__(self) -> int:
        return len(self.blocks)

    def component_slice(self, name: str) -> slice:
        """Where field ``name``'s components sit within the packed axis."""
        return self._slices[name]

    def __getitem__(self, b: int) -> np.ndarray:
        """Packed view of block ``b``: concatenated along the component axis.

        Contiguous packs return a true view into :attr:`data`.  Otherwise
        NumPy cannot alias separate arrays into one view, so this stacks —
        callers that mutate must use :meth:`scatter` to write back (the real
        Kokkos implementation uses a view-of-views; the semantics match).
        """
        if self.data is not None:
            return self.data[b]
        blk = self.blocks[b]
        return np.concatenate(
            [blk.fields[name] for name in self.field_names], axis=0
        )

    # ------------------------------------------------- contiguous storage

    def _require_contiguous(self) -> np.ndarray:
        if self.data is None:
            raise ValueError("pack was not built with contiguous=True")
        return self.data

    def gather(self) -> None:
        """Copy every block's fields into the pack's contiguous storage."""
        data = self._require_contiguous()
        for b, blk in enumerate(self.blocks):
            for name in self.field_names:
                data[b, self._slices[name]] = blk.fields[name]

    def scatter_all(self) -> None:
        """Copy pack storage back into every block's field arrays.

        After :meth:`adopt_blocks` the block arrays *are* pack views and
        this is a no-op; it exists for packs used in copy-in/copy-out mode.
        """
        data = self._require_contiguous()
        for b, blk in enumerate(self.blocks):
            for name in self.field_names:
                dst = blk.fields[name]
                src = data[b, self._slices[name]]
                if dst.base is not self.data:
                    dst[...] = src

    def adopt_blocks(self) -> None:
        """Re-point each block's field arrays at views into pack storage.

        Downstream code that mutates ``block.fields`` (ghost exchange,
        physical-boundary fills, prolongation targets) then writes straight
        into the pack, keeping the fused kernels and the per-block world
        coherent with zero copies.
        """
        data = self._require_contiguous()
        for b, blk in enumerate(self.blocks):
            for name in self.field_names:
                blk.fields[name] = data[b, self._slices[name]]

    def adopt_fluxes(self, name: str) -> None:
        """Allocate pack-level face-flux arrays and alias block fluxes to them.

        Axis ``a``'s array is ``(nblocks, ncomp, dims[2], dims[1], dims[0])``
        with ``nx[a] + 1`` faces along ``a`` — the per-block layout of
        :meth:`MeshBlock.allocate_fluxes` with a leading block axis.
        """
        blk0 = self.blocks[0]
        spec = blk0.field_specs[name]
        shape = blk0.shape
        per_axis: List[Optional[np.ndarray]] = []
        for a in range(3):
            if a >= blk0.ndim:
                per_axis.append(None)
                continue
            dims = [
                shape.nx[ax] + (1 if ax == a else 0) if ax < blk0.ndim else 1
                for ax in range(3)
            ]
            per_axis.append(
                self._allocator(
                    (len(self.blocks), spec.ncomp, dims[2], dims[1], dims[0])
                )
            )
        self.flux_data[name] = per_axis
        for b, blk in enumerate(self.blocks):
            blk.fluxes[name] = [
                None if arr is None else arr[b] for arr in per_axis
            ]

    def field(self, name: str) -> np.ndarray:
        """Pack-wide view of one field: ``(nblocks, ncomp, x3, x2, x1)``."""
        return self._require_contiguous()[:, self._slices[name]]

    def dx_array(self, axis: int) -> np.ndarray:
        """Per-block cell width along ``axis`` (refined blocks differ)."""
        return np.array([blk.dx(axis) for blk in self.blocks])

    def scatter(self, b: int, packed: np.ndarray) -> None:
        """Write a packed array back into block ``b``'s fields."""
        blk = self.blocks[b]
        if packed.shape[0] != self.ncomp_total:
            raise ValueError(
                f"packed array has {packed.shape[0]} components, "
                f"expected {self.ncomp_total}"
            )
        for name in self.field_names:
            blk.fields[name][...] = packed[self._slices[name]]

    def __iter__(self) -> Iterator[MeshBlock]:
        return iter(self.blocks)

    @property
    def total_cells(self) -> int:
        return sum(b.interior_cells for b in self.blocks)


def build_packs(
    mesh: Mesh, field_names: Sequence[str], nranks: int
) -> List[MeshBlockPack]:
    """One pack per rank over its local blocks (Parthenon's default)."""
    packs = []
    for rank in range(nranks):
        blocks = mesh.blocks_on_rank(rank)
        if blocks:
            packs.append(MeshBlockPack(blocks, field_names))
    return packs


def build_numeric_pack(
    mesh: Mesh,
    field_names: Sequence[str],
    flux_field: Optional[str] = None,
    metrics=None,
    allocator: Optional[Callable[[Tuple[int, ...]], np.ndarray]] = None,
) -> MeshBlockPack:
    """One contiguous, view-adopted pack over every block of the mesh.

    This is the packed execution engine's entry point: after this call the
    mesh's blocks alias pack storage (fields and, when ``flux_field`` is
    given, face fluxes), so fused kernels and per-block code see one
    coherent state.  A :class:`repro.observability.MetricsRegistry` passed
    as ``metrics`` records each rebuild and the pack's population (rebuild
    frequency is the remesh-churn signal the pack cache exists to bound).
    ``allocator`` overrides where the contiguous storage lives (the shard
    executor passes its shared-memory allocator).
    """
    pack = MeshBlockPack(
        mesh.block_list, field_names, contiguous=True, allocator=allocator
    )
    pack.adopt_blocks()
    if flux_field is not None:
        pack.adopt_fluxes(flux_field)
    if metrics is not None:
        metrics.count("pack_rebuilds")
        metrics.gauge("pack_blocks", len(pack))
    return pack


def launch_count(
    num_blocks: int, num_packs: int, packed: bool
) -> int:
    """Kernel launches one sweep costs, with and without packing.

    The quantity behind the paper's launch-overhead discussion: packed
    execution launches once per pack; unpacked launches once per block.
    """
    if num_blocks < num_packs or num_packs < 1:
        raise ValueError("need at least one block per pack")
    return num_packs if packed else num_blocks
