"""Variable and MeshBlock packing (Section II-C).

Parthenon "supports logical packing of variables and mesh blocks, reducing
kernel launch overhead": instead of one CUDA launch per block per variable,
a MeshBlockPack gathers every block's arrays behind one indexable view and
launches once per pack.  This module implements the pack abstraction for
the numeric mode and quantifies the launch-overhead effect for the platform
model (the ``per_block_kernels`` ablation disables packing and watches GPU
time explode at small block sizes — the paper's Fig. 1c mechanism at the
launch level).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.mesh.block import MeshBlock
from repro.mesh.mesh import Mesh


@dataclass
class PackDescriptor:
    """What a pack contains: which blocks and which variables."""

    gids: Tuple[int, ...]
    field_names: Tuple[str, ...]
    ncomp_total: int


class MeshBlockPack:
    """An indexable bundle of per-block arrays for one rank's blocks.

    ``pack[b]`` returns the stacked ``(ncomp_total, x3, x2, x1)`` view of
    block ``b``'s packed variables.  Blocks in one pack share a common shape
    (guaranteed by the Mesh); the pack exposes iteration so a "kernel" can
    sweep all blocks from a single dispatch — exactly the launch-count
    reduction Parthenon gets on the GPU.
    """

    def __init__(self, blocks: Sequence[MeshBlock], field_names: Sequence[str]):
        if not blocks:
            raise ValueError("a pack needs at least one block")
        self.blocks = list(blocks)
        self.field_names = tuple(field_names)
        shapes = {b.shape.array_shape for b in self.blocks}
        if len(shapes) != 1:
            raise ValueError(f"blocks in a pack must share a shape, got {shapes}")
        ncomp = 0
        self._slices: Dict[str, slice] = {}
        for name in self.field_names:
            spec = self.blocks[0].field_specs[name]
            self._slices[name] = slice(ncomp, ncomp + spec.ncomp)
            ncomp += spec.ncomp
        self.ncomp_total = ncomp

    def describe(self) -> PackDescriptor:
        return PackDescriptor(
            gids=tuple(b.gid for b in self.blocks),
            field_names=self.field_names,
            ncomp_total=self.ncomp_total,
        )

    def __len__(self) -> int:
        return len(self.blocks)

    def component_slice(self, name: str) -> slice:
        """Where field ``name``'s components sit within the packed axis."""
        return self._slices[name]

    def __getitem__(self, b: int) -> np.ndarray:
        """Packed view of block ``b``: concatenated along the component axis.

        NumPy cannot alias separate arrays into one view, so this stacks —
        callers that mutate must use :meth:`scatter` to write back (the real
        Kokkos implementation uses a view-of-views; the semantics match).
        """
        blk = self.blocks[b]
        return np.concatenate(
            [blk.fields[name] for name in self.field_names], axis=0
        )

    def scatter(self, b: int, packed: np.ndarray) -> None:
        """Write a packed array back into block ``b``'s fields."""
        blk = self.blocks[b]
        if packed.shape[0] != self.ncomp_total:
            raise ValueError(
                f"packed array has {packed.shape[0]} components, "
                f"expected {self.ncomp_total}"
            )
        for name in self.field_names:
            blk.fields[name][...] = packed[self._slices[name]]

    def __iter__(self) -> Iterator[MeshBlock]:
        return iter(self.blocks)

    @property
    def total_cells(self) -> int:
        return sum(b.interior_cells for b in self.blocks)


def build_packs(
    mesh: Mesh, field_names: Sequence[str], nranks: int
) -> List[MeshBlockPack]:
    """One pack per rank over its local blocks (Parthenon's default)."""
    packs = []
    for rank in range(nranks):
        blocks = mesh.blocks_on_rank(rank)
        if blocks:
            packs.append(MeshBlockPack(blocks, field_names))
    return packs


def launch_count(
    num_blocks: int, num_packs: int, packed: bool
) -> int:
    """Kernel launches one sweep costs, with and without packing.

    The quantity behind the paper's launch-overhead discussion: packed
    execution launches once per pack; unpacked launches once per block.
    """
    if num_blocks < num_packs or num_packs < 1:
        raise ValueError("need at least one block per pack")
    return num_packs if packed else num_blocks
