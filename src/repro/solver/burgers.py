"""The Burgers (VIBE) package: per-block physics kernels.

Each method here corresponds to one of the named kernels the paper profiles
(Table III / Figs. 11-12): ``CalculateFluxes``, ``FluxDivergence``,
``CalculateDerived`` (FillDerived), ``EstimateTimestepMesh``, and the
refinement indicator ``FirstDerivative``.  The driver wraps each call in a
Kokkos-style instrumented launch; this module holds the pure NumPy math.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.mesh.block import FieldSpec, MeshBlock
from repro.solver.reconstruction import STENCIL_GHOSTS, face_states
from repro.solver.riemann import RIEMANN_SOLVERS
from repro.solver.state import Metadata, StateDescriptor, VariableRegistry

CONSERVED = "cons"
BASE = "cons_base"
DERIVED = "derived_d"


@dataclass(frozen=True)
class BurgersConfig:
    """Physics configuration of the VIBE benchmark.

    ``num_scalars`` matches the paper's ``num_scalar`` (8 in the Section
    VIII-B memory example); the state has ``ndim`` velocity components plus
    the scalars.
    """

    num_scalars: int = 1
    reconstruction: str = "weno5"
    riemann: str = "hll"
    cfl: float = 0.4
    refine_tol: float = 0.15
    derefine_tol: float = 0.03

    def required_ghosts(self) -> int:
        """Ghost depth the reconstruction stencil needs (4 for WENO5 —
        rounded up to the even depth AMR restriction requires)."""
        ng = STENCIL_GHOSTS[self.reconstruction]
        return ng + (ng % 2)


class BurgersPackage:
    """State registration and per-block kernels for the Burgers system."""

    def __init__(self, ndim: int, config: BurgersConfig = BurgersConfig()) -> None:
        if config.reconstruction not in STENCIL_GHOSTS:
            raise ValueError(
                f"unknown reconstruction {config.reconstruction!r}"
            )
        if config.riemann not in RIEMANN_SOLVERS:
            raise ValueError(f"unknown riemann solver {config.riemann!r}")
        if config.num_scalars < 1:
            raise ValueError("need at least one passive scalar (q0)")
        self.ndim = ndim
        self.config = config
        self.nvel = ndim
        self.ncomp = self.nvel + config.num_scalars
        self._riemann = RIEMANN_SOLVERS[config.riemann]
        self.registry = VariableRegistry(
            [
                StateDescriptor(
                    CONSERVED,
                    self.ncomp,
                    Metadata.INDEPENDENT
                    | Metadata.FILL_GHOST
                    | Metadata.WITH_FLUXES,
                ),
                StateDescriptor(BASE, self.ncomp, Metadata.REQUIRES_RESTART),
                StateDescriptor(DERIVED, 1, Metadata.DERIVED),
            ]
        )

    # ----------------------------------------------------------- plumbing

    def field_specs(self) -> List[FieldSpec]:
        """Cell-centered fields every MeshBlock must carry."""
        return [
            FieldSpec(CONSERVED, self.ncomp),
            FieldSpec(BASE, self.ncomp),
            FieldSpec(DERIVED, 1),
        ]

    def exchange_fields(self) -> List[str]:
        """Fields participating in ghost exchange (string-lookup path)."""
        return [CONSERVED]

    def prepare_block(self, block: MeshBlock) -> None:
        if block.allocated and CONSERVED not in block.fluxes:
            block.allocate_fluxes(CONSERVED)

    # ------------------------------------------------------------- kernels

    def calculate_fluxes(self, block: MeshBlock) -> None:
        """WENO5/PLM reconstruction + Riemann fluxes on every face (kernel
        ``CalculateFluxes`` — the paper's hottest kernel)."""
        self.prepare_block(block)
        u = block.fields[CONSERVED]
        ng = block.shape.ng
        nx = block.shape.nx
        for a in range(self.ndim):
            axis = 3 - a
            # Slice tangential dimensions to the interior; keep the
            # reconstruction axis full so the stencil sees ghosts.
            sl: List[slice] = [slice(None)]
            for arr_axis, dim in ((1, 2), (2, 1), (3, 0)):
                if dim == a or dim >= self.ndim:
                    sl.append(slice(None))
                else:
                    g = block.shape.ghosts(dim)
                    sl.append(slice(g, g + nx[dim]))
            q = u[tuple(sl)]
            ql, qr = face_states(
                q, axis, ng, nx[a], scheme=self.config.reconstruction
            )
            block.fluxes[CONSERVED][a][...] = self._riemann(
                ql, qr, direction=a, nvel=self.nvel
            )

    def flux_divergence(self, block: MeshBlock) -> np.ndarray:
        """``dU/dt = -∇·F`` over the interior (kernel ``FluxDivergence``)."""
        nx = block.shape.nx
        dudt = np.zeros((self.ncomp,) + tuple(
            nx[d] if d < self.ndim else 1 for d in (2, 1, 0)
        ))
        for a in range(self.ndim):
            axis = 3 - a
            flux = block.fluxes[CONSERVED][a]
            lo = [slice(None)] * 4
            hi = [slice(None)] * 4
            lo[axis] = slice(0, nx[a])
            hi[axis] = slice(1, nx[a] + 1)
            dudt -= (flux[tuple(hi)] - flux[tuple(lo)]) / block.dx(a)
        return dudt

    def fill_derived(self, block: MeshBlock) -> None:
        """``d = 1/2 q0 u·u`` (kernel ``CalculateDerived``)."""
        u = block.interior(CONSERVED)
        q0 = u[self.nvel]
        ke = np.zeros_like(q0)
        for i in range(self.nvel):
            ke += u[i] * u[i]
        block.interior(DERIVED)[0] = 0.5 * q0 * ke

    def estimate_timestep(self, block: MeshBlock) -> float:
        """CFL-limited timestep of one block (``EstimateTimestepMesh``)."""
        u = block.interior(CONSERVED)
        dt = np.inf
        for a in range(self.ndim):
            vmax = float(np.max(np.abs(u[a])))
            if vmax > 0.0:
                dt = min(dt, block.dx(a) / vmax)
        return self.config.cfl * dt

    def first_derivative_indicator(self, block: MeshBlock) -> float:
        """Refinement indicator: normalized first derivative of q0
        (kernel ``FirstDerivative`` / ``Refinement::Tag``)."""
        q = block.fields[CONSERVED][self.nvel]
        sl = block.shape.interior_slices()
        interior = q[sl]
        worst = 0.0
        for a in range(self.ndim):
            axis = 2 - a  # q is 3-axis (x3, x2, x1)
            hi = np.roll(q, -1, axis=axis)[sl]
            lo = np.roll(q, 1, axis=axis)[sl]
            denom = np.abs(interior) + 1e-10
            worst = max(worst, float(np.max(np.abs(hi - lo) / (2 * denom))))
        return worst

    # ------------------------------------------------- integrator support

    @staticmethod
    def save_base(block: MeshBlock) -> None:
        """Copy U → U0 at the start of a cycle."""
        block.fields[BASE][...] = block.fields[CONSERVED]

    def weighted_sum(
        self,
        block: MeshBlock,
        dudt: np.ndarray,
        gam0: float,
        gam1: float,
        beta_dt: float,
    ) -> None:
        """``U ← gam0·U + gam1·U0 + beta·dt·(dU/dt)`` over the interior
        (kernels ``WeightedSumData`` / ``UpdateIndependentData``)."""
        u = block.interior(CONSERVED)
        u0 = block.interior(BASE)
        u[...] = gam0 * u + gam1 * u0 + beta_dt * dudt

    # ----------------------------------------------------------- reporting

    def flops_per_cell_flux(self) -> int:
        """Approximate FLOPs/cell of CalculateFluxes, for the cost model."""
        from repro.solver.reconstruction import FLOPS_PER_FACE

        per_face = FLOPS_PER_FACE[self.config.reconstruction] + 20  # + HLL
        return per_face * self.ncomp * self.ndim


# --------------------------------------------------------------------------
# Packed execution engine (kernel_mode = "packed")
#
# The whole-pack kernels (one fused launch per MeshBlockPack — the paper's
# Section II-C amortization) now live in the backend registry as the
# ``numpy`` reference engine: :mod:`repro.kernels.backends.numpy_backend`.
# The historical names are re-exported lazily (PEP 562) so existing imports
# — ``from repro.solver.burgers import PackedBurgersKernels`` — keep
# working without creating an import cycle between the solver and the
# backend packages.

_PACKED_EXPORTS = ("PackedBurgersKernels", "_FluxScratch", "PACK_CHUNK_CELLS")


def __getattr__(name: str):
    if name in _PACKED_EXPORTS:
        from repro.kernels.backends import numpy_backend

        return getattr(numpy_backend, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
