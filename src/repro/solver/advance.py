"""Uninstrumented RK2 advance — the numerical core of the timestep ``Step``.

This is the plain-math version used by tests and small examples; the driver
in :mod:`repro.driver` runs the same sequence with Kokkos-style
instrumentation, MPI accounting, and per-function timing wrapped around each
stage (the decomposition of Fig. 3).

Parthenon's RK2 is the two-stage strong-stability-preserving scheme:
``U1 = U0 + dt L(U0)``; ``U^{n+1} = 1/2 U0 + 1/2 (U1 + dt L(U1))``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.comm.bvals import BoundaryExchange
from repro.comm.flux_correction import FluxCorrection
from repro.mesh.mesh import Mesh
from repro.kernels.backends.numpy_backend import PackedBurgersKernels
from repro.solver.burgers import (
    BASE,
    BurgersPackage,
    CONSERVED,
    DERIVED,
)
from repro.solver.packs import MeshBlockPack, build_numeric_pack

#: Per-stage (gam0, gam1, beta) weights of Parthenon's rk2:
#: ``U <- gam0 * U + gam1 * U0 + beta * dt * L(U)``.
RK2_STAGES = ((0.0, 1.0, 1.0), (0.5, 0.5, 0.5))


def advance_rk2(
    mesh: Mesh,
    pkg: BurgersPackage,
    bx: BoundaryExchange,
    dt: float,
    fc: Optional[FluxCorrection] = None,
) -> None:
    """Advance the conserved state by one RK2 step.

    When ``fc`` is provided, fine→coarse flux correction runs between
    CalculateFluxes and FluxDivergence on every stage, keeping conserved
    totals exact across refinement boundaries.
    """
    for blk in mesh.block_list:
        pkg.save_base(blk)
    for gam0, gam1, beta in RK2_STAGES:
        bx.exchange([CONSERVED])
        for blk in mesh.block_list:
            pkg.calculate_fluxes(blk)
        if fc is not None:
            fc.correct([CONSERVED])
        for blk in mesh.block_list:
            dudt = pkg.flux_divergence(blk)
            pkg.weighted_sum(blk, dudt, gam0, gam1, beta * dt)
    for blk in mesh.block_list:
        pkg.fill_derived(blk)


def advance_rk2_packed(
    mesh: Mesh,
    pkg: BurgersPackage,
    bx: BoundaryExchange,
    dt: float,
    fc: Optional[FluxCorrection] = None,
    engine: Optional[PackedBurgersKernels] = None,
    pack: Optional[MeshBlockPack] = None,
) -> Tuple[MeshBlockPack, PackedBurgersKernels]:
    """:func:`advance_rk2` through the packed execution engine.

    Builds (or reuses) a contiguous whole-mesh pack whose views the blocks
    adopt, then runs each stage as whole-pack fused kernels.  Returns the
    ``(pack, engine)`` pair so steady-state callers can pass them back in and
    skip the rebuild; rebuild the pack (pass ``pack=None``) after any remesh.
    """
    if engine is None:
        engine = PackedBurgersKernels(pkg)
    if pack is None:
        pack = build_numeric_pack(
            mesh, (CONSERVED, BASE, DERIVED), flux_field=CONSERVED
        )
    engine.save_base(pack)
    for gam0, gam1, beta in RK2_STAGES:
        bx.exchange([CONSERVED])
        engine.calculate_fluxes(pack)
        if fc is not None:
            fc.correct([CONSERVED])
        engine.flux_divergence_and_update(pack, gam0, gam1, beta * dt)
    engine.fill_derived(pack)
    return pack, engine


def estimate_dt(mesh: Mesh, pkg: BurgersPackage) -> float:
    """Global CFL timestep: the minimum over all blocks."""
    return min(pkg.estimate_timestep(blk) for blk in mesh.block_list)


def estimate_dt_packed(
    pack: MeshBlockPack, engine: PackedBurgersKernels
) -> float:
    """Global CFL timestep from one fused whole-pack reduction."""
    return float(np.min(engine.estimate_timestep(pack)))
