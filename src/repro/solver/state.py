"""Variable metadata and flag-based lookup, Parthenon-style.

Parthenon identifies variables by name and queries them with
``GetVariablesByFlag``, which performs string comparisons and hashing in a
scalar loop — Section VIII-A names this one of the dominant serial costs and
recommends replacing it with a centralized integer mapping.  Both schemes are
implemented here:

* :meth:`VariableRegistry.get_by_flag` — the faithful string-keyed path; it
  counts every string comparison so the serial cost model can charge them.
* :meth:`VariableRegistry.get_by_flag_indexed` — the paper's recommended
  integer-indexed path (precomputed flag → id lists), used by the
  optimization ablation benchmarks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


class Metadata(enum.Flag):
    """Variable metadata flags (a small subset of Parthenon's)."""

    NONE = 0
    INDEPENDENT = enum.auto()  # evolved by the integrator
    DERIVED = enum.auto()  # computed from independents in FillDerived
    FILL_GHOST = enum.auto()  # participates in ghost exchange
    WITH_FLUXES = enum.auto()  # carries face fluxes / flux correction
    REQUIRES_RESTART = enum.auto()


@dataclass(frozen=True)
class StateDescriptor:
    """Declaration of one named variable."""

    name: str
    ncomp: int
    flags: Metadata


@dataclass
class LookupCounters:
    """String-handling work performed by flag queries (serial cost input)."""

    queries: int = 0
    string_comparisons: int = 0
    string_hashes: int = 0


class VariableRegistry:
    """Ordered registry of variables with flag queries."""

    def __init__(self, descriptors: Sequence[StateDescriptor] = ()) -> None:
        self._by_name: Dict[str, StateDescriptor] = {}
        self._order: List[str] = []
        self.counters = LookupCounters()
        self._flag_index: Dict[Metadata, List[str]] = {}
        for d in descriptors:
            self.add(d)

    def add(self, desc: StateDescriptor) -> None:
        if desc.name in self._by_name:
            raise ValueError(f"variable {desc.name!r} already registered")
        self._by_name[desc.name] = desc
        self._order.append(desc.name)
        self._flag_index.clear()  # indexes must be rebuilt

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def descriptor(self, name: str) -> StateDescriptor:
        return self._by_name[name]

    @property
    def names(self) -> List[str]:
        return list(self._order)

    def total_ncomp(self, names: Sequence[str]) -> int:
        return sum(self._by_name[n].ncomp for n in names)

    # ------------------------------------------------------------- lookups

    def get_by_flag(self, flags: Metadata) -> List[str]:
        """String-indexed flag query (the faithful, costly path).

        Walks every variable, hashing its name and comparing flags — a
        scalar loop whose work is recorded in :attr:`counters` so the
        platform model can charge it per invocation (Section VIII-A).
        """
        self.counters.queries += 1
        out: List[str] = []
        for name in self._order:
            # Model the map lookup: one hash plus ~1 comparison per probe.
            self.counters.string_hashes += 1
            self.counters.string_comparisons += len(name) // 4 + 1
            desc = self._by_name[name]
            if desc.flags & flags:
                out.append(name)
        return out

    def build_flag_index(self, flag_sets: Sequence[Metadata]) -> None:
        """Precompute flag → variable lists (the paper's recommendation)."""
        for flags in flag_sets:
            self._flag_index[flags] = [
                name
                for name in self._order
                if self._by_name[name].flags & flags
            ]

    def get_by_flag_indexed(self, flags: Metadata) -> List[str]:
        """Integer/precomputed-indexed query: O(1), no string work."""
        try:
            return self._flag_index[flags]
        except KeyError:
            raise KeyError(
                f"flag set {flags!r} not in the prebuilt index; call "
                "build_flag_index first"
            ) from None

    def reset_counters(self) -> LookupCounters:
        done = self.counters
        self.counters = LookupCounters()
        return done
