"""Initial conditions for the Burgers benchmark and the examples.

``gaussian_blob`` mirrors the Parthenon-VIBE setup: a smooth localized
velocity pulse that steepens into shocks and drives refinement outward — the
paper's ripples-on-water picture.  The others are analysis-friendly states
used by the tests (constant advection has an exact solution; the 1D shock
tube has a known Rankine-Hugoniot speed).
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.mesh.mesh import Mesh
from repro.solver.burgers import BurgersPackage, CONSERVED, DERIVED


def _coords(block, include_ghosts=True):
    return [block.cell_centers(a, include_ghosts) for a in range(3)]


def _broadcast(x1, x2, x3, ndim):
    """Meshgrid-style broadcastable coordinate arrays in (x3, x2, x1) order."""
    g1 = x1[None, None, :]
    g2 = x2[None, :, None] if ndim >= 2 else np.zeros((1, 1, 1))
    g3 = x3[:, None, None] if ndim >= 3 else np.zeros((1, 1, 1))
    return g1, g2, g3


def gaussian_blob(
    mesh: Mesh,
    pkg: BurgersPackage,
    amplitude: float = 1.0,
    width: float = 0.1,
    center: Tuple[float, float, float] = (0.5, 0.5, 0.5),
    background_scalar: float = 1.0,
) -> None:
    """Outward-directed Gaussian velocity pulse with scalar blobs.

    The velocity points radially outward so the pulse expands like a ripple,
    steepening into an N-wave — the canonical VIBE workload.
    """
    for blk in mesh.block_list:
        x1, x2, x3 = _coords(blk)
        g1, g2, g3 = _broadcast(x1, x2, x3, mesh.ndim)
        d1 = g1 - center[0]
        d2 = g2 - center[1] if mesh.ndim >= 2 else 0.0 * g1
        d3 = g3 - center[2] if mesh.ndim >= 3 else 0.0 * g1
        r2 = d1 * d1 + d2 * d2 + d3 * d3
        r = np.sqrt(r2) + 1e-12
        envelope = amplitude * np.exp(-r2 / (width * width))
        u = blk.fields[CONSERVED]
        u[0] = envelope * d1 / r
        if mesh.ndim >= 2:
            u[1] = envelope * d2 / r
        if mesh.ndim >= 3:
            u[2] = envelope * d3 / r
        for j in range(pkg.config.num_scalars):
            u[pkg.nvel + j] = background_scalar + envelope
        blk.fields[DERIVED][...] = 0.0


def constant_advection(
    mesh: Mesh,
    pkg: BurgersPackage,
    velocity: Sequence[float],
    wavenumbers: Sequence[int] = (1,),
) -> None:
    """Uniform velocity, sinusoidal scalars — exact solution is translation.

    A constant velocity field is a steady solution of the Burgers momentum
    equation, so the scalars advect rigidly: ``q(x, t) = q(x - v t, 0)``.
    """
    for blk in mesh.block_list:
        x1, x2, x3 = _coords(blk)
        g1, g2, g3 = _broadcast(x1, x2, x3, mesh.ndim)
        u = blk.fields[CONSERVED]
        for i in range(pkg.nvel):
            u[i] = velocity[i] if i < len(velocity) else 0.0
        for j in range(pkg.config.num_scalars):
            k = wavenumbers[j % len(wavenumbers)]
            u[pkg.nvel + j] = 2.0 + np.sin(2.0 * math.pi * k * g1) * np.ones_like(
                g2 + g3
            )
        blk.fields[DERIVED][...] = 0.0


def shock_tube(
    mesh: Mesh,
    pkg: BurgersPackage,
    u_left: float = 1.0,
    u_right: float = 0.0,
    interface: float = 0.25,
) -> None:
    """1D Riemann problem in ``u_1``: a right-moving Burgers shock.

    For ``u_left > u_right`` the entropy solution is a shock moving at the
    Rankine-Hugoniot speed ``(u_left + u_right) / 2``.
    """
    for blk in mesh.block_list:
        x1, x2, x3 = _coords(blk)
        g1, g2, g3 = _broadcast(x1, x2, x3, mesh.ndim)
        u = blk.fields[CONSERVED]
        profile = np.where(g1 < interface, u_left, u_right) * np.ones_like(
            g2 + g3
        )
        u[0] = profile
        for i in range(1, pkg.nvel):
            u[i] = 0.0
        for j in range(pkg.config.num_scalars):
            u[pkg.nvel + j] = 1.0 + profile
        blk.fields[DERIVED][...] = 0.0
