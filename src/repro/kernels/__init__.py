"""Pluggable numeric kernel engines.

``repro.kernels.backends`` generalizes the ``kernel_mode={packed,per_block}``
switch into a registry of interchangeable packed-execution engines — the
python analogue of Parthenon selecting a Kokkos backend per platform while
keeping one source of truth for the physics (Section II-C).
"""

from repro.kernels.backends import (
    BackendUnavailableWarning,
    KNOWN_BACKENDS,
    KernelBackend,
    UnknownBackendError,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend,
)

__all__ = [
    "BackendUnavailableWarning",
    "KNOWN_BACKENDS",
    "KernelBackend",
    "UnknownBackendError",
    "available_backends",
    "backend_names",
    "get_backend",
    "register_backend",
    "resolve_backend",
]
