"""The ``numpy`` reference backend: vectorized whole-pack kernels.

This is the packed execution engine extracted from
``repro.solver.burgers`` (which re-exports it for compatibility) — one
reconstruction GEMM, one coefficient-form Riemann evaluation, one
divergence update for every block at once, with a leading block axis.
Within CalculateFluxes blocks are processed in cache-sized chunks (one
16^3 block's state already fills L2-scale working sets; batching tiny
blocks recovers the dispatch amortization that matters at small block
sizes).

Numerical contract: flux divergence, the RK weighted sum, FillDerived and
the timestep reduce replicate the per-block operation order exactly, so
those stages are bitwise-identical to the per-block loop.  Reconstruction
and the Riemann solver use algebraically identical but re-associated
expressions (gemm-fused stencils, coefficient-form HLL), so full-step
agreement is at rounding level (~1e-15), well inside the parity suite's
1e-13 tolerance.  Every other backend is measured against *this* engine.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.kernels.backends.base import KernelBackend, register_backend
from repro.solver.burgers import BASE, CONSERVED, DERIVED
from repro.solver.reconstruction import FusedWeno5, plm_states_along
from repro.solver.riemann import HLLScratch, RIEMANN_SOLVERS_FUSED

#: Target interior cells per CalculateFluxes chunk.
PACK_CHUNK_CELLS = 4096


class _FluxScratch:
    """Preallocated recon-last workspace for one chunk geometry."""

    __slots__ = ("w", "flux_t", "riemann")

    def __init__(self, chunk_shape: Tuple[int, ...], nfaces: int) -> None:
        self.w = np.empty(chunk_shape)
        self.flux_t = np.empty(chunk_shape[:-1] + (nfaces,))
        self.riemann = HLLScratch(self.flux_t.shape)


class PackedBurgersKernels:
    """Fused whole-pack kernels over a contiguous :class:`MeshBlockPack`.

    Each method is one "launch": it consumes the pack's dense
    ``(nblocks, ncomp, x3, x2, x1)`` storage (see
    :meth:`repro.solver.packs.build_numeric_pack`) and updates it in place.
    All scratch is cached by shape, so steady-state cycles allocate nothing.
    """

    def __init__(self, pkg) -> None:
        self.pkg = pkg
        self.ndim = pkg.ndim
        self.nvel = pkg.nvel
        self._weno = FusedWeno5()
        self._use_weno = pkg.config.reconstruction == "weno5"
        self._riemann = RIEMANN_SOLVERS_FUSED[pkg.config.riemann]
        self._flux_scratch: Dict[Tuple[Tuple[int, ...], int], _FluxScratch] = {}
        self._buffers: Dict[Tuple[str, Tuple[int, ...]], np.ndarray] = {}

    # ------------------------------------------------------------- scratch

    def _get_flux_scratch(
        self, chunk_shape: Tuple[int, ...], nfaces: int
    ) -> _FluxScratch:
        key = (chunk_shape, nfaces)
        s = self._flux_scratch.get(key)
        if s is None:
            s = _FluxScratch(chunk_shape, nfaces)
            self._flux_scratch[key] = s
        return s

    def _scratch(self, name: str, shape: Tuple[int, ...]) -> np.ndarray:
        key = (name, shape)
        arr = self._buffers.get(key)
        if arr is None:
            arr = np.empty(shape)
            self._buffers[key] = arr
        return arr

    @staticmethod
    def _interior(pack, name: str) -> np.ndarray:
        sl = pack.blocks[0].shape.interior_slices()
        return pack.field(name)[(slice(None), slice(None)) + sl]

    # ------------------------------------------------------------- kernels

    def calculate_fluxes(self, pack) -> None:
        """Reconstruction + Riemann fluxes for every block in one sweep."""
        u = pack.field(CONSERVED)
        shape = pack.blocks[0].shape
        ng = shape.ng
        nx = shape.nx
        step = max(1, PACK_CHUNK_CELLS // pack.blocks[0].interior_cells)
        nb = u.shape[0]
        for a in range(self.ndim):
            arr_axis = 4 - a
            # Tangential dimensions to the interior, recon axis full (the
            # per-block kernel's slicing with a leading block axis).
            sl: List[slice] = [slice(None), slice(None)]
            for d in (2, 1, 0):
                if d == a or d >= self.ndim:
                    sl.append(slice(None))
                else:
                    g = shape.ghosts(d)
                    sl.append(slice(g, g + nx[d]))
            qm = np.moveaxis(u[tuple(sl)], arr_axis, -1)
            fx = pack.flux_data[CONSERVED][a]
            for i0 in range(0, nb, step):
                i1 = min(nb, i0 + step)
                chunk = qm[i0:i1]
                s = self._get_flux_scratch(chunk.shape, nx[a] + 1)
                np.copyto(s.w, chunk)  # one contiguous recon-last copy
                if self._use_weno:
                    ql, qr = self._weno.faces(s.w, ng, nx[a])
                else:
                    ql, qr = plm_states_along(s.w, ng, nx[a])
                self._riemann(ql, qr, a, self.nvel, s.flux_t, s.riemann)
                fx[i0:i1] = np.moveaxis(s.flux_t, -1, arr_axis)

    def flux_divergence_and_update(
        self, pack, gam0: float, gam1: float, beta_dt: float
    ) -> None:
        """``U ← gam0·U + gam1·U0 − beta·dt·∇·F`` over every interior.

        Fuses the per-block ``flux_divergence`` + ``weighted_sum`` pair with
        the identical association order, so results match bitwise.
        """
        shape = pack.blocks[0].shape
        nx = shape.nx
        u = self._interior(pack, CONSERVED)
        u0 = self._interior(pack, BASE)
        dudt = self._scratch("dudt", u.shape)
        diff = self._scratch("diff", u.shape)
        for a in range(self.ndim):
            axis = 4 - a
            flux = pack.flux_data[CONSERVED][a]
            lo = [slice(None)] * 5
            hi = [slice(None)] * 5
            lo[axis] = slice(0, nx[a])
            hi[axis] = slice(1, nx[a] + 1)
            np.subtract(flux[tuple(hi)], flux[tuple(lo)], out=diff)
            dx = pack.dx_array(a).reshape((-1, 1, 1, 1, 1))
            np.divide(diff, dx, out=diff)
            if a == 0:
                np.negative(diff, out=dudt)
            else:
                np.subtract(dudt, diff, out=dudt)
        np.multiply(u, gam0, out=u)
        np.multiply(u0, gam1, out=diff)
        np.add(u, diff, out=u)
        np.multiply(dudt, beta_dt, out=dudt)
        np.add(u, dudt, out=u)

    def fill_derived(self, pack) -> None:
        """``d = 1/2 q0 u·u`` for every block at once (CalculateDerived)."""
        u = self._interior(pack, CONSERVED)
        d = self._interior(pack, DERIVED)[:, 0]
        q0 = u[:, self.nvel]
        ke = self._scratch("ke", q0.shape)
        tmp = self._scratch("ke_tmp", q0.shape)
        np.multiply(u[:, 0], u[:, 0], out=ke)
        for i in range(1, self.nvel):
            np.multiply(u[:, i], u[:, i], out=tmp)
            np.add(ke, tmp, out=ke)
        np.multiply(q0, 0.5, out=d)
        np.multiply(d, ke, out=d)

    @staticmethod
    def save_base(pack) -> None:
        """``U0 ← U`` for the whole pack in one slab copy."""
        data = pack._require_contiguous()
        np.copyto(
            data[:, pack.component_slice(BASE)],
            data[:, pack.component_slice(CONSERVED)],
        )

    def estimate_timestep(self, pack) -> np.ndarray:
        """Per-block ``cfl·dt`` (``inf`` where a block is quiescent).

        The driver reduces this with ``min`` exactly as the per-block loop
        does; each entry reproduces ``BurgersPackage.estimate_timestep``
        bitwise.
        """
        u = self._interior(pack, CONSERVED)
        nb = u.shape[0]
        dt = np.full(nb, np.inf)
        scr = self._scratch("absu", u.shape[:1] + u.shape[2:])
        for a in range(self.ndim):
            np.absolute(u[:, a], out=scr)
            vmax = scr.max(axis=(1, 2, 3))
            safe = np.where(vmax > 0.0, vmax, 1.0)
            cand = pack.dx_array(a) / safe
            cand[vmax <= 0.0] = np.inf
            np.minimum(dt, cand, out=dt)
        return self.pkg.config.cfl * dt


@register_backend
class NumpyBackend(KernelBackend):
    """Always-available vectorized reference engine."""

    name = "numpy"

    def create_kernels(self, pkg) -> PackedBurgersKernels:
        return PackedBurgersKernels(pkg)
