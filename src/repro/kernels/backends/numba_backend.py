"""The ``numba`` backend: JIT-compiled fused stencil loops.

Where the ``numpy`` engine streams whole-pack arrays through a dozen
vectorized passes (one GEMM, one coefficient-form Riemann solve, several
elementwise epilogues), this backend fuses reconstruction and the Riemann
solve into *one* pass per face: a single ``@njit(parallel=True)`` sweep
walks every pencil of every block, keeps the 5-cell stencil window in
registers, and writes the finished flux — no intermediate face-state
arrays at all.  ``cache=True`` persists the compiled machine code across
processes so steady-state dispatch costs one dict lookup.

Import is always safe: when numba is missing, ``njit`` degrades to an
identity decorator and ``prange`` to ``range``, so the loop bodies below
remain plain Python — the differential tests exercise them (slowly but
exactly) in numpy-only environments, while :meth:`NumbaBackend.available`
keeps the registry from selecting the backend for real runs.  (Calling
``numba.prange`` outside a jitted context returns ``range`` too, so the
same tests cover the source lines when numba *is* installed.)

Numerical contract: the scalar algebra below restates
:func:`repro.solver.reconstruction.weno5_states_along` /
``plm_states_along`` and the textbook HLL/LLF solvers term for term, so
agreement with the ``numpy`` engine is at rounding level — pinned at
``atol = 1e-13`` by ``tests/test_backend_parity.py``.  All non-flux
stages are inherited from :class:`PackedBurgersKernels` unchanged and
stay bitwise-identical.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.backends.base import KernelBackend, register_backend
from repro.kernels.backends.numpy_backend import PackedBurgersKernels
from repro.solver.burgers import CONSERVED
from repro.solver.reconstruction import WENO_EPS

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except ImportError:  # numpy-only environment: keep pure-Python bodies
    NUMBA_AVAILABLE = False
    prange = range

    def njit(*args, **kwargs):
        if args and callable(args[0]):
            return args[0]

        def decorate(fn):
            return fn

        return decorate


@njit(cache=True, inline="always")
def _weno5_edge(qm2, qm1, q0, qp1, qp2):
    """Upwind-biased WENO5 edge value of one 5-cell window (Jiang & Shu).

    Forward orientation gives the right-edge (i+1/2) value; callers get
    the mirrored left-edge value by passing the window reversed.
    """
    p0 = (2.0 * qm2 - 7.0 * qm1 + 11.0 * q0) / 6.0
    p1 = (-qm1 + 5.0 * q0 + 2.0 * qp1) / 6.0
    p2 = (2.0 * q0 + 5.0 * qp1 - qp2) / 6.0
    b0 = (13.0 / 12.0) * (qm2 - 2.0 * qm1 + q0) ** 2 + 0.25 * (
        qm2 - 4.0 * qm1 + 3.0 * q0
    ) ** 2
    b1 = (13.0 / 12.0) * (qm1 - 2.0 * q0 + qp1) ** 2 + 0.25 * (
        qm1 - qp1
    ) ** 2
    b2 = (13.0 / 12.0) * (q0 - 2.0 * qp1 + qp2) ** 2 + 0.25 * (
        3.0 * q0 - 4.0 * qp1 + qp2
    ) ** 2
    a0 = 0.1 / (WENO_EPS + b0) ** 2
    a1 = 0.6 / (WENO_EPS + b1) ** 2
    a2 = 0.3 / (WENO_EPS + b2) ** 2
    return (a0 * p0 + a1 * p1 + a2 * p2) / (a0 + a1 + a2)


@njit(cache=True, inline="always")
def _minmod(a, b):
    """Scalar minmod: 0 on sign disagreement, else the smaller magnitude."""
    if a * b <= 0.0:
        return 0.0
    if abs(a) < abs(b):
        return a
    return b


@njit(cache=True, inline="always")
def _load_cell(u, b, c, direction, i_hi, i_lo, s):
    """One strided pencil load: position ``s`` along ``direction``.

    ``i_hi``/``i_lo`` are the ghost-offset positions along the two
    tangential array axes (slower- and faster-varying respectively).
    """
    if direction == 0:
        return u[b, c, i_hi, i_lo, s]
    if direction == 1:
        return u[b, c, i_hi, s, i_lo]
    return u[b, c, s, i_hi, i_lo]


@njit(cache=True, inline="always")
def _store_flux(fx, b, c, direction, t_hi, t_lo, f, val):
    """Write one face flux; the face index sits on ``direction``'s axis."""
    if direction == 0:
        fx[b, c, t_hi, t_lo, f] = val
    elif direction == 1:
        fx[b, c, t_hi, f, t_lo] = val
    else:
        fx[b, c, f, t_hi, t_lo] = val


@njit(parallel=True, cache=True)
def _flux_sweep_pack(
    u, fx, direction, ng, nxa, g_hi, g_lo, nt_hi, nt_lo, nvel, use_weno, use_hll
):
    """Fused reconstruction + Riemann solve directly over pack storage.

    ``u`` is the pack-wide conserved view ``(nb, ncomp, x3, x2, x1)``
    *including ghosts* — no recon-last staging copy; pencils are walked
    with strided loads.  ``fx`` is the pack-level face-flux array for
    ``direction`` (interior-only tangential extents, ``nxa + 1`` faces).
    ``g_hi``/``nt_hi`` are the ghost depth and interior extent of the
    slower-varying tangential array axis, ``g_lo``/``nt_lo`` of the
    faster-varying one.  Every (block, pencil) pair is independent, so
    the flattened outer loop parallelizes with no synchronization.
    """
    nb = u.shape[0]
    ncomp = u.shape[1]
    nfaces = nxa + 1
    for idx in prange(nb * nt_hi * nt_lo):
        b = idx // (nt_hi * nt_lo)
        rem = idx % (nt_hi * nt_lo)
        t_hi = rem // nt_lo
        t_lo = rem % nt_lo
        i_hi = g_hi + t_hi
        i_lo = g_lo + t_lo
        ql = np.empty(ncomp)
        qr = np.empty(ncomp)
        for f in range(nfaces):
            s0 = ng + f  # cell right of the face; s0 - 1 is left
            for c in range(ncomp):
                # Window cells around the face (a2 left, a3 right); the
                # outermost pair exists only at WENO's ghost depth.
                a1 = _load_cell(u, b, c, direction, i_hi, i_lo, s0 - 2)
                a2 = _load_cell(u, b, c, direction, i_hi, i_lo, s0 - 1)
                a3 = _load_cell(u, b, c, direction, i_hi, i_lo, s0)
                a4 = _load_cell(u, b, c, direction, i_hi, i_lo, s0 + 1)
                if use_weno:
                    a0 = _load_cell(u, b, c, direction, i_hi, i_lo, s0 - 3)
                    a5 = _load_cell(u, b, c, direction, i_hi, i_lo, s0 + 2)
                    ql[c] = _weno5_edge(a0, a1, a2, a3, a4)
                    qr[c] = _weno5_edge(a5, a4, a3, a2, a1)
                else:
                    ql[c] = a2 + 0.5 * _minmod(a2 - a1, a3 - a2)
                    qr[c] = a3 - 0.5 * _minmod(a3 - a2, a4 - a3)
            unl = ql[direction]
            unr = qr[direction]
            if use_hll:
                sl = min(min(unl, unr), 0.0)
                sr = max(max(unl, unr), 0.0)
                width = sr - sl
                if width > 0.0:
                    for c in range(ncomp):
                        scale = 0.5 if c < nvel else 1.0
                        fl = scale * ql[c] * unl
                        fr = scale * qr[c] * unr
                        val = (
                            sr * fl - sl * fr + sl * sr * (qr[c] - ql[c])
                        ) / width
                        _store_flux(fx, b, c, direction, t_hi, t_lo, f, val)
                else:
                    for c in range(ncomp):
                        _store_flux(fx, b, c, direction, t_hi, t_lo, f, 0.0)
            else:
                smax = max(abs(unl), abs(unr))
                for c in range(ncomp):
                    scale = 0.5 if c < nvel else 1.0
                    fl = scale * ql[c] * unl
                    fr = scale * qr[c] * unr
                    val = 0.5 * (fl + fr) - 0.5 * smax * (qr[c] - ql[c])
                    _store_flux(fx, b, c, direction, t_hi, t_lo, f, val)


#: direction -> (slower, faster) tangential dimension indices: the two
#: spatial dims that are *not* the sweep direction, ordered by array axis.
_TANGENTIAL = ((2, 1), (2, 0), (1, 0))


class NumbaBurgersKernels(PackedBurgersKernels):
    """Packed engine with the flux stage rerouted through the JIT sweep.

    Only ``calculate_fluxes`` differs from the numpy engine; divergence/
    update, FillDerived, save-base and the timestep reduce are inherited,
    keeping those stages bitwise-identical across backends.

    The sweep reads pack storage in place with strided pencil loads and
    writes finished fluxes straight into the pack's face arrays — no
    recon-last staging copy in, no moveaxis copy out, and no per-axis
    scratch arrays (the former ``numba_w{a}``/``numba_f{a}`` buffers).
    """

    def __init__(self, pkg) -> None:
        super().__init__(pkg)
        self._use_hll = pkg.config.riemann == "hll"

    def calculate_fluxes(self, pack) -> None:
        u = pack.field(CONSERVED)
        shape = pack.blocks[0].shape
        nx = shape.nx
        for a in range(self.ndim):
            d_hi, d_lo = _TANGENTIAL[a]
            _flux_sweep_pack(
                u,
                pack.flux_data[CONSERVED][a],
                a,
                shape.ng,
                nx[a],
                shape.ghosts(d_hi),
                shape.ghosts(d_lo),
                nx[d_hi],
                nx[d_lo],
                self.nvel,
                self._use_weno,
                self._use_hll,
            )


@register_backend
class NumbaBackend(KernelBackend):
    """JIT fused-stencil engine; selectable only when numba imports."""

    name = "numba"

    @classmethod
    def available(cls) -> bool:
        return NUMBA_AVAILABLE

    def create_kernels(self, pkg) -> NumbaBurgersKernels:
        return NumbaBurgersKernels(pkg)
