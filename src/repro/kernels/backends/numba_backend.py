"""The ``numba`` backend: JIT-compiled fused stencil loops.

Where the ``numpy`` engine streams whole-pack arrays through a dozen
vectorized passes (one GEMM, one coefficient-form Riemann solve, several
elementwise epilogues), this backend fuses reconstruction and the Riemann
solve into *one* pass per face: a single ``@njit(parallel=True)`` sweep
walks every pencil of every block, keeps the 5-cell stencil window in
registers, and writes the finished flux — no intermediate face-state
arrays at all.  ``cache=True`` persists the compiled machine code across
processes so steady-state dispatch costs one dict lookup.

Import is always safe: when numba is missing, ``njit`` degrades to an
identity decorator and ``prange`` to ``range``, so the loop bodies below
remain plain Python — the differential tests exercise them (slowly but
exactly) in numpy-only environments, while :meth:`NumbaBackend.available`
keeps the registry from selecting the backend for real runs.  (Calling
``numba.prange`` outside a jitted context returns ``range`` too, so the
same tests cover the source lines when numba *is* installed.)

Numerical contract: the scalar algebra below restates
:func:`repro.solver.reconstruction.weno5_states_along` /
``plm_states_along`` and the textbook HLL/LLF solvers term for term, so
agreement with the ``numpy`` engine is at rounding level — pinned at
``atol = 1e-13`` by ``tests/test_backend_parity.py``.  All non-flux
stages are inherited from :class:`PackedBurgersKernels` unchanged and
stay bitwise-identical.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.backends.base import KernelBackend, register_backend
from repro.kernels.backends.numpy_backend import PackedBurgersKernels
from repro.solver.burgers import CONSERVED
from repro.solver.reconstruction import WENO_EPS

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except ImportError:  # numpy-only environment: keep pure-Python bodies
    NUMBA_AVAILABLE = False
    prange = range

    def njit(*args, **kwargs):
        if args and callable(args[0]):
            return args[0]

        def decorate(fn):
            return fn

        return decorate


@njit(cache=True, inline="always")
def _weno5_edge(qm2, qm1, q0, qp1, qp2):
    """Upwind-biased WENO5 edge value of one 5-cell window (Jiang & Shu).

    Forward orientation gives the right-edge (i+1/2) value; callers get
    the mirrored left-edge value by passing the window reversed.
    """
    p0 = (2.0 * qm2 - 7.0 * qm1 + 11.0 * q0) / 6.0
    p1 = (-qm1 + 5.0 * q0 + 2.0 * qp1) / 6.0
    p2 = (2.0 * q0 + 5.0 * qp1 - qp2) / 6.0
    b0 = (13.0 / 12.0) * (qm2 - 2.0 * qm1 + q0) ** 2 + 0.25 * (
        qm2 - 4.0 * qm1 + 3.0 * q0
    ) ** 2
    b1 = (13.0 / 12.0) * (qm1 - 2.0 * q0 + qp1) ** 2 + 0.25 * (
        qm1 - qp1
    ) ** 2
    b2 = (13.0 / 12.0) * (q0 - 2.0 * qp1 + qp2) ** 2 + 0.25 * (
        3.0 * q0 - 4.0 * qp1 + qp2
    ) ** 2
    a0 = 0.1 / (WENO_EPS + b0) ** 2
    a1 = 0.6 / (WENO_EPS + b1) ** 2
    a2 = 0.3 / (WENO_EPS + b2) ** 2
    return (a0 * p0 + a1 * p1 + a2 * p2) / (a0 + a1 + a2)


@njit(cache=True, inline="always")
def _minmod(a, b):
    """Scalar minmod: 0 on sign disagreement, else the smaller magnitude."""
    if a * b <= 0.0:
        return 0.0
    if abs(a) < abs(b):
        return a
    return b


@njit(parallel=True, cache=True)
def _flux_sweep(w, fx, ng, nxa, direction, nvel, use_weno, use_hll):
    """Fused reconstruction + Riemann solve over recon-last pencils.

    ``w`` is ``(nb, ncomp, d3, d2, cells)`` with the reconstruction axis
    last (interior + ghosts); ``fx`` is ``(nb, ncomp, d3, d2, nxa + 1)``.
    Every (block, pencil) pair is independent, so the flattened outer
    loop parallelizes across threads with no synchronization.
    """
    nb, ncomp, n3, n2, _ = w.shape
    nfaces = nxa + 1
    for idx in prange(nb * n3 * n2):
        b = idx // (n3 * n2)
        rem = idx % (n3 * n2)
        k = rem // n2
        j = rem % n2
        ql = np.empty(ncomp)
        qr = np.empty(ncomp)
        for f in range(nfaces):
            cl = ng + f - 1  # cell left of the face
            cr = ng + f  # cell right of the face
            for c in range(ncomp):
                q = w[b, c, k, j]
                if use_weno:
                    ql[c] = _weno5_edge(
                        q[cl - 2], q[cl - 1], q[cl], q[cl + 1], q[cl + 2]
                    )
                    qr[c] = _weno5_edge(
                        q[cr + 2], q[cr + 1], q[cr], q[cr - 1], q[cr - 2]
                    )
                else:
                    ql[c] = q[cl] + 0.5 * _minmod(
                        q[cl] - q[cl - 1], q[cl + 1] - q[cl]
                    )
                    qr[c] = q[cr] - 0.5 * _minmod(
                        q[cr] - q[cr - 1], q[cr + 1] - q[cr]
                    )
            unl = ql[direction]
            unr = qr[direction]
            if use_hll:
                sl = min(min(unl, unr), 0.0)
                sr = max(max(unl, unr), 0.0)
                width = sr - sl
                if width > 0.0:
                    for c in range(ncomp):
                        scale = 0.5 if c < nvel else 1.0
                        fl = scale * ql[c] * unl
                        fr = scale * qr[c] * unr
                        fx[b, c, k, j, f] = (
                            sr * fl - sl * fr + sl * sr * (qr[c] - ql[c])
                        ) / width
                else:
                    for c in range(ncomp):
                        fx[b, c, k, j, f] = 0.0
            else:
                smax = max(abs(unl), abs(unr))
                for c in range(ncomp):
                    scale = 0.5 if c < nvel else 1.0
                    fl = scale * ql[c] * unl
                    fr = scale * qr[c] * unr
                    fx[b, c, k, j, f] = 0.5 * (fl + fr) - 0.5 * smax * (
                        qr[c] - ql[c]
                    )


class NumbaBurgersKernels(PackedBurgersKernels):
    """Packed engine with the flux stage rerouted through the JIT sweep.

    Only ``calculate_fluxes`` differs from the numpy engine; divergence/
    update, FillDerived, save-base and the timestep reduce are inherited,
    keeping those stages bitwise-identical across backends.
    """

    def __init__(self, pkg) -> None:
        super().__init__(pkg)
        self._use_hll = pkg.config.riemann == "hll"

    def calculate_fluxes(self, pack) -> None:
        u = pack.field(CONSERVED)
        shape = pack.blocks[0].shape
        ng = shape.ng
        nx = shape.nx
        for a in range(self.ndim):
            arr_axis = 4 - a
            sl = [slice(None), slice(None)]
            for d in (2, 1, 0):
                if d == a or d >= self.ndim:
                    sl.append(slice(None))
                else:
                    g = shape.ghosts(d)
                    sl.append(slice(g, g + nx[d]))
            qm = np.moveaxis(u[tuple(sl)], arr_axis, -1)
            # One contiguous recon-last copy in, one contiguous sweep, one
            # moveaxis copy out — same traffic shape as the numpy engine.
            w = self._scratch(f"numba_w{a}", qm.shape)
            np.copyto(w, qm)
            ft = self._scratch(f"numba_f{a}", qm.shape[:-1] + (nx[a] + 1,))
            _flux_sweep(
                w, ft, ng, nx[a], a, self.nvel, self._use_weno, self._use_hll
            )
            pack.flux_data[CONSERVED][a][...] = np.moveaxis(ft, -1, arr_axis)


@register_backend
class NumbaBackend(KernelBackend):
    """JIT fused-stencil engine; selectable only when numba imports."""

    name = "numba"

    @classmethod
    def available(cls) -> bool:
        return NUMBA_AVAILABLE

    def create_kernels(self, pkg) -> NumbaBurgersKernels:
        return NumbaBurgersKernels(pkg)
