"""Backend registry and the :class:`KernelBackend` protocol.

A *backend* supplies the packed flux-stage engine — WENO5/PLM
reconstruction and HLL/LLF Riemann solves over one contiguous
:class:`repro.solver.packs.MeshBlockPack` — plus the non-flux pack stages
(divergence/update, FillDerived, save-base, timestep reduce).  Backends
register themselves at import time; the driver resolves the configured
name through :func:`resolve_backend`, which falls back to ``numpy`` with
a one-time structured warning when the requested engine's runtime
dependency is missing (graceful degradation, not an error — the same
deck must run on every platform).

Numerical contract (pinned by ``tests/test_backend_parity.py``): every
backend agrees with the ``numpy`` reference at ``atol = 1e-13`` on the
flux stage, is *bitwise* identical on the non-flux stages, and leaves
the canonical golden trace byte-identical apart from the
``kernel_backend`` metadata field.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, List, Tuple, Type

if TYPE_CHECKING:  # pragma: no cover
    from repro.solver.burgers import BurgersPackage

#: Backend names the configuration layer accepts.  Membership here means
#: "a valid choice", not "importable right now" — see ``available()``.
KNOWN_BACKENDS: Tuple[str, ...] = ("numpy", "numba", "cupy")

#: The always-available reference engine every other backend must match.
FALLBACK_BACKEND = "numpy"


class UnknownBackendError(ValueError):
    """A backend name outside :data:`KNOWN_BACKENDS` (typo, not a missing
    dependency)."""


class BackendUnavailableWarning(UserWarning):
    """A *valid* backend was requested but its runtime dependency is
    missing; the run proceeds on the ``numpy`` fallback."""


class KernelBackend(ABC):
    """One packed-execution engine the driver can dispatch to.

    Subclasses set :attr:`name`, implement :meth:`create_kernels` (the
    factory for a per-driver kernel-engine instance) and
    :meth:`available` (a cheap dependency probe that must not raise).
    The engine object returned by :meth:`create_kernels` provides the
    pack-stage protocol::

        calculate_fluxes(pack)
        flux_divergence_and_update(pack, gam0, gam1, beta_dt)
        fill_derived(pack)
        save_base(pack)
        estimate_timestep(pack) -> per-block dt array
    """

    #: Registry key; must be a member of :data:`KNOWN_BACKENDS`.
    name: str = ""

    @classmethod
    def available(cls) -> bool:
        """Whether this backend's runtime dependency is importable."""
        return True

    @abstractmethod
    def create_kernels(self, pkg: "BurgersPackage"):
        """Build this backend's kernel engine for one physics package."""


_REGISTRY: Dict[str, KernelBackend] = {}

#: Backend names whose unavailability has already been warned about —
#: process-global so repeated driver construction (campaign workers,
#: pack rebuilds, checkpoint restores) warns exactly once per process.
_WARNED: set = set()


def register_backend(cls: Type[KernelBackend]) -> Type[KernelBackend]:
    """Class decorator: instantiate and register a backend under its name.

    Registration is idempotent per name (re-imports win), but the name
    must be pre-declared in :data:`KNOWN_BACKENDS` so the config layer
    and the registry can never disagree about the valid choices.
    """
    if cls.name not in KNOWN_BACKENDS:
        raise ValueError(
            f"backend {cls.name!r} is not declared in KNOWN_BACKENDS "
            f"{KNOWN_BACKENDS}; add it there first"
        )
    _REGISTRY[cls.name] = cls()
    return cls


def backend_names() -> List[str]:
    """All registered backend names, in :data:`KNOWN_BACKENDS` order."""
    return [n for n in KNOWN_BACKENDS if n in _REGISTRY]


def available_backends() -> List[str]:
    """Registered backends whose runtime dependency is importable."""
    return [n for n in backend_names() if _REGISTRY[n].available()]


def _suggest(given: str) -> str:
    import difflib

    close = difflib.get_close_matches(
        given, list(KNOWN_BACKENDS), n=1, cutoff=0.5
    )
    return f" (did you mean {close[0]!r}?)" if close else ""


def get_backend(name: str) -> KernelBackend:
    """The registered backend for ``name``, or :class:`UnknownBackendError`
    with a did-you-mean suggestion (the ``repro.api`` builder convention)."""
    backend = _REGISTRY.get(name)
    if backend is None:
        raise UnknownBackendError(
            f"invalid kernel_backend {name!r}; valid choices: "
            f"{', '.join(backend_names())}{_suggest(str(name))}"
        )
    return backend


def resolve_backend(name: str) -> KernelBackend:
    """``get_backend(name)`` with graceful fallback to ``numpy``.

    Unknown names still raise (a typo should never silently run the
    fallback); a known-but-unavailable backend degrades to ``numpy`` and
    emits :class:`BackendUnavailableWarning` exactly once per process.
    """
    backend = get_backend(name)
    if backend.available():
        return backend
    if name not in _WARNED:
        _WARNED.add(name)
        warnings.warn(
            f"kernel_backend {name!r} is unavailable (missing runtime "
            f"dependency); falling back to {FALLBACK_BACKEND!r}. This "
            f"warning fires once per process.",
            BackendUnavailableWarning,
            stacklevel=2,
        )
    return _REGISTRY[FALLBACK_BACKEND]


def reset_unavailable_warnings() -> None:
    """Forget which backends have warned (test isolation helper)."""
    _WARNED.clear()
