"""The ``cupy`` backend: GPU flux stage via the array-API-generic sweep.

Registered unconditionally (so configs naming it validate everywhere)
but :meth:`CupyBackend.available` is True only when cupy imports — on
numpy-only hosts :func:`repro.kernels.backends.base.resolve_backend`
degrades to the ``numpy`` engine with a one-time warning.

The flux stage is written against the ``xp`` array namespace (the numpy
subset cupy implements), so the identical code runs on device arrays
under cupy and on host arrays under numpy.  That makes the engine fully
testable without a GPU: ``CupyBurgersKernels(pkg, xp=numpy)`` executes
the exact device code path on the host, and the parity suite pins it
against the reference engine at ``atol = 1e-13``.  The algebra restates
the textbook :func:`repro.solver.reconstruction.weno5_states_along` /
``plm_states_along`` and :func:`repro.solver.riemann.hll_flux` /
``llf_flux`` expressions (vectorized over a leading block axis), so
agreement with the numpy engine is at rounding level.

Data movement: one host→device transfer of the recon-last state per
axis, one device→host transfer of the finished fluxes.  For real
workloads the pack itself should live on device; this stub keeps the
host-resident MeshBlockPack contract so every other subsystem (ghost
exchange, AMR, checkpointing) is untouched — the per-axis transfers are
the price of the stub, not of the architecture.
"""

from __future__ import annotations

import importlib.util

import numpy as np

from repro.kernels.backends.base import KernelBackend, register_backend
from repro.kernels.backends.numpy_backend import PackedBurgersKernels
from repro.solver.burgers import CONSERVED
from repro.solver.reconstruction import WENO_EPS


def _weno5_edges_xp(xp, q, c_lo: int, nfaces: int, reverse: bool):
    """Biased WENO5 edge values of cells ``c_lo .. c_lo+nfaces`` (last
    axis), mirroring :func:`weno5_states_along`'s ``biased`` helper."""
    s = -1 if reverse else 1

    def shift(k: int):
        return q[..., c_lo + k : c_lo + nfaces + k]

    qm2, qm1, q0, qp1, qp2 = (
        shift(-2 * s), shift(-1 * s), shift(0), shift(1 * s), shift(2 * s)
    )
    p0 = (2.0 * qm2 - 7.0 * qm1 + 11.0 * q0) / 6.0
    p1 = (-qm1 + 5.0 * q0 + 2.0 * qp1) / 6.0
    p2 = (2.0 * q0 + 5.0 * qp1 - qp2) / 6.0
    b0 = (13.0 / 12.0) * (qm2 - 2.0 * qm1 + q0) ** 2 + 0.25 * (
        qm2 - 4.0 * qm1 + 3.0 * q0
    ) ** 2
    b1 = (13.0 / 12.0) * (qm1 - 2.0 * q0 + qp1) ** 2 + 0.25 * (
        qm1 - qp1
    ) ** 2
    b2 = (13.0 / 12.0) * (q0 - 2.0 * qp1 + qp2) ** 2 + 0.25 * (
        3.0 * q0 - 4.0 * qp1 + qp2
    ) ** 2
    a0 = 0.1 / (WENO_EPS + b0) ** 2
    a1 = 0.6 / (WENO_EPS + b1) ** 2
    a2 = 0.3 / (WENO_EPS + b2) ** 2
    return (a0 * p0 + a1 * p1 + a2 * p2) / (a0 + a1 + a2)


def _plm_states_xp(xp, q, c_lo: int, nfaces: int, sign: float):
    """Minmod-limited PLM states, mirroring ``plm_states_along``."""

    def shift(k: int):
        return q[..., c_lo + k : c_lo + nfaces + k]

    center = shift(0)
    left = center - shift(-1)
    right = shift(1) - center
    slope = xp.where(
        left * right <= 0.0,
        xp.zeros_like(left),
        xp.where(xp.abs(left) < xp.abs(right), left, right),
    )
    return center + sign * 0.5 * slope


def flux_stage_xp(
    xp, w, ng: int, nxa: int, direction: int, nvel: int,
    use_weno: bool, use_hll: bool,
):
    """Reconstruction + Riemann flux over a recon-last state array.

    ``w`` is ``(nb, ncomp, d3, d2, cells)`` in the ``xp`` namespace;
    returns the ``(nb, ncomp, d3, d2, nxa + 1)`` face fluxes, same
    namespace.  This one function *is* the cupy device code path.
    """
    nfaces = nxa + 1
    if use_weno:
        ql = _weno5_edges_xp(xp, w, ng - 1, nfaces, reverse=False)
        qr = _weno5_edges_xp(xp, w, ng, nfaces, reverse=True)
    else:
        ql = _plm_states_xp(xp, w, ng - 1, nfaces, +1.0)
        qr = _plm_states_xp(xp, w, ng, nfaces, -1.0)
    unl = ql[:, direction : direction + 1]
    unr = qr[:, direction : direction + 1]
    fl = ql * unl
    fr = qr * unr
    fl[:, :nvel] *= 0.5
    fr[:, :nvel] *= 0.5
    if use_hll:
        sl = xp.minimum(xp.minimum(unl, unr), 0.0)
        sr = xp.maximum(xp.maximum(unl, unr), 0.0)
        width = sr - sl
        safe = xp.where(width > 0.0, width, 1.0)
        flux = (sr * fl - sl * fr + sl * sr * (qr - ql)) / safe
        return xp.where(width > 0.0, flux, 0.0)
    smax = xp.maximum(xp.abs(unl), xp.abs(unr))
    return 0.5 * (fl + fr) - 0.5 * smax * (qr - ql)


class CupyBurgersKernels(PackedBurgersKernels):
    """Packed engine running the flux stage in the ``xp`` namespace.

    With ``xp=cupy`` (the default) state is staged to the device per
    axis; with ``xp=numpy`` the same code runs on the host, which is how
    the parity suite exercises this engine without a GPU.
    """

    def __init__(self, pkg, xp=None) -> None:
        super().__init__(pkg)
        if xp is None:  # pragma: no cover - requires a cupy install
            import cupy as xp
        self.xp = xp
        self._use_hll = pkg.config.riemann == "hll"

    def _to_host(self, arr) -> np.ndarray:
        get = getattr(arr, "get", None)  # cupy device arrays
        return get() if get is not None else np.asarray(arr)

    def calculate_fluxes(self, pack) -> None:
        xp = self.xp
        u = pack.field(CONSERVED)
        shape = pack.blocks[0].shape
        ng = shape.ng
        nx = shape.nx
        for a in range(self.ndim):
            arr_axis = 4 - a
            sl = [slice(None), slice(None)]
            for d in (2, 1, 0):
                if d == a or d >= self.ndim:
                    sl.append(slice(None))
                else:
                    g = shape.ghosts(d)
                    sl.append(slice(g, g + nx[d]))
            qm = np.ascontiguousarray(
                np.moveaxis(u[tuple(sl)], arr_axis, -1)
            )
            w = xp.asarray(qm)
            ft = flux_stage_xp(
                xp, w, ng, nx[a], a, self.nvel, self._use_weno, self._use_hll
            )
            pack.flux_data[CONSERVED][a][...] = np.moveaxis(
                self._to_host(ft), -1, arr_axis
            )


@register_backend
class CupyBackend(KernelBackend):
    """GPU array backend; selectable only when cupy imports."""

    name = "cupy"

    @classmethod
    def available(cls) -> bool:
        return importlib.util.find_spec("cupy") is not None

    def create_kernels(self, pkg) -> CupyBurgersKernels:
        return CupyBurgersKernels(pkg)
