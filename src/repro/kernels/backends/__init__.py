"""Kernel backend registry: ``numpy`` (reference), ``numba``, ``cupy``.

Importing this package registers every built-in backend.  Selection goes
through :func:`resolve_backend`, which degrades to the ``numpy``
reference (with a one-time :class:`BackendUnavailableWarning`) when a
requested backend's runtime dependency is missing.
"""

from repro.kernels.backends.base import (
    BackendUnavailableWarning,
    FALLBACK_BACKEND,
    KNOWN_BACKENDS,
    KernelBackend,
    UnknownBackendError,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
    reset_unavailable_warnings,
    resolve_backend,
)

# Importing the implementation modules self-registers each backend.
from repro.kernels.backends import numpy_backend as _numpy_backend  # noqa: F401
from repro.kernels.backends import numba_backend as _numba_backend  # noqa: F401
from repro.kernels.backends import cupy_backend as _cupy_backend  # noqa: F401

__all__ = [
    "BackendUnavailableWarning",
    "FALLBACK_BACKEND",
    "KNOWN_BACKENDS",
    "KernelBackend",
    "UnknownBackendError",
    "available_backends",
    "backend_names",
    "get_backend",
    "register_backend",
    "reset_unavailable_warnings",
    "resolve_backend",
]
