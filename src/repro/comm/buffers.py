"""Boundary-buffer bookkeeping: keys, cache initialization, rebuild accounting.

Section VIII-A of the paper singles out two serial hot spots here, both of
which this module reproduces functionally so the cost model can charge them:

* ``InitializeBufferCache`` sorts the boundary keys and then applies a
  (deterministic, seeded) randomization — Parthenon shuffles buffer order to
  improve communication load balance, at the price of serial overhead every
  ``SendBoundBufs`` invocation.
* ``RebuildBufferCache`` repopulates ViewsOfViews metadata (sizes,
  restriction/prolongation flags) with per-buffer allocations and
  host-to-device copies whenever the topology changes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.mesh.logical_location import LogicalLocation

Offset = Tuple[int, int, int]


@dataclass(frozen=True, order=True)
class BufferKey:
    """Identity of one directed boundary buffer (sender → receiver)."""

    sender: LogicalLocation
    receiver: LogicalLocation
    offset: Offset  # from the receiver's perspective


@dataclass
class CacheStats:
    """Work performed by cache maintenance, for the serial cost model."""

    keys_sorted: int = 0
    keys_shuffled: int = 0
    views_rebuilt: int = 0
    h2d_copies: int = 0
    metadata_bytes: int = 0


class BufferCache:
    """Ordered registry of boundary buffers for one mesh configuration."""

    # Metadata carried per buffer in the ViewsOfViews structure: sizes,
    # offsets, restriction/prolongation flags, neighbor ids (~6 x 8B words).
    METADATA_BYTES_PER_BUFFER = 48

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.order: List[BufferKey] = []
        self.sizes: Dict[BufferKey, int] = {}
        self.stale: Dict[BufferKey, bool] = {}

    def __len__(self) -> int:
        return len(self.order)

    @staticmethod
    def _sort_key(key: BufferKey):
        """Plain-tuple sort key (dataclass comparisons are slow in bulk)."""
        s, r = key.sender, key.receiver
        return (
            s.level, s.lx1, s.lx2, s.lx3,
            r.level, r.lx1, r.lx2, r.lx3,
            key.offset,
        )

    def initialize(self, keys_with_sizes: Dict[BufferKey, int]) -> CacheStats:
        """(Re)build the ordered buffer list: sort, then shuffle.

        Returns the work counters the serial cost model charges for
        ``InitializeBufferCache``.
        """
        keys = sorted(keys_with_sizes, key=self._sort_key)
        rng = random.Random(self.seed)
        rng.shuffle(keys)
        self.order = keys
        self.sizes = dict(keys_with_sizes)
        self.stale = {k: False for k in keys}
        return CacheStats(
            keys_sorted=len(keys),
            keys_shuffled=len(keys),
        )

    def initialize_counts(self, nbuffers: int) -> CacheStats:
        """Count-only initialization for the modeled execution mode.

        The platform model only needs the amount of sorting/shuffling work;
        maintaining a million-entry ordered list in Python would just slow
        the simulation down without changing any reported quantity.
        """
        self.order = []
        self.sizes = {}
        self.stale = {}
        self._count = nbuffers
        return CacheStats(keys_sorted=nbuffers, keys_shuffled=nbuffers)

    def rebuild_views(self) -> CacheStats:
        """Account for ViewsOfViews metadata population (RebuildBufferCache)."""
        n = len(self.order)
        return CacheStats(
            views_rebuilt=n,
            h2d_copies=n,
            metadata_bytes=n * self.METADATA_BYTES_PER_BUFFER,
        )

    def mark_stale(self) -> int:
        """Mark every buffer stale after SetBounds consumed it (§II-D)."""
        for key in self.stale:
            self.stale[key] = True
        return len(self.stale)

    def total_buffer_bytes(self) -> int:
        return sum(self.sizes.values())


class GhostBufferPool:
    """Shape-keyed free list of ghost-exchange pack buffers.

    Parthenon keeps its communication buffers alive across cycles and only
    reallocates on topology changes; the seed implementation instead called
    ``np.ascontiguousarray`` per message per cycle.  The pool recycles
    released buffers so steady-state exchanges allocate nothing — a message
    slab's shape recurs every cycle until the mesh changes.
    """

    def __init__(self) -> None:
        self._free: Dict[Tuple[int, ...], List[np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        self.released = 0

    def acquire(self, shape: Tuple[int, ...]) -> np.ndarray:
        """A contiguous buffer of ``shape`` — recycled when one is free."""
        free = self._free.get(tuple(shape))
        if free:
            self.hits += 1
            return free.pop()
        self.misses += 1
        return np.empty(shape)

    def release(self, arr: np.ndarray) -> None:
        """Return a buffer to the pool for reuse."""
        self._free.setdefault(arr.shape, []).append(arr)
        self.released += 1

    def clear(self) -> None:
        """Drop all pooled buffers (after a topology change)."""
        self._free.clear()

    @property
    def pooled(self) -> int:
        """Buffers currently sitting in the free lists."""
        return sum(len(v) for v in self._free.values())
