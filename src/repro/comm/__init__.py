"""Ghost-cell communication substrate.

Implements Parthenon's four-phase boundary exchange (Section II-D):
``StartReceiveBoundBufs`` → ``SendBoundBufs`` (with restriction before send)
→ ``ReceiveBoundBufs`` → ``SetBounds`` (with prolongation on receive), plus
flux correction at fine–coarse faces (Section II-C) and a simulated MPI layer
that records every message, collective, and buffer registration for the
platform cost models.
"""

from repro.comm.topology import NeighborInfo, neighbors_of_block, build_neighbor_table
from repro.comm.mpi import SimMPI
from repro.comm.bvals import BoundaryExchange, ExchangeStats
from repro.comm.flux_correction import FluxCorrection

__all__ = [
    "NeighborInfo",
    "neighbors_of_block",
    "build_neighbor_table",
    "SimMPI",
    "BoundaryExchange",
    "ExchangeStats",
    "FluxCorrection",
]
