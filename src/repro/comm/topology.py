"""Neighbor topology: which leaves touch which, across refinement levels.

Rebuilt after every tree change — Parthenon's ``SetMeshBlockNeighbors`` /
``BuildTagMapAndBoundaryBuffers`` step (Section II-E).  The per-block
neighbor lists drive both the actual data exchange and the serial cost model
(buffer-cache setup cost scales with the number of neighbor pairs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.mesh.logical_location import LogicalLocation
from repro.mesh.mesh import Mesh
from repro.mesh.tree import neighbor_offsets

Offset = Tuple[int, int, int]


@dataclass(frozen=True)
class NeighborInfo:
    """One neighbor of a block, seen from the block's (receiver's) side.

    ``offset`` points from the block toward the neighbor; ``delta`` is
    ``neighbor.level - block.level`` ∈ {-1, 0, +1} under the 2:1 rule.
    """

    offset: Offset
    nloc: LogicalLocation
    delta: int

    @property
    def face_rank(self) -> int:
        """Number of nonzero offset components: 1 face, 2 edge, 3 corner."""
        return sum(1 for o in self.offset if o != 0)


def neighbors_of_block(mesh: Mesh, lloc: LogicalLocation) -> List[NeighborInfo]:
    """All neighbors of the leaf at ``lloc``, across every offset."""
    out: List[NeighborInfo] = []
    for offset in neighbor_offsets(mesh.ndim):
        for nloc, delta in mesh.tree.neighbor_leaves(lloc, offset):
            out.append(NeighborInfo(offset=offset, nloc=nloc, delta=delta))
    return out


def build_neighbor_table(
    mesh: Mesh,
) -> Dict[LogicalLocation, List[NeighborInfo]]:
    """Neighbor lists for every block in the mesh."""
    return {
        blk.lloc: neighbors_of_block(mesh, blk.lloc) for blk in mesh.block_list
    }


def count_neighbor_pairs(table: Dict[LogicalLocation, List[NeighborInfo]]) -> int:
    """Total directed neighbor links — the number of boundary buffers."""
    return sum(len(v) for v in table.values())
