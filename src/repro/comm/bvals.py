"""The four-phase ghost-cell exchange (Section II-D of the paper).

Phases, matching Parthenon's function decomposition exactly (the driver
times each one separately to regenerate Figs. 11/12):

1. ``start_receive_bound_bufs`` — register the expected incoming messages.
2. ``send_bound_bufs`` — pack slabs (restricting fine→coarse data *before*
   sending, which shrinks those messages by 2**ndim), refresh the buffer
   cache, and post sends (remote) or local copies.
3. ``receive_bound_bufs`` — poll for arrivals (``MPI_Iprobe`` / ``MPI_Test``
   activity is recorded for the cost model).
4. ``set_bounds`` — unpack into fine ghost zones or into the per-block
   coarse buffers, restrict local fine data into the coarse buffers, then
   prolongate coarse-neighbor regions into the fine ghosts.

Index conventions: all ranges are half-open cell-index intervals in the
(x1, x2, x3) order of :class:`repro.mesh.block.IndexShape`; array slices are
built in (comp, x3, x2, x1) order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.buffers import (
    BufferCache,
    BufferKey,
    CacheStats,
    GhostBufferPool,
)
from repro.comm.mpi import SimMPI
from repro.comm.topology import NeighborInfo, build_neighbor_table
from repro.mesh.block import MeshBlock
from repro.mesh.logical_location import LogicalLocation
from repro.mesh.mesh import Mesh
from repro.mesh.prolongation import prolong
from repro.mesh.restriction import restrict
from repro.mesh.tree import neighbor_offsets

Offset = Tuple[int, int, int]
Range = Tuple[int, int]


def _slices(ranges: Sequence[Range]) -> Tuple[slice, ...]:
    """(comp, x3, x2, x1) slice tuple from (x1, x2, x3) cell ranges."""
    r1, r2, r3 = ranges
    return (
        slice(None),
        slice(r3[0], r3[1]),
        slice(r2[0], r2[1]),
        slice(r1[0], r1[1]),
    )


@dataclass(frozen=True)
class MessageSpec:
    """Geometry of one boundary message."""

    key: BufferKey
    delta: int
    send_ranges: Tuple[Range, Range, Range]
    recv_ranges: Tuple[Range, Range, Range]
    to_coarse: bool  # receiver places data in its coarse buffer
    restrict_before_send: bool

    @property
    def cells(self) -> int:
        """Cells transmitted (post-restriction) — the paper's comm metric."""
        out = 1
        for lo, hi in self.recv_ranges:
            out *= hi - lo
        return out


def message_spec(
    nx: Tuple[int, int, int],
    ng: int,
    ndim: int,
    nbr: NeighborInfo,
    receiver: LogicalLocation,
) -> MessageSpec:
    """Compute sender/receiver cell ranges for one neighbor message.

    ``nbr.offset`` points from the receiver toward the sender.  ``delta`` is
    the sender's level minus the receiver's.  The range geometry depends only
    on the offset, the level delta and the coordinate parities, so it is
    memoized — modeled runs rebuild hundreds of thousands of links per cycle.
    """
    send, recv, to_coarse, restrict_bs = _message_geometry(
        nx,
        ng,
        ndim,
        nbr.offset,
        nbr.delta,
        tuple(nbr.nloc.coord(a) & 1 for a in range(3)),
        tuple(receiver.coord(a) & 1 for a in range(3)),
    )
    return MessageSpec(
        key=BufferKey(sender=nbr.nloc, receiver=receiver, offset=nbr.offset),
        delta=nbr.delta,
        send_ranges=send,
        recv_ranges=recv,
        to_coarse=to_coarse,
        restrict_before_send=restrict_bs,
    )


@lru_cache(maxsize=65536)
def _message_geometry(
    nx: Tuple[int, int, int],
    ng: int,
    ndim: int,
    offset: Offset,
    delta: int,
    sender_parity: Tuple[int, int, int],
    receiver_parity: Tuple[int, int, int],
):
    hg = ng // 2
    send: List[Range] = []
    recv: List[Range] = []
    for a in range(3):
        if a >= ndim:
            send.append((0, 1))
            recv.append((0, 1))
            continue
        o = offset[a]
        nxa = nx[a]
        ncx = nxa // 2
        if delta == 0:
            if o == -1:
                send.append((ng + nxa - ng, ng + nxa))
                recv.append((0, ng))
            elif o == 1:
                send.append((ng, 2 * ng))
                recv.append((ng + nxa, ng + nxa + ng))
            else:
                send.append((ng, ng + nxa))
                recv.append((ng, ng + nxa))
        elif delta == 1:
            # Sender is finer; send ranges are at the sender's resolution and
            # get restricted by 2x before transmission.
            if o == -1:
                send.append((ng + nxa - 2 * ng, ng + nxa))
                recv.append((0, ng))
            elif o == 1:
                send.append((ng, ng + 2 * ng))
                recv.append((ng + nxa, ng + nxa + ng))
            else:
                fi = sender_parity[a]
                send.append((ng, ng + nxa))
                recv.append((ng + fi * ncx, ng + (fi + 1) * ncx))
        elif delta == -1:
            # Sender is coarser; data lands in the receiver's coarse buffer
            # (same resolution as the sender).  Normal depth hg+1 provides
            # the extra margin cell prolongation slopes need.  ``ci`` is the
            # child index of the region adjacent to the receiver *within the
            # coarse sender* — for edge/corner offsets the coarse block can
            # wrap around the fine block, putting that region in the
            # sender's interior rather than at its boundary.
            ci = (receiver_parity[a] + o) & 1
            if o == -1:
                hi = ng + (ci + 1) * ncx
                send.append((hi - (hg + 1), hi))
                recv.append((ng - hg - 1, ng))
            elif o == 1:
                lo = ng + ci * ncx
                send.append((lo, lo + hg + 1))
                recv.append((ng + ncx, ng + ncx + hg + 1))
            else:
                send.append((ng + ci * ncx, ng + (ci + 1) * ncx))
                recv.append((ng, ng + ncx))
        else:  # pragma: no cover - 2:1 rule forbids it
            raise ValueError(f"invalid level delta {delta}")
    return tuple(send), tuple(recv), delta == -1, delta == 1


def prolong_ranges(
    nx: Tuple[int, int, int], ng: int, ndim: int, offset: Offset
) -> Tuple[Tuple[Range, Range, Range], Tuple[Range, Range, Range]]:
    """Coarse-buffer source (with 1-cell margins) and fine ghost target for
    prolongating the ghost region facing a coarser neighbor at ``offset``."""
    hg = ng // 2
    src: List[Range] = []
    tgt: List[Range] = []
    for a in range(3):
        if a >= ndim:
            src.append((0, 1))
            tgt.append((0, 1))
            continue
        o = offset[a]
        nxa = nx[a]
        ncx = nxa // 2
        if o == -1:
            src.append((ng - hg - 1, ng + 1))
            tgt.append((0, ng))
        elif o == 1:
            src.append((ng + ncx - 1, ng + ncx + hg + 1))
            tgt.append((ng + nxa, ng + nxa + ng))
        else:
            src.append((ng - 1, ng + ncx + 1))
            tgt.append((ng, ng + nxa))
    return tuple(src), tuple(tgt)


def restrict_target_ranges(
    nx: Tuple[int, int, int],
    ng: int,
    ndim: int,
    fine_ranges: Tuple[Range, Range, Range],
) -> Tuple[Range, Range, Range]:
    """Coarse-buffer ranges covered by a fine-cell region of the same block.

    Fine interior cell ``ng + i`` maps to coarse interior cell ``ng + i//2``;
    ghost cells map symmetrically.  Every fine range must be 2-aligned
    relative to the interior start, which the MeshGeometry constraints
    (block size % 4, even ng) guarantee.
    """
    out: List[Range] = []
    for a in range(3):
        if a >= ndim:
            out.append((0, 1))
            continue
        lo, hi = fine_ranges[a]
        rel_lo = lo - ng
        rel_hi = hi - ng
        if rel_lo % 2 or rel_hi % 2:
            raise ValueError(
                f"fine range {fine_ranges[a]} along dim {a} is not 2-aligned"
            )
        out.append((ng + rel_lo // 2, ng + rel_hi // 2))
    return tuple(out)


@dataclass
class ExchangeStats:
    """One exchange's communication volume, fed to the cost models."""

    messages_remote: int = 0
    messages_local: int = 0
    cells_communicated: int = 0
    bytes_communicated: int = 0
    buffers_packed: int = 0
    prolongations: int = 0
    restrictions: int = 0

    def merge(self, other: "ExchangeStats") -> None:
        for name in vars(other):
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass
class RebuildStats:
    """Topology/cache rebuild work (RedistributeAndRefineMeshBlocks costs)."""

    nblocks: int = 0
    nbuffers: int = 0
    cache: CacheStats = field(default_factory=CacheStats)


class BoundaryExchange:
    """Ghost-cell communication engine over a :class:`Mesh` and a SimMPI."""

    def __init__(
        self,
        mesh: Mesh,
        mpi: SimMPI,
        bytes_per_value: int = 8,
        cache_seed: int = 0,
        metrics=None,
    ) -> None:
        self.mesh = mesh
        self.mpi = mpi
        self.bytes_per_value = bytes_per_value
        #: Optional :class:`repro.observability.MetricsRegistry`; when
        #: attached, per-message ghost-traffic distributions are observed.
        self.metrics = metrics
        self.cache = BufferCache(seed=cache_seed)
        self.pool = GhostBufferPool()
        self.neighbor_table: Dict[LogicalLocation, List[NeighborInfo]] = {}
        self._specs: Dict[LogicalLocation, List[MessageSpec]] = {}
        self._inflight: Dict[BufferKey, Tuple[MessageSpec, Optional[dict]]] = {}
        self._expected: int = 0
        self.rebuild()

    # ------------------------------------------------------------- rebuild

    def _total_ncomp(self) -> int:
        return sum(s.ncomp for s in self.mesh.field_specs)

    def rebuild(self) -> RebuildStats:
        """Recompute neighbor lists, message specs, and the buffer cache.

        Must be called after every remesh or load-balance — this is the
        ``BuildTagMapAndBoundaryBuffers`` + ``SetMeshBlockNeighbors`` work
        Section II-E describes.  The modeled execution mode takes an
        aggregate path: identical counts and traffic, no per-link Python
        objects (the meshes there reach hundreds of thousands of links).
        """
        self.neighbor_table = build_neighbor_table(self.mesh)
        self.pool.clear()
        if not self.mesh.allocate:
            return self._rebuild_modeled()
        nx = self.mesh.geometry.block_size
        ng = self.mesh.geometry.ng
        ndim = self.mesh.ndim
        self._specs = {}
        keys_with_sizes: Dict[BufferKey, int] = {}
        ncomp = self._total_ncomp()
        for blk in self.mesh.block_list:
            specs = [
                message_spec(nx, ng, ndim, nbr, blk.lloc)
                for nbr in self.neighbor_table[blk.lloc]
            ]
            self._specs[blk.lloc] = specs
            for spec in specs:
                keys_with_sizes[spec.key] = (
                    spec.cells * ncomp * self.bytes_per_value
                )
        cache_stats = self.cache.initialize(keys_with_sizes)
        cache_stats_views = self.cache.rebuild_views()
        cache_stats.views_rebuilt = cache_stats_views.views_rebuilt
        cache_stats.h2d_copies = cache_stats_views.h2d_copies
        cache_stats.metadata_bytes = cache_stats_views.metadata_bytes

        # Persistent send+receive buffers registered per rank for remote
        # links (the MPI part of Fig. 10's memory breakdown).
        per_rank: Dict[int, int] = {r: 0 for r in range(self.mpi.nranks)}
        for blk in self.mesh.block_list:
            for spec in self._specs[blk.lloc]:
                sender = self.mesh.block_at(spec.key.sender)
                if sender.rank != blk.rank:
                    size = keys_with_sizes[spec.key]
                    per_rank[sender.rank] += size
                    per_rank[blk.rank] += size
        self.mpi.set_registered_buffer_bytes(per_rank)

        return RebuildStats(
            nblocks=self.mesh.num_blocks,
            nbuffers=len(keys_with_sizes),
            cache=cache_stats,
        )

    def _rebuild_modeled(self) -> RebuildStats:
        """Aggregate rebuild for cost-only runs: same counts, no objects."""
        nx = self.mesh.geometry.block_size
        ng = self.mesh.geometry.ng
        ndim = self.mesh.ndim
        ncomp = self._total_ncomp()
        bpv = self.bytes_per_value
        pairs: Dict[Tuple[int, int], List[int]] = {}
        restricted = 0
        prolongs = 0
        restricts = 0
        nbuffers = 0
        per_rank: Dict[int, int] = {r: 0 for r in range(self.mpi.nranks)}
        block_at = self.mesh.blocks_by_loc
        for blk in self.mesh.block_list:
            rparity = (blk.lloc.lx1 & 1, blk.lloc.lx2 & 1, blk.lloc.lx3 & 1)
            coarse_offsets = set()
            fine_or_same = 0
            for nbr in self.neighbor_table[blk.lloc]:
                s = nbr.nloc
                _, recv, _, restrict_bs = _message_geometry(
                    nx,
                    ng,
                    ndim,
                    nbr.offset,
                    nbr.delta,
                    (s.lx1 & 1, s.lx2 & 1, s.lx3 & 1),
                    rparity,
                )
                cells = (
                    (recv[0][1] - recv[0][0])
                    * (recv[1][1] - recv[1][0])
                    * (recv[2][1] - recv[2][0])
                )
                src = block_at[s].rank
                key = (src, blk.rank)
                entry = pairs.get(key)
                if entry is None:
                    pairs[key] = [1, cells]
                else:
                    entry[0] += 1
                    entry[1] += cells
                nbuffers += 1
                if restrict_bs:
                    restricted += 1
                if nbr.delta == -1:
                    coarse_offsets.add(nbr.offset)
                else:
                    fine_or_same += 1
                if src != blk.rank:
                    size = cells * ncomp * bpv
                    per_rank[src] += size
                    per_rank[blk.rank] += size
            if coarse_offsets:
                prolongs += len(coarse_offsets)
                restricts += 1 + fine_or_same
        self._agg_pairs = pairs
        self._agg_restricted_msgs = restricted
        self._agg_prolongs = prolongs
        self._agg_restricts = restricts
        self._agg_nbuffers = nbuffers
        cache_stats = self.cache.initialize_counts(nbuffers)
        cache_stats.views_rebuilt = nbuffers
        cache_stats.h2d_copies = nbuffers
        cache_stats.metadata_bytes = (
            nbuffers * self.cache.METADATA_BYTES_PER_BUFFER
        )
        self.mpi.set_registered_buffer_bytes(per_rank)
        return RebuildStats(
            nblocks=self.mesh.num_blocks, nbuffers=nbuffers, cache=cache_stats
        )

    # -------------------------------------------------------------- phases

    def start_receive_bound_bufs(self) -> int:
        """Phase 1: register expected incoming messages."""
        self._inflight = {}
        if not self.mesh.allocate:
            self._expected = self._agg_nbuffers
        else:
            self._expected = sum(len(v) for v in self._specs.values())
        return self._expected

    def send_bound_bufs(self, field_names: Sequence[str]) -> ExchangeStats:
        """Phase 2: pack (restricting where needed) and post all messages."""
        stats = ExchangeStats()
        ncomp_by_name = {s.name: s.ncomp for s in self.mesh.field_specs}
        ncomp = sum(ncomp_by_name[name] for name in field_names)
        if not self.mesh.allocate:
            for (src, dst), (count, cells) in self._agg_pairs.items():
                nbytes = cells * ncomp * self.bytes_per_value
                self.mpi.send_bulk(src, dst, count, nbytes)
                if self.metrics is not None and count:
                    # Aggregate path: one observation per rank pair, at
                    # the pair's mean message size.
                    self.metrics.observe("ghost_message_bytes", nbytes / count)
                if src == dst:
                    stats.messages_local += count
                else:
                    stats.messages_remote += count
                stats.cells_communicated += cells
                stats.bytes_communicated += nbytes
                stats.buffers_packed += count
            stats.restrictions += self._agg_restricted_msgs
            self._remote_pending = stats.messages_remote
            return stats
        for blk in self.mesh.block_list:
            for spec in self._specs[blk.lloc]:
                sender = self.mesh.block_at(spec.key.sender)
                payload: Optional[dict] = None
                if self.mesh.allocate:
                    payload = {}
                    for name in field_names:
                        slab = sender.fields[name][_slices(spec.send_ranges)]
                        if spec.restrict_before_send:
                            slab = restrict(slab, self.mesh.ndim)
                            stats.restrictions += 1
                        buf = self.pool.acquire(slab.shape)
                        np.copyto(buf, slab)
                        payload[name] = buf
                nbytes = spec.cells * ncomp * self.bytes_per_value
                self.mpi.send(sender.rank, blk.rank, nbytes)
                if self.metrics is not None:
                    self.metrics.observe("ghost_message_bytes", nbytes)
                if sender.rank == blk.rank:
                    stats.messages_local += 1
                else:
                    stats.messages_remote += 1
                stats.cells_communicated += spec.cells
                stats.bytes_communicated += nbytes
                stats.buffers_packed += 1
                self._inflight[spec.key] = (spec, payload)
        return stats

    def receive_bound_bufs(self) -> int:
        """Phase 3: poll for arrivals.

        In the simulation all messages are already present; what matters for
        the cost model is the polling activity: one ``MPI_Iprobe`` nudge and
        one ``MPI_Test`` completion check per remote message.
        """
        if not self.mesh.allocate:
            remote = getattr(self, "_remote_pending", 0)
            self.mpi.iprobe(remote)
            self.mpi.test(remote)
            return self._agg_nbuffers
        remote = sum(
            1
            for spec, _ in self._inflight.values()
            if self.mesh.block_at(spec.key.sender).rank
            != self.mesh.block_at(spec.key.receiver).rank
        )
        self.mpi.iprobe(remote)
        self.mpi.test(remote)
        return len(self._inflight)

    def set_bounds(self, field_names: Sequence[str]) -> ExchangeStats:
        """Phase 4: unpack, restrict locally, prolongate coarse regions."""
        stats = ExchangeStats()
        if self.mesh.allocate:
            self._unpack(field_names)
            # Consumed payload buffers go back to the pool for next cycle.
            for _, payload in self._inflight.values():
                if payload:
                    for arr in payload.values():
                        self.pool.release(arr)
            for blk in self.mesh.block_list:
                self._fill_physical_ghosts(blk, field_names)
            stats.prolongations, stats.restrictions = (
                self._restrict_and_prolongate(field_names)
            )
        else:
            # Model mode: kernel work counts from the rebuild aggregates.
            stats.prolongations = self._agg_prolongs
            stats.restrictions = self._agg_restricts
        self.cache.mark_stale()
        self._inflight = {}
        return stats

    def exchange(self, field_names: Sequence[str]) -> ExchangeStats:
        """Run all four phases; convenience for tests and examples."""
        self.start_receive_bound_bufs()
        stats = self.send_bound_bufs(field_names)
        self.receive_bound_bufs()
        set_stats = self.set_bounds(field_names)
        stats.prolongations += set_stats.prolongations
        stats.restrictions += set_stats.restrictions
        return stats

    # ------------------------------------------------------------ internals

    def _coarse_offsets(self, lloc: LogicalLocation) -> List[Offset]:
        return [
            nbr.offset for nbr in self.neighbor_table[lloc] if nbr.delta == -1
        ]

    def _unpack(self, field_names: Sequence[str]) -> None:
        for spec, payload in self._inflight.values():
            blk = self.mesh.block_at(spec.key.receiver)
            target = blk.coarse_fields if spec.to_coarse else blk.fields
            sl = _slices(spec.recv_ranges)
            for name in field_names:
                target[name][sl] = payload[name]

    def _restrict_and_prolongate(
        self, field_names: Sequence[str]
    ) -> Tuple[int, int]:
        """Fill coarse buffers from local fine data, then prolongate.

        Only blocks that actually have a coarser neighbor need this work.
        Returns (prolongation launches, restriction launches).
        """
        nx = self.mesh.geometry.block_size
        ng = self.mesh.geometry.ng
        ndim = self.mesh.ndim
        n_prolong = 0
        n_restrict = 0
        for blk in self.mesh.block_list:
            coarse_offsets = self._coarse_offsets(blk.lloc)
            if not coarse_offsets:
                continue
            # Restrict the interior into the coarse buffer.
            interior = tuple(
                (ng, ng + nx[a]) if a < ndim else (0, 1) for a in range(3)
            )
            regions = [interior]
            # Restrict every ghost slab filled at fine resolution
            # (same-level and finer neighbors, and physical boundaries).
            for spec in self._specs[blk.lloc]:
                if spec.delta >= 0:
                    regions.append(spec.recv_ranges)
            for offset in self._physical_offsets(blk.lloc):
                regions.append(self._ghost_ranges(nx, ng, ndim, offset))
            for fine_ranges in regions:
                coarse_ranges = restrict_target_ranges(nx, ng, ndim, fine_ranges)
                for name in field_names:
                    fine = blk.fields[name][_slices(fine_ranges)]
                    blk.coarse_fields[name][_slices(coarse_ranges)] = restrict(
                        fine, ndim
                    )
                n_restrict += 1
            # Prolongate each coarse-neighbor ghost region.
            for offset in set(coarse_offsets):
                src, tgt = prolong_ranges(nx, ng, ndim, offset)
                for name in field_names:
                    coarse = blk.coarse_fields[name][_slices(src)]
                    blk.fields[name][_slices(tgt)] = prolong(coarse, ndim)
                n_prolong += 1
        return n_prolong, n_restrict

    @staticmethod
    def _ghost_ranges(
        nx: Tuple[int, int, int], ng: int, ndim: int, offset: Offset
    ) -> Tuple[Range, Range, Range]:
        """Fine ghost-slab ranges for ``offset`` (receiver side, delta=0)."""
        out: List[Range] = []
        for a in range(3):
            if a >= ndim:
                out.append((0, 1))
                continue
            o = offset[a]
            if o == -1:
                out.append((0, ng))
            elif o == 1:
                out.append((ng + nx[a], ng + nx[a] + ng))
            else:
                out.append((ng, ng + nx[a]))
        return tuple(out)

    def _physical_offsets(self, lloc: LogicalLocation) -> List[Offset]:
        """Offsets that face a non-periodic physical boundary."""
        present = {nbr.offset for nbr in self.neighbor_table[lloc]}
        return [
            o for o in neighbor_offsets(self.mesh.ndim) if o not in present
        ]

    def _physical_faces(self, lloc: LogicalLocation) -> List[Tuple[int, int]]:
        """(axis, side) pairs whose face sits on a physical boundary."""
        present = {nbr.offset for nbr in self.neighbor_table[lloc]}
        faces = []
        for a in range(self.mesh.ndim):
            for o in (-1, 1):
                offset = tuple(o if ax == a else 0 for ax in range(3))
                if offset not in present:
                    faces.append((a, o))
        return faces

    def _fill_physical_ghosts(
        self, blk: MeshBlock, field_names: Sequence[str]
    ) -> None:
        """Outflow (zero-gradient) fill for non-periodic boundary faces.

        Each face fill spans the full tangential extent (including ghost
        columns), so edge and corner regions bordered by physical boundaries
        are covered by the axis-ordered sequence of face fills.
        """
        ng = self.mesh.geometry.ng
        for a, o in self._physical_faces(blk.lloc):
            axis = 3 - a
            for name in field_names:
                arr = blk.fields[name]
                n = arr.shape[axis]
                edge = [slice(None)] * 4
                tgt = [slice(None)] * 4
                if o == -1:
                    edge[axis] = slice(ng, ng + 1)
                    tgt[axis] = slice(0, ng)
                else:
                    edge[axis] = slice(n - ng - 1, n - ng)
                    tgt[axis] = slice(n - ng, n)
                arr[tuple(tgt)] = arr[tuple(edge)]
