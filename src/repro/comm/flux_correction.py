"""Flux correction at fine–coarse faces (Section II-C).

At a shared face between refinement levels, the coarse block's flux is
replaced by the area-average of the fine neighbor's face fluxes.  Without
this, the aggregate of fine fluxes does not match the coarse flux, producing
artificial gains/losses of conserved quantities.  The data moves through the
same inter-block communication machinery as ghost exchange but applies only
to flux fields — so the cost model charges it like a (smaller) exchange.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.comm.mpi import SimMPI
from repro.comm.topology import NeighborInfo
from repro.mesh.logical_location import LogicalLocation
from repro.mesh.mesh import Mesh


def restrict_face(slab: np.ndarray, ndim: int, normal_axis: int) -> np.ndarray:
    """Average a fine face-flux slab down 2x along tangential dimensions.

    ``slab`` has shape ``(ncomp, n3, n2, n1)`` with extent 1 along the normal
    dimension.  Flux is a per-area density, so the coarse value is the plain
    mean of the ``2**(ndim-1)`` fine faces it covers.
    """
    out = slab
    for a in range(ndim):
        if a == normal_axis:
            continue
        axis = 3 - a
        shape = list(out.shape)
        if shape[axis] % 2 != 0:
            raise ValueError(
                f"tangential extent {shape[axis]} along dim {a} is odd"
            )
        shape[axis] //= 2
        shape.insert(axis + 1, 2)
        out = out.reshape(shape).mean(axis=axis + 1)
    return out


@dataclass
class FluxCorrectionStats:
    """Work/traffic from one flux-correction pass."""

    corrections: int = 0
    messages_remote: int = 0
    messages_local: int = 0
    cells_communicated: int = 0
    bytes_communicated: int = 0


class FluxCorrection:
    """Applies fine→coarse flux correction over a mesh.

    The neighbor table is shared with :class:`BoundaryExchange` (the caller
    passes it in after each rebuild) so topology is computed once per remesh.
    """

    def __init__(self, mesh: Mesh, mpi: SimMPI, bytes_per_value: int = 8) -> None:
        self.mesh = mesh
        self.mpi = mpi
        self.bytes_per_value = bytes_per_value
        self.neighbor_table: Dict[LogicalLocation, List[NeighborInfo]] = {}

    def set_neighbor_table(
        self, table: Dict[LogicalLocation, List[NeighborInfo]]
    ) -> None:
        self.neighbor_table = table

    def correct(self, field_names: Sequence[str]) -> FluxCorrectionStats:
        """Overwrite coarse face fluxes with restricted fine fluxes."""
        stats = FluxCorrectionStats()
        ndim = self.mesh.ndim
        nx = self.mesh.geometry.block_size
        ncomp_by_name = {s.name: s.ncomp for s in self.mesh.field_specs}
        ncomp = sum(ncomp_by_name[name] for name in field_names)
        for blk in self.mesh.block_list:
            for nbr in self.neighbor_table.get(blk.lloc, []):
                if nbr.delta != 1 or nbr.face_rank != 1:
                    continue
                axis = next(a for a in range(3) if nbr.offset[a] != 0)
                o = nbr.offset[axis]
                fine = self.mesh.block_at(nbr.nloc)
                cells = 1
                for t in range(ndim):
                    if t != axis:
                        cells *= nx[t] // 2
                if self.mesh.allocate:
                    self._apply(blk, fine, nbr, axis, o, field_names, ndim, nx)
                self.mpi.send(
                    fine.rank, blk.rank, cells * ncomp * self.bytes_per_value
                )
                if fine.rank == blk.rank:
                    stats.messages_local += 1
                else:
                    stats.messages_remote += 1
                stats.corrections += 1
                stats.cells_communicated += cells
                stats.bytes_communicated += cells * ncomp * self.bytes_per_value
        return stats

    def _apply(
        self,
        coarse_blk,
        fine_blk,
        nbr: NeighborInfo,
        axis: int,
        o: int,
        field_names: Sequence[str],
        ndim: int,
        nx: Tuple[int, int, int],
    ) -> None:
        for name in field_names:
            cflux = coarse_blk.fluxes[name][axis]
            fflux = fine_blk.fluxes[name][axis]
            # Fine block's shared face is on its side facing the coarse block.
            fine_face = nx[axis] if o == -1 else 0
            coarse_face = 0 if o == -1 else nx[axis]
            fsl = [slice(None)] * 4
            fsl[3 - axis] = slice(fine_face, fine_face + 1)
            slab = restrict_face(fflux[tuple(fsl)], ndim, axis)
            csl = [slice(None)] * 4
            csl[3 - axis] = slice(coarse_face, coarse_face + 1)
            for t in range(ndim):
                if t == axis:
                    continue
                fi = nbr.nloc.coord(t) & 1
                half = nx[t] // 2
                csl[3 - t] = slice(fi * half, (fi + 1) * half)
            cflux[tuple(csl)] = slab
        return None
