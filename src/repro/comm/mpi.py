"""Simulated MPI: in-process ranks with full traffic accounting.

The paper's rank-scaling findings (Sections IV-D/E) hinge on message counts,
collective participation, and per-rank driver memory — quantities this layer
records exactly while data moves through ordinary Python copies.  The cost of
each recorded operation is assigned later by :mod:`repro.hardware`.

Collectives mirror the two Parthenon uses the paper highlights:
``All-Gather`` of refinement flags in ``UpdateMeshBlockTree`` and
``All-Reduce`` of the timestep in ``EstimateTimeStep``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Tuple


@dataclass
class MPICounters:
    """Traffic recorded since the last reset (typically one cycle)."""

    remote_messages: int = 0
    remote_bytes: int = 0
    local_copies: int = 0
    local_bytes: int = 0
    iprobe_calls: int = 0
    test_calls: int = 0
    allgather_calls: int = 0
    allgather_bytes: int = 0
    allreduce_calls: int = 0
    allreduce_bytes: int = 0

    def merge(self, other: "MPICounters") -> None:
        """Accumulate ``other``'s counters into this one.

        Iterates declared dataclass fields, not ``vars(other)``, so
        ad-hoc instance attributes (or future non-counter state) can't
        silently corrupt the merge.
        """
        for f in fields(other):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


class SimMPI:
    """A communicator over ``nranks`` simulated ranks.

    ``nnodes`` models the multi-node experiments of Section V: messages
    between ranks on different nodes are counted separately so the cost model
    can charge inter-node latency/bandwidth.
    Ranks are assigned to nodes round-robin in contiguous chunks.
    """

    def __init__(self, nranks: int, nnodes: int = 1) -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        if nnodes < 1 or nnodes > nranks:
            raise ValueError(f"nnodes must be in [1, nranks], got {nnodes}")
        self.nranks = nranks
        self.nnodes = nnodes
        self.cycle = MPICounters()
        self.total = MPICounters()
        self.internode_messages = 0
        self.internode_bytes = 0
        # Persistent communication buffers registered per rank (bytes),
        # the pink region of Fig. 10.
        self._registered: Dict[int, int] = {r: 0 for r in range(nranks)}

    # ------------------------------------------------------------- helpers

    def node_of(self, rank: int) -> int:
        """Node hosting ``rank`` (contiguous chunks of ranks per node)."""
        per_node = (self.nranks + self.nnodes - 1) // self.nnodes
        return rank // per_node

    # ------------------------------------------------------------ traffic

    def send(self, src: int, dst: int, nbytes: int) -> None:
        """Record one point-to-point message (or local copy)."""
        self.send_bulk(src, dst, 1, nbytes)

    def send_bulk(self, src: int, dst: int, count: int, nbytes: int) -> None:
        """Record ``count`` messages totalling ``nbytes`` between two ranks."""
        if src == dst:
            self.cycle.local_copies += count
            self.cycle.local_bytes += nbytes
        else:
            self.cycle.remote_messages += count
            self.cycle.remote_bytes += nbytes
            if self.node_of(src) != self.node_of(dst):
                self.internode_messages += count
                self.internode_bytes += nbytes

    def iprobe(self, npolls: int = 1) -> None:
        """Record ``MPI_Iprobe`` polling used to nudge progress (§II-D)."""
        self.cycle.iprobe_calls += npolls

    def test(self, ncalls: int = 1) -> None:
        """Record ``MPI_Test`` completion checks."""
        self.cycle.test_calls += ncalls

    def allgather(self, bytes_per_rank: int) -> None:
        """Record an All-Gather over every rank."""
        self.cycle.allgather_calls += 1
        self.cycle.allgather_bytes += bytes_per_rank * self.nranks

    def allreduce(self, nbytes: int = 8) -> None:
        """Record an All-Reduce (e.g. the global minimum timestep)."""
        self.cycle.allreduce_calls += 1
        self.cycle.allreduce_bytes += nbytes

    # ------------------------------------------------------------- memory

    def register_buffers(self, rank: int, nbytes: int) -> None:
        """Grow rank-local persistent communication buffer registration."""
        self._registered[rank] = self._registered.get(rank, 0) + nbytes

    def release_buffers(self, rank: int, nbytes: int) -> None:
        self._registered[rank] = max(0, self._registered.get(rank, 0) - nbytes)

    def set_registered_buffer_bytes(self, per_rank: Dict[int, int]) -> None:
        """Replace the registration map wholesale (after a buffer rebuild)."""
        self._registered = {r: 0 for r in range(self.nranks)}
        for rank, nbytes in per_rank.items():
            self._registered[rank] = nbytes

    def registered_buffer_bytes(self, rank: int) -> int:
        return self._registered.get(rank, 0)

    def total_registered_bytes(self) -> int:
        return sum(self._registered.values())

    # ------------------------------------------------------------ lifecycle

    def end_cycle(self) -> MPICounters:
        """Fold the per-cycle counters into totals; return the cycle's."""
        done = self.cycle
        self.total.merge(done)
        self.cycle = MPICounters()
        return done
