"""Command-line interface: run decks, characterize configs, sweep axes.

Usage::

    python -m repro run input.vibe [--cycles N]
    python -m repro characterize --mesh 128 --block 16 --levels 3 \
        --backend gpu --gpus 1 --ranks 12 [--cycles N]
    python -m repro sweep {block,mesh,levels,gpu-ranks,cpu-ranks} [options]
    python -m repro deck --mesh 128 --block 16 ...   # emit an input deck
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.characterize import characterize, kernel_fraction
from repro.core.report import render_breakdown, render_memory, render_sweep, render_table
from repro.driver.driver import ParthenonDriver
from repro.driver.execution import ExecutionConfig
from repro.driver.input import load_input, render_input
from repro.driver.params import SimulationParams


def _add_config_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--mesh", type=int, default=128, help="cells per dimension")
    p.add_argument("--block", type=int, default=16, help="MeshBlock size")
    p.add_argument("--levels", type=int, default=3, help="#AMR levels")
    p.add_argument("--ndim", type=int, default=3, choices=(1, 2, 3))
    p.add_argument("--scalars", type=int, default=8, help="passive scalars")
    p.add_argument(
        "--backend", choices=("gpu", "cpu"), default="gpu"
    )
    p.add_argument("--gpus", type=int, default=1)
    p.add_argument("--ranks", type=int, default=1, help="ranks per GPU / CPU ranks")
    p.add_argument("--nodes", type=int, default=1)
    p.add_argument("--cycles", type=int, default=3)
    p.add_argument("--warmup", type=int, default=2)
    p.add_argument(
        "--mode", choices=("modeled", "numeric"), default="modeled",
        help="cost-only synthetic run, or real PDE math (small configs)",
    )
    p.add_argument(
        "--kernel-mode", choices=("packed", "per_block"), default="packed",
        help="one fused launch per MeshBlockPack, or one per block "
        "(the launch-overhead ablation)",
    )


def _build(args) -> tuple:
    params = SimulationParams(
        ndim=args.ndim,
        mesh_size=args.mesh,
        block_size=args.block,
        num_levels=args.levels,
        num_scalars=args.scalars,
    )
    mode = getattr(args, "mode", "modeled")
    kernel_mode = getattr(args, "kernel_mode", "packed")
    if args.backend == "gpu":
        config = ExecutionConfig(
            backend="gpu",
            num_gpus=args.gpus,
            ranks_per_gpu=args.ranks,
            num_nodes=args.nodes,
            mode=mode,
            kernel_mode=kernel_mode,
        )
    else:
        config = ExecutionConfig(
            backend="cpu",
            cpu_ranks=args.ranks,
            num_nodes=args.nodes,
            mode=mode,
            kernel_mode=kernel_mode,
        )
    return params, config


def _print_result(result) -> None:
    print(f"configuration : {result.config.describe()}")
    print(
        f"mesh {result.params.mesh_size}^{result.params.ndim}, "
        f"block {result.params.block_size}, "
        f"{result.params.num_levels} levels"
    )
    print(f"cycles        : {result.cycles} (final blocks {result.final_blocks})")
    print(f"FOM           : {result.fom:.4e} zone-cycles/s")
    print(
        f"time          : {result.wall_seconds:.3f}s "
        f"(kernel {result.kernel_seconds:.3f}s / serial {result.serial_seconds:.3f}s, "
        f"kernel fraction {kernel_fraction(result) * 100:.1f}%)"
    )
    print(
        f"communication : {result.cells_communicated:,} ghost cells, "
        f"{result.remote_messages:,} remote messages"
    )
    if result.oom:
        print("!! configuration ran out of device memory")
    print()
    print(render_breakdown(result, "Function breakdown", top=10))
    print()
    print(render_memory(result, "Device memory (most-loaded device)"))


def cmd_run(args) -> int:
    params, config = load_input(args.input)
    driver = ParthenonDriver(params, config)
    result = driver.run(args.cycles, warmup=args.warmup)
    _print_result(result)
    return 0


def cmd_characterize(args) -> int:
    import json

    from repro.driver.driver import ParthenonDriver

    params, config = _build(args)
    driver = ParthenonDriver(params, config)
    result = driver.run(args.cycles, warmup=args.warmup)
    _print_result(result)
    if getattr(args, "trace", None):
        with open(args.trace, "w") as f:
            json.dump(driver.prof.to_chrome_trace(), f)
        print(f"\nchrome trace written to {args.trace} "
              "(open in chrome://tracing or Perfetto)")
    return 0


def cmd_deck(args) -> int:
    params, config = _build(args)
    sys.stdout.write(render_input(params, config))
    return 0


def cmd_recommend(args) -> int:
    from repro.core.recommendations import render_recommendations

    params, config = _build(args)
    result = characterize(params, config, args.cycles, args.warmup)
    print(render_recommendations(result))
    return 0


def cmd_sweep(args) -> int:
    from repro.core import sweeps

    params, config = _build(args)
    if args.axis == "block":
        series = sweeps.block_size_sweep(
            params, {config.describe(): config}, ncycles=args.cycles
        )
        print(render_sweep(series, "block size", "FOM vs MeshBlockSize"))
    elif args.axis == "mesh":
        series = sweeps.mesh_size_sweep(
            params, {config.describe(): config}, ncycles=args.cycles
        )
        print(render_sweep(series, "mesh size", "FOM vs mesh size"))
    elif args.axis == "levels":
        series = sweeps.amr_level_sweep(
            params, {config.describe(): config}, ncycles=args.cycles
        )
        print(render_sweep(series, "#AMR levels", "FOM vs AMR depth"))
    elif args.axis == "gpu-ranks":
        points = sweeps.gpu_rank_sweep(
            params, num_gpus=args.gpus, ncycles=args.cycles
        )
        rows = [
            [int(p.x), "OOM" if p.oom else f"{p.fom:.3e}"] for p in points
        ]
        print(render_table(["ranks/GPU", "FOM"], rows, "FOM vs ranks per GPU"))
    else:  # cpu-ranks
        points = sweeps.cpu_rank_sweep(params, ncycles=args.cycles)
        rows = [
            [int(p.x), f"{p.fom:.3e}", f"{p.result.serial_seconds:.3f}"]
            for p in points
        ]
        print(
            render_table(
                ["cores", "FOM", "serial_s"], rows, "CPU strong scaling"
            )
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parthenon-VIBE AMR characterization (IISWC 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a Parthenon-style input deck")
    p_run.add_argument("input", help="path to the input deck")
    p_run.add_argument("--cycles", type=int, default=5)
    p_run.add_argument("--warmup", type=int, default=0)
    p_run.set_defaults(fn=cmd_run)

    p_char = sub.add_parser(
        "characterize", help="run one configuration and print its report"
    )
    _add_config_args(p_char)
    p_char.add_argument(
        "--trace", help="write a chrome://tracing timeline JSON here"
    )
    p_char.set_defaults(fn=cmd_characterize)

    p_deck = sub.add_parser("deck", help="emit an input deck for a config")
    _add_config_args(p_deck)
    p_deck.set_defaults(fn=cmd_deck)

    p_sweep = sub.add_parser("sweep", help="sweep one parameter axis")
    p_sweep.add_argument(
        "axis", choices=("block", "mesh", "levels", "gpu-ranks", "cpu-ranks")
    )
    _add_config_args(p_sweep)
    p_sweep.set_defaults(fn=cmd_sweep)

    p_rec = sub.add_parser(
        "recommend", help="rank serial bottlenecks with §VIII advice"
    )
    _add_config_args(p_rec)
    p_rec.set_defaults(fn=cmd_recommend)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
