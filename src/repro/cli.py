"""Command-line interface: run decks, characterize configs, sweep axes.

Usage::

    python -m repro run input.vibe [--cycles N]
    python -m repro run input.vibe --checkpoint-every 2 --checkpoint-dir ck
    python -m repro run input.vibe --restart-from ck   # bitwise resume
    python -m repro characterize --mesh 128 --block 16 --levels 3 \
        --backend gpu --gpus 1 --ranks 12 [--cycles N]
    python -m repro sweep {block,mesh,levels,gpu-ranks,cpu-ranks} [options]
    python -m repro campaign --dir out --mesh 64,96 --block 8,16 \
        --workers 4            # parallel + resumable; rerun to resume
    python -m repro deck --mesh 128 --block 16 ...   # emit an input deck
    python -m repro trace input.vibe --format canonical   # golden-file JSON
    python -m repro trace input.vibe --format chrome -o t.json  # Perfetto
    python -m repro trace --diff a.json b.json --tolerance 0.05
    python -m repro serve --dir svc --port 8321   # campaign-as-a-service

Everything routes through :mod:`repro.api` (``RunSpec`` + ``Simulation``
+ the validating builders), so a typo like ``--kernel-mode paked`` fails
up front with the valid choices listed.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api import (
    ConfigError,
    RunSpec,
    Simulation,
    build_execution_config,
    build_simulation_params,
)
from repro.core.characterize import kernel_fraction
from repro.driver.outputs import RestartError
from repro.core.report import (
    render_breakdown,
    render_campaign_summary,
    render_memory,
    render_sweep,
    render_table,
)
from repro.driver.input import render_input
from repro.mesh.refinement import policy_names


def _add_config_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--mesh", type=int, default=128, help="cells per dimension")
    p.add_argument("--block", type=int, default=16, help="MeshBlock size")
    p.add_argument("--levels", type=int, default=3, help="#AMR levels")
    p.add_argument("--ndim", type=int, default=3, choices=(1, 2, 3))
    p.add_argument("--scalars", type=int, default=8, help="passive scalars")
    p.add_argument(
        "--backend", choices=("gpu", "cpu"), default="gpu"
    )
    p.add_argument("--gpus", type=int, default=1)
    p.add_argument("--ranks", type=int, default=1, help="ranks per GPU / CPU ranks")
    p.add_argument("--nodes", type=int, default=1)
    p.add_argument("--cycles", type=int, default=3)
    p.add_argument("--warmup", type=int, default=2)
    p.add_argument(
        "--mode", choices=("modeled", "numeric"), default="modeled",
        help="cost-only synthetic run, or real PDE math (small configs)",
    )
    p.add_argument(
        "--kernel-mode", choices=("packed", "per_block"), default="packed",
        help="one fused launch per MeshBlockPack, or one per block "
        "(the launch-overhead ablation)",
    )
    p.add_argument(
        "--kernel-backend", choices=("numpy", "numba", "cupy"),
        default="numpy",
        help="engine for packed numeric kernels; unavailable backends "
        "fall back to numpy with a one-time warning",
    )
    p.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="run numeric packed stages across N shared-memory worker "
        "processes (bitwise-identical to serial; inert outside "
        "numeric+packed)",
    )
    _add_policy_args(p)


def _add_policy_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--refinement-policy", choices=policy_names(),
        default="first_derivative",
        help="named refinement policy from the repro.mesh.refinement "
        "registry (default: the seed first_derivative criterion)",
    )
    p.add_argument(
        "--block-budget", type=int, default=0, metavar="N",
        help="leaf-count target for --refinement-policy block_budget "
        "(required >= 1 for that policy; ignored otherwise)",
    )


def _build_config(args, **overrides):
    options = dict(
        backend=args.backend,
        num_nodes=args.nodes,
        mode=getattr(args, "mode", "modeled"),
        kernel_mode=getattr(args, "kernel_mode", "packed"),
        kernel_backend=getattr(args, "kernel_backend", "numpy"),
        num_shards=getattr(args, "shards", 1),
    )
    if args.backend == "gpu":
        options.update(num_gpus=args.gpus, ranks_per_gpu=args.ranks)
    else:
        options.update(cpu_ranks=args.ranks)
    options.update(overrides)
    return build_execution_config(**options)


def _build(args) -> tuple:
    params = build_simulation_params(
        ndim=args.ndim,
        mesh_size=args.mesh,
        block_size=args.block,
        num_levels=args.levels,
        num_scalars=args.scalars,
        refinement_policy=getattr(
            args, "refinement_policy", "first_derivative"
        ),
        block_budget=getattr(args, "block_budget", 0),
    )
    return params, _build_config(args)


def _spec(args) -> RunSpec:
    params, config = _build(args)
    return RunSpec(
        params=params, config=config, ncycles=args.cycles, warmup=args.warmup
    )


def _print_result(result) -> None:
    print(f"configuration : {result.config.describe()}")
    print(
        f"mesh {result.params.mesh_size}^{result.params.ndim}, "
        f"block {result.params.block_size}, "
        f"{result.params.num_levels} levels"
    )
    print(f"cycles        : {result.cycles} (final blocks {result.final_blocks})")
    print(f"FOM           : {result.fom:.4e} zone-cycles/s")
    print(
        f"time          : {result.wall_seconds:.3f}s "
        f"(kernel {result.kernel_seconds:.3f}s / serial {result.serial_seconds:.3f}s, "
        f"kernel fraction {kernel_fraction(result) * 100:.1f}%)"
    )
    print(
        f"communication : {result.cells_communicated:,} ghost cells, "
        f"{result.remote_messages:,} remote messages"
    )
    if result.oom:
        print("!! configuration ran out of device memory")
    print()
    print(render_breakdown(result, "Function breakdown", top=10))
    print()
    print(render_memory(result, "Device memory (most-loaded device)"))


def cmd_run(args) -> int:
    import dataclasses

    spec = RunSpec.from_file(args.input, ncycles=args.cycles, warmup=args.warmup)
    if args.checkpoint_every is not None:
        try:
            spec = spec.replace(
                config=dataclasses.replace(
                    spec.config, checkpoint_every=args.checkpoint_every
                )
            )
        except ValueError as exc:
            raise ConfigError(str(exc))
    if args.shards is not None:
        try:
            spec = spec.replace(
                config=dataclasses.replace(
                    spec.config, num_shards=args.shards
                )
            )
        except ValueError as exc:
            raise ConfigError(str(exc))
    if args.refinement_policy is not None or args.block_budget is not None:
        changes = {}
        if args.refinement_policy is not None:
            changes["refinement_policy"] = args.refinement_policy
        if args.block_budget is not None:
            changes["block_budget"] = args.block_budget
        merged = dataclasses.asdict(spec.params)
        merged.update(changes)
        # Route through the validating builder so a budget-less
        # block_budget override fails here, not deep in the driver.
        spec = spec.replace(params=build_simulation_params(**merged))
    checkpoint_dir = args.checkpoint_dir
    if checkpoint_dir is None and spec.config.checkpoint_every > 0:
        checkpoint_dir = "checkpoints"
    sim = Simulation(
        spec,
        checkpoint_dir=checkpoint_dir,
        restart_from=args.restart_from,
    )
    result = sim.run()
    if sim.resumed_from_cycle is not None:
        print(
            f"resumed from checkpoint at cycle {sim.resumed_from_cycle} "
            f"({args.restart_from})",
            file=sys.stderr,
        )
    _print_result(result)
    if sim.checkpointer is not None and sim.checkpointer.written:
        print(
            f"\n{len(sim.checkpointer.written)} checkpoint(s) in "
            f"{sim.checkpointer.directory}/ "
            f"(latest: {sim.checkpointer.written[-1].name})"
        )
    return 0


def cmd_characterize(args) -> int:
    import json

    from repro.observability import to_chrome_trace

    want_trace = bool(getattr(args, "trace", None))
    sim = Simulation(_spec(args), trace=want_trace)
    result = sim.run()
    _print_result(result)
    if want_trace:
        with open(args.trace, "w") as f:
            json.dump(to_chrome_trace(sim.trace()), f)
        print(f"\nchrome trace written to {args.trace} "
              "(open in chrome://tracing or Perfetto)")
    return 0


def cmd_trace(args) -> int:
    """Export a run's span tree, or diff two canonical trace files."""
    import dataclasses
    import json

    from repro.observability import (
        diff_region_totals,
        render_trace_diff,
        to_canonical_dict,
        to_canonical_json,
        to_chrome_trace,
    )
    from repro.observability.exporters import (
        render_trace_summary,
        within_tolerance,
    )

    if args.diff:
        path_a, path_b = args.diff
        with open(path_a) as f:
            doc_a = json.load(f)
        with open(path_b) as f:
            doc_b = json.load(f)
        try:
            deltas = diff_region_totals(doc_a, doc_b)
        except ValueError as exc:
            raise ConfigError(str(exc))
        print(render_trace_diff(deltas, args.tolerance,
                                title=f"Trace diff: {path_a} vs {path_b}"))
        ok = within_tolerance(deltas, args.tolerance)
        worst = max((abs(d.rel) for d in deltas), default=0.0)
        print(f"\nlargest relative delta: {worst * 100:.2f}% "
              f"(tolerance {args.tolerance * 100:.2f}%)")
        return 0 if ok else 1

    if not args.input:
        raise ConfigError("trace needs an input deck (or --diff A B)")
    overrides = {}
    if args.cycles is not None:
        overrides["ncycles"] = args.cycles
    if args.warmup is not None:
        overrides["warmup"] = args.warmup
    spec = RunSpec.from_file(args.input, **overrides)
    if args.kernel_mode:
        spec = spec.replace(
            config=dataclasses.replace(spec.config, kernel_mode=args.kernel_mode)
        )
    if args.kernel_backend:
        spec = spec.replace(
            config=dataclasses.replace(
                spec.config, kernel_backend=args.kernel_backend
            )
        )
    if args.shards is not None:
        try:
            spec = spec.replace(
                config=dataclasses.replace(spec.config, num_shards=args.shards)
            )
        except ValueError as exc:
            raise ConfigError(str(exc))
    sim = Simulation(spec, trace=True)
    sim.run()
    trace = sim.trace()
    if args.format == "canonical":
        text = to_canonical_json(trace)
    elif args.format == "chrome":
        text = json.dumps(to_chrome_trace(trace), sort_keys=True, indent=2) + "\n"
    else:  # summary
        text = render_trace_summary(to_canonical_dict(trace)) + "\n"
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
        print(f"{args.format} trace written to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def cmd_deck(args) -> int:
    params, config = _build(args)
    sys.stdout.write(render_input(params, config))
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.service import QuotaPolicy, SweepServer, TenantQuotas

    try:
        policy = QuotaPolicy(
            rate_per_s=args.rate,
            burst=args.burst,
            max_inflight=args.max_inflight,
            blocked=frozenset(args.block or ()),
        )
    except ValueError as exc:
        raise ConfigError(str(exc))
    server = SweepServer(
        args.dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        retries=args.retries,
        timeout_s=args.timeout,
        quotas=TenantQuotas(policy),
        execution=args.execution,
    )

    async def _serve() -> None:
        await server.start()
        if server.queue.recovered:
            print(
                f"recovered {len(server.queue.recovered)} interrupted "
                "job(s) from the journal",
                file=sys.stderr,
            )
        print(f"sweep service listening on {server.url} (data: {server.data_dir})")
        print(f"  submit:  curl -X POST {server.url}/runs -d @spec.json")
        print(f"  status:  curl {server.url}/runs/<id>")
        print(f"  events:  curl -N {server.url}/runs/<id>/events")
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down (journal keeps pending jobs)", file=sys.stderr)
    return 0


def cmd_recommend(args) -> int:
    from repro.core.recommendations import render_recommendations

    result = Simulation(_spec(args)).run()
    print(render_recommendations(result))
    return 0


def cmd_sweep(args) -> int:
    from repro.core import sweeps

    params, config = _build(args)
    if args.axis == "block":
        series = sweeps.block_size_sweep(
            params, {config.describe(): config}, ncycles=args.cycles
        )
        print(render_sweep(series, "block size", "FOM vs MeshBlockSize"))
    elif args.axis == "mesh":
        series = sweeps.mesh_size_sweep(
            params, {config.describe(): config}, ncycles=args.cycles
        )
        print(render_sweep(series, "mesh size", "FOM vs mesh size"))
    elif args.axis == "levels":
        series = sweeps.amr_level_sweep(
            params, {config.describe(): config}, ncycles=args.cycles
        )
        print(render_sweep(series, "#AMR levels", "FOM vs AMR depth"))
    elif args.axis == "gpu-ranks":
        points = sweeps.gpu_rank_sweep(
            params, num_gpus=args.gpus, ncycles=args.cycles
        )
        rows = [
            [int(p.x), "OOM" if p.oom else f"{p.fom:.3e}"] for p in points
        ]
        print(render_table(["ranks/GPU", "FOM"], rows, "FOM vs ranks per GPU"))
    else:  # cpu-ranks
        points = sweeps.cpu_rank_sweep(params, ncycles=args.cycles)
        rows = [
            [int(p.x), f"{p.fom:.3e}", f"{p.result.serial_seconds:.3f}"]
            for p in points
        ]
        print(
            render_table(
                ["cores", "FOM", "serial_s"], rows, "CPU strong scaling"
            )
        )
    return 0


def _int_list(raw: str) -> List[int]:
    try:
        return [int(v) for v in raw.split(",") if v.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {raw!r}"
        )


#: The CI mini-sweep: two mesh sizes x two block sizes at a scale where
#: each point costs enough for worker-pool parallelism to pay off, and
#: the two expensive block-8 points are near-equal so LPT scheduling
#: splits them across workers (~2x on two workers).
MINI_CAMPAIGN = dict(
    mesh=[80, 96], block=[8, 16], levels=2, ndim=3, scalars=8,
    cycles=2, warmup=1,
)

#: The AMR-policy characterization campaign (ROADMAP item 3): one
#: modeled config, swept along the refinement-policy axis — the
#: threshold baseline against block-budget targets bracketing the
#: wavefront's natural block population, so the summary exposes the
#: FOM / block-count / ghost-traffic / remesh-cost tradeoff per policy.
POLICY_CAMPAIGN = dict(
    mesh=64, block=8, levels=2, ndim=3, scalars=8,
    policies=["first_derivative"], budgets=[640, 1024, 1536],
    cycles=6, warmup=1,
)


def cmd_campaign(args) -> int:
    from repro.core.sweeps import grid_specs, policy_specs
    from repro.orchestration import load_campaign, run_campaign

    if args.report_only:
        artifacts = load_campaign(args.dir)
        print(render_campaign_summary(artifacts))
        return 0

    if args.preset == "policies":
        preset = POLICY_CAMPAIGN
        params = build_simulation_params(
            ndim=preset["ndim"],
            mesh_size=preset["mesh"],
            block_size=preset["block"],
            num_levels=preset["levels"],
            num_scalars=preset["scalars"],
        )
        specs = policy_specs(
            params,
            _build_config(args),
            policies=preset["policies"],
            budgets=preset["budgets"],
            ncycles=preset["cycles"],
            warmup=preset["warmup"],
        )
    elif args.preset == "mini":
        preset = MINI_CAMPAIGN
        mesh_sizes, block_sizes = preset["mesh"], preset["block"]
        params = build_simulation_params(
            ndim=preset["ndim"],
            mesh_size=mesh_sizes[0],
            block_size=block_sizes[0],
            num_levels=preset["levels"],
            num_scalars=preset["scalars"],
        )
        config = _build_config(args)
        ncycles, warmup = preset["cycles"], preset["warmup"]
    else:
        mesh_sizes, block_sizes = args.mesh, args.block
        params = build_simulation_params(
            ndim=args.ndim,
            mesh_size=mesh_sizes[0],
            block_size=block_sizes[0],
            num_levels=args.levels,
            num_scalars=args.scalars,
        )
        config = _build_config(args)
        ncycles, warmup = args.cycles, args.warmup

    if args.preset != "policies":
        specs = grid_specs(
            params, config, mesh_sizes, block_sizes,
            ncycles=ncycles, warmup=warmup,
        )

    def progress(outcome) -> None:
        if outcome.from_cache:
            status = "cached"
        elif outcome.ok:
            status = "done"
        else:
            status = "FAILED"
        print(f"  [{status:>6}] {outcome.label}")

    summary = run_campaign(
        specs,
        args.dir,
        workers=args.workers,
        retries=args.retries,
        timeout_s=args.timeout,
        progress=progress,
        checkpoint_every=args.checkpoint_every,
    )
    print()
    print(render_campaign_summary(summary.artifacts))
    print()
    print(f"campaign: {summary.describe()}")
    print(f"artifacts: {summary.campaign_dir}/points/")
    return 1 if summary.failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parthenon-VIBE AMR characterization (IISWC 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a Parthenon-style input deck")
    p_run.add_argument("input", help="path to the input deck")
    p_run.add_argument("--cycles", type=int, default=5)
    p_run.add_argument("--warmup", type=int, default=0)
    p_run.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="write a crash-consistent checkpoint every N cycles "
        "(overrides the deck's <checkpoint> section; 0 disables)",
    )
    p_run.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="checkpoint directory (default: ./checkpoints when enabled)",
    )
    p_run.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="override the deck's num_shards: run the numeric packed "
        "stages across N shared-memory worker processes (bitwise "
        "identical to serial; 1 = in-process)",
    )
    p_run.add_argument(
        "--refinement-policy", choices=policy_names(), default=None,
        help="override the deck's <refinement> policy",
    )
    p_run.add_argument(
        "--block-budget", type=int, default=None, metavar="N",
        help="override the deck's <refinement> block_budget target",
    )
    p_run.add_argument(
        "--restart-from", default=None, metavar="PATH",
        help="resume from a checkpoint: a manifest .json, payload .pkl, "
        "or a checkpoint directory (resolves to the latest valid one); "
        "the resumed run is bitwise identical to an uninterrupted one",
    )
    p_run.set_defaults(fn=cmd_run)

    p_char = sub.add_parser(
        "characterize", help="run one configuration and print its report"
    )
    _add_config_args(p_char)
    p_char.add_argument(
        "--trace", help="write a chrome://tracing timeline JSON here"
    )
    p_char.set_defaults(fn=cmd_characterize)

    p_deck = sub.add_parser("deck", help="emit an input deck for a config")
    _add_config_args(p_deck)
    p_deck.set_defaults(fn=cmd_deck)

    p_trace = sub.add_parser(
        "trace",
        help="run a deck with tracing and export the span tree, or diff "
        "two canonical traces region by region",
    )
    p_trace.add_argument(
        "input", nargs="?",
        help="input deck to run (omit when using --diff)",
    )
    p_trace.add_argument(
        "--format", choices=("canonical", "chrome", "summary"),
        default="canonical",
        help="canonical = schema-versioned golden-file JSON; chrome = "
        "Perfetto/chrome://tracing timeline; summary = human tables",
    )
    p_trace.add_argument(
        "-o", "--output", help="write here instead of stdout"
    )
    p_trace.add_argument("--cycles", type=int, default=None)
    p_trace.add_argument("--warmup", type=int, default=None)
    p_trace.add_argument(
        "--kernel-mode", choices=("packed", "per_block"), default=None,
        help="override the deck's kernel mode",
    )
    p_trace.add_argument(
        "--kernel-backend", choices=("numpy", "numba", "cupy"), default=None,
        help="override the deck's kernel backend",
    )
    p_trace.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="override the deck's num_shards (sharded traces differ from "
        "serial only in meta.num_shards and the meta.shards section)",
    )
    p_trace.add_argument(
        "--diff", nargs=2, metavar=("A", "B"),
        help="compare two canonical trace JSON files; exit 1 if any "
        "region's total differs by more than --tolerance",
    )
    p_trace.add_argument(
        "--tolerance", type=float, default=0.0,
        help="relative per-region tolerance for --diff (default: exact)",
    )
    p_trace.set_defaults(fn=cmd_trace)

    p_sweep = sub.add_parser("sweep", help="sweep one parameter axis")
    p_sweep.add_argument(
        "axis", choices=("block", "mesh", "levels", "gpu-ranks", "cpu-ranks")
    )
    _add_config_args(p_sweep)
    p_sweep.set_defaults(fn=cmd_sweep)

    p_camp = sub.add_parser(
        "campaign",
        help="run a mesh x block campaign: parallel workers, per-point "
        "failure isolation, resumable via the artifact cache",
    )
    p_camp.add_argument(
        "--mesh", type=_int_list, default=[128],
        help="comma-separated mesh sizes (the campaign's first axis)",
    )
    p_camp.add_argument(
        "--block", type=_int_list, default=[16],
        help="comma-separated MeshBlock sizes (the second axis)",
    )
    p_camp.add_argument("--levels", type=int, default=3, help="#AMR levels")
    p_camp.add_argument("--ndim", type=int, default=3, choices=(1, 2, 3))
    p_camp.add_argument("--scalars", type=int, default=8, help="passive scalars")
    p_camp.add_argument("--backend", choices=("gpu", "cpu"), default="gpu")
    p_camp.add_argument("--gpus", type=int, default=1)
    p_camp.add_argument(
        "--ranks", type=int, default=1, help="ranks per GPU / CPU ranks"
    )
    p_camp.add_argument("--nodes", type=int, default=1)
    p_camp.add_argument("--cycles", type=int, default=3)
    p_camp.add_argument("--warmup", type=int, default=2)
    p_camp.add_argument("--mode", choices=("modeled", "numeric"), default="modeled")
    p_camp.add_argument(
        "--kernel-mode", choices=("packed", "per_block"), default="packed"
    )
    p_camp.add_argument(
        "--kernel-backend", choices=("numpy", "numba", "cupy"),
        default="numpy",
    )
    p_camp.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="shared-memory shard workers per numeric packed point "
        "(inert for modeled points)",
    )
    p_camp.add_argument(
        "--dir", required=True, help="campaign directory (artifacts + cache)"
    )
    p_camp.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: os.cpu_count())",
    )
    p_camp.add_argument(
        "--retries", type=int, default=1,
        help="re-attempts per failing point before recording an error",
    )
    p_camp.add_argument(
        "--timeout", type=float, default=None,
        help="per-point wall-clock limit in seconds",
    )
    p_camp.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="checkpoint each point every N cycles under "
        "<dir>/checkpoints/<key>/ and resume crashed points from their "
        "last checkpoint on retry (0 disables)",
    )
    p_camp.add_argument(
        "--preset", choices=("mini", "policies"), default=None,
        help="'mini' = the CI 2x2 mesh x block quick campaign; "
        "'policies' = the AMR-policy characterization sweep "
        "(threshold baseline vs. block-budget targets on one config)",
    )
    _add_policy_args(p_camp)
    p_camp.add_argument(
        "--report-only", action="store_true",
        help="render the summary from existing artifacts without running",
    )
    p_camp.set_defaults(fn=cmd_campaign)

    p_rec = sub.add_parser(
        "recommend", help="rank serial bottlenecks with §VIII advice"
    )
    _add_config_args(p_rec)
    p_rec.set_defaults(fn=cmd_recommend)

    p_serve = sub.add_parser(
        "serve",
        help="run the sweep service: an HTTP server with a persistent, "
        "dedup-by-cache-key job queue over a campaign directory",
    )
    p_serve.add_argument(
        "--dir", required=True,
        help="service data directory (queue journal + artifact cache)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8321,
        help="listen port (0 = ephemeral; default 8321)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2,
        help="concurrent run executors (default 2)",
    )
    p_serve.add_argument(
        "--retries", type=int, default=1,
        help="re-attempts per failing run before recording an error",
    )
    p_serve.add_argument(
        "--timeout", type=float, default=None,
        help="per-run wall-clock limit in seconds",
    )
    p_serve.add_argument(
        "--execution", choices=("process", "thread"), default="process",
        help="run executor: forked processes (crash isolation) or "
        "threads (lighter; for tests and constrained hosts)",
    )
    p_serve.add_argument(
        "--rate", type=float, default=50.0,
        help="sustained submissions/s per tenant (token-bucket refill)",
    )
    p_serve.add_argument(
        "--burst", type=int, default=100,
        help="token-bucket burst capacity per tenant",
    )
    p_serve.add_argument(
        "--max-inflight", type=int, default=64,
        help="max live (pending+running) jobs per tenant",
    )
    p_serve.add_argument(
        "--block", action="append", metavar="TENANT",
        help="refuse this tenant outright (repeatable)",
    )
    p_serve.set_defaults(fn=cmd_serve)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (ConfigError, RestartError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
