"""Terminal visualization: ASCII renderings of fields and mesh structure.

No plotting dependency is available offline, so the examples render 2D
slices as character ramps and the block structure as a level map — enough
to *see* the AMR following a front in a terminal.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.mesh.mesh import Mesh

RAMP = " .:-=+*#%@"


def sample_slice(
    mesh: Mesh,
    field: str,
    component: int = 0,
    resolution: int = 48,
    x3: float = 0.5,
) -> np.ndarray:
    """Sample a field on a uniform (x1, x2) grid at height ``x3``.

    Each sample takes the value of the cell containing the point on the
    finest block covering it.  Returns a ``(resolution, resolution)`` array
    indexed ``[row=x2, col=x1]``.
    """
    if not mesh.allocate:
        raise ValueError("sampling requires a numeric-mode mesh")
    out = np.full((resolution, resolution), np.nan)
    xs = (np.arange(resolution) + 0.5) / resolution
    for blk in mesh.block_list:
        (lo1, hi1), (lo2, hi2), (lo3, hi3) = blk.bounds
        if mesh.ndim >= 3 and not (lo3 <= x3 < hi3):
            continue
        cols = np.where((xs >= lo1) & (xs < hi1))[0]
        rows = (
            np.where((xs >= lo2) & (xs < hi2))[0]
            if mesh.ndim >= 2
            else np.array([0])
        )
        if len(cols) == 0 or len(rows) == 0:
            continue
        data = blk.fields[field][component]
        g1 = blk.shape.ghosts(0)
        g2 = blk.shape.ghosts(1)
        i = (g1 + ((xs[cols] - lo1) / blk.dx(0)).astype(int)).clip(
            g1, g1 + blk.shape.nx[0] - 1
        )
        if mesh.ndim >= 2:
            j = (g2 + ((xs[rows] - lo2) / blk.dx(1)).astype(int)).clip(
                g2, g2 + blk.shape.nx[1] - 1
            )
        else:
            j = np.array([0])
        if mesh.ndim >= 3:
            k = blk.shape.ghosts(2) + int((x3 - lo3) / blk.dx(2))
            k = min(max(k, blk.shape.ghosts(2)), blk.shape.ghosts(2) + blk.shape.nx[2] - 1)
        else:
            k = 0
        for rj, jj in zip(rows, j):
            out[rj, cols] = data[k, jj, i]
    return out


def render_field(
    mesh: Mesh,
    field: str,
    component: int = 0,
    resolution: int = 48,
    x3: float = 0.5,
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
) -> str:
    """ASCII-art density plot of a field slice (origin bottom-left)."""
    grid = sample_slice(mesh, field, component, resolution, x3)
    finite = grid[np.isfinite(grid)]
    if finite.size == 0:
        raise ValueError("slice intersects no blocks")
    lo = vmin if vmin is not None else float(finite.min())
    hi = vmax if vmax is not None else float(finite.max())
    span = hi - lo if hi > lo else 1.0
    lines: List[str] = []
    for row in reversed(range(grid.shape[0])):
        chars = []
        for col in range(grid.shape[1]):
            v = grid[row, col]
            if not np.isfinite(v):
                chars.append("?")
                continue
            idx = int((v - lo) / span * (len(RAMP) - 1))
            chars.append(RAMP[min(max(idx, 0), len(RAMP) - 1)])
        lines.append("".join(chars))
    lines.append(f"[{field}[{component}] range {lo:.3g} .. {hi:.3g}]")
    return "\n".join(lines)


def render_levels(mesh: Mesh, resolution: int = 48, x3: float = 0.5) -> str:
    """ASCII map of refinement levels over an (x1, x2) slice."""
    out = np.full((resolution, resolution), -1, dtype=int)
    xs = (np.arange(resolution) + 0.5) / resolution
    for blk in mesh.block_list:
        (lo1, hi1), (lo2, hi2), (lo3, hi3) = blk.bounds
        if mesh.ndim >= 3 and not (lo3 <= x3 < hi3):
            continue
        cols = np.where((xs >= lo1) & (xs < hi1))[0]
        rows = (
            np.where((xs >= lo2) & (xs < hi2))[0]
            if mesh.ndim >= 2
            else np.array([0])
        )
        for rj in rows:
            out[rj, cols] = np.maximum(out[rj, cols], blk.lloc.level)
    lines = []
    for row in reversed(range(resolution)):
        lines.append(
            "".join(
                "?" if lvl < 0 else str(lvl) for lvl in out[row]
            )
        )
    lines.append("[refinement level per sample]")
    return "\n".join(lines)
