"""The Parthenon-style evolution driver.

Runs the timestep loop of Fig. 3 — ``Step``, ``LoadBalancingAndAMR``,
``EstimateTimeStep`` — with Kokkos-style instrumentation around every
sub-function the paper profiles, on either the numeric workload (real PDE
data) or the modeled workload (synthetic wavefront refinement, cost-only
kernels).
"""

from repro.driver.params import SimulationParams
from repro.driver.execution import ExecutionConfig
from repro.driver.driver import ParthenonDriver, RunResult

__all__ = [
    "SimulationParams",
    "ExecutionConfig",
    "ParthenonDriver",
    "RunResult",
]
