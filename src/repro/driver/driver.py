"""The instrumented timestep loop (Fig. 3 of the paper).

Every cycle runs ``Step`` → ``LoadBalancingAndAMR`` → ``EstimateTimeStep``
with the same sub-function decomposition the paper profiles.  All framework
bookkeeping (tree, neighbor lists, buffer caches, message counts, block
distribution) is *real*; the platform clock converts the recorded work into
simulated seconds on the configured hardware.  In ``numeric`` mode the
physics kernels also execute real NumPy math; in ``modeled`` mode they only
contribute cost records, and refinement follows the synthetic expanding
wavefront (the paper's ripple picture).

Wall-time accounting: divisible host work (per-block, per-buffer) is divided
across ranks and scaled by the measured load imbalance; undividable work
(tree update over all blocks, collectives, GPU-sharing contention) is charged
in full.  GPU kernels launched by the ranks sharing one device serialize on
it; the per-launch overhead is paid per rank-launch.  Function times are
additive (no overlap modeling), matching the paper's stacked breakdowns.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.comm.bvals import BoundaryExchange
from repro.comm.flux_correction import FluxCorrection
from repro.comm.mpi import SimMPI
from repro.driver.execution import ExecutionConfig
from repro.driver.params import SimulationParams
from repro.hardware.cpu import CPUModel
from repro.hardware.gpu import GPUModel
from repro.hardware.serial import SerialCostModel, mpi_driver_memory_bytes
from repro.kokkos.kernel import (
    KERNEL_PROFILES,
    KernelLaunch,
    launch_plan,
    make_launch,
)
from repro.kokkos.memory import (
    KOKKOS_AUX,
    KOKKOS_MESH,
    MPI_BUFFERS,
    MPI_DRIVER,
    MemoryTracker,
    OutOfMemoryError,
)
from repro.kokkos.profiler import Profiler
from repro.kokkos.space import ExecutionSpace
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import NullRecorder
from repro.resilience.faults import FaultInjector, NULL_INJECTOR
from repro.mesh.loadbalance import RedistributionPlan, balance
from repro.mesh.mesh import Mesh
from repro.mesh.refinement import SphericalWavefrontTagger, build_policy
from repro.kernels.backends import resolve_backend
from repro.solver.advance import RK2_STAGES
from repro.solver.burgers import (
    BASE,
    BurgersPackage,
    CONSERVED,
    DERIVED,
)
from repro.solver.history import HistoryRow, reduce_history
from repro.solver.packs import MeshBlockPack, build_numeric_pack
from repro.solver.state import Metadata


@dataclass
class RunResult:
    """Everything the characterization toolkit needs from one run."""

    params: SimulationParams
    config: ExecutionConfig
    cycles: int
    zone_cycles: int
    wall_seconds: float
    kernel_seconds: float
    serial_seconds: float
    fom: float  # zone-cycles per second
    function_breakdown: Dict[str, Tuple[float, float]]  # name -> (serial, kernel)
    kernel_seconds_by_name: Dict[str, float]
    cells_communicated: int
    cell_updates: int
    remote_messages: int
    final_blocks: int
    max_blocks: int
    rebuild_buffer_cache_seconds: float
    memory_breakdown: Dict[str, int]  # per label, max-loaded device
    device_memory_peak: int
    oom: bool
    history: List[HistoryRow] = field(default_factory=list)
    #: Whole-run MPI traffic counters (every :class:`MPICounters` field),
    #: as recorded by the simulated communicator — the run-artifact's
    #: ``communication.mpi_counters`` section.
    mpi_counters: Dict[str, int] = field(default_factory=dict)
    #: :meth:`MetricsRegistry.to_dict` snapshot (counters, gauges,
    #: histograms, per-cycle counter series) — the run-artifact's
    #: ``metrics`` section.
    metrics: Dict[str, object] = field(default_factory=dict)
    #: *Effective* kernel backend the numeric packed kernels ran on
    #: ("numpy" after a fallback, and always "numpy" for per_block or
    #: modeled runs); ``config.kernel_backend`` records the request.
    kernel_backend: str = "numpy"
    #: Shard-execution summary (DESIGN §12): topology + per-shard stage
    #: wall seconds from :meth:`ShardedPackKernels.summary`.  Empty for
    #: serial runs; the ``stage_seconds`` inside are host wall-clock and
    #: excluded from every bitwise-identity comparison.
    shards: Dict[str, object] = field(default_factory=dict)


class ParthenonDriver:
    """Drives one Parthenon-VIBE run on the simulated platform."""

    def __init__(
        self,
        params: SimulationParams,
        config: ExecutionConfig,
        initial_conditions: Optional[Callable[[Mesh, BurgersPackage], None]] = None,
        raise_on_oom: bool = False,
        recorder: Optional[NullRecorder] = None,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        self.params = params
        self.config = config
        self.raise_on_oom = raise_on_oom
        #: Resilience-test hook (DESIGN §9): a no-op null injector unless
        #: a test or campaign arms a FaultPlan.
        self.fault_injector = fault_injector or NULL_INJECTOR
        #: False until the warmup boundary has been crossed; checkpointed
        #: so a resumed run knows whether reset_metrics already happened.
        self._measuring = False
        self.pkg = BurgersPackage(params.ndim, params.burgers_config())
        numeric = config.mode == "numeric"
        self.mesh = Mesh(
            params.geometry(), self.pkg.field_specs(), allocate=numeric
        )
        self.metrics = MetricsRegistry()
        self.mpi = SimMPI(config.total_ranks, nnodes=config.num_nodes)
        self.bx = BoundaryExchange(self.mesh, self.mpi, metrics=self.metrics)
        self.fc = FluxCorrection(self.mesh, self.mpi)
        self.fc.set_neighbor_table(self.bx.neighbor_table)
        cfg = params.burgers_config()
        wavefront = None
        if not numeric:
            wavefront = SphericalWavefrontTagger(
                center=tuple(
                    0.5 if a < params.ndim else 0.0 for a in range(3)
                ),
                r0=params.wavefront_r0,
                speed=params.wavefront_speed,
                width=params.wavefront_width,
            )
        # Numeric criteria scan the same single component the legacy
        # driver tagger used (q0, the first scalar) so the default policy
        # stays bitwise identical to the seed behavior.
        self.policy = build_policy(
            params.refinement_policy,
            numeric=numeric,
            refine_tol=cfg.refine_tol,
            derefine_tol=cfg.derefine_tol,
            derefine_gap=params.derefine_gap,
            block_budget=params.block_budget,
            field_name=CONSERVED,
            component=self.pkg.nvel if numeric else None,
            wavefront=wavefront,
        )
        self.prof = Profiler(recorder=recorder)
        self.gpu_model = GPUModel(config.gpu_spec, config.calibration)
        self.cpu_model = CPUModel(config.cpu_spec, config.calibration)
        self.serial_model = SerialCostModel(config.calibration)
        capacity = config.gpu_spec.memory_bytes if config.is_gpu else None
        self.mem = MemoryTracker(device_capacity_bytes=capacity)
        self.launch_records: List[Tuple[KernelLaunch, int]] = []
        self.time = 0.0
        self.cycle = 0
        self.zone_cycles = 0
        self.cell_updates = 0
        self.cells_communicated = 0
        self.max_blocks = self.mesh.num_blocks
        self.rebuild_seconds = 0.0
        self.oom = False
        self.history: List[HistoryRow] = []
        self._plan: RedistributionPlan = balance(self.mesh, config.total_ranks)
        self.bx.rebuild()
        self.fc.set_neighbor_table(self.bx.neighbor_table)
        #: Cached contiguous pack for the packed execution engine; rebuilt
        #: lazily and only when the mesh's block population changes.
        self._pack: Optional[MeshBlockPack] = None
        self.pack_rebuilds = 0
        #: Effective kernel backend: the registry resolution of
        #: ``config.kernel_backend`` (falls back to "numpy" when the
        #: requested engine is unavailable).  Per-block and modeled runs
        #: always execute the reference math, hence "numpy".
        self.kernel_backend = "numpy"
        self._packed = None
        #: Shard executor (repro.parallel) when this run fans the packed
        #: stages out to worker processes; None for serial execution.
        self._shard_exec = None
        if numeric and config.kernel_mode == "packed":
            backend = resolve_backend(config.kernel_backend)
            self.kernel_backend = backend.name
            if config.num_shards > 1:
                from repro.parallel import ShardedPackKernels

                self._shard_exec = ShardedPackKernels(
                    params=params,
                    backend_name=self.kernel_backend,
                    num_shards=config.num_shards,
                    injector_provider=lambda: self.fault_injector,
                    cycle_provider=lambda: self.cycle,
                )
                self._packed = self._shard_exec
            else:
                self._packed = backend.create_kernels(self.pkg)
        if numeric and initial_conditions is not None:
            initial_conditions(self.mesh, self.pkg)
        self._update_memory()

    # ----------------------------------------------------------- plumbing

    @property
    def numeric(self) -> bool:
        return self.config.mode == "numeric"

    @property
    def use_packed(self) -> bool:
        """True when numeric kernels run through the packed engine."""
        return self._packed is not None

    def _get_pack(self) -> MeshBlockPack:
        """The contiguous whole-mesh pack, rebuilt only after remeshing.

        After a rebuild every block's field and flux arrays alias pack
        storage, so ghost exchange, flux correction, prolongation and the
        per-block diagnostics all see packed data without copies.
        """
        if self._pack is None:
            self._pack = self._build_pack(metrics=self.metrics)
            self.pack_rebuilds += 1
        return self._pack

    def _build_pack(self, metrics=None) -> MeshBlockPack:
        """Build (and, when sharded, rebind) one contiguous pack.

        The single pack-construction path shared by the lazy cache above
        and checkpoint restore: sharded runs allocate the new generation
        through the executor's shared-memory allocator and repartition
        the chunk grid across workers before the old generation retires.
        """
        pack = build_numeric_pack(
            self.mesh,
            (CONSERVED, BASE, DERIVED),
            flux_field=CONSERVED,
            metrics=metrics,
            allocator=(
                None if self._shard_exec is None else self._shard_exec.allocator
            ),
        )
        if self._shard_exec is not None:
            self._shard_exec.rebind(pack)
        return pack

    def shutdown_shards(self) -> None:
        """Stop shard workers and release shared memory (idempotent)."""
        if self._shard_exec is not None:
            self._shard_exec.shutdown()

    @property
    def _exchange_fields(self) -> List[str]:
        return [CONSERVED]

    def _imbalance(self) -> float:
        return max(self._plan.imbalance, 1.0)

    def _charge_divisible(self, seconds_total: float) -> None:
        """Per-block/per-buffer host work, parallel across ranks."""
        self.prof.add_serial(
            seconds_total / self.config.total_ranks * self._imbalance()
        )

    def _charge_fixed(self, seconds: float) -> None:
        """Host work every rank performs in full (Amdahl floor)."""
        self.prof.add_serial(seconds)

    def _charge_lookup(self) -> None:
        """Charge GetVariablesByFlag string work since the last reset.

        Each rank performs these lookups independently, so one call's cost
        *is* the per-rank wall cost.  With integer variable indexing
        (Section VIII-A's recommendation) the string work disappears.
        """
        counters = self.pkg.registry.reset_counters()
        if self.config.optimizations.integer_variable_indexing:
            return
        self._charge_fixed(self.serial_model.variable_lookup(counters))

    def _kernel(self, name: str, cells: int, region_block_nx: int = -1) -> None:
        """Launch the named kernel over ``cells`` total cells.

        Pack kernels launch once per rank over the rank's local share;
        per-block kernels (refinement tagging, per-block reductions) launch
        once per MeshBlock.  Launches sharing a GPU serialize, so device
        wall time multiplies by the launches mapped to one GPU; on CPU every
        rank's core runs its own launches in parallel.
        """
        self.fault_injector.check("kernel_launch", self.cycle)
        if cells <= 0:
            return
        if (
            name == "CalculateFluxes"
            and self.config.optimizations.restructured_kernels
        ):
            name = "CalculateFluxes3D"
        profile = KERNEL_PROFILES[name]
        ranks = self.config.total_ranks
        block_nx = (
            region_block_nx if region_block_nx > 0 else self.params.block_size
        )
        space = (
            ExecutionSpace.CUDA
            if self.config.is_gpu
            else ExecutionSpace.HOST_OPENMP
        )
        per_block = (
            profile.per_block_launch
            or self.config.optimizations.disable_packing
            or self.config.kernel_mode == "per_block"
        )
        block_cells = self.params.block_size ** self.params.ndim
        nlaunches, launch_cells = launch_plan(
            cells, block_cells, ranks, per_block
        )
        launch = make_launch(
            name, space, cells=launch_cells, block_nx=block_nx,
            ncomp=self.pkg.ncomp,
        )
        self.launch_records.append((launch, nlaunches))
        if self.config.is_gpu:
            per_launch = self.gpu_model.kernel_duration(launch)
            launches_per_gpu = math.ceil(
                nlaunches / self.config.devices_total
            )
            wall = per_launch * launches_per_gpu
        else:
            per_launch = self.cpu_model.kernel_duration(
                launch, ncores=1, total_ranks=ranks
            )
            wall = per_launch * math.ceil(nlaunches / ranks)
        wall *= self._imbalance()
        self.metrics.count("kernel_launches", nlaunches)
        self.metrics.observe("kernel_wall_seconds", wall)
        self.prof.add_kernel(
            name,
            wall,
            cells=cells,
            bytes=launch.bytes * nlaunches,
            launches=nlaunches,
            space=space.name,
        )

    # -------------------------------------------------------------- cycle

    def run(
        self,
        ncycles: int,
        warmup: int = 0,
        checkpointer: Optional[object] = None,
        on_cycle: Optional[Callable[["ParthenonDriver"], None]] = None,
    ) -> RunResult:
        """Advance ``ncycles`` measured cycles (after ``warmup`` unmeasured
        ones) and report.

        Warmup cycles let the refinement front develop so the measured
        cycles reflect the steady-state block population; their time,
        traffic and zone-cycles are discarded, like the paper's practice of
        reporting steady per-cycle rates.

        ``checkpointer`` (a :class:`repro.resilience.CheckpointManager`)
        is offered the driver after every completed cycle; it persists
        state on its own cadence.  The loop is resume-aware: a driver
        restored from a checkpoint continues from its saved ``cycle`` /
        ``prof.cycles`` — warmup cycles already done are not re-run, the
        warmup-boundary metrics reset replays only if the checkpoint
        predates it (``_measuring``), and exactly the remaining measured
        cycles execute.  Checkpointing itself touches no profiler region
        and no metric, so cadence cannot perturb the result.

        ``on_cycle`` is an observation hook called with the driver after
        every completed cycle (and after the checkpointer, so a hook
        that crashes never loses a checkpoint).  It runs outside every
        profiler region — like checkpointing, observing progress cannot
        perturb the simulated outcome.
        """
        if not self._measuring:
            while self.cycle < warmup and not self.oom:
                self.do_cycle()
                if checkpointer is not None:
                    checkpointer.save(self)
                if on_cycle is not None:
                    on_cycle(self)
            if warmup:
                self.reset_metrics()
            self._measuring = True
        while self.prof.cycles < ncycles and not self.oom:
            self.do_cycle()
            if checkpointer is not None:
                checkpointer.save(self)
            if on_cycle is not None:
                on_cycle(self)
        return self.result()

    def reset_metrics(self) -> None:
        """Zero all accumulated metrics; the mesh state stays."""
        measured = self.cycle
        recorder = self.prof.recorder
        recorder.clear()
        self.prof = Profiler(recorder=recorder)
        self.metrics.clear()
        self.launch_records = []
        self.zone_cycles = 0
        self.cell_updates = 0
        self.cells_communicated = 0
        self.rebuild_seconds = 0.0
        self.history = []
        self.mpi.total = type(self.mpi.total)()
        self.mpi.end_cycle()
        if self._shard_exec is not None:
            self._shard_exec.reset_timings()
        self._warmup_cycles = measured

    def do_cycle(self) -> None:
        try:
            self._step()
            self._load_balancing_and_amr()
            self._estimate_timestep()
        except OutOfMemoryError:
            self.oom = True
            if self.raise_on_oom:
                raise
            return
        cells = self.mesh.total_interior_cells()
        self.zone_cycles += cells
        self.cell_updates += cells
        self.max_blocks = max(self.max_blocks, self.mesh.num_blocks)
        self.mpi.end_cycle()
        self.prof.end_cycle()
        self.cycle += 1
        self._update_memory()
        self.metrics.gauge("blocks", self.mesh.num_blocks)
        self.metrics.gauge(
            "device_peak_bytes", getattr(self, "_worst_device_bytes", 0)
        )
        self.metrics.end_cycle(self.prof.cycles)

    # ---------------------------------------------------------------- Step

    def _step(self) -> None:
        total_cells = self.mesh.total_interior_cells()
        dt = self._current_dt()
        for istage, (gam0, gam1, beta) in enumerate(RK2_STAGES):
            if istage == 0:
                with self.prof.region("WeightedSumData"):
                    if self.use_packed:
                        self._packed.save_base(self._get_pack())
                    elif self.numeric:
                        for blk in self.mesh.block_list:
                            self.pkg.save_base(blk)
                    self._kernel("WeightedSumData", total_cells)
            self._run_stage_tasks(total_cells, gam0, gam1, beta * dt)
        with self.prof.region("FillDerived"):
            self.pkg.registry.get_by_flag(Metadata.DERIVED)
            self._charge_lookup()
            if self.use_packed:
                self._packed.fill_derived(self._get_pack())
            elif self.numeric:
                for blk in self.mesh.block_list:
                    self.pkg.fill_derived(blk)
            self._kernel("CalculateDerived", total_cells)
        with self.prof.region("MassHistory"):
            if self.numeric:
                self.history.append(
                    reduce_history(self.mesh, self.pkg, self.cycle, self.time)
                )
            self._kernel("MassHistory", total_cells)
            self.mpi.allreduce(8 * (self.pkg.ncomp + 2))
            self._charge_fixed(
                self.serial_model.collective(
                    self.config.total_ranks,
                    8 * (self.pkg.ncomp + 2),
                    internode=self.config.num_nodes > 1,
                )
            )
        self.time += dt

    def _run_stage_tasks(
        self, total_cells: int, gam0: float, gam1: float, beta_dt: float
    ) -> None:
        """One RK stage as a dependency-ordered task list (Section II-C's
        hierarchical tasking): communication phases feed the flux pipeline,
        which feeds the update."""
        from repro.driver.tasks import TaskList, TaskRegion, TaskStatus

        def as_task(fn):
            def run():
                fn()
                return TaskStatus.COMPLETE

            return run

        tl = TaskList("stage")
        t_comm = tl.add_task(
            as_task(self._communicate_ghosts), label="GhostExchange"
        )
        t_flux = tl.add_task(
            as_task(lambda: self._calculate_fluxes(total_cells)),
            dependency=t_comm,
            label="CalculateFluxes",
        )
        t_corr = tl.add_task(
            as_task(self._flux_correction),
            dependency=t_flux,
            label="FluxCorrection",
        )

        def flux_divergence_and_update():
            with self.prof.region("FluxDivergence"):
                self._charge_lookup()
                if self.use_packed:
                    self._packed.flux_divergence_and_update(
                        self._get_pack(), gam0, gam1, beta_dt
                    )
                elif self.numeric:
                    for blk in self.mesh.block_list:
                        dudt = self.pkg.flux_divergence(blk)
                        self.pkg.weighted_sum(blk, dudt, gam0, gam1, beta_dt)
                self._kernel("FluxDivergence", total_cells)
            with self.prof.region("WeightedSumData"):
                self._kernel("WeightedSumData", total_cells)

        tl.add_task(
            as_task(flux_divergence_and_update),
            dependency=t_flux & t_corr,
            label="FluxDivergence",
        )
        TaskRegion([tl]).execute()

    def _communicate_ghosts(self) -> None:
        fields = self._exchange_fields
        ng = self.mesh.geometry.ng
        nx = self.params.block_size
        ndim = self.params.ndim
        with self.prof.region("StartRecvBoundBufs"):
            self.bx.start_receive_bound_bufs()
            # One receive-setup task per block, not per message.
            self._charge_divisible(
                self.serial_model.task_overhead(self.mesh.num_blocks)
            )
        with self.prof.region("SendBoundBufs"):
            self.fault_injector.check("ghost_pack", self.cycle)
            self.pkg.registry.get_by_flag(Metadata.FILL_GHOST)
            self._charge_lookup()
            stats = self.bx.send_bound_bufs(fields)
            opt = self.config.optimizations
            cache_init = self.serial_model.buffer_cache_init(
                stats.buffers_packed,
                include_shuffle=not opt.skip_buffer_shuffle,
            )
            if opt.parallel_host_tasks:
                cache_init /= opt.HOST_PARALLEL_SPEEDUP
            self._charge_divisible(
                self.serial_model.send_setup(stats) + cache_init
            )
            self._kernel("SendBoundBufs", stats.cells_communicated)
            self.cells_communicated += stats.cells_communicated
            self.metrics.count("ghost_cells", stats.cells_communicated)
            self.metrics.count("ghost_bytes", stats.bytes_communicated)
            self.metrics.count("ghost_messages_remote", stats.messages_remote)
            self.metrics.count("ghost_messages_local", stats.messages_local)
        with self.prof.region("ReceiveBoundBufs"):
            self.bx.receive_bound_bufs()
            counters = self.mpi.cycle
            self._charge_divisible(
                self.serial_model.receive_polling(
                    counters.iprobe_calls, counters.test_calls
                )
            )
            # Message transfer wait: remote bytes across the interconnect.
            coll = self.config.calibration.collective
            transfer = stats.bytes_communicated / coll.bandwidth_bytes_s
            self._charge_divisible(transfer)
        with self.prof.region("SetBounds"):
            self.fault_injector.check("ghost_unpack", self.cycle)
            set_stats = self.bx.set_bounds(fields)
            self._charge_divisible(
                self.serial_model.set_bounds_setup(stats)
            )
            self._kernel("SetBounds", stats.cells_communicated)
            ghost_region_cells = ng * nx ** (ndim - 1)
            self._kernel(
                "ProlongationRestrictionLoop",
                (set_stats.prolongations + set_stats.restrictions)
                * ghost_region_cells,
            )

    def _calculate_fluxes(self, total_cells: int) -> None:
        with self.prof.region("CalculateFluxes"):
            self.pkg.registry.get_by_flag(Metadata.WITH_FLUXES)
            self._charge_lookup()
            if self.use_packed:
                self._packed.calculate_fluxes(self._get_pack())
            elif self.numeric:
                for blk in self.mesh.block_list:
                    self.pkg.calculate_fluxes(blk)
            self._kernel("CalculateFluxes", total_cells)

    def _flux_correction(self) -> None:
        with self.prof.region("FluxCorrection"):
            stats = self.fc.correct(self._exchange_fields)
            self._charge_divisible(
                stats.corrections
                * self.config.calibration.serial.per_buffer_pack_setup_s
                + stats.messages_remote
                * self.config.calibration.serial.per_remote_message_s
            )
            self.cells_communicated += stats.cells_communicated
            self.metrics.count("flux_corrections", stats.corrections)

    # ----------------------------------------------- LoadBalancingAndAMR

    def _load_balancing_and_amr(self) -> None:
        if self.cycle % self.params.refine_every != 0:
            return
        total_blocks = self.mesh.num_blocks
        total_cells = self.mesh.total_interior_cells()
        with self.prof.region("Refinement::Tag"):
            report = self.policy.collect_flags(self.mesh, self.cycle)
            refine, derefine, checked = (
                report.refine, report.derefine, report.checked,
            )
            self.metrics.count("refine_flags", report.refine_requests)
            self.metrics.count("derefine_flags", report.derefine_requests)
            self.metrics.count(
                "derefine_blocked_gap", report.derefine_blocked
            )
            self.metrics.gauge(
                "refinement_indicator_max", report.indicator_max
            )
            self._charge_divisible(
                self.serial_model.refinement_tagging(checked)
            )
            # The tag pass is charged as the FirstDerivative kernel for
            # every policy: the cost model prices one indicator sweep over
            # all cells, and each registered criterion is exactly that.
            self._kernel("FirstDerivative", total_cells)
        with self.prof.region("UpdateMeshBlockTree"):
            self.mpi.allgather(bytes_per_rank=max(1, total_blocks))
            self._charge_fixed(
                self.serial_model.collective(
                    self.config.total_ranks,
                    total_blocks,
                    internode=self.config.num_nodes > 1,
                )
            )
            self.fault_injector.check("remesh", self.cycle)
            remesh_stats = self.mesh.remesh(refine, derefine)
            changes = remesh_stats.refined_parents + remesh_stats.derefined_parents
            if changes:
                self.metrics.count("remesh_events")
                self.metrics.count(
                    "remesh_blocks_created", remesh_stats.created
                )
                self.metrics.count(
                    "remesh_blocks_destroyed", remesh_stats.destroyed
                )
            self._charge_fixed(
                self.serial_model.tree_update(total_blocks, changes)
            )
            # Rank-sharing contention: the cost that turns Fig. 8 over.
            if self.config.is_gpu:
                self._charge_fixed(
                    self.serial_model.gpu_rank_contention(
                        total_blocks, self.config.ranks_per_gpu
                    )
                )
            else:
                self._charge_fixed(
                    self.serial_model.cpu_rank_contention(
                        total_blocks, self.config.total_ranks
                    )
                )
        with self.prof.region("RedistributeAndRefineMeshBlocks"):
            bytes_per_block = self._bytes_per_block()
            opt = self.config.optimizations
            alloc_scale = (
                1.0 / opt.POOL_SPEEDUP if opt.pooled_block_allocation else 1.0
            )
            self._charge_divisible(
                self.serial_model.remesh_allocation(
                    remesh_stats, bytes_per_block, alloc_scale=alloc_scale
                )
            )
            do_lb = self.cycle % self.params.load_balance_every == 0
            moved = 0
            if do_lb:
                self._plan = balance(self.mesh, self.config.total_ranks)
                moved = self._plan.moved_blocks
                self.metrics.count("lb_blocks_moved", moved)
                self._charge_divisible(
                    self.serial_model.redistribution(moved, bytes_per_block)
                )
            if remesh_stats.created or remesh_stats.destroyed or moved:
                if remesh_stats.created or remesh_stats.destroyed:
                    # The block population changed: the contiguous pack's
                    # views are stale.  (Pure load-balance moves only remap
                    # ranks; surviving block arrays — pack views — persist.)
                    self._pack = None
                rebuild = self.bx.rebuild()
                self.fc.set_neighbor_table(self.bx.neighbor_table)
                rebuild_cost = (
                    self.serial_model.rebuild_buffer_cache(rebuild)
                    + self.serial_model.build_tag_map(rebuild)
                ) / self.config.total_ranks * self._imbalance()
                if opt.parallel_host_tasks:
                    rebuild_cost /= opt.HOST_PARALLEL_SPEEDUP
                self.prof.add_serial(rebuild_cost)
                self.rebuild_seconds += rebuild_cost
                self._kernel(
                    "ProlongationRestrictionLoop",
                    remesh_stats.created
                    * self.params.block_size ** self.params.ndim,
                )
            self.policy.forget_stale(self.mesh)
            assert self.policy.consistent_with(self.mesh), (
                "refinement policy retains dead block uids after remesh"
            )

    # ------------------------------------------------- EstimateTimeStep

    def _estimate_timestep(self) -> None:
        with self.prof.region("EstimateTimeStep"):
            self._kernel(
                "EstimateTimestepMesh", self.mesh.total_interior_cells()
            )
            self.mpi.allreduce(8)
            self._charge_fixed(
                self.serial_model.collective(
                    self.config.total_ranks,
                    8,
                    internode=self.config.num_nodes > 1,
                )
            )

    def _current_dt(self) -> float:
        if not self.numeric:
            return 1.0
        if self.use_packed:
            dt = float(np.min(self._packed.estimate_timestep(self._get_pack())))
        else:
            dt = math.inf
            for blk in self.mesh.block_list:
                dt = min(dt, self.pkg.estimate_timestep(blk))
        if not math.isfinite(dt):
            dt = 1e-3
        return dt

    # ------------------------------------------------------------- memory

    def _bytes_per_block(self) -> int:
        blk = self.mesh.block_list[0]
        return blk.data_bytes() + self._flux_bytes_per_block()

    def _flux_bytes_per_block(self) -> int:
        nx = self.params.block_size
        ndim = self.params.ndim
        faces = ndim * (nx + 1) * nx ** (ndim - 1)
        return self.pkg.ncomp * 8 * faces

    def aux_bytes_per_block(self) -> int:
        """Section VIII-B's per-MeshBlock auxiliary buffer footprint:
        ``B * 6 * (nx1 + 2 ng)^dim * (3 + num_scalar)``."""
        nx = self.params.block_size
        ng = self.mesh.geometry.ng
        return int(
            8
            * 6
            * (nx + 2 * ng) ** self.params.ndim
            * (3 + self.params.num_scalars)
        )

    def aux_bytes_per_device_restructured(self) -> int:
        """Post-optimization aux footprint: per-ThreadBlock 2D slices
        instead of per-MeshBlock volumes (Section VIII-B)."""
        nx = self.params.block_size
        ng = self.mesh.geometry.ng
        thread_blocks = 1024  # typical concurrent thread blocks on an H100
        return int(
            thread_blocks
            * 8
            * 6
            * (nx + 2 * ng) ** min(2, self.params.ndim)
            * (3 + self.params.num_scalars)
        )

    def _update_memory(self) -> None:
        """Refresh per-device memory levels; flag OOM at the HBM wall."""
        ndev = max(self.config.devices_total, 1)
        ranks_per_dev = self.config.total_ranks // ndev
        blocks_per_dev = [0] * ndev
        for blk in self.mesh.block_list:
            dev = min(blk.rank // max(ranks_per_dev, 1), ndev - 1)
            blocks_per_dev[dev] += 1
        per_block = self._bytes_per_block()
        aux = self.aux_bytes_per_block()
        worst = 0
        worst_dev = 0
        restructured = self.config.optimizations.restructured_kernels
        residency = self.config.calibration.kokkos_memory.aux_residency
        for dev in range(ndev):
            mesh_bytes = blocks_per_dev[dev] * per_block
            if restructured:
                aux_bytes = self.aux_bytes_per_device_restructured()
            else:
                aux_bytes = int(blocks_per_dev[dev] * aux * residency)
            self.mem.set_level(KOKKOS_MESH, mesh_bytes, rank=dev)
            self.mem.set_level(KOKKOS_AUX, aux_bytes, rank=dev)
            lo = dev * ranks_per_dev
            hi = min((dev + 1) * ranks_per_dev, self.config.total_ranks)
            buf = sum(
                self.mpi.registered_buffer_bytes(r) for r in range(lo, hi)
            )
            factor = self.config.calibration.mpi_memory.buffer_overhead_factor
            self.mem.set_level(MPI_BUFFERS, int(buf * factor), rank=dev)
            npeers = min(self.config.total_ranks - 1, 16)
            self.mem.set_level(
                MPI_DRIVER,
                mpi_driver_memory_bytes(
                    ranks_per_dev, npeers, self.cycle, self.config.calibration
                ),
                rank=dev,
            )
            used = sum(
                self.mem.current(lbl, rank=dev)
                for lbl in (KOKKOS_MESH, KOKKOS_AUX, MPI_BUFFERS, MPI_DRIVER)
            )
            if used > worst:
                worst = used
                worst_dev = dev
        self._worst_device = worst_dev
        self._worst_device_bytes = worst
        if (
            self.config.is_gpu
            and self.mem.device_capacity_bytes is not None
            and worst > self.mem.device_capacity_bytes
        ):
            self.oom = True
            if self.raise_on_oom:
                raise OutOfMemoryError(
                    f"device {worst_dev} needs {worst / 2**30:.1f} GiB "
                    f"> {self.mem.device_capacity_bytes / 2**30:.1f} GiB HBM"
                )

    # ------------------------------------------------------------- result

    def result(self) -> RunResult:
        total = self.prof.total_seconds
        dev = getattr(self, "_worst_device", 0)
        breakdown = {
            lbl: self.mem.current(lbl, rank=dev)
            for lbl in (KOKKOS_MESH, KOKKOS_AUX, MPI_BUFFERS, MPI_DRIVER)
        }
        return RunResult(
            params=self.params,
            config=self.config,
            cycles=self.prof.cycles,
            zone_cycles=self.zone_cycles,
            wall_seconds=total,
            kernel_seconds=self.prof.total_kernel_seconds,
            serial_seconds=self.prof.total_serial_seconds,
            fom=self.zone_cycles / total if total > 0 else 0.0,
            function_breakdown={
                name: (t.serial, t.kernel)
                for name, t in self.prof.function_breakdown().items()
            },
            kernel_seconds_by_name=dict(self.prof.kernel_seconds),
            cells_communicated=self.cells_communicated,
            cell_updates=self.cell_updates,
            remote_messages=self.mpi.total.remote_messages,
            final_blocks=self.mesh.num_blocks,
            max_blocks=self.max_blocks,
            rebuild_buffer_cache_seconds=self.rebuild_seconds,
            memory_breakdown=breakdown,
            device_memory_peak=getattr(self, "_worst_device_bytes", 0),
            oom=self.oom,
            history=list(self.history),
            mpi_counters={
                f.name: getattr(self.mpi.total, f.name)
                for f in dataclasses.fields(self.mpi.total)
            },
            metrics=self.metrics.to_dict(),
            kernel_backend=self.kernel_backend,
            shards=(
                {} if self._shard_exec is None else self._shard_exec.summary()
            ),
        )
