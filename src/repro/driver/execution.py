"""Execution configuration: which simulated platform runs the workload.

Mirrors the paper's hardware axes: CPU runs use N MPI ranks on the 96-core
Sapphire Rapids node (1 rank per core); GPU runs use G H100s with R MPI
ranks per GPU (the Fig. 8 sweep); Section V uses two such nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.calibration import DEFAULT_CALIBRATION, Calibration
from repro.hardware.specs import (
    CPUSpec,
    GPUSpec,
    H100_SXM,
    SAPPHIRE_RAPIDS_8468,
)


@dataclass(frozen=True)
class OptimizationFlags:
    """Section VIII's recommended software optimizations, as toggles.

    Each flag enables one recommendation so the ablation benchmarks can
    quantify it in isolation:

    * ``integer_variable_indexing`` — replace GetVariablesByFlag's string
      hashing with the prebuilt integer index (Section VIII-A).
    * ``pooled_block_allocation`` — batch block allocations through a
      software memory pool instead of per-block cudaMalloc (Section VIII-A).
    * ``restructured_kernels`` — 2D/3D Kokkos loop structure: removes the
      wasted warps and line divergence of CalculateFluxes and shrinks the
      auxiliary buffers from per-MeshBlock volumes to per-ThreadBlock slices
      (Section VIII-B).
    * ``skip_buffer_shuffle`` — drop the randomization pass of
      InitializeBufferCache (the tradeoff Section VIII-A discusses).
    * ``parallel_host_tasks`` — OpenMP-parallelize the buffer-cache sort and
      ViewsOfViews metadata population across host threads (Section VIII-A:
      "parallel sorting algorithms may offer gains"; "parallel iteration
      over boundaries using OpenMP is feasible").
    """

    integer_variable_indexing: bool = False
    pooled_block_allocation: bool = False
    restructured_kernels: bool = False
    skip_buffer_shuffle: bool = False
    parallel_host_tasks: bool = False
    #: DISABLES Parthenon's MeshBlockPack launch batching (Section II-C):
    #: every pack kernel becomes one launch per MeshBlock.  A negative
    #: ablation — it shows why Parthenon packs (launch overhead swamps small
    #: blocks).
    disable_packing: bool = False

    #: Allocation-cost reduction from pooling (batched vs per-block malloc).
    POOL_SPEEDUP: float = 10.0
    #: Effective speedup of OpenMP host parallelization (8 threads at ~50%
    #: parallel efficiency on metadata-bound loops).
    HOST_PARALLEL_SPEEDUP: float = 4.0


@dataclass(frozen=True)
class ExecutionConfig:
    """Platform and parallelism for one run."""

    backend: str = "gpu"  # "gpu" | "cpu"
    num_gpus: int = 1
    ranks_per_gpu: int = 1
    cpu_ranks: int = 96
    num_nodes: int = 1
    #: "modeled" runs the synthetic workload with cost-only kernels;
    #: "numeric" runs real PDE data (small configurations only).
    mode: str = "modeled"
    #: How numeric kernels execute: "packed" sweeps one contiguous
    #: MeshBlockPack per dispatch (Parthenon's launch-amortized default,
    #: Section II-C); "per_block" loops blocks one kernel call each — the
    #: launch-overhead ablation.  Modeled runs use it for launch accounting.
    kernel_mode: str = "packed"
    #: Which registered engine executes the packed numeric kernels:
    #: "numpy" (vectorized reference), "numba" (JIT fused stencils), or
    #: "cupy" (GPU arrays).  This is the *requested* backend; the driver
    #: resolves it against availability and falls back to "numpy" with a
    #: one-time warning (``ParthenonDriver.kernel_backend`` records the
    #: effective engine).  Ignored outside numeric+packed execution.
    kernel_backend: str = "numpy"
    gpu_spec: GPUSpec = H100_SXM
    cpu_spec: CPUSpec = SAPPHIRE_RAPIDS_8468
    calibration: Calibration = DEFAULT_CALIBRATION
    optimizations: OptimizationFlags = OptimizationFlags()
    #: Write a crash-consistent checkpoint every N completed cycles
    #: (0 disables).  Cadence never changes the simulated outcome — the
    #: bitwise-resume guarantee, DESIGN §9 — so this field is excluded
    #: from :meth:`repro.api.RunSpec.cache_key`.
    checkpoint_every: int = 0
    #: Shard the numeric packed stages across N worker processes backed by
    #: shared-memory pack storage (DESIGN §12).  1 keeps the serial
    #: in-process engine.  Sharding is 0-ULP identical to serial by
    #: construction (``tests/test_shard_parity.py``), so — like
    #: ``checkpoint_every`` — this field is excluded from
    #: :meth:`repro.api.RunSpec.cache_key`.  Accepted but inert for
    #: per_block and modeled runs.
    num_shards: int = 1

    def __post_init__(self) -> None:
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.num_shards < 1:
            raise ValueError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.backend not in ("gpu", "cpu"):
            raise ValueError(f"backend must be 'gpu' or 'cpu', got {self.backend!r}")
        if self.mode not in ("modeled", "numeric"):
            raise ValueError(f"mode must be 'modeled' or 'numeric', got {self.mode!r}")
        if self.kernel_mode not in ("packed", "per_block"):
            raise ValueError(
                f"kernel_mode must be 'packed' or 'per_block', "
                f"got {self.kernel_mode!r}"
            )
        from repro.kernels.backends.base import KNOWN_BACKENDS

        if self.kernel_backend not in KNOWN_BACKENDS:
            raise ValueError(
                f"kernel_backend must be one of {', '.join(KNOWN_BACKENDS)}, "
                f"got {self.kernel_backend!r}"
            )
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.backend == "gpu":
            if self.num_gpus < 1 or self.ranks_per_gpu < 1:
                raise ValueError("GPU runs need num_gpus, ranks_per_gpu >= 1")
        else:
            if self.cpu_ranks < 1:
                raise ValueError("CPU runs need cpu_ranks >= 1")
            if self.cpu_ranks > self.cpu_spec.cores * self.num_nodes:
                raise ValueError(
                    f"cpu_ranks {self.cpu_ranks} exceeds "
                    f"{self.cpu_spec.cores * self.num_nodes} cores"
                )

    @property
    def is_gpu(self) -> bool:
        return self.backend == "gpu"

    @property
    def total_ranks(self) -> int:
        """MPI ranks across all nodes."""
        if self.is_gpu:
            return self.num_gpus * self.ranks_per_gpu * self.num_nodes
        return self.cpu_ranks * self.num_nodes

    @property
    def devices_total(self) -> int:
        """GPUs across all nodes (0 for CPU runs)."""
        return self.num_gpus * self.num_nodes if self.is_gpu else 0

    def describe(self) -> str:
        nodes = f" x {self.num_nodes} nodes" if self.num_nodes > 1 else ""
        shards = f" [{self.num_shards} shards]" if self.num_shards > 1 else ""
        if self.is_gpu:
            return (
                f"{self.num_gpus} GPU - {self.ranks_per_gpu}R{nodes} "
                f"({self.gpu_spec.name}){shards}"
            )
        return f"CPU {self.cpu_ranks}R{nodes} ({self.cpu_spec.name}){shards}"
