"""Simulation parameters — the knobs the paper sweeps.

``mesh_size``, ``block_size`` and ``num_levels`` are exactly the paper's
Mesh size / MeshBlockSize / #AMR Levels axes (Sections IV-A..IV-C);
refinement cadence and the derefinement gap follow Section II-G ("refinement
every cycle, derefinement constrained by a minimum gap of 10 cycles, load
balancing every cycle").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.mesh.mesh import MeshGeometry
from repro.solver.burgers import BurgersConfig


@dataclass(frozen=True)
class SimulationParams:
    """One Parthenon-VIBE run configuration."""

    ndim: int = 3
    mesh_size: int = 128
    block_size: int = 16
    num_levels: int = 3
    num_scalars: int = 8
    reconstruction: str = "weno5"
    riemann: str = "hll"
    cfl: float = 0.4
    refine_every: int = 1
    derefine_gap: int = 10
    load_balance_every: int = 1
    refine_tol: float = 0.15
    derefine_tol: float = 0.03
    #: Named refinement policy from the ``repro.mesh.refinement`` registry
    #: (first_derivative / second_derivative / recovered_gradient /
    #: block_budget).  ``first_derivative`` is the seed behavior.
    refinement_policy: str = "first_derivative"
    #: Leaf-count target for the ``block_budget`` policy (required >= 1
    #: when that policy is selected; ignored otherwise).
    block_budget: int = 0
    #: Synthetic wavefront parameters (modeled-mode workload generator).
    wavefront_speed: float = 0.010
    wavefront_width: float = 0.014
    wavefront_r0: float = 0.11

    def burgers_config(self) -> BurgersConfig:
        return BurgersConfig(
            num_scalars=self.num_scalars,
            reconstruction=self.reconstruction,
            riemann=self.riemann,
            cfl=self.cfl,
            refine_tol=self.refine_tol,
            derefine_tol=self.derefine_tol,
        )

    def geometry(self) -> MeshGeometry:
        cfg = self.burgers_config()
        return MeshGeometry(
            ndim=self.ndim,
            mesh_size=tuple(
                self.mesh_size if a < self.ndim else 1 for a in range(3)
            ),
            block_size=tuple(
                self.block_size if a < self.ndim else 1 for a in range(3)
            ),
            ng=cfg.required_ghosts(),
            num_levels=self.num_levels,
            periodic=(True, True, True),
        )

    @property
    def ncomp(self) -> int:
        return self.ndim + self.num_scalars
